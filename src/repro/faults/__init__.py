"""Fault-injection campaigns with a crash-consistency oracle.

The robustness layer behind the paper's central durability claim (Section
IV-C): that recovery restores a consistent hybrid DRAM/NVM state from a
power failure at *any* point by replaying only committed NVM redo entries.
Instead of hand-picked crash sites, this subsystem enumerates or samples
crash points over the machine's architectural events, verifies every
recovery against a pure-Python shadow of committed durable state, and
shrinks any failure to the smallest reproducing fault plan.

Pieces:

* :mod:`~repro.faults.plan` — where to crash (serialisable fault plans)
* :mod:`~repro.faults.injector` — the event counter that cuts the power
* :mod:`~repro.faults.oracle` — the committed-prefix consistency oracle
* :mod:`~repro.faults.campaign` — seeded sweeps over workloads
* :mod:`~repro.faults.minimize` — delta-debugging shrinker for failures
* :mod:`~repro.faults.cli` — ``python -m repro faults ...``

Quick start::

    from repro.faults import CampaignConfig, run_campaign

    result = run_campaign(CampaignConfig(workload="hashmap", crashes=50))
    assert result.ok, result.to_figure().pretty()
"""

from .campaign import (
    CampaignConfig,
    CampaignResult,
    EventCounts,
    PlanOutcome,
    build_system,
    execute_plan,
    probe_events,
    run_campaign,
    sample_plans,
)
from .injector import FaultInjector
from .minimize import MinimizationResult, minimize_plan
from .oracle import CrashOracle, OracleVerdict
from .plan import (
    CrashPoint,
    FaultPlan,
    TriggerKind,
    after_commit_mark,
    after_nvm_append,
    at_step,
    at_time,
    before_commit_mark,
    during_recovery,
    mid_commit,
)

__all__ = [
    "CampaignConfig",
    "CampaignResult",
    "CrashOracle",
    "CrashPoint",
    "EventCounts",
    "FaultInjector",
    "FaultPlan",
    "MinimizationResult",
    "OracleVerdict",
    "PlanOutcome",
    "TriggerKind",
    "after_commit_mark",
    "after_nvm_append",
    "at_step",
    "at_time",
    "before_commit_mark",
    "build_system",
    "during_recovery",
    "execute_plan",
    "mid_commit",
    "minimize_plan",
    "probe_events",
    "run_campaign",
    "sample_plans",
]
