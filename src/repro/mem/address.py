"""Physical address-space layout for the hybrid memory system.

The simulated machine maps DRAM at a low base and NVM at a high base, far
enough apart that regions can grow without colliding.  Each region reserves a
log area at its top, accessible only to the memory controller (Section IV-B:
"UHTM reserves the part of the DRAM and NVM regions for the log area").

Addresses are plain integers (byte addresses).  Helper functions convert
between byte, word, and cache-line granularity.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass

from ..errors import AddressError
from ..params import LINE_SIZE, WORD_SIZE, MemoryConfig

#: Base of the DRAM region.
DRAM_BASE = 0x0000_1000_0000
#: Base of the NVM region; well above any realistic DRAM top.
NVM_BASE = 0x1000_0000_0000


class MemoryKind(enum.Enum):
    """Which physical medium an address lives on."""

    DRAM = "dram"
    NVM = "nvm"


def line_of(addr: int) -> int:
    """The base address of the cache line containing ``addr``."""
    return addr & ~(LINE_SIZE - 1)


def line_index(addr: int) -> int:
    """The line number (address divided by the line size)."""
    return addr // LINE_SIZE


def word_of(addr: int) -> int:
    """The base address of the 8-byte word containing ``addr``."""
    return addr & ~(WORD_SIZE - 1)


@dataclass(frozen=True)
class Region:
    """A contiguous address range of one memory kind."""

    kind: MemoryKind
    base: int
    size: int

    @property
    def end(self) -> int:
        return self.base + self.size

    def contains(self, addr: int) -> bool:
        return self.base <= addr < self.end


class AddressSpace:
    """The machine's physical memory map.

    Splits each medium into a *heap* region (software-visible) and a *log*
    region (controller-only).  The classifier :meth:`kind_of` is on the hot
    path of every memory access, so it is two range comparisons.
    """

    def __init__(self, config: MemoryConfig) -> None:
        self._config = config
        heap_dram = config.dram_bytes - config.dram_log_bytes
        heap_nvm = config.nvm_bytes - config.nvm_log_bytes
        if heap_dram <= 0:
            raise AddressError("DRAM log area exceeds DRAM size")
        if heap_nvm <= 0:
            raise AddressError("NVM log area exceeds NVM size")
        self.dram_heap = Region(MemoryKind.DRAM, DRAM_BASE, heap_dram)
        self.dram_log = Region(
            MemoryKind.DRAM, DRAM_BASE + heap_dram, config.dram_log_bytes
        )
        self.nvm_heap = Region(MemoryKind.NVM, NVM_BASE, heap_nvm)
        self.nvm_log = Region(
            MemoryKind.NVM, NVM_BASE + heap_nvm, config.nvm_log_bytes
        )
        #: Public end-of-region bounds: hot callers (the controller, the
        #: HTM access path) inline the range compares instead of paying a
        #: method call per access, so the bounds are part of the API.
        self.dram_end = DRAM_BASE + config.dram_bytes
        self.nvm_end = NVM_BASE + config.nvm_bytes

    @property
    def config(self) -> MemoryConfig:
        return self._config

    def kind_of(self, addr: int) -> MemoryKind:
        """Classify a byte address; raises :class:`AddressError` if unmapped."""
        if DRAM_BASE <= addr < self.dram_end:
            return MemoryKind.DRAM
        if NVM_BASE <= addr < self.nvm_end:
            return MemoryKind.NVM
        raise AddressError(f"address {addr:#x} is not mapped")

    def is_dram(self, addr: int) -> bool:
        return DRAM_BASE <= addr < self.dram_end

    def is_nvm(self, addr: int) -> bool:
        return NVM_BASE <= addr < self.nvm_end

    def is_log(self, addr: int) -> bool:
        """True if ``addr`` lies in a reserved, controller-only log area."""
        return self.dram_log.contains(addr) or self.nvm_log.contains(addr)

    def heap_region(self, kind: MemoryKind) -> Region:
        return self.dram_heap if kind is MemoryKind.DRAM else self.nvm_heap

    def log_region(self, kind: MemoryKind) -> Region:
        return self.dram_log if kind is MemoryKind.DRAM else self.nvm_log
