"""Bad: the clock reached across a file through a non-funnel helper."""

from ..harness.hostinfo import host_seconds


def stamp(engine):
    return host_seconds()  # two files away from time.time(), still tainted
