"""Vectorized Bloom signatures: packed-uint64 bitset engines.

Drop-in replacements for :class:`repro.signatures.bloom.BloomFilter` and
:class:`~repro.signatures.bloom.BankedBloomFilter` that store the bit array
as a numpy ``uint64`` word vector instead of a Python big int.  Per-call
behaviour — counters, saturation, false-positive formulas, probe-key
semantics — is bit-identical to the scalar classes (the differential tier in
``tests/kernels/`` proves it); on top of the scalar interface both classes
add ``insert_batch`` / ``contains_batch``, where the multiplicative hash
family's mix rounds run as whole-array uint64 arithmetic and the bit
scatter/gather is a single ``bitwise_or.at`` / fancy-index per batch.
"""

from __future__ import annotations

import math
from functools import lru_cache
from typing import Iterable, Optional

from ..signatures.hashing import (
    HashFamily,
    MultiplicativeHashFamily,
    MEMO_CAPACITY,
)
from ._np import require_numpy

_MIX_CONSTANT = 0xFF51AFD7ED558CCD  # same finaliser the scalar family uses


def _packed_key_memo(family: HashFamily, words: int):
    """The per-family memo mapping value -> packed uint64 probe mask.

    Mirrors the scalar family's ``or_mask`` memo: one LRU-capped cache per
    family instance, shared by every filter built over that family (filters
    over one family have equal width, so one ``words`` fits all).  The memo
    lives on the family object itself so shared families share warm keys
    exactly like the scalar path does.
    """
    memo = family.__dict__.get("_vector_packed_keys")
    if memo is None:
        np = require_numpy()

        @lru_cache(maxsize=MEMO_CAPACITY)
        def packed(value: int):
            mask = family.or_mask(value)
            return np.frombuffer(
                mask.to_bytes(words * 8, "little"), dtype=np.uint64
            )

        memo = packed
        family.__dict__["_vector_packed_keys"] = memo
    return memo


def _vector_multipliers(family: MultiplicativeHashFamily):
    """The family's odd multipliers as a cached uint64 vector."""
    mult = family.__dict__.get("_vector_multipliers")
    if mult is None:
        np = require_numpy()
        mult = np.array(family._multipliers, dtype=np.uint64)
        family.__dict__["_vector_multipliers"] = mult
    return mult


def batch_indices(family: MultiplicativeHashFamily, values):
    """All ``k`` hash indices for a batch of values: shape ``(n, k)`` uint64.

    The exact multiply / xor-shift / multiply / xor-shift / mod pipeline of
    :meth:`MultiplicativeHashFamily.indices`, lifted to whole-array uint64
    arithmetic (numpy unsigned ops wrap mod 2**64, matching the scalar
    ``& _MASK64`` discipline).
    """
    np = require_numpy()
    v = np.asarray(values, dtype=np.uint64)
    h = v[:, None] * _vector_multipliers(family)[None, :]
    h ^= h >> np.uint64(33)
    h = h * np.uint64(_MIX_CONSTANT)
    h ^= h >> np.uint64(33)
    return h % np.uint64(family.buckets)


def _popcount_words(words) -> int:
    """Total set bits of a uint64 array, exactly."""
    np = require_numpy()
    bitwise_count = getattr(np, "bitwise_count", None)
    if bitwise_count is not None:
        return int(bitwise_count(words).sum())
    return int.from_bytes(words.tobytes(), "little").bit_count()


class VectorBloomFilter:
    """Packed-uint64 twin of :class:`repro.signatures.bloom.BloomFilter`."""

    def __init__(
        self,
        bits: int,
        hash_functions: int,
        family: Optional[HashFamily] = None,
    ) -> None:
        np = require_numpy()
        if bits < 1:
            raise ValueError("filter must have at least one bit")
        self.bits = bits
        self._family = family or MultiplicativeHashFamily(hash_functions, bits)
        if self._family.buckets != bits:
            raise ValueError("hash family buckets must equal filter bits")
        self._words_n = (bits + 63) // 64
        self._words = np.zeros(self._words_n, dtype=np.uint64)
        self._packed = _packed_key_memo(self._family, self._words_n)
        self._inserted = 0

    @property
    def inserted(self) -> int:
        return self._inserted

    @property
    def popcount(self) -> int:
        return _popcount_words(self._words)

    @property
    def saturation(self) -> float:
        return self.popcount / self.bits

    def insert(self, value: int) -> None:
        self._words |= self._packed(value)
        self._inserted += 1

    def insert_all(self, values: Iterable[int]) -> None:
        insert = self.insert
        for value in values:
            insert(value)

    def maybe_contains(self, value: int) -> bool:
        key = self._packed(value)
        return bool(((self._words & key) == key).all())

    # -- key-based probing (see the scalar class) ---------------------------

    @property
    def family(self) -> HashFamily:
        return self._family

    def probe_key(self, value: int):
        """The reusable probe token: the packed uint64 mask for ``value``."""
        return self._packed(value)

    def contains_key(self, key) -> bool:
        return bool(((self._words & key) == key).all())

    def clear(self) -> None:
        self._words[:] = 0
        self._inserted = 0

    def is_empty(self) -> bool:
        return not self._words.any()

    def expected_false_positive_rate(self) -> float:
        if self._inserted == 0:
            return 0.0
        k = self._family.functions
        return (1.0 - math.exp(-k * self._inserted / self.bits)) ** k

    def observed_false_positive_rate(self) -> float:
        if self._inserted == 0:
            return 0.0
        k = self._family.functions
        return self.saturation**k

    # -- batch kernels ------------------------------------------------------

    def insert_batch(self, values) -> None:
        """Insert many values: hashes vectorized, bits set by one scatter."""
        np = require_numpy()
        values = list(values)
        if not values:
            return
        family = self._family
        if type(family) is MultiplicativeHashFamily:
            idx = batch_indices(family, values)
            word = (idx >> np.uint64(6)).ravel()
            bit = np.uint64(1) << (idx & np.uint64(63)).ravel()
            np.bitwise_or.at(self._words, word, bit)
            self._inserted += len(values)
        else:
            self.insert_all(values)

    def contains_batch(self, values):
        """Membership of many values at once; returns a bool array."""
        np = require_numpy()
        values = list(values)
        family = self._family
        if type(family) is MultiplicativeHashFamily:
            idx = batch_indices(family, values)
            present = (self._words[idx >> np.uint64(6)] >> (
                idx & np.uint64(63)
            )) & np.uint64(1)
            return present.all(axis=1)
        return np.array(
            [self.maybe_contains(value) for value in values], dtype=bool
        )


class VectorBankedBloomFilter:
    """Packed twin of :class:`repro.signatures.bloom.BankedBloomFilter`.

    State is a ``(banks, bank_words)`` uint64 matrix; probe keys stay the
    scalar per-bank index tuples so keys interchange between engines.
    """

    def __init__(
        self,
        bits: int,
        hash_functions: int,
        family: Optional[HashFamily] = None,
    ) -> None:
        np = require_numpy()
        if bits < hash_functions:
            raise ValueError("need at least one bit per bank")
        self.bits = bits
        self.banks = hash_functions
        self._bank_bits = bits // hash_functions
        self._family = family or MultiplicativeHashFamily(
            hash_functions, self._bank_bits
        )
        if self._family.buckets != self._bank_bits:
            raise ValueError("hash family buckets must equal bank width")
        self._bank_words = (self._bank_bits + 63) // 64
        self._words = np.zeros((self.banks, self._bank_words), dtype=np.uint64)
        self._inserted = 0

    @property
    def inserted(self) -> int:
        return self._inserted

    @property
    def popcount(self) -> int:
        return _popcount_words(self._words)

    @property
    def saturation(self) -> float:
        return self.popcount / (self._bank_bits * self.banks)

    def insert(self, value: int) -> None:
        words = self._words
        for bank, index in enumerate(self._family.indices_for(value)):
            words[bank, index >> 6] |= 1 << (index & 63)
        self._inserted += 1

    def insert_all(self, values: Iterable[int]) -> None:
        insert = self.insert
        for value in values:
            insert(value)

    def maybe_contains(self, value: int) -> bool:
        words = self._words
        for bank, index in enumerate(self._family.indices_for(value)):
            if not (int(words[bank, index >> 6]) >> (index & 63)) & 1:
                return False
        return True

    # -- key-based probing (see the scalar class) ---------------------------

    @property
    def family(self) -> HashFamily:
        return self._family

    def probe_key(self, value: int):
        """The reusable probe token: one bit index per bank (scalar-shaped)."""
        return self._family.indices_for(value)

    def contains_key(self, key) -> bool:
        words = self._words
        for bank, index in enumerate(key):
            if not (int(words[bank, index >> 6]) >> (index & 63)) & 1:
                return False
        return True

    def clear(self) -> None:
        self._words[:] = 0
        self._inserted = 0

    def is_empty(self) -> bool:
        return not self._words.any()

    def expected_false_positive_rate(self) -> float:
        if self._inserted == 0:
            return 0.0
        k = self.banks
        return (1.0 - math.exp(-k * self._inserted / self.bits)) ** k

    def observed_false_positive_rate(self) -> float:
        if self._inserted == 0:
            return 0.0
        rate = 1.0
        for bank in range(self.banks):
            bank_pop = int.from_bytes(
                self._words[bank].tobytes(), "little"
            ).bit_count()
            rate *= bank_pop / self._bank_bits
        return rate

    # -- batch kernels ------------------------------------------------------

    def insert_batch(self, values) -> None:
        np = require_numpy()
        values = list(values)
        if not values:
            return
        family = self._family
        if type(family) is MultiplicativeHashFamily:
            idx = batch_indices(family, values)  # (n, banks)
            bank_offsets = np.arange(
                self.banks, dtype=np.uint64
            ) * np.uint64(self._bank_words)
            word = (bank_offsets[None, :] + (idx >> np.uint64(6))).ravel()
            bit = np.uint64(1) << (idx & np.uint64(63)).ravel()
            np.bitwise_or.at(self._words.reshape(-1), word, bit)
            self._inserted += len(values)
        else:
            self.insert_all(values)

    def contains_batch(self, values):
        np = require_numpy()
        values = list(values)
        family = self._family
        if type(family) is MultiplicativeHashFamily:
            idx = batch_indices(family, values)
            bank_offsets = np.arange(
                self.banks, dtype=np.uint64
            ) * np.uint64(self._bank_words)
            flat = self._words.reshape(-1)
            word = bank_offsets[None, :] + (idx >> np.uint64(6))
            present = (flat[word] >> (idx & np.uint64(63))) & np.uint64(1)
            return present.all(axis=1)
        return np.array(
            [self.maybe_contains(value) for value in values], dtype=bool
        )
