"""Tests for NVM wear accounting."""

from __future__ import annotations

import pytest

from repro import HTMConfig, MachineConfig, System
from repro.mem.address import MemoryKind
from repro.mem.wear import WearTracker
from repro.params import LINE_SIZE
from repro.sim.engine import SimThread


def make_system():
    return System(MachineConfig.scaled(1 / 64, cores=2), HTMConfig())


def commit_lines(system, base, nlines, value=1):
    thread = SimThread(0, "t", lambda t: iter(()))
    tx = system.htm.begin(thread, 0, 1, 1)
    for i in range(nlines):
        system.htm.tx_write(tx, base + i * LINE_SIZE, value)
    system.htm.commit(tx)


class TestWearTracker:
    def test_counts_inplace_writes_after_drain(self):
        system = make_system()
        tracker = WearTracker().attach(system.controller)
        base = system.heap.alloc(4 * LINE_SIZE, MemoryKind.NVM)
        commit_lines(system, base, 4)
        system.controller.dram_cache.drain_all()
        assert tracker.total_line_writes == 4
        assert tracker.distinct_lines == 4

    def test_log_bytes_accounted(self):
        system = make_system()
        tracker = WearTracker().attach(system.controller)
        base = system.heap.alloc(4 * LINE_SIZE, MemoryKind.NVM)
        commit_lines(system, base, 4)
        assert tracker.log_bytes >= 4 * 80  # four redo records

    def test_write_amplification(self):
        system = make_system()
        tracker = WearTracker().attach(system.controller)
        base = system.heap.alloc(2 * LINE_SIZE, MemoryKind.NVM)
        commit_lines(system, base, 2)
        system.controller.dram_cache.drain_all()
        amplification = tracker.write_amplification()
        assert amplification > 1.0  # line-sized records per 8-byte payload

    def test_hot_line_detection(self):
        system = make_system()
        tracker = WearTracker().attach(system.controller)
        base = system.heap.alloc(2 * LINE_SIZE, MemoryKind.NVM)
        for _ in range(5):
            commit_lines(system, base, 1, value=7)
            system.controller.dram_cache.drain_all()
        hottest = tracker.hottest_lines(1)
        assert hottest[0][0] == base
        assert hottest[0][1] == 5
        assert tracker.max_line_writes == 5

    def test_percentiles(self):
        tracker = WearTracker()
        tracker.line_writes.update({0: 1, 64: 1, 128: 10})
        assert tracker.percentile_line_writes(0.5) == 1
        assert tracker.percentile_line_writes(1.0) == 10
        with pytest.raises(ValueError):
            tracker.percentile_line_writes(0.0)

    def test_empty_tracker(self):
        tracker = WearTracker()
        assert tracker.total_line_writes == 0
        assert tracker.max_line_writes == 0
        assert tracker.write_amplification() == 0.0
        assert tracker.percentile_line_writes(0.5) == 0

    def test_detach_restores(self):
        system = make_system()
        tracker = WearTracker().attach(system.controller)
        tracker.detach()
        base = system.heap.alloc(LINE_SIZE, MemoryKind.NVM)
        system.controller.nvm.store(base, 1)
        assert tracker.total_line_writes == 0

    def test_double_attach_rejected(self):
        system = make_system()
        tracker = WearTracker().attach(system.controller)
        with pytest.raises(RuntimeError):
            tracker.attach(system.controller)

    def test_recovery_writes_also_counted(self):
        system = make_system()
        tracker = WearTracker().attach(system.controller)
        base = system.heap.alloc(2 * LINE_SIZE, MemoryKind.NVM)
        commit_lines(system, base, 2)
        system.crash()
        system.recover()
        assert tracker.total_line_writes >= 2
