"""Differential tier: vectorized set-associative arrays vs the scalar LRU.

The harness replays probe/fill/evict/remove streams through both engines,
checking counters, victim choice, and ``resident_lines`` LRU order after
every op.  Geometries deliberately include non-power-of-two set counts, the
``_set_mask`` bug class pinned by the satellite regression test.
"""

import pytest

np = pytest.importorskip("numpy")

from kernel_harness import (
    DifferentialHarness,
    GuardedArray,
    setassoc_ops,
    setassoc_state,
)

from repro.cache.setassoc import SetAssociativeArray
from repro.kernels.setassoc import VectorSetAssociativeArray
from repro.params import LINE_SIZE, CacheGeometry

# (num_sets, ways): pow2 and non-pow2 set counts, direct-mapped included.
GEOMETRIES = ((8, 2), (16, 4), (3, 2), (5, 1), (6, 4))
SEEDS = (2020, 7)


def pair(num_sets, ways):
    geometry = CacheGeometry(size_bytes=num_sets * ways * LINE_SIZE, ways=ways)
    assert geometry.num_sets == num_sets
    return (
        SetAssociativeArray(geometry, name="ref"),
        VectorSetAssociativeArray(geometry, name="cand"),
    )


@pytest.mark.parametrize("num_sets,ways", GEOMETRIES)
@pytest.mark.parametrize("seed", SEEDS)
def test_recorded_sequences(num_sets, ways, seed):
    scalar, vector = pair(num_sets, ways)
    harness = DifferentialHarness(
        GuardedArray(scalar), GuardedArray(vector), state_fn=setassoc_state
    )
    ops = setassoc_ops(seed, lines=num_sets * ways * 3)
    assert harness.replay(ops) == len(ops)


def test_eviction_victim_is_lru():
    scalar, vector = pair(1, 4)
    addrs = [i * LINE_SIZE for i in range(4)]
    for array in (scalar, vector):
        for addr in addrs:
            array.fill(addr)
        # Touch line 0 so line 1 becomes LRU.
        assert array.lookup(addrs[0]) is not None
        _, victims = array.fill(4 * LINE_SIZE)
        assert [meta.line_addr for meta in victims] == [addrs[1]]
    assert setassoc_state(scalar) == setassoc_state(vector)


def test_touch_order_matches_after_interleaved_hits():
    scalar, vector = pair(2, 4)
    stream = [0, 2, 4, 6, 0, 4, 8, 2, 10, 0, 12, 6]
    for array in (scalar, vector):
        for line in stream:
            addr = line * LINE_SIZE
            if array.lookup(addr) is None:
                array.fill(addr)
    assert scalar.resident_lines() == vector.resident_lines()
    assert (scalar.hits, scalar.misses) == (vector.hits, vector.misses)


def test_meta_mutations_visible_through_peek():
    scalar, vector = pair(4, 2)
    for array in (scalar, vector):
        meta, _ = array.fill(7 * LINE_SIZE)
        meta.dirty = True
        meta.mesi = "M"
        meta.tx_readers = {3}
    assert setassoc_state(scalar) == setassoc_state(vector)


def test_occupancy_by_predicate_parity():
    scalar, vector = pair(4, 4)
    for array in (scalar, vector):
        for line in range(10):
            meta, _ = array.fill(line * LINE_SIZE)
            meta.dirty = line % 3 == 0
    predicate = lambda meta: meta.dirty
    assert scalar.occupancy_by_predicate(predicate) == vector.occupancy_by_predicate(
        predicate
    )


def test_clear_resets_counters_and_residency():
    scalar, vector = pair(3, 2)
    for array in (scalar, vector):
        for line in range(9):
            if array.peek(line * LINE_SIZE) is None:
                array.fill(line * LINE_SIZE)
        array.clear()
    assert setassoc_state(scalar) == setassoc_state(vector)
    assert vector.resident_count() == 0


def test_probe_batch_matches_peek_loop():
    _, vector = pair(8, 2)
    for line in range(0, 24, 2):
        vector.fill(line * LINE_SIZE)
    addrs = [line * LINE_SIZE for line in range(30)]
    hits = vector.probe_batch(addrs)
    assert list(hits) == [vector.peek(addr) is not None for addr in addrs]
