"""Tests for the spool's on-disk formats and their durability discipline."""

from __future__ import annotations

import json

import pytest

from repro.serve.jobstore import (
    CampaignMeta,
    CampaignStore,
    JobRecord,
    ServeError,
    decode_record,
    encode_record,
    read_json,
    write_json_atomic,
)

from serve_grids import tiny_grid, tiny_spec


class TestAtomicJson:
    def test_round_trip(self, tmp_path):
        path = tmp_path / "a" / "b.json"
        write_json_atomic(path, {"x": 1, "nested": [1, 2]})
        assert read_json(path) == {"x": 1, "nested": [1, 2]}

    def test_missing_is_none(self, tmp_path):
        assert read_json(tmp_path / "nope.json") is None

    def test_corrupt_is_none(self, tmp_path):
        path = tmp_path / "bad.json"
        path.write_text("{truncated", encoding="utf-8")
        assert read_json(path) is None

    def test_no_tmp_left_behind(self, tmp_path):
        write_json_atomic(tmp_path / "c.json", {})
        leftovers = [p for p in tmp_path.iterdir() if p.suffix == ".tmp"]
        assert leftovers == []


class TestJobRecord:
    def test_round_trip(self):
        spec = tiny_spec(seed=7)
        record = JobRecord(
            index=3, fingerprint="f" * 64, label=None, spec=spec,
            key=("hashmap", "Ideal"),
        )
        back = decode_record(encode_record(record))
        assert back.index == 3
        assert back.fingerprint == record.fingerprint
        assert back.label is None
        assert back.key == ("hashmap", "Ideal")
        assert back.spec == spec

    def test_display_label_resolves_like_the_runner(self):
        spec = tiny_spec()
        assert JobRecord(0, "f" * 64, None, spec).display_label == \
            spec.htm.label
        assert JobRecord(0, "f" * 64, "custom", spec).display_label == \
            "custom"

    def test_point_preserves_original_label(self):
        record = JobRecord(0, "f" * 64, None, tiny_spec(), key="k")
        point = record.point()
        # The *original* (None) label must travel, not the resolved one:
        # fingerprints are computed from it.
        assert point.label is None
        assert point.key == "k"

    def test_encoded_record_greps(self):
        payload = encode_record(JobRecord(0, "f" * 64, None, tiny_spec()))
        # The spec name rides along in clear text so spool files are
        # debuggable with grep, even though the spec itself is pickled.
        assert payload["spec_name"] == "serve-test"


def _records(n=3):
    return [
        JobRecord(index=i, fingerprint=f"{i:064x}", label=None,
                  spec=tiny_spec(seed=i))
        for i in range(n)
    ]


def _meta(campaign_id="camp-000000000000", total=3):
    return CampaignMeta(
        campaign_id=campaign_id, title="camp", total_points=total,
        created=1.0,
    )


class TestCampaignStore:
    def test_publish_then_load(self, tmp_path):
        store = CampaignStore(tmp_path)
        store.publish(_meta(), _records())
        assert store.exists("camp-000000000000")
        records = store.load_records("camp-000000000000")
        assert [r.index for r in records] == [0, 1, 2]
        meta = store.load_meta("camp-000000000000")
        assert meta.total_points == 3

    def test_meta_is_the_publication_point(self, tmp_path):
        store = CampaignStore(tmp_path)
        directory = store.campaign_dir("half")
        directory.mkdir(parents=True)
        # points.jsonl exists but campaign.json does not: the campaign is
        # not yet published and must be invisible.
        (directory / "points.jsonl").write_text("{}\n", encoding="utf-8")
        assert "half" not in store.list_ids()
        assert not store.exists("half")

    def test_listing_is_submission_ordered(self, tmp_path):
        store = CampaignStore(tmp_path)
        store.publish(_meta("bbb-000000000000"), _records())
        newer = CampaignMeta(
            campaign_id="aaa-000000000000", title="aaa", total_points=3,
            created=2.0,
        )
        store.publish(newer, _records())
        assert store.list_ids() == ["bbb-000000000000", "aaa-000000000000"]

    def test_missing_campaign_raises(self, tmp_path):
        store = CampaignStore(tmp_path)
        with pytest.raises(ServeError):
            store.load_meta("ghost")
        with pytest.raises(ServeError):
            store.load_records("ghost")

    def test_corrupt_points_raise(self, tmp_path):
        store = CampaignStore(tmp_path)
        store.publish(_meta(), _records())
        path = store.points_path("camp-000000000000")
        path.write_text("not json\n", encoding="utf-8")
        with pytest.raises(ServeError):
            store.load_records("camp-000000000000")

    def test_torn_tmp_sibling_is_invisible(self, tmp_path):
        store = CampaignStore(tmp_path)
        store.publish(_meta(), _records())
        directory = store.campaign_dir("camp-000000000000")
        (directory / "points.jsonl.999.0.tmp").write_text(
            "garbage", encoding="utf-8"
        )
        assert len(store.load_records("camp-000000000000")) == 3

    def test_points_lines_are_one_json_object_each(self, tmp_path):
        store = CampaignStore(tmp_path)
        store.publish(_meta(), _records())
        lines = store.points_path("camp-000000000000").read_text(
            encoding="utf-8"
        ).splitlines()
        assert len(lines) == 3
        for line in lines:
            json.loads(line)


class TestRealGridRoundTrip:
    def test_grid_points_survive_encoding(self):
        for i, point in enumerate(tiny_grid(3)):
            record = JobRecord(
                index=i, fingerprint="a" * 64, label=point.label,
                spec=point.spec, key=point.key,
            )
            back = decode_record(encode_record(record))
            assert back.spec == point.spec
            assert back.key == point.key
