"""Tests for the selectable conflict-resolution policies."""

from __future__ import annotations

import pytest
from hypothesis import given, strategies as st

from repro import HTMConfig, MachineConfig, System, TransactionAborted
from repro.htm.conflict import (
    ResolutionPolicy,
    resolve_conflict_oldest_wins,
)
from repro.htm.tss import TxStatus
from repro.mem.address import MemoryKind
from repro.sim.engine import SimThread


def make_thread(tid=0):
    return SimThread(tid, f"t{tid}", lambda t: iter(()))


class TestOldestWinsFunction:
    def test_older_requester_wins(self):
        resolution = resolve_conflict_oldest_wins(1, [5, 9])
        assert not resolution.requester_aborts
        assert resolution.victims_to_abort == frozenset({5, 9})

    def test_older_victim_wins(self):
        resolution = resolve_conflict_oldest_wins(7, [3, 9])
        assert resolution.requester_aborts

    @given(
        requester=st.integers(min_value=1, max_value=100),
        victims=st.lists(st.integers(min_value=1, max_value=100),
                         min_size=1, max_size=6, unique=True),
    )
    def test_exactly_one_side_survives(self, requester, victims):
        victims = [v for v in victims if v != requester] or [requester + 1]
        resolution = resolve_conflict_oldest_wins(requester, victims)
        if resolution.requester_aborts:
            assert resolution.victims_to_abort == frozenset()
            assert min(victims) < requester
        else:
            assert resolution.victims_to_abort == frozenset(victims)
            assert requester < min(victims)


class TestOldestWinsInSystem:
    def make_system(self):
        return System(
            MachineConfig.scaled(1 / 64, cores=4),
            HTMConfig(design="uhtm", resolution=ResolutionPolicy.OLDEST_WINS),
        )

    def test_younger_requester_aborts_even_onchip(self):
        """Contrast with Table II, where the on-chip requester wins."""
        system = self.make_system()
        addr = system.heap.alloc_words(1, MemoryKind.DRAM)
        t1, t2 = make_thread(0), make_thread(1)
        tx1 = system.htm.begin(t1, 0, 1, 1)   # older
        tx2 = system.htm.begin(t2, 1, 1, 1)   # younger
        system.htm.tx_write(tx1, addr, 1)
        with pytest.raises(TransactionAborted):
            system.htm.tx_write(tx2, addr, 2)
        assert system.htm.tss.is_active(tx1.tx_id)
        system.htm.commit(tx1)

    def test_older_requester_kills_younger_victim(self):
        system = self.make_system()
        addr = system.heap.alloc_words(1, MemoryKind.DRAM)
        t1, t2 = make_thread(0), make_thread(1)
        tx1 = system.htm.begin(t1, 0, 1, 1)   # older
        tx2 = system.htm.begin(t2, 1, 1, 1)   # younger
        system.htm.tx_write(tx2, addr, 2)
        system.htm.tx_write(tx1, addr, 1)     # older requester wins
        assert system.htm.tss.entry(tx2.tx_id).status is TxStatus.ABORTED
        system.htm.commit(tx1)
        assert system.controller.dram.load(addr) == 1

    def test_progress_under_heavy_contention(self):
        """Oldest-wins guarantees someone always advances; totals hold."""
        system = self.make_system()
        proc = system.process("p")
        addr = system.heap.alloc_words(1, MemoryKind.DRAM)

        def worker(api):
            for _ in range(20):
                def work(tx):
                    value = tx.read_word(addr)
                    yield
                    tx.write_word(addr, value + 1)

                yield from api.run_transaction(work)

        for _ in range(4):
            proc.thread(worker)
        system.run()
        assert system.controller.dram.load(addr) == 80

    def test_config_validation(self):
        with pytest.raises(Exception):
            HTMConfig(resolution="youngest_wins")
