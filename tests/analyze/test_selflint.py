"""The tree at HEAD must satisfy its own static analysis.

This is the acceptance gate: ``python -m repro lint src/repro`` exits 0, and
FSM004 has positively evaluated the shipped coherence table over the full
MesiState x CoherenceRequest product (totality, reachability from INVALID,
SWMR preservation) plus the directory's conflict dispatch.
"""

from __future__ import annotations

from pathlib import Path

import repro
from repro.analyze import run_analysis

REPRO_ROOT = Path(repro.__file__).parent


class TestSelfLint:
    def test_zero_findings_on_the_shipped_tree(self):
        report = run_analysis([REPRO_ROOT])
        assert report.findings == [], "\n".join(
            f"{f.location()}: {f.rule} {f.message}" for f in report.findings
        )
        assert report.files_checked > 50

    def test_fsm004_positively_evaluated_the_real_protocol(self):
        """Zero FSM004 findings must mean 'checked and complete', not
        'never evaluated' — guard against the detector missing the files."""
        from repro.analyze.core import Project
        from repro.analyze.fsm import FsmCompletenessChecker, _defined_names

        coherence = REPRO_ROOT / "cache" / "coherence.py"
        directory = REPRO_ROOT / "cache" / "directory.py"
        project, errors = Project.load([coherence, directory])
        assert errors == []
        by_name = {source.path.name: source for source in project.files}
        names = _defined_names(by_name["coherence.py"].tree)
        assert {
            "MesiState",
            "CoherenceRequest",
            "next_state_for_requester",
            "next_state_for_holder",
        } <= set(names)
        assert "Directory" in _defined_names(by_name["directory.py"].tree)
        checker = FsmCompletenessChecker()
        for source in project.files:
            assert list(checker.check(source, project)) == []
