"""Exhaustive sweep: crash after *every* NVM log append, verify every one.

This is the paper's durability claim (Section IV-C) made mechanical: the
window between a transaction's first redo record and its durable commit
mark is exactly where a torn commit could appear, so every append in that
window gets its own crash + recovery + oracle verification.
"""

from __future__ import annotations

import pytest

from repro.faults import (
    CampaignConfig,
    after_nvm_append,
    during_recovery,
    execute_plan,
    probe_events,
)

#: Small but real: 2 threads × 2 txs over persistent stores.
CONFIGS = {
    name: CampaignConfig(
        workload=name, crashes=1, seed=7, threads=2, txs_per_thread=2
    )
    for name in ("hashmap", "dual_kv")
}


@pytest.mark.parametrize("name", sorted(CONFIGS))
class TestCrashAtEveryAppend:
    def test_every_append_point_recovers_consistently(self, name):
        config = CONFIGS[name]
        counts, probe = probe_events(config)
        assert probe.ok, probe.verdict.describe()
        assert counts.nvm_log_appends > 0, "workload never touched the NVM log"
        for ordinal in range(1, counts.nvm_log_appends + 1):
            outcome = execute_plan(config, after_nvm_append(ordinal))
            assert outcome.ok, (
                f"{name}: crash after append #{ordinal} broke recovery: "
                f"{outcome.verdict.describe()}"
            )
            assert outcome.fired, f"append #{ordinal} never fired"

    def test_every_append_point_survives_a_recovery_crash_too(self, name):
        """Stack a crash on the first replayed line of recovery itself."""
        config = CONFIGS[name]
        counts, _probe = probe_events(config)
        # Sample the window ends and middle rather than the full cross
        # product — the exhaustive run-phase sweep above already covers
        # every append.
        ordinals = sorted({1, counts.nvm_log_appends // 2, counts.nvm_log_appends})
        for ordinal in ordinals:
            if ordinal < 1:
                continue
            plan = during_recovery(1, after=after_nvm_append(ordinal))
            outcome = execute_plan(config, plan)
            assert outcome.ok, (
                f"{name}: {plan.describe()} broke recovery: "
                f"{outcome.verdict.describe()}"
            )
