"""A transactional skip list (PMDK ``skiplist_map`` equivalent).

Probabilistic towers with deterministic per-structure level selection.  The
long horizontal traversals at low levels are why the paper observes many
signature false positives on SkipList ("UHTM ends up with many
false-positives while SkipList traverse the list").
"""

from __future__ import annotations

from typing import Callable, Generator, List, Optional, TYPE_CHECKING

from ..mem.address import MemoryKind
from ..runtime.txapi import MemoryContext
from ..sim.rng import RngStreams
from .base import PayloadPool, Workload, WorkloadParams, write_payload

if TYPE_CHECKING:  # pragma: no cover
    from ..runtime.heap import TxHeap

_MAX_LEVEL = 8

# Node layout (words): key, value, level, next[0.._MAX_LEVEL).
_N_KEY = 0
_N_VALUE = 1
_N_LEVEL = 2
_N_NEXT = 3
_NODE_WORDS = _N_NEXT + _MAX_LEVEL

#: Sentinel key of the head tower (smaller than every real key).
_HEAD_KEY = -(2**62)


class TxSkipList:
    """A skip list over the transactional heap."""

    def __init__(
        self, heap: "TxHeap", base: int, kind: MemoryKind, seed: int = 1
    ) -> None:
        self.heap = heap
        self.base = base  # address of the head tower
        self.kind = kind
        self._levels = RngStreams(seed).stream("skiplist.levels")

    @classmethod
    def create(
        cls, heap: "TxHeap", ctx: MemoryContext, kind: MemoryKind, seed: int = 1
    ) -> "TxSkipList":
        head = heap.alloc_words(_NODE_WORDS, kind)
        ctx.write_word(heap.field(head, _N_KEY), _HEAD_KEY)
        ctx.write_word(heap.field(head, _N_VALUE), 0)
        ctx.write_word(heap.field(head, _N_LEVEL), _MAX_LEVEL)
        for level in range(_MAX_LEVEL):
            ctx.write_word(heap.field(head, _N_NEXT + level), 0)
        return cls(heap, head, kind, seed)

    def _random_level(self) -> int:
        level = 1
        while level < _MAX_LEVEL and self._levels.random() < 0.5:
            level += 1
        return level

    # -- operations ---------------------------------------------------------------

    def get(self, ctx: MemoryContext, key: int) -> Optional[int]:
        node = self.base
        for level in range(_MAX_LEVEL - 1, -1, -1):
            while True:
                nxt = ctx.read_word(self.heap.field(node, _N_NEXT + level))
                if nxt == 0 or ctx.read_word(self.heap.field(nxt, _N_KEY)) > key:
                    break
                node = nxt
        if node != self.base and ctx.read_word(
            self.heap.field(node, _N_KEY)
        ) == key:
            return ctx.read_word(self.heap.field(node, _N_VALUE))
        return None

    def insert(self, ctx: MemoryContext, key: int, value: int) -> bool:
        update = [self.base] * _MAX_LEVEL
        node = self.base
        for level in range(_MAX_LEVEL - 1, -1, -1):
            while True:
                nxt = ctx.read_word(self.heap.field(node, _N_NEXT + level))
                if nxt == 0 or ctx.read_word(self.heap.field(nxt, _N_KEY)) >= key:
                    break
                node = nxt
            update[level] = node
        candidate = ctx.read_word(self.heap.field(node, _N_NEXT))
        if candidate != 0 and ctx.read_word(
            self.heap.field(candidate, _N_KEY)
        ) == key:
            ctx.write_word(self.heap.field(candidate, _N_VALUE), value)
            return False
        level = self._random_level()
        fresh = self.heap.alloc_words(_NODE_WORDS, self.kind)
        ctx.write_word(self.heap.field(fresh, _N_KEY), key)
        ctx.write_word(self.heap.field(fresh, _N_VALUE), value)
        ctx.write_word(self.heap.field(fresh, _N_LEVEL), level)
        for l in range(level):
            prev = update[l]
            ctx.write_word(
                self.heap.field(fresh, _N_NEXT + l),
                ctx.read_word(self.heap.field(prev, _N_NEXT + l)),
            )
            ctx.write_word(self.heap.field(prev, _N_NEXT + l), fresh)
        for l in range(level, _MAX_LEVEL):
            ctx.write_word(self.heap.field(fresh, _N_NEXT + l), 0)
        return True

    def delete(self, ctx: MemoryContext, key: int) -> bool:
        """Unlink ``key`` from every level it appears on."""
        update = [self.base] * _MAX_LEVEL
        node = self.base
        for level in range(_MAX_LEVEL - 1, -1, -1):
            while True:
                nxt = ctx.read_word(self.heap.field(node, _N_NEXT + level))
                if nxt == 0 or ctx.read_word(self.heap.field(nxt, _N_KEY)) >= key:
                    break
                node = nxt
            update[level] = node
        victim = ctx.read_word(self.heap.field(node, _N_NEXT))
        if victim == 0 or ctx.read_word(self.heap.field(victim, _N_KEY)) != key:
            return False
        level = ctx.read_word(self.heap.field(victim, _N_LEVEL))
        for l in range(level):
            prev = update[l]
            if ctx.read_word(self.heap.field(prev, _N_NEXT + l)) == victim:
                ctx.write_word(
                    self.heap.field(prev, _N_NEXT + l),
                    ctx.read_word(self.heap.field(victim, _N_NEXT + l)),
                )
        self.heap.free_words(victim, _NODE_WORDS, self.kind)
        return True

    # -- verification ----------------------------------------------------------------

    def keys(self, ctx: MemoryContext) -> List[int]:
        out: List[int] = []
        node = ctx.read_word(self.heap.field(self.base, _N_NEXT))
        while node != 0:
            out.append(ctx.read_word(self.heap.field(node, _N_KEY)))
            node = ctx.read_word(self.heap.field(node, _N_NEXT))
        return out

    def check_integrity(self, ctx: MemoryContext) -> bool:
        """Level-0 order is strict; every level is a subsequence of level 0."""
        keys = self.keys(ctx)
        if keys != sorted(keys) or len(keys) != len(set(keys)):
            return False
        base_set = set(keys)
        for level in range(1, _MAX_LEVEL):
            node = ctx.read_word(self.heap.field(self.base, _N_NEXT + level))
            previous = _HEAD_KEY
            while node != 0:
                key = ctx.read_word(self.heap.field(node, _N_KEY))
                if key <= previous or key not in base_set:
                    return False
                if ctx.read_word(self.heap.field(node, _N_LEVEL)) <= level:
                    return False
                previous = key
                node = ctx.read_word(self.heap.field(node, _N_NEXT + level))
        return True


class SkipListWorkload(Workload):
    """Insert/update entries in a skip list (Table IV, SkipList [25])."""

    name = "skiplist"

    def __init__(self, system, process, params: WorkloadParams) -> None:
        super().__init__(system, process, params)
        self.list: Optional[TxSkipList] = None
        self.pool: Optional[PayloadPool] = None

    def setup(self) -> None:
        self.list = TxSkipList.create(
            self.system.heap, self.raw, self.params.kind,
            seed=self.system.rng.seed + self.process.pid,
        )
        self.pool = PayloadPool(
            self.system, self.params.keys, self.value_bytes, self.params.kind
        )
        for key in range(self.params.initial_fill):
            self.list.insert(self.raw, key, self.pool.block_for(key))

    def thread_bodies(self) -> List[Callable]:
        return [self._make_body(i) for i in range(self.params.threads)]

    def _make_body(self, thread_index: int) -> Callable:
        def body(api) -> Generator[None, None, None]:
            keys = self.key_stream(thread_index)
            for tx_index in range(self.params.txs_per_thread):
                batch = [next(keys) for _ in range(self.params.ops_per_tx)]

                def work(tx, batch=batch, tag=tx_index + 1):
                    for key in batch:
                        payload = self.pool.block_for(key)
                        yield from write_payload(
                            tx, payload, self.value_bytes, tag
                        )
                        self.list.insert(tx, key, payload)
                        yield

                yield from api.run_transaction(work, ops=len(batch))

        return body

    def verify(self) -> bool:
        return self.list.check_integrity(self.raw)
