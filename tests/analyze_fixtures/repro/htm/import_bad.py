"""BAD fixture: htm/ importing upward from faults/ (DAG violation)."""

from repro.faults.plan import FaultPlan


def build():
    return FaultPlan(())
