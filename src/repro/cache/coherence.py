"""MESI coherence states and the transition table.

The hierarchy tracks a MESI state per resident L1 line.  The protocol here
is the standard invalidation-based one the paper's directory extends:

* a core's **load** needs the line in M, E, or S — a GetS request;
* a core's **store** needs M — a GetM request that invalidates other copies;
* the first (exclusive) reader installs in E and may silently upgrade to M;
* later readers downgrade everyone to S.

The single-writer/multiple-reader (SWMR) invariant — at any time a line has
either exactly one M/E copy or any number of S copies — is checked by the
property tests via :func:`check_swmr`.
"""

from __future__ import annotations

import enum
from typing import Iterable


class MesiState(enum.IntEnum):
    INVALID = 0
    SHARED = 1
    EXCLUSIVE = 2
    MODIFIED = 3


class CoherenceRequest(enum.Enum):
    GET_S = "GetS"  # read permission
    GET_M = "GetM"  # write permission


def next_state_for_requester(
    request: CoherenceRequest, other_copies: bool
) -> MesiState:
    """State the requesting core's copy ends in."""
    if request is CoherenceRequest.GET_M:
        return MesiState.MODIFIED
    return MesiState.SHARED if other_copies else MesiState.EXCLUSIVE


def next_state_for_holder(
    request: CoherenceRequest, current: MesiState
) -> MesiState:
    """State an existing holder's copy ends in when another core requests."""
    if request is CoherenceRequest.GET_M:
        return MesiState.INVALID
    if current in (MesiState.MODIFIED, MesiState.EXCLUSIVE):
        return MesiState.SHARED  # downgrade on a remote read
    return current


def check_swmr(states: Iterable[MesiState]) -> bool:
    """The SWMR invariant over one line's per-core states."""
    writers = 0
    readers = 0
    for state in states:
        if state in (MesiState.MODIFIED, MesiState.EXCLUSIVE):
            writers += 1
        elif state is MesiState.SHARED:
            readers += 1
    if writers > 1:
        return False
    if writers == 1 and readers > 0:
        return False
    return True
