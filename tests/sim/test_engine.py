"""Tests for the discrete-event engine: ordering, blocking, determinism."""

from __future__ import annotations

import pytest

from repro.errors import SimulationError
from repro.sim.engine import Engine, SimThread, ThreadState, run_threads


def make_thread(thread_id, body_factory, name=None):
    return SimThread(thread_id, name or f"t{thread_id}", body_factory)


class TestBasicExecution:
    def test_single_thread_runs_to_completion(self):
        log = []

        def body(thread):
            for i in range(3):
                log.append(i)
                thread.advance(10)
                yield

        engine = Engine()
        engine.add_thread(make_thread(0, body))
        engine.run()
        assert log == [0, 1, 2]
        assert engine.all_done()

    def test_final_time_is_max_clock(self):
        def body(thread):
            thread.advance(100)
            yield
            thread.advance(50)
            yield

        engine = Engine()
        engine.add_thread(make_thread(0, body))
        assert engine.run() == 150

    def test_empty_engine(self):
        engine = Engine()
        assert engine.run() == 0.0
        assert engine.all_done()


class TestMinClockOrdering:
    def test_smallest_clock_runs_first(self):
        order = []

        def slow(thread):
            for i in range(3):
                order.append(("slow", i))
                thread.advance(100)
                yield

        def fast(thread):
            for i in range(3):
                order.append(("fast", i))
                thread.advance(10)
                yield

        engine = Engine()
        engine.add_thread(make_thread(0, slow, "slow"))
        engine.add_thread(make_thread(1, fast, "fast"))
        engine.run()
        # fast at t=0,10,20 all precede slow's second step at t=100
        assert order.index(("fast", 2)) < order.index(("slow", 1))

    def test_deterministic_interleaving(self):
        def make_log_run():
            order = []

            def body_a(thread):
                for i in range(5):
                    order.append("a")
                    thread.advance(7)
                    yield

            def body_b(thread):
                for i in range(5):
                    order.append("b")
                    thread.advance(11)
                    yield

            engine = Engine()
            engine.add_thread(make_thread(0, body_a))
            engine.add_thread(make_thread(1, body_b))
            engine.run()
            return order

        assert make_log_run() == make_log_run()

    def test_fifo_tiebreak_at_equal_clock(self):
        order = []

        def make_body(tag):
            def body(thread):
                order.append(tag)
                thread.advance(10)
                yield

            return body

        engine = Engine()
        for index, tag in enumerate("abc"):
            engine.add_thread(make_thread(index, make_body(tag)))
        engine.run()
        assert order == ["a", "b", "c"]


class TestExternalClockAdvance:
    def test_externally_advanced_thread_is_resorted_not_lost(self):
        """A queued thread whose clock is pushed forward must still run."""
        order = []
        threads = {}

        def victim(thread):
            order.append("victim-1")
            thread.advance(10)
            yield
            order.append("victim-2")

        def aggressor(thread):
            thread.advance(1)
            # Charge the victim 1000 ns while it sits in the queue, the way
            # an abort charges rollback latency to the victim's clock.
            threads["victim"].advance(1000)
            order.append("aggressor")
            yield

        engine = Engine()
        victim_thread = make_thread(0, victim, "victim")
        threads["victim"] = victim_thread
        engine.add_thread(victim_thread)
        engine.add_thread(make_thread(1, aggressor, "aggressor"))
        engine.run()
        assert "victim-2" in order
        assert victim_thread.clock_ns >= 1010

    def test_negative_advance_rejected(self):
        thread = make_thread(0, lambda t: iter(()))
        with pytest.raises(SimulationError):
            thread.advance(-1)

    def test_advance_to_only_moves_forward(self):
        thread = make_thread(0, lambda t: iter(()))
        thread.advance(100)
        thread.advance_to(50)
        assert thread.clock_ns == 100
        thread.advance_to(150)
        assert thread.clock_ns == 150


class TestBlocking:
    def test_block_and_wake(self):
        order = []
        handles = {}

        def blocker(thread):
            order.append("block-start")
            handles["engine"].block(thread)
            yield
            order.append("block-resumed")

        def waker(thread):
            thread.advance(500)
            order.append("waking")
            handles["engine"].wake(handles["blocked"], at_ns=500)
            yield

        engine = Engine()
        handles["engine"] = engine
        blocked_thread = make_thread(0, blocker)
        handles["blocked"] = blocked_thread
        engine.add_thread(blocked_thread)
        engine.add_thread(make_thread(1, waker))
        engine.run()
        assert order == ["block-start", "waking", "block-resumed"]
        assert blocked_thread.clock_ns >= 500

    def test_deadlock_detection(self):
        def body(thread):
            engine.block(thread)
            yield

        engine = Engine()
        engine.add_thread(make_thread(0, body))
        with pytest.raises(SimulationError):
            engine.run()

    def test_wake_of_done_thread_is_noop(self):
        def body(thread):
            yield

        engine = Engine()
        thread = make_thread(0, body)
        engine.add_thread(thread)
        engine.run()
        assert thread.state is ThreadState.DONE
        engine.wake(thread)  # must not raise or revive
        assert thread.state is ThreadState.DONE


class TestRunLimits:
    def test_until_ns_horizon(self):
        def body(thread):
            while True:
                thread.advance(10)
                yield

        engine = Engine()
        engine.add_thread(make_thread(0, body))
        engine.run(until_ns=100)
        assert engine.now() <= 120  # one step of slack

    def test_max_steps(self):
        def body(thread):
            while True:
                thread.advance(1)
                yield

        engine = Engine()
        engine.add_thread(make_thread(0, body))
        engine.run(max_steps=5)
        assert engine.steps_executed == 5

    def test_run_can_resume_after_horizon(self):
        ticks = []

        def body(thread):
            for i in range(10):
                ticks.append(i)
                thread.advance(10)
                yield

        engine = Engine()
        engine.add_thread(make_thread(0, body))
        engine.run(until_ns=30)
        first = len(ticks)
        engine.run()
        assert first < 10
        assert len(ticks) == 10


class TestRunThreadsHelper:
    def test_run_threads(self):
        seen = []

        def make(tag):
            def body(thread):
                seen.append(tag)
                yield

            return body

        engine = run_threads([make("x"), make("y")])
        assert engine.all_done()
        assert sorted(seen) == ["x", "y"]
