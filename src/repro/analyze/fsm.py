"""FSM004 — coherence-FSM completeness.

The staged conflict detection of the paper rides on a MESI protocol whose
transition functions live in ``cache/coherence.py`` and whose transactional
dispatch lives in ``cache/directory.py``.  Python has no exhaustiveness
checking, so adding a state (say MOESI's OWNED) or a request type compiles
fine and then misbehaves mid-simulation.  This checker closes that hole by
*statically evaluating* the transition table over the full product space —
no simulation, just the pure functions:

* every ``(CoherenceRequest, other_copies)`` pair must map to a valid
  requester state, and every ``(CoherenceRequest, MesiState)`` pair to a
  valid holder state — a raise or a non-member return is an unhandled pair;
* every state must be reachable from INVALID through the induced graph;
* every transition must preserve the SWMR invariant (checked over all
  3-core state vectors when the module exports ``check_swmr``);
* the directory's ``check_access`` decision table is compared against the
  paper's three conflict cases (waw / raw / war, §IV-D) over all
  owner × sharer × requester × access-kind combinations.

The checker executes the module body in an isolated namespace, so the
coherence and directory modules must stay import-light (standard library
only) — a relative import there turns into an FSM004 "could not evaluate"
finding, which is intentional: transition tables should not pull in the
machine they govern.
"""

from __future__ import annotations

import ast
import itertools
import sys
import types
from typing import Any, Dict, Iterable, List, Optional

from .core import Checker, Finding, Project, SourceFile, register

#: Conflict kinds §IV-D defines; anything else in a DirectoryConflict is a
#: dispatch bug.
VALID_CONFLICT_KINDS = frozenset({"raw", "waw", "war"})

#: Cap per sub-check so a broken table does not flood the report.
_MAX_FINDINGS_PER_CHECK = 8


def _defined_names(tree: ast.Module) -> Dict[str, ast.AST]:
    names: Dict[str, ast.AST] = {}
    for node in tree.body:
        if isinstance(node, (ast.ClassDef, ast.FunctionDef)):
            names[node.name] = node
    return names


def _evaluate_module(source: SourceFile) -> Dict[str, Any]:
    # A real module registered in sys.modules, because dataclass/enum
    # machinery resolves ``sys.modules[cls.__module__]`` during class
    # creation; a bare dict namespace breaks them.
    name = f"_repro_fsm_eval_{source.path.stem}"
    module = types.ModuleType(name)
    module.__file__ = str(source.path)
    code = compile(source.text, str(source.path), "exec")
    sys.modules[name] = module
    try:
        exec(code, module.__dict__)  # noqa: S102 - our own transition table
    finally:
        sys.modules.pop(name, None)
    return module.__dict__


@register
class FsmCompletenessChecker(Checker):
    rule = "FSM004"
    description = (
        "the MesiState x CoherenceRequest transition table must be total, "
        "reachable, SWMR-preserving; directory dispatch must match §IV-D"
    )

    def check(self, source: SourceFile, project: Project) -> Iterable[Finding]:
        defined = _defined_names(source.tree)
        has_transitions = {
            "MesiState",
            "CoherenceRequest",
            "next_state_for_requester",
            "next_state_for_holder",
        } <= set(defined)
        has_directory = "Directory" in defined and any(
            isinstance(node, ast.FunctionDef) and node.name == "check_access"
            for node in ast.walk(defined["Directory"])
        )
        if not has_transitions and not has_directory:
            return []
        try:
            namespace = _evaluate_module(source)
        except Exception as error:  # pragma: no cover - exercised via fixtures
            return [
                self.finding(
                    source,
                    source.tree,
                    "could not evaluate the module for FSM analysis "
                    f"({type(error).__name__}: {error}); keep transition "
                    "modules import-light",
                )
            ]
        findings: List[Finding] = []
        if has_transitions:
            findings.extend(self._check_transitions(source, defined, namespace))
        if has_directory:
            findings.extend(self._check_directory(source, defined, namespace))
        return findings

    # -- transition totality, reachability, SWMR ----------------------------

    def _check_transitions(
        self,
        source: SourceFile,
        defined: Dict[str, ast.AST],
        namespace: Dict[str, Any],
    ) -> Iterable[Finding]:
        states = list(namespace["MesiState"])
        requests = list(namespace["CoherenceRequest"])
        requester_fn = namespace["next_state_for_requester"]
        holder_fn = namespace["next_state_for_holder"]
        member = lambda value: value in set(states)  # noqa: E731
        findings: List[Finding] = []

        def report(node_name: str, message: str) -> None:
            if len(findings) < _MAX_FINDINGS_PER_CHECK:
                findings.append(self.finding(source, defined[node_name], message))

        for request, other_copies in itertools.product(requests, (False, True)):
            try:
                result = requester_fn(request, other_copies)
            except Exception as error:
                report(
                    "next_state_for_requester",
                    f"unhandled pair ({request!r}, other_copies={other_copies}): "
                    f"{type(error).__name__}: {error}",
                )
                continue
            if not member(result):
                report(
                    "next_state_for_requester",
                    f"({request!r}, other_copies={other_copies}) returned "
                    f"{result!r}, not a MesiState member",
                )
        holder_next: Dict[Any, Dict[Any, Any]] = {}
        for request, state in itertools.product(requests, states):
            try:
                result = holder_fn(request, state)
            except Exception as error:
                report(
                    "next_state_for_holder",
                    f"unhandled pair ({state!r}, {request!r}): "
                    f"{type(error).__name__}: {error}",
                )
                continue
            if not member(result):
                report(
                    "next_state_for_holder",
                    f"({state!r}, {request!r}) returned {result!r}, "
                    "not a MesiState member",
                )
            else:
                holder_next.setdefault(request, {})[state] = result
        if findings:
            return findings  # reachability over a partial table is noise

        invalid = self._invalid_state(states)
        reachable = {invalid}
        frontier = [invalid]
        while frontier:
            state = frontier.pop()
            successors = [
                requester_fn(request, other)
                for request, other in itertools.product(requests, (False, True))
            ] + [holder_next[request][state] for request in requests]
            for nxt in successors:
                if nxt not in reachable:
                    reachable.add(nxt)
                    frontier.append(nxt)
        for state in states:
            if state not in reachable:
                report(
                    "MesiState",
                    f"state {state!r} is unreachable from {invalid!r} under "
                    "the declared transitions",
                )

        check_swmr = namespace.get("check_swmr")
        if callable(check_swmr):
            findings.extend(
                self._check_swmr_preservation(
                    source, defined, states, requests, requester_fn,
                    holder_fn, check_swmr, invalid,
                )
            )
        return findings

    @staticmethod
    def _invalid_state(states: List[Any]) -> Any:
        for state in states:
            if state.name == "INVALID":
                return state
        return states[0]

    def _check_swmr_preservation(
        self,
        source: SourceFile,
        defined: Dict[str, ast.AST],
        states: List[Any],
        requests: List[Any],
        requester_fn,
        holder_fn,
        check_swmr,
        invalid,
    ) -> Iterable[Finding]:
        findings: List[Finding] = []
        for vector in itertools.product(states, repeat=3):
            if not check_swmr(vector):
                continue
            for core, request in itertools.product(range(3), requests):
                others = [s for i, s in enumerate(vector) if i != core]
                other_copies = any(s is not invalid for s in others)
                after = [requester_fn(request, other_copies)] + [
                    holder_fn(request, s) for s in others
                ]
                if not check_swmr(after):
                    findings.append(
                        self.finding(
                            source,
                            defined["next_state_for_requester"],
                            f"transition breaks SWMR: cores {vector!r}, "
                            f"core {core} issues {request!r} -> {after!r}",
                        )
                    )
                    if len(findings) >= _MAX_FINDINGS_PER_CHECK:
                        return findings
        return findings

    # -- directory dispatch ---------------------------------------------------

    def _check_directory(
        self,
        source: SourceFile,
        defined: Dict[str, ast.AST],
        namespace: Dict[str, Any],
    ) -> Iterable[Finding]:
        directory_cls = namespace["Directory"]
        findings: List[Finding] = []
        line = 0x40
        owner_choices = (None, 1)
        sharer_choices = ((), (2,), (1,), (1, 2))
        requester_choices = (None, 1, 3)
        for owner, sharers, requester, is_write in itertools.product(
            owner_choices, sharer_choices, requester_choices, (False, True)
        ):
            try:
                directory = directory_cls()
                if owner is not None:
                    directory.record_access(line, owner, True)
                for sharer in sharers:
                    directory.record_access(line, sharer, False)
                conflict = directory.check_access(line, requester, is_write)
            except Exception as error:
                findings.append(
                    self.finding(
                        source,
                        defined["Directory"],
                        f"check_access raised on owner={owner} "
                        f"sharers={sharers} requester={requester} "
                        f"is_write={is_write}: {type(error).__name__}: {error}",
                    )
                )
                if len(findings) >= _MAX_FINDINGS_PER_CHECK:
                    return findings
                continue
            expected = self._expected_victims(owner, sharers, requester, is_write)
            got = set(conflict.victims) if conflict is not None else set()
            problem: Optional[str] = None
            if got != expected:
                problem = f"victims {sorted(got)}, expected {sorted(expected)}"
            elif conflict is not None and conflict.kind not in VALID_CONFLICT_KINDS:
                problem = (
                    f"kind {conflict.kind!r} not in "
                    f"{sorted(VALID_CONFLICT_KINDS)}"
                )
            if problem is not None:
                findings.append(
                    self.finding(
                        source,
                        defined["Directory"],
                        "dispatch gap at owner="
                        f"{owner} sharers={sharers} requester={requester} "
                        f"is_write={is_write}: {problem}",
                    )
                )
                if len(findings) >= _MAX_FINDINGS_PER_CHECK:
                    return findings
        return findings

    @staticmethod
    def _expected_victims(owner, sharers, requester, is_write) -> set:
        """§IV-D: GetM vs owner is waw, GetM vs sharers is raw, GetS vs
        owner is war; a transaction never conflicts with itself."""
        victims = set()
        if owner is not None and owner != requester:
            victims.add(owner)
        if is_write:
            victims.update(s for s in sharers if s != requester)
        return victims
