"""Engine selection for the vectorized sim kernels.

The simulator's four innermost loops — Bloom probe/insert, set-associative
lookup/fill, hierarchy latency accumulation, histogram bucketing — each have
two engines behind one interface: the scalar classes the rest of the tree
already uses, and numpy-batched twins in this package.  An
:class:`EngineKit` bundles one class per kernel; :func:`kit_for` resolves a
config's ``engine`` knob to a kit:

* ``"scalar"`` — the pure-Python classes (the default; no dependencies).
* ``"vectorized"`` — the numpy kernels; raises :class:`~repro.errors
  .ConfigError` with an install hint when numpy is missing.
* ``"batched"`` — the epoch-batched execution core: scalar tag arrays (the
  fastest per-op structures) plus the numpy histogram/latency kernels, and
  — the part that actually wins end-to-end — the epoch dispatcher in
  :mod:`repro.htm.batch` that fuses whole operation blocks per scheduler
  step.  Requires numpy, with the same install hint as ``"vectorized"``.
* ``"auto"`` — vectorized when numpy imports, scalar otherwise (``auto``
  stays conservative: it never opts into the batched dispatcher).
* ``None`` — the process default: the ``REPRO_ENGINE`` environment variable
  if set (how CI runs the whole suite per engine), else ``"scalar"``.

Engine choice never affects results: the two engines are proven
bit-identical by the differential/mutation tier in ``tests/kernels/``, which
is also why :func:`repro.harness.cache.spec_fingerprint` excludes the knob.
"""

from __future__ import annotations

import os
from dataclasses import dataclass
from typing import Optional

from ..cache.setassoc import SetAssociativeArray
from ..errors import ConfigError
from ..signatures.bloom import BankedBloomFilter, BloomFilter
from ..sim.stats import Histogram
from ._np import NUMPY_MISSING_MSG, numpy_available
from .latency import LatencyTable, VectorLatencyTable
from .setassoc import VectorSetAssociativeArray
from .signatures import VectorBankedBloomFilter, VectorBloomFilter
from .stats import VectorHistogram

#: The values a config ``engine`` knob accepts (``None`` additionally means
#: "process default").
ENGINE_CHOICES = ("scalar", "vectorized", "batched", "auto")

#: Environment variable consulted when the knob is ``None``.  Reading the
#: environment here is determinism-safe precisely because engines are
#: bit-identical: the variable can change which code runs, never what it
#: computes.
ENGINE_ENV_VAR = "REPRO_ENGINE"


@dataclass(frozen=True)
class EngineKit:
    """One implementation class per kernel, plus the resolved engine name."""

    name: str
    bloom_cls: type
    banked_bloom_cls: type
    setassoc_cls: type
    histogram_cls: type
    latency_cls: type
    #: True for the epoch-batched execution core: the runtime additionally
    #: installs :class:`repro.sim.engine.EpochEngine` and the
    #: :class:`repro.htm.batch.BatchDispatcher` block paths.
    batched: bool = False


SCALAR_KIT = EngineKit(
    name="scalar",
    bloom_cls=BloomFilter,
    banked_bloom_cls=BankedBloomFilter,
    setassoc_cls=SetAssociativeArray,
    histogram_cls=Histogram,
    latency_cls=LatencyTable,
)

VECTOR_KIT = EngineKit(
    name="vectorized",
    bloom_cls=VectorBloomFilter,
    banked_bloom_cls=VectorBankedBloomFilter,
    setassoc_cls=VectorSetAssociativeArray,
    histogram_cls=VectorHistogram,
    latency_cls=VectorLatencyTable,
)

# The batched kit keeps the scalar tag arrays and Bloom filters — their
# dict/bigint per-op paths are the fastest single-operation code, and the
# epoch dispatcher's fused loops run over them — while the histogram and
# latency kernels come from the vector twins, whose record/flush split is
# exactly the stage-then-flush shape the dispatcher batches.
BATCHED_KIT = EngineKit(
    name="batched",
    bloom_cls=BloomFilter,
    banked_bloom_cls=BankedBloomFilter,
    setassoc_cls=SetAssociativeArray,
    histogram_cls=VectorHistogram,
    latency_cls=VectorLatencyTable,
    batched=True,
)

_KITS = {
    "scalar": SCALAR_KIT,
    "vectorized": VECTOR_KIT,
    "batched": BATCHED_KIT,
}


def resolve_engine(engine: Optional[str]) -> str:
    """Resolve an engine knob to a concrete engine name.

    Returns ``"scalar"``, ``"vectorized"``, or ``"batched"``; raises
    ConfigError for an unknown knob, or for ``"vectorized"``/``"batched"``
    without numpy installed.
    """
    if engine is None:
        engine = os.environ.get(ENGINE_ENV_VAR, "scalar")
    if engine not in ENGINE_CHOICES:
        raise ConfigError(
            f"unknown engine {engine!r}; choose one of "
            + ", ".join(ENGINE_CHOICES)
        )
    if engine == "auto":
        return "vectorized" if numpy_available() else "scalar"
    if engine in ("vectorized", "batched") and not numpy_available():
        raise ConfigError(NUMPY_MISSING_MSG)
    return engine


def kit_for(engine: Optional[str]) -> EngineKit:
    """The :class:`EngineKit` for an engine knob (resolving ``auto``)."""
    return _KITS[resolve_engine(engine)]
