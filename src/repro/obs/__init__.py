"""Observability: transaction tracing, timelines, and abort forensics.

The simulator's counters say *how many* transactions aborted; this package
says *why each one did*.  Hook points in the engine, HTM, caches, memory
controller, and hardware logs emit typed :class:`~repro.obs.events.TraceEvent`
records into a bounded ring-buffer :class:`~repro.obs.tracer.Tracer`; from
the captured stream the package assembles per-transaction timelines, an
abort-forensics report (precise vs signature-alias vs capacity vs fallback,
with the conflicting address and both transaction ids), and exports to JSONL
or Chrome ``trace_event`` JSON (load in ``chrome://tracing`` / Perfetto).

Tracing is strictly an observer: every hook site is a duck-typed ``tracer``
attribute that defaults to ``None`` and is only assigned by
:func:`~repro.obs.tracer.attach_tracer`, so an untraced run executes the
exact same simulation — the trace-neutrality differential test proves the
metrics are bit-identical either way.

Entry points::

    python -m repro trace fig7 --report          # trace a figure's grid
    python -m repro trace hashmap --out t.json   # trace one workload

    from repro.obs import Tracer, attach_tracer, trace_grid
"""

from .events import TraceEvent
from .tracer import Tracer, attach_tracer
from .timeline import TxTimeline, build_timelines
from .forensics import AbortRecord, ForensicsReport, analyze_events, format_report
from .capture import TracedRun, trace_experiment, trace_grid
from .export import chrome_trace, to_jsonl, write_chrome_trace, write_jsonl

__all__ = [
    "TraceEvent",
    "Tracer",
    "attach_tracer",
    "TxTimeline",
    "build_timelines",
    "AbortRecord",
    "ForensicsReport",
    "analyze_events",
    "format_report",
    "TracedRun",
    "trace_experiment",
    "trace_grid",
    "chrome_trace",
    "to_jsonl",
    "write_chrome_trace",
    "write_jsonl",
]
