"""Tests for the memory controller: logging protocols, crash, recovery."""

from __future__ import annotations

import pytest

from repro.mem.controller import MemoryController
from repro.mem.log import RecordKind
from repro.params import LatencyConfig, MemoryConfig


@pytest.fixture
def controller():
    return MemoryController(MemoryConfig(), LatencyConfig())


def dram_addr(controller, offset=0):
    return controller.address_space.dram_heap.base + offset


def nvm_addr(controller, offset=0):
    return controller.address_space.nvm_heap.base + offset


class TestUndoLogging:
    def test_undo_log_then_update_in_place(self, controller):
        addr = dram_addr(controller)
        controller.dram.store(addr, 10)
        charge = controller.log_undo_and_update(1, addr, {addr: 20})
        assert charge == 0.0  # off the critical path
        assert controller.dram.load(addr) == 20
        records = controller.dram_log.records_of(1)
        assert dict(records[0].words) == {addr: 10}

    def test_rollback_restores_old_values(self, controller):
        addr = dram_addr(controller)
        controller.dram.store(addr, 10)
        controller.log_undo_and_update(1, addr, {addr: 20})
        cost = controller.rollback_undo(1)
        assert controller.dram.load(addr) == 10
        assert cost > 0  # aborts are expensive under undo

    def test_rollback_chain_restores_first_image(self, controller):
        """Repeated spills of one line roll back to the pre-tx value."""
        addr = dram_addr(controller)
        controller.dram.store(addr, 1)
        controller.log_undo_and_update(1, addr, {addr: 2})
        controller.log_undo_and_update(1, addr, {addr: 3})
        controller.rollback_undo(1)
        assert controller.dram.load(addr) == 1

    def test_commit_undo_is_one_mark_write(self, controller):
        addr = dram_addr(controller)
        controller.log_undo_and_update(1, addr, {addr: 5})
        cost = controller.commit_undo(1)
        assert cost == controller.latency.dram_ns
        assert controller.dram.load(addr) == 5

    def test_commit_cheaper_than_abort(self, controller):
        """The undo trade-off the paper optimises for (Figure 4c)."""
        a = dram_addr(controller, 0)
        b = dram_addr(controller, 64)
        controller.log_undo_and_update(1, a, {a: 1})
        controller.log_undo_and_update(1, b, {b: 2})
        commit_cost = controller.commit_undo(1)
        controller.log_undo_and_update(2, a, {a: 3})
        controller.log_undo_and_update(2, b, {b: 4})
        abort_cost = controller.rollback_undo(2)
        assert commit_cost < abort_cost


class TestRedoDramAblation:
    def test_redo_leaves_in_place_unmodified(self, controller):
        addr = dram_addr(controller)
        controller.dram.store(addr, 10)
        controller.log_redo_dram(1, addr, {addr: 20})
        assert controller.dram.load(addr) == 10

    def test_redo_lookup_finds_logged_value(self, controller):
        addr = dram_addr(controller)
        controller.log_redo_dram(1, addr, {addr: 20})
        assert controller.redo_dram_lookup(1, addr) == 20
        assert controller.redo_dram_lookup(1, addr + 64) is None

    def test_commit_copies_values_in_place(self, controller):
        addr = dram_addr(controller)
        controller.log_redo_dram(1, addr, {addr: 20})
        cost = controller.commit_redo_dram(1)
        assert controller.dram.load(addr) == 20
        assert cost > controller.latency.dram_ns  # copy makes commit slow

    def test_abort_discards_cheaply(self, controller):
        addr = dram_addr(controller)
        controller.dram.store(addr, 10)
        controller.log_redo_dram(1, addr, {addr: 20})
        cost = controller.discard_redo_dram(1)
        assert controller.dram.load(addr) == 10
        assert cost == controller.latency.dram_ns

    def test_redo_commit_slower_than_undo_commit(self, controller):
        """Undo commits with one mark; redo must copy every line."""
        lines = [dram_addr(controller, i * 64) for i in range(8)]
        for line in lines:
            controller.log_undo_and_update(1, line, {line: 1})
        undo_cost = controller.commit_undo(1)
        for line in lines:
            controller.log_redo_dram(2, line, {line: 1})
        redo_cost = controller.commit_redo_dram(2)
        assert redo_cost > undo_cost

    def test_indirection_latency_positive(self, controller):
        assert controller.redo_dram_indirection_latency() > 0


class TestNvmCommit:
    def test_commit_publishes_via_dram_cache(self, controller):
        addr = nvm_addr(controller)
        controller.commit_nvm(7, {addr: {addr: 99}})
        # Visible through the DRAM cache before any drain:
        assert controller.load_word(addr) == 99
        # Not yet durable in place:
        assert controller.nvm.load(addr) == 0

    def test_commit_appends_mark(self, controller):
        addr = nvm_addr(controller)
        controller.commit_nvm(7, {addr: {addr: 99}})
        assert 7 in controller.nvm_log.committed_tx_ids()

    def test_read_latency_served_from_dram_cache(self, controller):
        addr = nvm_addr(controller)
        before = controller.read_latency(addr)
        assert before == controller.latency.nvm_read_ns
        controller.commit_nvm(7, {addr: {addr: 99}})
        assert controller.read_latency(addr) == controller.latency.dram_cache_ns

    def test_early_eviction_buffers_uncommitted(self, controller):
        addr = nvm_addr(controller)
        controller.buffer_early_evicted_nvm(3, addr, {addr: 5})
        entry = controller.dram_cache.lookup(addr)
        assert entry is not None and not entry.committed

    def test_abort_nvm_invalidates_buffered_lines(self, controller):
        addr = nvm_addr(controller)
        controller.buffer_early_evicted_nvm(3, addr, {addr: 5})
        controller.abort_nvm(3, [addr])
        assert controller.dram_cache.lookup(addr) is None
        assert controller.load_word(addr) == 0


class TestStoreWord:
    def test_nvm_store_updates_resident_dram_cache_line(self, controller):
        addr = nvm_addr(controller)
        controller.commit_nvm(7, {addr: {addr: 1}})
        controller.store_word(addr, 2)
        assert controller.load_word(addr) == 2
        controller.dram_cache.drain_all()
        assert controller.nvm.load(addr) == 2

    def test_dram_store_direct(self, controller):
        addr = dram_addr(controller)
        controller.store_word(addr, 11)
        assert controller.dram.load(addr) == 11


class TestCrashRecovery:
    def test_committed_data_survives_crash(self, controller):
        addr = nvm_addr(controller)
        controller.nvm_log.append_data(RecordKind.REDO, 1, addr, {addr: 42})
        controller.commit_nvm(1, {addr: {addr: 42}})
        controller.crash()
        assert controller.load_word(addr) == 0  # DRAM cache was wiped
        replayed = controller.recover()
        assert replayed >= 1
        assert controller.nvm.load(addr) == 42

    def test_uncommitted_data_discarded_on_recovery(self, controller):
        addr = nvm_addr(controller)
        controller.nvm_log.append_data(RecordKind.REDO, 2, addr, {addr: 13})
        controller.crash()
        controller.recover()
        assert controller.nvm.load(addr) == 0

    def test_aborted_tx_never_replayed(self, controller):
        addr = nvm_addr(controller)
        controller.nvm_log.append_data(RecordKind.REDO, 3, addr, {addr: 13})
        controller.nvm_log.append_mark(RecordKind.COMMIT, 3)
        controller.nvm_log.append_mark(RecordKind.ABORT, 3)
        controller.crash()
        controller.recover()
        assert controller.nvm.load(addr) == 0

    def test_crash_wipes_volatile_state(self, controller):
        daddr = dram_addr(controller)
        controller.dram.store(daddr, 5)
        controller.dram_log.append_mark(RecordKind.COMMIT, 1)
        controller.crash()
        assert controller.dram.load(daddr) == 0
        assert len(controller.dram_log) == 0
        assert len(controller.dram_cache) == 0

    def test_recovery_is_idempotent(self, controller):
        addr = nvm_addr(controller)
        controller.nvm_log.append_data(RecordKind.REDO, 1, addr, {addr: 42})
        controller.nvm_log.append_mark(RecordKind.COMMIT, 1)
        controller.crash()
        controller.recover()
        first = controller.nvm.clone_contents()
        controller.recover()
        assert controller.nvm.clone_contents() == first
