"""Fixture: a whole-file suppression."""
# repro: allow-file[DET001]

import random
import secrets


def draw():
    return random.random(), secrets.token_bytes(4)
