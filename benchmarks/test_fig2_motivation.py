"""Figure 2: LLC-Bounded vs Ideal unbounded HTM throughput (Section III-C).

Paper shape: the bounded design is up to 6.2x slower than the ideal
unbounded HTM once consolidated transactions outgrow the on-chip caches.
"""

from __future__ import annotations

from repro.harness.figures import fig2


def test_fig2(benchmark, quick, show):
    result = benchmark.pedantic(
        lambda: fig2(quick=quick), rounds=1, iterations=1
    )
    show(result)
    speedups = result.column("ideal_speedup")
    # Shape: Ideal wins on every benchmark, substantially on at least one.
    assert all(s >= 1.0 for s in speedups)
    assert max(speedups) >= 1.5
