"""``python -m repro lint`` — run the static-analysis pass.

Usage::

    python -m repro lint                       # whole repro tree
    python -m repro lint src/repro/htm         # a subtree
    python -m repro lint --rules DET001,LAY002 # a rule subset
    python -m repro lint --json                # machine-readable report
    python -m repro lint --sarif out.sarif     # SARIF 2.1.0 artifact
    python -m repro lint --changed [BASE]      # only changed files (CI)
    python -m repro lint --fail-on error       # warnings don't fail
    python -m repro lint --fix-suppress        # append/merge allow[...]

``--changed`` scopes the *report* to files that differ from the git merge
base (plus untracked files); the whole tree is still analysed so the
cross-file checkers (ATOM005/CLK008) keep their symbol tables and call
graphs.  Without a usable git repository it falls back to a full lint.

Exit codes: 0 clean, 1 findings at or above ``--fail-on``, 2 usage or
internal error.
"""

from __future__ import annotations

import argparse
import re
import subprocess
import sys
from collections import defaultdict
from pathlib import Path
from typing import Dict, List, Optional, Sequence, Set

from .core import (
    AnalysisReport,
    registered_checkers,
    render_json,
    render_text,
    run_analysis,
)
from .sarif import render_sarif


def _default_paths() -> List[Path]:
    import repro

    return [Path(repro.__file__).parent]


_ALLOW_MARKER = re.compile(
    r"#\s*repro:\s*allow\[([A-Z]+\d+(?:\s*,\s*[A-Z]+\d+)*)\]"
)


def _merge_allow_marker(line: str, rules: Set[str]) -> str:
    """Append or merge an ``# repro: allow[...]`` marker on one line.

    Idempotent: an existing marker is rewritten with the union of its rule
    ids and ``rules`` (sorted, deduplicated) instead of a duplicate marker
    being appended after it.
    """
    newline = "\n" if line.endswith("\n") else ""
    body = line.rstrip("\n")
    match = _ALLOW_MARKER.search(body)
    if match:
        merged = set(rules)
        merged.update(
            part.strip() for part in match.group(1).split(",") if part.strip()
        )
        replacement = f"# repro: allow[{','.join(sorted(merged))}]"
        body = body[: match.start()] + replacement + body[match.end() :]
    else:
        body = f"{body}  # repro: allow[{','.join(sorted(rules))}]"
    return body + newline


def _apply_suppressions(report: AnalysisReport) -> int:
    """Append/merge ``# repro: allow[RULE,...]`` on every finding's line.

    Returns the number of lines rewritten.  PARSE findings are skipped — a
    file that does not parse cannot be meaningfully annotated.
    """
    by_line: Dict[Path, Dict[int, Set[str]]] = defaultdict(lambda: defaultdict(set))
    for finding in report.findings:
        if finding.rule == "PARSE":
            continue
        by_line[Path(finding.path)][finding.line].add(finding.rule)
    rewritten = 0
    for path, line_rules in by_line.items():
        lines = path.read_text(encoding="utf-8").splitlines(keepends=True)
        for lineno, rules in line_rules.items():
            if lineno > len(lines):
                continue
            merged = _merge_allow_marker(lines[lineno - 1], rules)
            if merged != lines[lineno - 1]:
                lines[lineno - 1] = merged
                rewritten += 1
        path.write_text("".join(lines), encoding="utf-8")
    return rewritten


# -- --changed: git-diff scope ------------------------------------------------


def _git(args: Sequence[str], cwd: Path) -> Optional[str]:
    try:
        completed = subprocess.run(
            ["git", *args],
            cwd=str(cwd),
            capture_output=True,
            text=True,
            timeout=30,
        )
    except (OSError, subprocess.SubprocessError):
        return None
    if completed.returncode != 0:
        return None
    return completed.stdout


def changed_py_files(
    base: Optional[str], cwd: Optional[Path] = None
) -> Optional[List[Path]]:
    """``.py`` files changed since the merge base (plus untracked ones).

    ``base`` is a ref to diff against (``origin/main`` in CI); ``None``
    tries ``origin/main`` then ``main``.  Returns ``None`` when git is
    unavailable or no base resolves — callers fall back to a full lint.
    """
    cwd = cwd or Path.cwd()
    root_text = _git(["rev-parse", "--show-toplevel"], cwd)
    if root_text is None:
        return None
    root = Path(root_text.strip())
    candidates = [base] if base else ["origin/main", "main"]
    merge_base = None
    for candidate in candidates:
        if candidate is None:
            continue
        out = _git(["merge-base", "HEAD", candidate], cwd)
        if out is not None:
            merge_base = out.strip()
            break
    if merge_base is None:
        return None
    changed = _git(
        ["diff", "--name-only", "--diff-filter=d", merge_base, "--", "*.py"],
        cwd,
    )
    untracked = _git(
        ["ls-files", "--others", "--exclude-standard", "--", "*.py"], cwd
    )
    if changed is None:
        return None
    names = set(changed.splitlines())
    names.update((untracked or "").splitlines())
    out_paths = [
        root / name for name in sorted(names) if name.endswith(".py")
    ]
    return [path for path in out_paths if path.exists()]


def main(argv: Optional[Sequence[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro lint",
        description="Static analysis: determinism, layering, hook guards, "
        "coherence-FSM completeness, and the crash/concurrency protocol "
        "checkers (atomic publication, pickle boundary, clock funnels, "
        "trace counters).",
    )
    parser.add_argument(
        "paths",
        nargs="*",
        type=Path,
        help="files or directories to lint (default: the installed repro tree)",
    )
    parser.add_argument(
        "--json", action="store_true", help="emit a JSON report on stdout"
    )
    parser.add_argument(
        "--sarif",
        metavar="PATH",
        type=Path,
        help="also write a SARIF 2.1.0 report to PATH",
    )
    parser.add_argument(
        "--rules",
        metavar="IDS",
        help="comma-separated rule ids to run (default: all registered)",
    )
    parser.add_argument(
        "--changed",
        nargs="?",
        const="",
        default=None,
        metavar="BASE",
        help="report only findings in files changed since the git merge "
        "base with BASE (default: origin/main, then main); the full tree "
        "is still analysed for cross-file context",
    )
    parser.add_argument(
        "--fail-on",
        choices=("error", "warning"),
        default="warning",
        help="minimum severity that fails the run (default: warning — any "
        "finding fails)",
    )
    parser.add_argument(
        "--fix-suppress",
        action="store_true",
        help="append '# repro: allow[RULE]' to each finding's line, merging "
        "into an existing marker "
        "(prefer fixing findings; suppressions are for sanctioned exceptions)",
    )
    parser.add_argument(
        "--list-rules", action="store_true", help="print the rule catalogue"
    )
    args = parser.parse_args(argv)

    if args.list_rules:
        for rule, checker in sorted(registered_checkers().items()):
            print(f"{rule}: {checker.description}")
        return 0

    paths = list(args.paths) or _default_paths()
    missing = [str(path) for path in paths if not path.exists()]
    if missing:
        print(f"error: no such path(s): {', '.join(missing)}", file=sys.stderr)
        return 2
    rules = None
    if args.rules:
        rules = [part.strip() for part in args.rules.split(",") if part.strip()]

    report_paths: Optional[List[Path]] = None
    if args.changed is not None:
        report_paths = changed_py_files(args.changed or None)
        if report_paths is None:
            print(
                "warning: --changed needs a git repository with a reachable "
                "base; falling back to a full lint",
                file=sys.stderr,
            )

    try:
        report = run_analysis(paths, rules=rules, report_paths=report_paths)
    except ValueError as error:
        print(f"error: {error}", file=sys.stderr)
        return 2

    if args.fix_suppress and report.findings:
        rewritten = _apply_suppressions(report)
        print(f"suppressed {rewritten} line(s); re-run to verify", file=sys.stderr)

    if args.sarif is not None:
        args.sarif.parent.mkdir(parents=True, exist_ok=True)
        args.sarif.write_text(render_sarif(report), encoding="utf-8")

    print(render_json(report) if args.json else render_text(report))
    failing = [
        f
        for f in report.findings
        if args.fail_on == "warning" or f.severity == "error"
    ]
    return 0 if not failing else 1
