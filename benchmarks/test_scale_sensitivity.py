"""Scaling validation: the headline ordering is scale-invariant.

DESIGN.md's methodology claims behaviour depends on footprint:cache ratios,
which the scale knob preserves.  This benchmark reruns the §IV-D abort-rate
experiment at three machine scales and asserts the three-step ordering
(signature-only >> staged >> isolated) at every one — evidence that the
quick-matrix results are not an artifact of one scale point.
"""

from __future__ import annotations

from repro.harness.figures import abort_claim
from repro.harness.report import FigureResult


def run_scale_sweep(quick: bool) -> FigureResult:
    result = FigureResult(
        "Scaling",
        "Abort-rate ordering across machine scales",
        ["scale", "signature_only", "uhtm_sig", "uhtm_opt"],
    )
    scales = (1 / 32, 1 / 16) if quick else (1 / 32, 1 / 16, 1 / 8)
    for scale in scales:
        figure = abort_claim(quick=True, scale=scale)
        rates = {row[0]: row[1] for row in figure.rows}
        result.add_row(
            f"1/{round(1 / scale)}",
            rates["signature_only"],
            rates["uhtm_sig"],
            rates["uhtm_opt"],
        )
    return result


def test_ordering_invariant_across_scales(benchmark, quick, show):
    result = benchmark.pedantic(
        lambda: run_scale_sweep(quick), rounds=1, iterations=1
    )
    show(result)
    for row in result.rows:
        _, sig_only, uhtm_sig, uhtm_opt = row
        assert sig_only > 0.85
        assert uhtm_sig < sig_only
        assert uhtm_opt <= uhtm_sig + 0.02
