"""Tests for which channel a demand access uses under the bandwidth model."""

from __future__ import annotations

import dataclasses

import pytest

from repro.mem.controller import MemoryController
from repro.mem.log import RecordKind
from repro.params import LatencyConfig, MemoryConfig


@pytest.fixture
def controller():
    return MemoryController(
        MemoryConfig(model_bandwidth=True), LatencyConfig()
    )


class TestChannelSelection:
    def test_dram_access_uses_dram_channel(self, controller):
        addr = controller.address_space.dram_heap.base
        controller.demand_access_latency(addr, 0.0)
        assert controller.dram_channel.stats.requests == 1
        assert controller.nvm_channel.stats.requests == 0

    def test_nvm_access_uses_nvm_channel(self, controller):
        addr = controller.address_space.nvm_heap.base
        controller.demand_access_latency(addr, 0.0)
        assert controller.nvm_channel.stats.requests == 1
        assert controller.dram_channel.stats.requests == 0

    def test_dram_cache_hit_uses_dram_channel(self, controller):
        """An NVM line served from the DRAM cache travels the DRAM bus."""
        addr = controller.address_space.nvm_heap.base
        controller.commit_nvm(1, {addr: {addr: 5}})
        controller.demand_access_latency(addr, 0.0)
        assert controller.dram_channel.stats.requests == 1
        assert controller.nvm_channel.stats.requests == 0

    def test_latency_includes_queueing(self, controller):
        addr = controller.address_space.nvm_heap.base
        first = controller.demand_access_latency(addr, 0.0)
        second = controller.demand_access_latency(addr, 0.0)
        assert second > first  # queued behind the first transfer

    def test_disabled_model_charges_base_only(self):
        controller = MemoryController(
            MemoryConfig(model_bandwidth=False), LatencyConfig()
        )
        addr = controller.address_space.nvm_heap.base
        assert controller.demand_access_latency(addr, 0.0) == pytest.approx(
            controller.latency.nvm_read_ns
        )
        assert controller.demand_access_latency(addr, 0.0) == pytest.approx(
            controller.latency.nvm_read_ns
        )
