"""A bit-array Bloom filter, the substrate of an address signature."""

from __future__ import annotations

import math
from typing import Iterable, Optional

from .hashing import HashFamily, MultiplicativeHashFamily


class BloomFilter:
    """A fixed-width Bloom filter backed by a Python big-int bit array.

    Big-int bit operations keep membership tests cheap, which matters
    because signature checks sit on the simulator's hottest path (every LLC
    miss in UHTM; every access in signature-only designs).  Both insert and
    probe go through the hash family's memoised per-value OR-mask, so a warm
    operation is a single big-int OR (insert) or AND-compare (probe) instead
    of ``k`` hash computations and shifts.
    """

    def __init__(
        self,
        bits: int,
        hash_functions: int,
        family: Optional[HashFamily] = None,
    ) -> None:
        if bits < 1:
            raise ValueError("filter must have at least one bit")
        self.bits = bits
        self._family = family or MultiplicativeHashFamily(hash_functions, bits)
        if self._family.buckets != bits:
            raise ValueError("hash family buckets must equal filter bits")
        self._array = 0
        self._inserted = 0

    @property
    def inserted(self) -> int:
        """Number of insert calls (not distinct elements)."""
        return self._inserted

    @property
    def popcount(self) -> int:
        """Number of set bits (occupancy)."""
        return self._array.bit_count()

    @property
    def saturation(self) -> float:
        """Fraction of bits set, in [0, 1]."""
        return self.popcount / self.bits

    def insert(self, value: int) -> None:
        self._array |= self._family.or_mask(value)
        self._inserted += 1

    def insert_all(self, values: Iterable[int]) -> None:
        insert = self.insert
        for value in values:
            insert(value)

    def maybe_contains(self, value: int) -> bool:
        mask = self._family.or_mask(value)
        return self._array & mask == mask

    # -- key-based probing --------------------------------------------------
    #
    # When one value is probed against *many* filters sharing a hash family
    # (the off-chip conflict sweep checks every active transaction in a
    # domain), the hash work can be done once and the per-filter test
    # reduced to a single AND-compare.  ``probe_key`` computes the reusable
    # key; ``contains_key`` applies it.  The ``family`` property lets the
    # caller verify key compatibility by identity.

    @property
    def family(self) -> HashFamily:
        return self._family

    def probe_key(self, value: int) -> int:
        """The reusable probe token for ``value`` under this filter's family."""
        return self._family.or_mask(value)

    def contains_key(self, key: int) -> bool:
        """Membership test with a precomputed :meth:`probe_key` token."""
        return self._array & key == key

    def clear(self) -> None:
        self._array = 0
        self._inserted = 0

    def is_empty(self) -> bool:
        return self._array == 0

    def expected_false_positive_rate(self) -> float:
        """The analytic ``(1 - e^{-kn/m})^k`` estimate from insert count.

        ``n`` is the number of inserts, ``m`` the filter width, ``k`` the
        hash-function count — the textbook prediction of what the filter's
        false-positive rate *should* be after ``n`` random insertions.
        Compare with :meth:`observed_false_positive_rate`, which reads the
        actual bit array.
        """
        if self._inserted == 0:
            return 0.0
        k = self._family.functions
        return (1.0 - math.exp(-k * self._inserted / self.bits)) ** k

    def observed_false_positive_rate(self) -> float:
        """The occupancy-based ``(popcount/m)^k`` rate of *this* bit array.

        A uniformly random probe hits ``k`` independent bit positions; each
        is set with probability equal to the measured occupancy, so this is
        the aliasing probability the filter actually exhibits (the analytic
        estimate assumes ideal hashing and distinct keys).
        """
        if self._inserted == 0:
            return 0.0
        k = self._family.functions
        return self.saturation**k


class BankedBloomFilter:
    """A partitioned (banked) Bloom filter, as hardware signatures build it.

    LogTM-SE and Bulk implement signatures as ``k`` independent SRAM banks
    of ``m/k`` bits, one hash function per bank — single-ported banks can
    then be probed in parallel.  Statistically the banked design has a
    marginally higher false-positive rate than a flat filter of equal total
    size; the ``signature-design`` ablation benchmark quantifies it.
    """

    def __init__(
        self,
        bits: int,
        hash_functions: int,
        family: Optional[HashFamily] = None,
    ) -> None:
        if bits < hash_functions:
            raise ValueError("need at least one bit per bank")
        self.bits = bits
        self.banks = hash_functions
        self._bank_bits = bits // hash_functions
        self._family = family or MultiplicativeHashFamily(
            hash_functions, self._bank_bits
        )
        if self._family.buckets != self._bank_bits:
            raise ValueError("hash family buckets must equal bank width")
        self._arrays = [0] * hash_functions
        self._inserted = 0

    @property
    def inserted(self) -> int:
        return self._inserted

    @property
    def popcount(self) -> int:
        return sum(a.bit_count() for a in self._arrays)

    @property
    def saturation(self) -> float:
        return self.popcount / (self._bank_bits * self.banks)

    def insert(self, value: int) -> None:
        arrays = self._arrays
        for bank, index in enumerate(self._family.indices_for(value)):
            arrays[bank] |= 1 << index
        self._inserted += 1

    def insert_all(self, values: Iterable[int]) -> None:
        insert = self.insert
        for value in values:
            insert(value)

    def maybe_contains(self, value: int) -> bool:
        arrays = self._arrays
        for bank, index in enumerate(self._family.indices_for(value)):
            if not (arrays[bank] >> index) & 1:
                return False
        return True

    # -- key-based probing (see BloomFilter) --------------------------------

    @property
    def family(self) -> HashFamily:
        return self._family

    def probe_key(self, value: int):
        """The reusable probe token: one bit index per bank."""
        return self._family.indices_for(value)

    def contains_key(self, key) -> bool:
        arrays = self._arrays
        for bank, index in enumerate(key):
            if not (arrays[bank] >> index) & 1:
                return False
        return True

    def clear(self) -> None:
        self._arrays = [0] * self.banks
        self._inserted = 0

    def is_empty(self) -> bool:
        return all(a == 0 for a in self._arrays)

    def expected_false_positive_rate(self) -> float:
        """The analytic banked estimate from insert count.

        Each of the ``k`` banks has ``m/k`` bits and sees one hash per
        insert, so a bank bit stays clear with probability
        ``(1 - k/m)^n`` — giving ``(1 - e^{-kn/m})^k`` overall, the same
        asymptotic form as the flat filter (banking costs only a
        lower-order term).
        """
        if self._inserted == 0:
            return 0.0
        k = self.banks
        return (1.0 - math.exp(-k * self._inserted / self.bits)) ** k

    def observed_false_positive_rate(self) -> float:
        """Product of per-bank occupancies: the aliasing rate of a random
        probe against *this* filter's bit arrays (one bit tested per bank).
        """
        if self._inserted == 0:
            return 0.0
        rate = 1.0
        for array in self._arrays:
            rate *= array.bit_count() / self._bank_bits
        return rate
