"""The experiment harness: regenerates every table and figure.

Each ``figN`` function in :mod:`repro.harness.figures` configures the
corresponding experiment of the paper's evaluation (Sections III and VI),
runs it through :func:`repro.harness.runner.run_experiment`, and returns a
:class:`FigureResult` whose rows mirror the published series.  The
``benchmarks/`` directory exposes one pytest-benchmark target per figure.
"""

from .config import BenchmarkSpec, ExperimentSpec
from .metrics import RunResult
from .report import format_table
from .runner import run_experiment

__all__ = [
    "BenchmarkSpec",
    "ExperimentSpec",
    "RunResult",
    "format_table",
    "run_experiment",
]
