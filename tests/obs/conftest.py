"""Shared fixtures for the observability tests: small, contended specs."""

from __future__ import annotations

import pytest

from repro.harness.config import ExperimentSpec, consolidated
from repro.params import HTMConfig
from repro.workloads import WorkloadParams


def _spec(name: str, keys: int, threads: int) -> ExperimentSpec:
    return ExperimentSpec(
        name=name,
        htm=HTMConfig(),
        benchmarks=consolidated(
            "hashmap",
            2,
            WorkloadParams(
                threads=threads,
                txs_per_thread=2,
                value_bytes=16 << 10,
                keys=keys,
                initial_fill=min(16, keys),
            ),
        ),
        scale=1 / 16,
        cores=4,
        membound_instances=1,
    )


@pytest.fixture
def tiny_spec() -> ExperimentSpec:
    """A seconds-fast run with a little of everything (overflow, logs)."""
    return _spec("obs-tiny", keys=64, threads=2)


@pytest.fixture
def contended_spec() -> ExperimentSpec:
    """Few keys, more threads: guaranteed conflicts and aborts."""
    return _spec("obs-contended", keys=8, threads=4)
