"""Engine knob resolution, numpy-optional fallback, and fingerprint policy."""

import dataclasses

import pytest

from repro.errors import ConfigError
from repro.kernels import (
    ENGINE_CHOICES,
    ENGINE_ENV_VAR,
    SCALAR_KIT,
    VECTOR_KIT,
    kit_for,
    resolve_engine,
)
from repro.kernels._np import NUMPY_MISSING_MSG, numpy_available


@pytest.fixture(autouse=True)
def clean_env(monkeypatch):
    monkeypatch.delenv(ENGINE_ENV_VAR, raising=False)


class TestResolveEngine:
    def test_default_is_scalar(self):
        assert resolve_engine(None) == "scalar"
        assert resolve_engine("scalar") == "scalar"

    def test_env_var_sets_process_default(self, monkeypatch):
        monkeypatch.setenv(ENGINE_ENV_VAR, "scalar")
        assert resolve_engine(None) == "scalar"

    def test_unknown_engine_rejected(self):
        with pytest.raises(ConfigError):
            resolve_engine("simd")

    def test_unknown_env_value_rejected(self, monkeypatch):
        monkeypatch.setenv(ENGINE_ENV_VAR, "turbo")
        with pytest.raises(ConfigError):
            resolve_engine(None)

    @pytest.mark.skipif(not numpy_available(), reason="needs numpy")
    def test_vectorized_and_auto_with_numpy(self):
        assert resolve_engine("vectorized") == "vectorized"
        assert resolve_engine("auto") == "vectorized"

    @pytest.mark.skipif(not numpy_available(), reason="needs numpy")
    def test_batched_with_numpy(self):
        assert resolve_engine("batched") == "batched"


class TestKits:
    def test_scalar_kit_classes(self):
        from repro.cache.setassoc import SetAssociativeArray
        from repro.signatures.bloom import BankedBloomFilter, BloomFilter
        from repro.sim.stats import Histogram

        kit = kit_for("scalar")
        assert kit is SCALAR_KIT
        assert kit.bloom_cls is BloomFilter
        assert kit.banked_bloom_cls is BankedBloomFilter
        assert kit.setassoc_cls is SetAssociativeArray
        assert kit.histogram_cls is Histogram

    @pytest.mark.skipif(not numpy_available(), reason="needs numpy")
    def test_vector_kit_classes(self):
        from repro.kernels.signatures import (
            VectorBankedBloomFilter,
            VectorBloomFilter,
        )
        from repro.kernels.setassoc import VectorSetAssociativeArray
        from repro.kernels.stats import VectorHistogram

        kit = kit_for("vectorized")
        assert kit is VECTOR_KIT
        assert kit.bloom_cls is VectorBloomFilter
        assert kit.banked_bloom_cls is VectorBankedBloomFilter
        assert kit.setassoc_cls is VectorSetAssociativeArray
        assert kit.histogram_cls is VectorHistogram
        assert not kit.batched

    @pytest.mark.skipif(not numpy_available(), reason="needs numpy")
    def test_batched_kit_classes(self):
        """Scalar per-op structures, vector stage-then-flush kernels."""
        from repro.cache.setassoc import SetAssociativeArray
        from repro.kernels.stats import VectorHistogram
        from repro.signatures.bloom import BloomFilter

        kit = kit_for("batched")
        assert kit.batched
        assert kit.bloom_cls is BloomFilter
        assert kit.setassoc_cls is SetAssociativeArray
        assert kit.histogram_cls is VectorHistogram

    @pytest.mark.skipif(not numpy_available(), reason="needs numpy")
    def test_batched_system_installs_dispatcher(self):
        from repro.htm.batch import BatchDispatcher
        from repro.params import HTMConfig, MachineConfig
        from repro.runtime.system import System

        system = System(
            MachineConfig.scaled(1 / 64, cores=2), HTMConfig(), engine="batched"
        )
        assert isinstance(system.htm.batch, BatchDispatcher)
        assert system.epoch_stats is not None

        scalar = System(
            MachineConfig.scaled(1 / 64, cores=2), HTMConfig(), engine="scalar"
        )
        assert scalar.htm.batch is None
        assert scalar.epoch_stats is None


class TestNumpyMissing:
    """Behaviour when the optional extra is not installed.

    Simulated by blanking the module-level numpy reference in the single
    import gate every kernel goes through.
    """

    @pytest.fixture(autouse=True)
    def no_numpy(self, monkeypatch):
        monkeypatch.setattr("repro.kernels._np.numpy", None)

    def test_vectorized_raises_clear_error(self):
        with pytest.raises(ConfigError) as excinfo:
            resolve_engine("vectorized")
        assert str(excinfo.value) == NUMPY_MISSING_MSG
        assert "pip install repro[vectorized]" in str(excinfo.value)
        assert "engine='auto'" in str(excinfo.value)

    def test_batched_raises_same_install_hint(self):
        with pytest.raises(ConfigError) as excinfo:
            resolve_engine("batched")
        assert str(excinfo.value) == NUMPY_MISSING_MSG
        assert "pip install repro[vectorized]" in str(excinfo.value)

    def test_auto_falls_back_to_scalar(self):
        assert resolve_engine("auto") == "scalar"
        assert kit_for("auto").name == "scalar"

    def test_env_var_auto_falls_back(self, monkeypatch):
        monkeypatch.setenv(ENGINE_ENV_VAR, "auto")
        assert resolve_engine(None) == "scalar"

    def test_scalar_system_still_builds(self):
        from repro.params import HTMConfig, MachineConfig
        from repro.runtime.system import System

        system = System(
            MachineConfig.scaled(1 / 64, cores=2), HTMConfig(), engine="scalar"
        )
        assert system.engine_name == "scalar"

    def test_vectorized_system_raises(self):
        from repro.params import HTMConfig, MachineConfig
        from repro.runtime.system import System

        with pytest.raises(ConfigError):
            System(
                MachineConfig.scaled(1 / 64, cores=2),
                HTMConfig(),
                engine="vectorized",
            )

    def test_batched_system_raises(self):
        from repro.params import HTMConfig, MachineConfig
        from repro.runtime.system import System

        with pytest.raises(ConfigError):
            System(
                MachineConfig.scaled(1 / 64, cores=2),
                HTMConfig(),
                engine="batched",
            )


def tiny_spec(**overrides):
    from repro.harness.config import ExperimentSpec, consolidated
    from repro.params import HTMConfig
    from repro.workloads import WorkloadParams

    base = ExperimentSpec(
        name="engine-tiny",
        htm=HTMConfig(),
        benchmarks=consolidated(
            "hashmap",
            1,
            WorkloadParams(
                threads=2,
                txs_per_thread=2,
                value_bytes=16 << 10,
                keys=64,
                initial_fill=16,
            ),
        ),
        scale=1 / 64,
        cores=2,
    )
    return dataclasses.replace(base, **overrides)


class TestSpecEngineField:
    def tiny_spec(self, **overrides):
        return tiny_spec(**overrides)

    def test_engine_validated(self):
        for engine in ENGINE_CHOICES:
            assert self.tiny_spec(engine=engine).engine == engine
        with pytest.raises(ConfigError):
            self.tiny_spec(engine="simd")

    def test_fingerprint_ignores_engine(self):
        from repro.harness.cache import spec_fingerprint

        scalar = self.tiny_spec(engine="scalar")
        vector = self.tiny_spec(engine="vectorized")
        batched = self.tiny_spec(engine="batched")
        default = self.tiny_spec()
        assert spec_fingerprint(scalar) == spec_fingerprint(vector)
        assert spec_fingerprint(scalar) == spec_fingerprint(batched)
        assert spec_fingerprint(scalar) == spec_fingerprint(default)

    def test_fingerprint_still_separates_real_knobs(self):
        from repro.harness.cache import spec_fingerprint

        base = self.tiny_spec(engine="scalar")
        other = dataclasses.replace(base, seed=base.seed + 1)
        assert spec_fingerprint(base) != spec_fingerprint(other)


class TestStatsInjection:
    def test_registry_uses_injected_histogram_cls(self):
        from repro.sim.stats import Histogram, StatsRegistry

        class Marker(Histogram):
            __slots__ = ()

        registry = StatsRegistry(histogram_cls=Marker)
        assert type(registry.histogram("lat")) is Marker
        default = StatsRegistry()
        assert type(default.histogram("lat")) is Histogram
