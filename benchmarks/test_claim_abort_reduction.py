"""Section IV-D claim: staged detection + isolation slash the abort rate.

Paper: "UHTM's novel conflict detection scheme reduces the abort rate of
durable transactions from 99% to 9% by removing most of false positives of
address signatures" — via two steps: all-traffic signatures (>99%), staged
LLC-miss-only checks (26%), conflict-domain isolation (9%).
"""

from __future__ import annotations

from repro.harness.figures import abort_claim


def test_abort_claim(benchmark, quick, show):
    result = benchmark.pedantic(
        lambda: abort_claim(quick=quick), rounds=1, iterations=1
    )
    show(result)
    rates = {row[0]: row[1] for row in result.rows}
    # The paper's ordering: each stage strictly improves on the last.
    assert rates["signature_only"] > 0.9  # effectively no forward progress
    assert rates["uhtm_sig"] < rates["signature_only"] * 0.6
    assert rates["uhtm_opt"] <= rates["uhtm_sig"]
    assert rates["uhtm_opt"] < 0.5
