"""On-chip cache hierarchy with a transactional coherence directory.

Private per-core L1s and a shared, inclusive LLC are modelled as tag arrays
(line metadata only — data values live in the backing stores and in
per-transaction write buffers, mirroring how speculative data is held in the
cache while committed data lives in memory).

The directory extends MESI-style tracking with the paper's ``Tx-bit`` /
``Tx-Owner`` / ``Tx-Sharer`` fields and raises precise conflicts for
cache-resident lines.  Eviction callbacks notify the HTM design when
transactional lines fall out of the L1 (overflow-list maintenance) or the
LLC (capacity overflow / signature insertion).
"""

from .coherence import (
    CoherenceRequest,
    MesiState,
    check_swmr,
    next_state_for_holder,
    next_state_for_requester,
)
from .directory import Directory, DirectoryConflict, DirectoryEntry
from .hierarchy import AccessResult, CacheHierarchy
from .setassoc import CacheLineMeta, SetAssociativeArray

__all__ = [
    "CoherenceRequest",
    "MesiState",
    "check_swmr",
    "next_state_for_holder",
    "next_state_for_requester",
    "Directory",
    "DirectoryConflict",
    "DirectoryEntry",
    "AccessResult",
    "CacheHierarchy",
    "CacheLineMeta",
    "SetAssociativeArray",
]
