"""A simple line-aligned allocator over one heap region.

The transactional heap allocates node and payload storage from here.  A bump
pointer serves fresh blocks; freed blocks go to per-size free lists so
abort/retry loops and delete-heavy workloads do not leak the region.  All
allocations are rounded up to cache-line multiples so distinct objects never
share a line — matching how the paper's benchmarks allocate pool objects and
keeping false sharing out of the conflict statistics.
"""

from __future__ import annotations

from collections import defaultdict
from typing import DefaultDict, List

from ..errors import AllocationError
from ..params import LINE_SIZE
from .address import Region


def _round_up_lines(size: int) -> int:
    if size <= 0:
        raise AllocationError(f"allocation size must be positive, got {size}")
    return (size + LINE_SIZE - 1) // LINE_SIZE * LINE_SIZE


class RegionAllocator:
    """Bump allocation plus size-class free lists for one region."""

    def __init__(self, region: Region) -> None:
        self._region = region
        self._next = region.base
        self._free: DefaultDict[int, List[int]] = defaultdict(list)
        self._allocated_bytes = 0

    @property
    def region(self) -> Region:
        return self._region

    @property
    def allocated_bytes(self) -> int:
        """Bytes currently handed out (excludes free-listed blocks)."""
        return self._allocated_bytes

    @property
    def high_water_bytes(self) -> int:
        """Peak region usage by the bump pointer."""
        return self._next - self._region.base

    def alloc(self, size: int) -> int:
        """Allocate ``size`` bytes; returns a line-aligned base address."""
        rounded = _round_up_lines(size)
        free_list = self._free.get(rounded)
        if free_list:
            addr = free_list.pop()
        else:
            addr = self._next
            if addr + rounded > self._region.end:
                raise AllocationError(
                    f"{self._region.kind.value} heap exhausted: "
                    f"need {rounded} bytes, "
                    f"{self._region.end - addr} remain"
                )
            self._next += rounded
        self._allocated_bytes += rounded
        return addr

    def free(self, addr: int, size: int) -> None:
        """Return a block to its size-class free list."""
        rounded = _round_up_lines(size)
        if not self._region.contains(addr):
            raise AllocationError(f"free of {addr:#x} outside region")
        self._free[rounded].append(addr)
        self._allocated_bytes -= rounded

    def reset(self) -> None:
        """Drop all allocations (used between experiment repetitions)."""
        self._next = self._region.base
        self._free.clear()
        self._allocated_bytes = 0
