"""Exception hierarchy for the UHTM reproduction.

Every error raised by the library derives from :class:`ReproError` so callers
can catch library failures without masking programming errors.  Transaction
aborts are *control flow*, not failures: :class:`TransactionAborted` unwinds a
speculative execution back to the retry loop, exactly as a hardware abort
rolls the architectural state back to the ``xbegin`` checkpoint.
"""

from __future__ import annotations

import enum


class ReproError(Exception):
    """Base class for all errors raised by this library."""


class ConfigError(ReproError):
    """An invalid or inconsistent configuration value."""


class AllocationError(ReproError):
    """The simulated allocator ran out of space in a memory region."""


class AddressError(ReproError):
    """An address fell outside any mapped memory region."""


class LogOverflowError(ReproError):
    """A hardware log area ran out of reserved space."""


class SimulationError(ReproError):
    """The discrete-event engine reached an inconsistent state."""


class RecoveryError(ReproError):
    """Post-crash recovery found a malformed or inconsistent log."""


class PowerFailure(ReproError):
    """A simulated power failure cut the machine mid-operation.

    Raised by an armed :class:`repro.faults.FaultInjector` at its crash
    point; it unwinds the entire simulation (through workload generators and
    the engine run loop) back to the fault-campaign driver, which then wipes
    volatile state and runs recovery.  Like :class:`TransactionAborted` it is
    control flow, not a failure of the library.
    """

    def __init__(self, description: str) -> None:
        super().__init__(f"power failure: {description}")
        self.description = description


class AbortReason(enum.Enum):
    """Why a transaction was aborted.

    The harness decomposes abort counts by these reasons to regenerate the
    paper's Figure 7 (true conflicts vs. false positives vs. capacity
    overflows).
    """

    #: A genuine data conflict detected through the coherence directory.
    CONFLICT_COHERENCE = "conflict_coherence"
    #: A genuine data conflict on an LLC-overflowed line (signature hit that
    #: corresponds to a real address overlap).
    CONFLICT_TRUE = "conflict_true"
    #: A signature hit with no real address overlap (Bloom-filter aliasing).
    FALSE_POSITIVE = "false_positive"
    #: The transaction exceeded the design's capacity bound (bounded HTMs).
    CAPACITY = "capacity"
    #: A non-transactional access (e.g. a co-running process) collided with
    #: the transaction's footprint.
    NON_TX_CONFLICT = "non_tx_conflict"
    #: The fallback lock was acquired by another thread, killing all
    #: speculative transactions in the conflict domain (Algorithm 1).
    LOCK_PREEMPTED = "lock_preempted"
    #: The user requested an explicit abort.
    EXPLICIT = "explicit"


class TransactionAborted(ReproError):
    """Unwinds a speculative execution back to its retry loop.

    Attributes:
        reason: why the hardware aborted the transaction.
        tx_id: the aborted transaction's identifier.
    """

    def __init__(self, reason: AbortReason, tx_id: int) -> None:
        super().__init__(f"transaction {tx_id} aborted: {reason.value}")
        self.reason = reason
        self.tx_id = tx_id


class TransactionStateError(ReproError):
    """A transactional operation was issued in an invalid state."""
