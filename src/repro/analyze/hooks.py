"""HOOK003 — fault-hook guards.

The fault-injection campaigns of PR 1 thread optional hooks through the
machine: ``fault_injector`` on the controller and engine, ``on_nvm_commit``
and ``on_nontx_nvm_store`` for the crash oracle, ``pre_compact`` on the
hardware log, and the hierarchy's eviction callbacks.  All of them are
``None`` outside a campaign, so every invocation site must be None-guarded —
an unguarded call crashes every plain simulation run, and the failure only
shows up once the code path is hot.

A hook usage counts as guarded when

* an enclosing ``if``/ternary test mentions the same hook expression
  (``if self.fault_injector is not None: ...``, including inside ``and``
  chains), or
* an earlier statement in the same function bails out on ``None``
  (``if injector is None: return``), or
* it is asserted non-None first.

Aliases are tracked (``injector = self.controller.fault_injector``) so the
idiomatic read-once-then-guard pattern passes.
"""

from __future__ import annotations

import ast
from typing import Dict, Iterable, List, Optional, Tuple

from .core import Checker, Finding, Project, SourceFile, ancestors, parent_of, register

#: Optional hook attributes wired by ``System.install_fault_injector`` and
#: the HTM construction path.  ``None`` means "no campaign / no design hook".
HOOK_ATTRS = frozenset(
    {
        "fault_injector",
        "on_nvm_commit",
        "on_nontx_nvm_store",
        "pre_compact",
        "on_l1_evict",
        "on_llc_evict",
    }
)


def _is_hook_attribute(node: ast.AST) -> bool:
    return isinstance(node, ast.Attribute) and node.attr in HOOK_ATTRS


def _scopes(tree: ast.AST) -> Iterable[ast.AST]:
    yield tree
    for node in ast.walk(tree):
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
            yield node


def _own_statements(scope: ast.AST) -> List[ast.stmt]:
    return list(getattr(scope, "body", []))


# -- shared guard machinery (also used by TRC009's tracer-emit checks) -------


def scope_nodes(scope: ast.AST) -> List[ast.AST]:
    """One scope's nodes, minus nested function bodies (those get their
    own pass with their own aliases)."""
    nodes: List[ast.AST] = []
    stack: List[ast.AST] = list(getattr(scope, "body", []))
    while stack:
        node = stack.pop()
        nodes.append(node)
        for child in ast.iter_child_nodes(node):
            if isinstance(child, (ast.FunctionDef, ast.AsyncFunctionDef)):
                continue
            stack.append(child)
    return nodes


def statement_in(scope: ast.AST, node: ast.AST) -> Optional[ast.stmt]:
    """The scope-level statement containing ``node``."""
    own = _own_statements(scope)
    current: Optional[ast.AST] = node
    while current is not None:
        if current in own:
            return current  # type: ignore[return-value]
        current = parent_of(current)
    return None


def is_bailout(statement: ast.stmt, root_text: str) -> bool:
    """``if <root> is None: return/raise/continue/break`` (or similar)."""
    if not isinstance(statement, ast.If):
        return False
    if root_text not in ast.unparse(statement.test):
        return False
    last = statement.body[-1] if statement.body else None
    return isinstance(last, (ast.Return, ast.Raise, ast.Continue, ast.Break))


def is_guarded(node: ast.AST, scope: ast.AST, root_text: str) -> bool:
    """Is a use of ``root_text`` None-guarded within ``scope``?

    True when an enclosing ``if``/ternary/``while`` test mentions the
    expression, an earlier scope-level statement bails out on it, or it is
    asserted first — the same convention HOOK003 enforces for fault hooks.
    """
    for ancestor in ancestors(node):
        if ancestor is scope:
            break
        test = None
        if isinstance(ancestor, ast.If):
            test = ancestor.test
        elif isinstance(ancestor, ast.IfExp):
            # Only the chosen branches are guarded, not the test itself.
            if node is not ancestor.test:
                test = ancestor.test
        elif isinstance(ancestor, ast.While):
            test = ancestor.test
        if test is not None and root_text in ast.unparse(test):
            return True
    containing = statement_in(scope, node)
    for statement in _own_statements(scope):
        if statement is containing:
            break
        if is_bailout(statement, root_text):
            return True
        if isinstance(statement, ast.Assert) and root_text in ast.unparse(
            statement.test
        ):
            return True
    return False


@register
class HookGuardChecker(Checker):
    rule = "HOOK003"
    description = "every optional fault/eviction hook must be None-guarded"

    def check(self, source: SourceFile, project: Project) -> Iterable[Finding]:
        findings: List[Finding] = []
        seen: set = set()
        for scope in _scopes(source.tree):
            nodes = self._scope_nodes(scope)
            aliases = self._collect_aliases(nodes)
            for node in nodes:
                usage = self._hook_usage(node, aliases)
                if usage is None:
                    continue
                root_text, usage_node = usage
                key = (id(usage_node), root_text)
                if key in seen:
                    continue
                seen.add(key)
                if self._is_guarded(usage_node, scope, root_text):
                    continue
                findings.append(
                    self.finding(
                        source,
                        usage_node,
                        f"hook '{root_text}' is invoked without a None "
                        "guard; it is None outside fault campaigns — test "
                        f"'if {root_text} is not None' first",
                    )
                )
        return findings

    @staticmethod
    def _scope_nodes(scope: ast.AST) -> List[ast.AST]:
        return scope_nodes(scope)

    @staticmethod
    def _collect_aliases(nodes: Iterable[ast.AST]) -> Dict[str, str]:
        """Local names assigned from a hook attribute."""
        aliases: Dict[str, str] = {}
        for node in nodes:
            if (
                isinstance(node, ast.Assign)
                and len(node.targets) == 1
                and isinstance(node.targets[0], ast.Name)
                and _is_hook_attribute(node.value)
            ):
                aliases[node.targets[0].id] = ast.unparse(node.value)
        return aliases

    def _hook_usage(
        self, node: ast.AST, aliases: Dict[str, str]
    ) -> Optional[Tuple[str, ast.AST]]:
        """Return ``(hook expression text, node to report)`` if ``node``
        *uses* a hook (calls it, calls a method on it, or dereferences it)."""
        if not isinstance(node, ast.Call):
            return None
        head = node.func
        # hook() — the hook itself is callable (pre_compact, on_* callbacks).
        if _is_hook_attribute(head):
            return ast.unparse(head), node
        if isinstance(head, ast.Name) and head.id in aliases:
            return head.id, node
        # hook.method(...) — a method call on the hook object.
        if isinstance(head, ast.Attribute):
            if _is_hook_attribute(head.value):
                return ast.unparse(head.value), node
            if isinstance(head.value, ast.Name) and head.value.id in aliases:
                return head.value.id, node
        return None

    def _is_guarded(self, node: ast.AST, scope: ast.AST, root_text: str) -> bool:
        return is_guarded(node, scope, root_text)

    @staticmethod
    def _statement_in(scope: ast.AST, node: ast.AST) -> Optional[ast.stmt]:
        return statement_in(scope, node)

    @staticmethod
    def _is_bailout(statement: ast.stmt, root_text: str) -> bool:
        return is_bailout(statement, root_text)
