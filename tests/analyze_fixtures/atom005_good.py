"""Good: every published path goes through stage-then-rename (or "x")."""

import dataclasses
import json
import os


def write_json_atomic(path, payload):
    tmp = path.with_name(path.name + ".tmp")
    tmp.write_text(json.dumps(payload))
    tmp.replace(path)


def peek_lease(path):
    return None


def publish_points(store, meta, payload):
    points = store.points_path(meta.campaign_id)
    tmp = points.with_name(points.name + ".tmp")
    tmp.write_text(json.dumps(payload))
    tmp.replace(points)


def publish_meta_via_os_replace(store, meta, payload):
    target = store.meta_path(meta.campaign_id)
    tmp = target.with_suffix(".tmp")
    tmp.write_text(json.dumps(payload))
    os.replace(tmp, target)


def claim(store, campaign_id, index, lease):
    path = store.lease_path(campaign_id, index)
    with path.open("x") as handle:  # exclusive create IS the atomic claim
        handle.write(json.dumps(lease))


def steal_with_read_back(store, campaign_id, index, lease):
    path = store.lease_path(campaign_id, index)
    write_json_atomic(path, lease)
    current = peek_lease(path)  # whose token actually landed?
    return current


def replace_decoys(spec, text):
    renamed = text.replace("old", "new")  # str.replace: not a publication
    tweaked = dataclasses.replace(spec, seed=1)
    return renamed, tweaked
