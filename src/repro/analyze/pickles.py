"""PKL006 — the pickle boundary.

Grid points cross two serialisation boundaries: ``ProcessPoolExecutor``
ships every ``submit``/``map`` argument to a worker process, and the spool
store base64-pickles ``JobRecord`` spec fields verbatim
(serve/jobstore.py).  Both fail at *runtime*, far from the mistake, when a
value captures something process-local: a lambda or nested function (not
importable by name), an open file handle, a ``threading`` lock, or a live
tracer (ring buffers and callbacks; obs/capture.py attaches per-worker
tracers inside the worker for exactly this reason).

This checker resolves the values flowing into those sinks through the
scope's single-assignment environment and flags any that are provably
unpicklable.  It follows values into tuple/list/set/dict displays one
level deep; what it cannot resolve it leaves to the harness's
``verify_sample`` tripwire and the serve e2e tests.
"""

from __future__ import annotations

import ast
from typing import Iterable, List, Optional, Set, Tuple

from .core import Checker, Finding, Project, SourceFile, register
from .dataflow import (
    call_terminal,
    iter_own_nodes,
    resolve_value,
    single_assignments,
)
from .protocol import (
    LOCK_CONSTRUCTORS,
    PICKLED_CONSTRUCTOR_FIELDS,
    PICKLING_HELPERS,
    PROCESS_POOL_CONSTRUCTORS,
    TRACER_CONSTRUCTORS,
)


def _scopes(tree: ast.AST) -> Iterable[ast.AST]:
    yield tree
    for node in ast.walk(tree):
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
            yield node


@register
class PickleBoundaryChecker(Checker):
    rule = "PKL006"
    description = (
        "values crossing the pickle boundary (executor submit/map, pickled "
        "spec fields) must not capture lambdas, nested functions, open "
        "handles, locks, or tracers"
    )

    def check(self, source: SourceFile, project: Project) -> Iterable[Finding]:
        findings: List[Finding] = []
        for scope in _scopes(source.tree):
            findings.extend(self._check_scope(source, scope))
        return findings

    def _check_scope(
        self, source: SourceFile, scope: ast.AST
    ) -> Iterable[Finding]:
        env = single_assignments(scope)
        nested_functions: Set[str] = set()
        if isinstance(scope, (ast.FunctionDef, ast.AsyncFunctionDef)):
            nested_functions = {
                child.name
                for child in ast.walk(scope)
                if isinstance(child, (ast.FunctionDef, ast.AsyncFunctionDef))
                and child is not scope
            }
        pools = self._pool_names(env)
        for node in iter_own_nodes(scope):
            if not isinstance(node, ast.Call):
                continue
            for value, boundary in self._boundary_values(node, env, pools):
                reason = self._unpicklable(value, env, nested_functions)
                if reason is not None:
                    yield self.finding(
                        source,
                        value if hasattr(value, "lineno") else node,
                        f"{reason} flows into {boundary}; it cannot cross "
                        "the pickle boundary — pass a module-level "
                        "function / plain data and rebuild process-local "
                        "state inside the worker",
                    )

    @staticmethod
    def _pool_names(env: dict) -> Set[str]:
        """Names bound (incl. ``with ... as pool``) to a process pool."""
        return {
            name
            for name, value in env.items()
            if isinstance(value, ast.Call)
            and call_terminal(value) in PROCESS_POOL_CONSTRUCTORS
        }

    def _boundary_values(
        self, call: ast.Call, env: dict, pools: Set[str]
    ) -> Iterable[Tuple[ast.AST, str]]:
        """``(value expression, boundary description)`` pairs for ``call``."""
        head = call.func
        # pool.submit(fn, *args) / pool.map(fn, iterable): everything ships.
        if (
            isinstance(head, ast.Attribute)
            and head.attr in ("submit", "map")
            and self._is_pool(head.value, env, pools)
        ):
            boundary = f"ProcessPoolExecutor.{head.attr}"
            for arg in call.args:
                yield arg, boundary
            for keyword in call.keywords:
                yield keyword.value, boundary
            return
        terminal = call_terminal(call)
        # pickle.dumps(x) and the spool's base64 wrapper.
        if terminal == "dumps" or terminal in PICKLING_HELPERS:
            if (
                terminal == "dumps"
                and not (
                    isinstance(head, ast.Attribute)
                    and isinstance(head.value, ast.Name)
                    and head.value.id == "pickle"
                )
            ):
                return  # json.dumps and friends are not a pickle boundary
            for arg in call.args:
                yield arg, f"{terminal}()"
            return
        # Declared pickled constructor fields (JobRecord(spec=..., key=...)).
        fields = PICKLED_CONSTRUCTOR_FIELDS.get(terminal or "")
        if fields:
            for keyword in call.keywords:
                if keyword.arg in fields:
                    yield (
                        keyword.value,
                        f"the pickled field {terminal}.{keyword.arg}",
                    )

    @staticmethod
    def _is_pool(receiver: ast.AST, env: dict, pools: Set[str]) -> bool:
        if isinstance(receiver, ast.Name) and receiver.id in pools:
            return True
        value = resolve_value(receiver, env)
        return (
            isinstance(value, ast.Call)
            and call_terminal(value) in PROCESS_POOL_CONSTRUCTORS
        )

    def _unpicklable(
        self,
        expr: ast.AST,
        env: dict,
        nested_functions: Set[str],
        depth: int = 3,
    ) -> Optional[str]:
        if depth <= 0:
            return None
        value = resolve_value(expr, env)
        if value is None:
            return None
        if isinstance(value, ast.Lambda):
            return "a lambda"
        if isinstance(value, ast.Name) and value.id in nested_functions:
            return f"the nested function '{value.id}'"
        if isinstance(value, ast.Call):
            terminal = call_terminal(value)
            if terminal == "open":
                return "an open file handle"
            if terminal in LOCK_CONSTRUCTORS:
                return f"a threading.{terminal}"
            if terminal in TRACER_CONSTRUCTORS:
                return "a live tracer"
        if isinstance(value, ast.Attribute) and value.attr == "tracer":
            return "a tracer reference"
        # One container level: displays whose elements are themselves bad.
        elements: List[ast.AST] = []
        if isinstance(value, (ast.Tuple, ast.List, ast.Set)):
            elements = list(value.elts)
        elif isinstance(value, ast.Dict):
            elements = [k for k in value.keys if k is not None]
            elements += list(value.values)
        for element in elements:
            reason = self._unpicklable(
                element, env, nested_functions, depth - 1
            )
            if reason is not None:
                return reason
        return None
