"""The ``python -m repro trace`` entry point, end to end."""

from __future__ import annotations

import json

import pytest

from repro.obs.cli import TRACE_WORKLOADS, main


class TestTraceCli:
    def test_workload_trace_writes_chrome_json(self, tmp_path, capsys):
        out = tmp_path / "trace.json"
        rc = main(["hashmap", "--out", str(out)])
        assert rc == 0
        doc = json.loads(out.read_text())
        assert doc["displayTimeUnit"] == "ns"
        assert any(e["ph"] == "X" for e in doc["traceEvents"])
        assert str(out) in capsys.readouterr().out

    def test_report_cross_checks_counters(self, tmp_path, capsys):
        rc = main(
            ["hashmap", "--out", str(tmp_path / "t.json"), "--report"]
        )
        assert rc == 0
        output = capsys.readouterr().out
        assert "Abort forensics" in output
        assert "matches" in output

    def test_figure_grid_with_point_limit(self, tmp_path):
        out = tmp_path / "fig7.json"
        rc = main(
            [
                "fig7",
                "--out",
                str(out),
                "--points",
                "1",
                "--report",
            ]
        )
        assert rc == 0
        doc = json.loads(out.read_text())
        metadata = [e for e in doc["traceEvents"] if e["ph"] == "M"]
        assert len(metadata) == 1  # one traced run -> one pid

    def test_jsonl_sidecar(self, tmp_path):
        jsonl = tmp_path / "events.jsonl"
        rc = main(
            [
                "hashmap",
                "--out",
                str(tmp_path / "t.json"),
                "--jsonl",
                str(jsonl),
            ]
        )
        assert rc == 0
        lines = jsonl.read_text().splitlines()
        assert lines
        assert all(json.loads(line)["kind"] for line in lines)

    def test_unknown_target_is_an_error(self):
        with pytest.raises(SystemExit):
            main(["not-a-target"])

    def test_workload_list_excludes_corunners(self):
        assert "membound" not in TRACE_WORKLOADS
        assert "graphhog" not in TRACE_WORKLOADS
