"""Generic parameter sweeps over experiment specifications.

For custom studies beyond the paper's figures: build a grid of
(HTM design x workload parameter) points, run them all, and get back a
:class:`FigureResult` ready for printing or export.

Example::

    from repro.harness.sweep import SweepAxis, run_sweep

    result = run_sweep(
        base=ExperimentSpec(...),
        axes=[
            SweepAxis("sig_bits", [512, 1024, 4096],
                      lambda spec, bits: replace_signature(spec, bits)),
            SweepAxis("footprint", [100, 300],
                      lambda spec, kb: replace_footprint(spec, kb)),
        ],
        metrics={"tput": lambda run: run.throughput},
    )
"""

from __future__ import annotations

import dataclasses
import itertools
from dataclasses import dataclass
from typing import Any, Callable, Dict, List, Optional, Sequence

from ..params import SignatureConfig
from .cache import ResultCache
from .config import BenchmarkSpec, ExperimentSpec
from .metrics import RunResult
from .parallel import GridPoint, run_grid
from .report import FigureResult

SpecTransform = Callable[[ExperimentSpec, Any], ExperimentSpec]
MetricFn = Callable[[RunResult], Any]


@dataclass(frozen=True)
class SweepAxis:
    """One swept dimension: a label, its values, and how to apply one."""

    name: str
    values: Sequence[Any]
    apply: SpecTransform


def build_grid(
    base: ExperimentSpec, axes: Sequence[SweepAxis]
) -> List[GridPoint]:
    """Materialise the full cross product of axis values over ``base``.

    Points come back in ``itertools.product`` order — the last axis varies
    fastest — and each point's ``key`` is its combo tuple.  Construction is
    pure and deterministic: the same (base, axes) always yields the same
    points in the same order, which is what lets the executor promise
    order-stable results for any ``jobs``.
    """
    if not axes:
        raise ValueError("a sweep needs at least one axis")
    points: List[GridPoint] = []
    for combo in itertools.product(*(axis.values for axis in axes)):
        spec = base
        for axis, value in zip(axes, combo):
            spec = axis.apply(spec, value)
        points.append(GridPoint(spec=spec, key=tuple(combo)))
    return points


def run_sweep(
    base: ExperimentSpec,
    axes: Sequence[SweepAxis],
    metrics: Dict[str, MetricFn],
    title: str = "parameter sweep",
    jobs: int = 1,
    cache: Optional[ResultCache] = None,
) -> FigureResult:
    """Run the full cross product of axis values over ``base``.

    ``jobs > 1`` fans the grid out over a process pool; ``cache`` serves
    unchanged points from disk.  Both are transparent: the returned rows
    are bit-identical for every (jobs, cache) combination.
    """
    if not metrics:
        raise ValueError("a sweep needs at least one metric")
    points = build_grid(base, axes)
    columns = [axis.name for axis in axes] + list(metrics)
    result = FigureResult("Sweep", title, columns)
    for point, run in zip(points, run_grid(points, jobs=jobs, cache=cache)):
        row = list(point.key) + [fn(run) for fn in metrics.values()]
        result.rows.append(row)
    return result


# -- common transforms ---------------------------------------------------------


def with_design(spec: ExperimentSpec, design: str) -> ExperimentSpec:
    return dataclasses.replace(
        spec, htm=dataclasses.replace(spec.htm, design=design)
    )


def with_signature_bits(spec: ExperimentSpec, bits: int) -> ExperimentSpec:
    return dataclasses.replace(
        spec,
        htm=dataclasses.replace(
            spec.htm,
            signature=SignatureConfig(
                bits=bits,
                hash_functions=spec.htm.signature.hash_functions,
                banked=spec.htm.signature.banked,
            ),
        ),
    )


def with_isolation(spec: ExperimentSpec, isolation: bool) -> ExperimentSpec:
    return dataclasses.replace(
        spec, htm=dataclasses.replace(spec.htm, isolation=isolation)
    )


def with_value_bytes(spec: ExperimentSpec, value_bytes: int) -> ExperimentSpec:
    benchmarks = tuple(
        BenchmarkSpec(
            bench.workload,
            bench.params.with_(value_bytes=value_bytes),
            bench.kwargs,
        )
        for bench in spec.benchmarks
    )
    return dataclasses.replace(spec, benchmarks=benchmarks)


def with_seed(spec: ExperimentSpec, seed: int) -> ExperimentSpec:
    return dataclasses.replace(spec, seed=seed)
