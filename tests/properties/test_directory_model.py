"""Hypothesis model test: the directory vs a reference implementation."""

from __future__ import annotations

from collections import defaultdict

from hypothesis import given, settings, strategies as st

from repro.cache.directory import Directory


class ModelDirectory:
    """A dict-of-sets reference for owner/sharer tracking."""

    def __init__(self):
        self.owner = {}
        self.sharers = defaultdict(set)

    def record(self, line, tx, is_write):
        if is_write:
            self.owner[line] = tx
        else:
            self.sharers[line].add(tx)

    def clear_tx(self, tx):
        for line in list(self.owner):
            if self.owner[line] == tx:
                del self.owner[line]
        for line in list(self.sharers):
            self.sharers[line].discard(tx)
            if not self.sharers[line]:
                del self.sharers[line]

    def evict(self, line):
        self.owner.pop(line, None)
        self.sharers.pop(line, None)

    def conflicts(self, line, tx, is_write):
        victims = set()
        owner = self.owner.get(line)
        if is_write:
            if owner is not None and owner != tx:
                victims.add(owner)
            victims.update(t for t in self.sharers.get(line, ()) if t != tx)
        else:
            if owner is not None and owner != tx:
                victims.add(owner)
        return victims


operations = st.lists(
    st.one_of(
        st.tuples(st.just("record"), st.integers(0, 7),
                  st.integers(1, 5), st.booleans()),
        st.tuples(st.just("clear"), st.integers(1, 5)),
        st.tuples(st.just("evict"), st.integers(0, 7)),
        st.tuples(st.just("check"), st.integers(0, 7),
                  st.integers(1, 5), st.booleans()),
    ),
    max_size=80,
)


@settings(max_examples=60, deadline=None)
@given(ops=operations)
def test_directory_matches_model(ops):
    directory = Directory()
    model = ModelDirectory()
    for op in ops:
        if op[0] == "record":
            _, line, tx, is_write = op
            directory.record_access(line * 64, tx, is_write)
            model.record(line, tx, is_write)
        elif op[0] == "clear":
            directory.clear_transaction(op[1])
            model.clear_tx(op[1])
        elif op[0] == "evict":
            directory.evict_line(op[1] * 64)
            model.evict(op[1])
        else:
            _, line, tx, is_write = op
            conflict = directory.check_access(line * 64, tx, is_write)
            expected = model.conflicts(line, tx, is_write)
            got = set(conflict.victims) if conflict else set()
            assert got == expected, f"line {line} tx {tx} w={is_write}"
