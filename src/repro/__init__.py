"""UHTM: unbounded hardware transactional memory for hybrid DRAM/NVM memory.

A from-scratch reproduction of *"Unbounded Hardware Transactional Memory for
a Hybrid DRAM/NVM Memory System"* (MICRO 2020): a deterministic,
block-granularity simulator of the paper's machine — caches, directory
coherence, hardware logs, DRAM cache, address signatures — plus the four
evaluated HTM designs, the paper's benchmark suite, and a harness that
regenerates every figure of the evaluation.

Quick start::

    from repro import System, MachineConfig, HTMConfig
    from repro.workloads import HashMapWorkload

    system = System(MachineConfig.scaled(1 / 16), HTMConfig(design="uhtm"))
    ...

See ``examples/quickstart.py`` for a complete runnable program.
"""

from .errors import (
    AbortReason,
    AddressError,
    AllocationError,
    ConfigError,
    LogOverflowError,
    RecoveryError,
    ReproError,
    SimulationError,
    TransactionAborted,
    TransactionStateError,
)
from .params import (
    CacheGeometry,
    DramLogPolicy,
    HTMConfig,
    HTMDesign,
    LatencyConfig,
    LINE_SIZE,
    MachineConfig,
    MemoryConfig,
    SignatureConfig,
    WORD_SIZE,
)
from .mem.address import MemoryKind
from .runtime.system import System

__version__ = "1.0.0"

__all__ = [
    "AbortReason",
    "AddressError",
    "AllocationError",
    "ConfigError",
    "LogOverflowError",
    "RecoveryError",
    "ReproError",
    "SimulationError",
    "TransactionAborted",
    "TransactionStateError",
    "CacheGeometry",
    "DramLogPolicy",
    "HTMConfig",
    "HTMDesign",
    "LatencyConfig",
    "LINE_SIZE",
    "MachineConfig",
    "MemoryConfig",
    "SignatureConfig",
    "WORD_SIZE",
    "MemoryKind",
    "System",
    "__version__",
]
