"""LAY002 — protocol layering.

Two sub-checks, both derived from the DAG declared in
:mod:`repro.analyze.layers`:

* **import edges** — a package may import only the packages below it in the
  declared DAG.  A new ``from ..harness import ...`` inside ``htm/`` is an
  architecture change and must be made in ``layers.py``, in review, not by
  accident.
* **internals bypass** — ``htm/`` and ``workloads/`` must not read or write
  the controller's internals (``.dram``, ``.nvm``, ``.dram_log``,
  ``.nvm_log``, ``.dram_cache``, ``.backend``).  All off-chip data movement
  crosses a ``mem.controller`` / ``cache.hierarchy`` entry point, which is
  what lets the fault injector and the crash oracle observe every durable
  transition (PAPER.md §IV-B).
"""

from __future__ import annotations

import ast
from typing import Iterable, List, Optional

from .core import Checker, Finding, Project, SourceFile, register
from .layers import (
    CONTROLLER_NAMES,
    INTERNALS_RESTRICTED_PACKAGES,
    LAYER_DAG,
    MEM_INTERNAL_ATTRS,
    UNLAYERED_MODULES,
)


def _imported_package(
    node: ast.AST, package: Optional[str] = None
) -> Optional[str]:
    """The repro package a ``from``-import pulls from, if any.

    ``package`` is the importing file's own package: a single-dot relative
    import (``from .cache import ...`` inside ``harness/``) resolves to a
    sibling module of that package, not to a top-level package that happens
    to share the name.
    """
    if isinstance(node, ast.ImportFrom):
        if node.module is None:
            return None
        parts = node.module.split(".")
        if node.level == 1:
            # ``from .sibling import ...`` never leaves the source's package.
            return package
        if node.level > 1:
            # ``from ..cache.hierarchy import ...`` climbs to the repro root.
            return parts[0] if parts else None
        if parts[0] == "repro" and len(parts) > 1:
            return parts[1]
        return None
    if isinstance(node, ast.Import):
        for alias in node.names:
            parts = alias.name.split(".")
            if parts[0] == "repro" and len(parts) > 1:
                return parts[1]
    return None


def _receiver_terminal(node: ast.AST) -> Optional[str]:
    """The last name segment of an attribute receiver expression."""
    if isinstance(node, ast.Name):
        return node.id
    if isinstance(node, ast.Attribute):
        return node.attr
    return None


@register
class LayeringChecker(Checker):
    rule = "LAY002"
    description = (
        "imports must follow the declared layer DAG; htm/ and workloads/ "
        "must not touch controller internals directly"
    )

    def check(self, source: SourceFile, project: Project) -> Iterable[Finding]:
        findings: List[Finding] = []
        package = source.package
        in_repro = "repro" in source.path.parts
        if in_repro and package in LAYER_DAG:
            findings.extend(self._check_imports(source, package))
        if (
            package in INTERNALS_RESTRICTED_PACKAGES
            or (not in_repro and package is None)
        ):
            findings.extend(self._check_internals(source))
        return findings

    def _check_imports(self, source: SourceFile, package: str) -> Iterable[Finding]:
        allowed = LAYER_DAG[package] | UNLAYERED_MODULES | {package}
        for node in ast.walk(source.tree):
            if not isinstance(node, (ast.Import, ast.ImportFrom)):
                continue
            target = _imported_package(node, package)
            if target is None or target in allowed:
                continue
            if target not in LAYER_DAG and target not in UNLAYERED_MODULES:
                continue  # not a layered repro package (e.g. a sibling module)
            yield self.finding(
                source,
                node,
                f"package {package!r} may not import from {target!r} "
                f"(allowed: {', '.join(sorted(allowed))}); the layer DAG "
                "lives in repro/analyze/layers.py",
            )

    def _check_internals(self, source: SourceFile) -> Iterable[Finding]:
        for node in ast.walk(source.tree):
            if not isinstance(node, ast.Attribute):
                continue
            if node.attr not in MEM_INTERNAL_ATTRS:
                continue
            receiver = _receiver_terminal(node.value)
            if receiver not in CONTROLLER_NAMES:
                continue
            yield self.finding(
                source,
                node,
                f"direct access to controller internal '.{node.attr}' "
                "bypasses the mem.controller entry points; add or use a "
                "controller method instead",
            )
