#!/usr/bin/env python3
"""Trace-driven simulation: capture a workload once, replay it anywhere.

Records the committed memory operations of a hash-map workload running
under UHTM, saves the trace to disk, then replays the identical transaction
streams under every HTM design — the methodology for comparing designs on
*exactly* the same work, and the natural entry point for feeding this
simulator traces derived from real applications.

Run with:  python examples/trace_replay.py
"""

import os
import tempfile

from repro import HTMConfig, MachineConfig, System
from repro.sim.tracefile import MemoryTrace
from repro.workloads import TraceReplayWorkload, WORKLOADS, WorkloadParams


def capture() -> MemoryTrace:
    system = System(
        MachineConfig.scaled(1 / 16, cores=4),
        HTMConfig(design="uhtm"),
        seed=21,
        capture_trace=True,
    )
    proc = system.process("source")
    params = WorkloadParams(
        threads=4, txs_per_thread=6, value_bytes=64 << 10,
        keys=128, initial_fill=32,
    )
    workload = WORKLOADS["hashmap"](system, proc, params)
    workload.spawn()
    system.run()
    trace = system.captured_trace()
    print(f"captured {trace.total_txs()} transactions, "
          f"{trace.total_ops()} operations from {len(trace.threads)} threads")
    return trace


def replay(trace: MemoryTrace, design: str) -> None:
    system = System(
        MachineConfig.scaled(1 / 16, cores=4, cache_scale=1 / 1024),
        HTMConfig(design=design),
        seed=5,
    )
    proc = system.process("replay")
    workload = TraceReplayWorkload(system, proc, WorkloadParams(), trace)
    workload.spawn()
    system.run()
    assert workload.verify()
    print(f"  {design:14s} elapsed={system.elapsed_ns / 1e6:7.3f} ms  "
          f"aborts={system.stats.counter('tx.aborts'):3d}  "
          f"slow-paths={system.stats.counter('tx.slow_path_executions')}")


def main() -> None:
    trace = capture()

    # Round-trip through the on-disk format.
    with tempfile.NamedTemporaryFile(
        "w", suffix=".trace", delete=False
    ) as handle:
        trace.dump(handle)
        path = handle.name
    with open(path, encoding="utf-8") as handle:
        restored = MemoryTrace.load(handle)
    os.unlink(path)
    print(f"trace round-tripped through disk "
          f"({restored.total_ops()} ops intact)\n")

    print("replaying the identical transactions under each design "
          "(tiny caches, so the footprints overflow):")
    for design in ("llc_bounded", "signature_only", "uhtm", "ideal"):
        replay(restored, design)
    print("\ntrace replay OK")


if __name__ == "__main__":
    main()
