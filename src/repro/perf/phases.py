"""Manual phase timers over the simulator's hot entry points.

The profiler's function-level view is precise but scattered; performance
discussions about the simulator happen in terms of five *phases*:

* ``access`` — the cache hierarchy servicing loads and stores,
* ``signature`` — Bloom-signature probes for off-chip conflict checks,
* ``coherence`` — directory lookups and transactional bookkeeping,
* ``commit`` — the commit path (log sealing, write-set publication),
* ``stats`` — counter and histogram bookkeeping,
* ``epoch`` — the batched engine's fused block flushes (zero under the
  scalar and vectorized engines, which have no epoch dispatcher).

Under ``engine="batched"`` whole blocks run inside the epoch dispatcher's
fused loops, so the cache walk that would have been ``access`` time is
attributed to ``epoch`` instead; the staging calls the fused loops still
make (directory checks, signature probes, counter flushes) keep landing in
their own phases because attribution is exclusive.

:class:`PhaseTimers` patches the phase entry points at *class* level
(``StatsRegistry`` is slotted, so instances cannot be patched, and a class
patch also catches bound methods hoisted by systems built after
:meth:`attach`).  Attach before building any :class:`~repro.runtime.system.
System`, run, read :meth:`report`, then :meth:`detach`.

Time is attributed *exclusively*: a ``stats.incr`` issued from inside
``commit`` counts toward ``stats``, not ``commit``, so the phase totals
partition instrumented time and sum to less than the run's wall clock
(the remainder is workload logic, the engine loop, and the timers' own
overhead).  Instrumentation costs two clock reads per call on paths taken
millions of times per run — expect an instrumented run to be noticeably
slower; the *shares* are what the report is for.
"""

from __future__ import annotations

from time import perf_counter
from typing import Any, Dict, List, Tuple

#: Phase names, in the order reports print them.
PHASES = ("access", "signature", "coherence", "commit", "stats", "epoch")


class PhaseTimers:
    """Exclusive wall-time accounting per simulator phase."""

    def __init__(self) -> None:
        self.exclusive_s: Dict[str, float] = {p: 0.0 for p in PHASES}
        self.calls: Dict[str, int] = {p: 0 for p in PHASES}
        self._patched: List[Tuple[Any, str, str, Any]] = []
        # One frame per live instrumented call: [child_seconds, started_at].
        self._stack: List[List[float]] = []

    # -- patching ----------------------------------------------------------

    def attach(self) -> "PhaseTimers":
        """Instrument the phase entry points.  Idempotent per instance."""
        if self._patched:
            return self
        from ..cache.directory import Directory
        from ..cache.hierarchy import CacheHierarchy
        from ..htm import designs
        from ..htm.base import HTMSystem
        from ..htm.batch import BatchDispatcher
        from ..sim.stats import Histogram, StatsRegistry

        self._wrap(CacheHierarchy, "access", "access")
        # Every design funnels its filter probes through this one helper.
        self._wrap(designs, "_signature_hits", "signature")
        self._wrap(Directory, "check_access", "coherence")
        self._wrap(Directory, "record_access", "coherence")
        self._wrap(HTMSystem, "commit", "commit")
        self._wrap(StatsRegistry, "incr", "stats")
        self._wrap(StatsRegistry, "record", "stats")
        self._wrap(Histogram, "record", "stats")
        # The batched engine's epoch flushes: whole blocks run inside these
        # three fused entry points, whose inlined cache walk would otherwise
        # vanish from the phase totals.  Nested staging calls (directory,
        # signatures, stats) subtract out via the exclusive-time stack.
        self._wrap(BatchDispatcher, "tx_read_block", "epoch")
        self._wrap(BatchDispatcher, "tx_write_block", "epoch")
        self._wrap(BatchDispatcher, "nontx_rmw_block", "epoch")
        return self

    def detach(self) -> None:
        """Restore every patched entry point (safe to call twice)."""
        for owner, name, _phase, original in reversed(self._patched):
            setattr(owner, name, original)
        self._patched = []
        self._stack = []

    def __enter__(self) -> "PhaseTimers":
        return self.attach()

    def __exit__(self, *exc: Any) -> None:
        self.detach()

    def _wrap(self, owner: Any, name: str, phase: str) -> None:
        original = getattr(owner, name)
        stack = self._stack
        exclusive = self.exclusive_s
        calls = self.calls

        def timed(*args: Any, **kwargs: Any) -> Any:
            frame = [0.0, perf_counter()]
            stack.append(frame)
            try:
                return original(*args, **kwargs)
            finally:
                elapsed = perf_counter() - frame[1]
                stack.pop()
                exclusive[phase] += elapsed - frame[0]
                calls[phase] += 1
                if stack:
                    stack[-1][0] += elapsed

        timed.__name__ = f"timed_{name}"
        setattr(owner, name, timed)
        self._patched.append((owner, name, phase, original))

    # -- reporting ---------------------------------------------------------

    @property
    def attached(self) -> bool:
        return bool(self._patched)

    def total_s(self) -> float:
        """Seconds attributed to any phase (exclusive times sum cleanly)."""
        return sum(self.exclusive_s.values())

    def report(self) -> Dict[str, Dict[str, float]]:
        """Per-phase exclusive seconds, call counts, and share of phase time."""
        total = self.total_s()
        return {
            phase: {
                "seconds": round(self.exclusive_s[phase], 6),
                "calls": self.calls[phase],
                "share": round(self.exclusive_s[phase] / total, 4)
                if total
                else 0.0,
            }
            for phase in PHASES
        }
