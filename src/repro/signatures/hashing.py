"""Hash families for hardware Bloom-filter signatures.

Two implementations of the same interface:

* :class:`H3HashFamily` — the classic hardware H3 scheme (per-input-bit
  random masks XOR-folded into the output), the family Bulk and LogTM-SE
  assume.  Faithful but slow in Python; used in tests to validate the fast
  family's statistics.
* :class:`MultiplicativeHashFamily` — Fibonacci-style multiplicative mixing
  with per-function odd constants.  Statistically equivalent uniformity for
  line addresses at a fraction of the cost; the default in simulations.
"""

from __future__ import annotations

from typing import List, Sequence

from ..sim.rng import RngStreams

_MASK64 = (1 << 64) - 1


class HashFamily:
    """Interface: k independent functions from 64-bit ints to [0, buckets)."""

    def __init__(self, functions: int, buckets: int) -> None:
        if functions < 1:
            raise ValueError("need at least one hash function")
        if buckets < 1:
            raise ValueError("need at least one bucket")
        self.functions = functions
        self.buckets = buckets

    def indices(self, value: int) -> Sequence[int]:
        raise NotImplementedError


class H3HashFamily(HashFamily):
    """H3: output = XOR of random masks selected by the input's set bits."""

    INPUT_BITS = 48  # physical line addresses fit comfortably

    def __init__(self, functions: int, buckets: int, seed: int = 0x5EED) -> None:
        super().__init__(functions, buckets)
        rng = RngStreams(seed).stream("signatures.h3_masks")
        self._masks: List[List[int]] = [
            [rng.getrandbits(32) for _ in range(self.INPUT_BITS)]
            for _ in range(functions)
        ]

    def indices(self, value: int) -> Sequence[int]:
        out = []
        for masks in self._masks:
            acc = 0
            v = value & _MASK64
            bit = 0
            while v and bit < self.INPUT_BITS:
                if v & 1:
                    acc ^= masks[bit]
                v >>= 1
                bit += 1
            out.append(acc % self.buckets)
        return out


class MultiplicativeHashFamily(HashFamily):
    """Per-function odd multipliers with xor-shift finalisation."""

    def __init__(self, functions: int, buckets: int, seed: int = 0x5EED) -> None:
        super().__init__(functions, buckets)
        rng = RngStreams(seed).stream("signatures.multipliers")
        self._multipliers = [
            (rng.getrandbits(64) | 1) & _MASK64 for _ in range(functions)
        ]

    def indices(self, value: int) -> Sequence[int]:
        out = []
        v = value & _MASK64
        for multiplier in self._multipliers:
            h = (v * multiplier) & _MASK64
            h ^= h >> 33
            h = (h * 0xFF51AFD7ED558CCD) & _MASK64
            h ^= h >> 33
            out.append(h % self.buckets)
        return out
