"""ASCII rendering of figure/table results."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, List, Sequence


def _format_cell(value: Any) -> str:
    if isinstance(value, float):
        return f"{value:.3f}"
    return str(value)


def format_table(
    columns: Sequence[str], rows: Sequence[Sequence[Any]], title: str = ""
) -> str:
    """Render rows as a fixed-width ASCII table."""
    rendered = [[_format_cell(cell) for cell in row] for row in rows]
    widths = [len(c) for c in columns]
    for row in rendered:
        for i, cell in enumerate(row):
            widths[i] = max(widths[i], len(cell))
    lines: List[str] = []
    if title:
        lines.append(title)
    header = " | ".join(c.ljust(widths[i]) for i, c in enumerate(columns))
    lines.append(header)
    lines.append("-+-".join("-" * w for w in widths))
    for row in rendered:
        lines.append(" | ".join(cell.ljust(widths[i]) for i, cell in enumerate(row)))
    return "\n".join(lines)


@dataclass
class FigureResult:
    """One regenerated figure: labelled rows plus free-form notes."""

    figure: str
    title: str
    columns: List[str]
    rows: List[List[Any]] = field(default_factory=list)
    notes: List[str] = field(default_factory=list)

    def add_row(self, *cells: Any) -> None:
        self.rows.append(list(cells))

    def note(self, text: str) -> None:
        self.notes.append(text)

    def pretty(self) -> str:
        out = format_table(self.columns, self.rows, f"[{self.figure}] {self.title}")
        if self.notes:
            out += "\n" + "\n".join(f"  * {n}" for n in self.notes)
        return out

    def column(self, name: str) -> List[Any]:
        index = self.columns.index(name)
        return [row[index] for row in self.rows]

    def row_map(self, key_column: str = None) -> dict:
        """Rows keyed by their first (or named) column."""
        key_index = 0 if key_column is None else self.columns.index(key_column)
        return {row[key_index]: row for row in self.rows}
