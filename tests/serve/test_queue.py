"""Tests for the persistent queue: submission, leases, shards, status."""

from __future__ import annotations

import subprocess
import sys

import pytest

from serve_grids import tiny_grid

from repro.serve.jobstore import ServeError
from repro.serve.queue import (
    JobQueue,
    Lease,
    campaign_id_for,
    parse_shard,
)


class TestSubmit:
    def test_submit_publishes_all_points(self, spool):
        queue = JobQueue(spool)
        meta = queue.submit(tiny_grid(4), title="t")
        assert meta.total_points == 4
        records = queue.records(meta.campaign_id)
        assert [r.index for r in records] == [0, 1, 2, 3]
        assert all(len(r.fingerprint) == 64 for r in records)

    def test_submit_is_idempotent(self, spool):
        queue = JobQueue(spool)
        first = queue.submit(tiny_grid(4), title="t")
        second = queue.submit(tiny_grid(4), title="t")
        assert first.campaign_id == second.campaign_id
        assert len(queue.campaigns()) == 1

    def test_campaign_id_is_content_derived(self, spool):
        queue = JobQueue(spool)
        a = queue.submit(tiny_grid(4), title="t")
        b = queue.submit(tiny_grid(3), title="t")
        assert a.campaign_id != b.campaign_id

    def test_campaign_id_is_deterministic(self):
        fingerprints = ["a" * 64, "b" * 64]
        assert campaign_id_for(fingerprints, "My Grid!") == \
            campaign_id_for(fingerprints, "My Grid!")
        assert campaign_id_for(fingerprints, "My Grid!").startswith("my-grid")

    def test_empty_campaign_rejected(self, spool):
        with pytest.raises(ServeError):
            JobQueue(spool).submit([], title="t")

    def test_explicit_id_wins(self, spool):
        queue = JobQueue(spool)
        meta = queue.submit(tiny_grid(2), title="t", campaign_id="mine")
        assert meta.campaign_id == "mine"
        assert queue.status("mine").total == 2


class TestStatus:
    def test_fresh_campaign_is_all_pending(self, spool):
        queue = JobQueue(spool)
        meta = queue.submit(tiny_grid(4), title="t")
        status = queue.status(meta.campaign_id)
        assert (status.total, status.done, status.failed) == (4, 0, 0)
        assert status.pending == 4
        assert not status.complete and not status.settled

    def test_failures_count_and_settle(self, spool):
        queue = JobQueue(spool)
        meta = queue.submit(tiny_grid(2), title="t")
        queue.record_failure(meta.campaign_id, 0, "boom")
        queue.record_failure(meta.campaign_id, 1, "boom")
        status = queue.status(meta.campaign_id)
        assert status.failed == 2
        assert status.settled and not status.complete
        assert queue.failures(meta.campaign_id) == {0: "boom", 1: "boom"}

    def test_clear_failures_unsettles(self, spool):
        queue = JobQueue(spool)
        meta = queue.submit(tiny_grid(2), title="t")
        queue.record_failure(meta.campaign_id, 1, "boom")
        assert queue.clear_failures(meta.campaign_id) == 1
        assert queue.status(meta.campaign_id).failed == 0

    def test_cancel_marks_settled(self, spool):
        queue = JobQueue(spool)
        meta = queue.submit(tiny_grid(2), title="t")
        queue.cancel(meta.campaign_id)
        assert queue.cancelled(meta.campaign_id)
        assert queue.status(meta.campaign_id).settled
        assert list(queue.runnable(meta.campaign_id)) == []

    def test_cancel_unknown_raises(self, spool):
        with pytest.raises(ServeError):
            JobQueue(spool).cancel("ghost")


class TestLeases:
    def test_claim_conflict_release(self, spool):
        queue = JobQueue(spool)
        meta = queue.submit(tiny_grid(2), title="t")
        lease = queue.try_claim(meta.campaign_id, 0, "w1")
        assert lease is not None
        # A live lease from this very process blocks a second claim.
        assert queue.try_claim(meta.campaign_id, 0, "w2") is None
        assert queue.status(meta.campaign_id).leased == 1
        queue.release(meta.campaign_id, 0)
        assert queue.try_claim(meta.campaign_id, 0, "w2") is not None

    def test_release_is_idempotent(self, spool):
        queue = JobQueue(spool)
        meta = queue.submit(tiny_grid(1), title="t")
        queue.release(meta.campaign_id, 0)  # nothing to release: fine

    def test_expired_lease_is_stolen(self, spool):
        expired = JobQueue(spool, lease_ttl_s=-1.0)
        meta = expired.submit(tiny_grid(1), title="t")
        assert expired.try_claim(meta.campaign_id, 0, "old") is not None
        fresh = JobQueue(spool)
        stolen = fresh.try_claim(meta.campaign_id, 0, "new")
        assert stolen is not None
        assert fresh.peek_lease(meta.campaign_id, 0).worker == "new"

    def test_dead_owner_lease_is_stolen_instantly(self, spool):
        """A SIGKILLed worker's lease is reclaimed without waiting the TTL."""
        queue = JobQueue(spool)
        meta = queue.submit(tiny_grid(1), title="t")
        # A pid that existed a moment ago and is now certainly gone.
        probe = subprocess.Popen([sys.executable, "-c", "pass"])
        probe.wait()
        dead = Lease(
            token="tok", host=queue._host, pid=probe.pid, worker="ghost",
            deadline=queue.lease_ttl_s + 10 ** 9,
        )
        path = queue.store.lease_path(meta.campaign_id, 0)
        path.parent.mkdir(parents=True, exist_ok=True)
        path.write_text(
            __import__("json").dumps(dead.to_payload()), encoding="utf-8"
        )
        lease = queue.try_claim(meta.campaign_id, 0, "successor")
        assert lease is not None
        assert queue.peek_lease(meta.campaign_id, 0).worker == "successor"

    def test_torn_lease_is_claimable(self, spool):
        queue = JobQueue(spool)
        meta = queue.submit(tiny_grid(1), title="t")
        path = queue.store.lease_path(meta.campaign_id, 0)
        path.parent.mkdir(parents=True, exist_ok=True)
        path.write_text("{torn", encoding="utf-8")
        assert queue.try_claim(meta.campaign_id, 0, "w") is not None


class TestFrozenClock:
    """Clock injection pins the lease-reclaim boundary to the nanosecond.

    The real queue reads :func:`repro.serve.clock.wall_now`; these tests
    freeze it so the ``deadline <= now`` reclaim rule is exercised exactly
    *at* the boundary instead of racing the host clock past it.
    """

    def _queue(self, spool, now, ttl=10.0):
        return JobQueue(spool, lease_ttl_s=ttl, clock=lambda: now[0])

    def test_lease_deadline_comes_from_injected_clock(self, spool):
        now = [100.0]
        queue = self._queue(spool, now)
        meta = queue.submit(tiny_grid(1), title="t")
        assert queue.try_claim(meta.campaign_id, 0, "w") is not None
        assert queue.peek_lease(meta.campaign_id, 0).deadline == 110.0

    def test_lease_holds_until_just_before_its_deadline(self, spool):
        now = [100.0]
        queue = self._queue(spool, now)
        meta = queue.submit(tiny_grid(1), title="t")
        assert queue.try_claim(meta.campaign_id, 0, "w1") is not None
        now[0] = 109.999
        assert queue.try_claim(meta.campaign_id, 0, "w2") is None
        assert queue.status(meta.campaign_id).leased == 1

    def test_lease_exactly_at_deadline_is_stealable(self, spool):
        # The boundary is closed — ``deadline == now`` means dead — so a
        # worker polling on exact TTL multiples can never deadlock behind
        # its own stale lease.
        now = [100.0]
        queue = self._queue(spool, now)
        meta = queue.submit(tiny_grid(1), title="t")
        assert queue.try_claim(meta.campaign_id, 0, "w1") is not None
        now[0] = 110.0
        assert queue.status(meta.campaign_id).leased == 0
        assert queue.try_claim(meta.campaign_id, 0, "w2") is not None
        assert queue.peek_lease(meta.campaign_id, 0).worker == "w2"

    def test_status_and_settled_agree_across_the_boundary(self, spool):
        now = [0.0]
        queue = self._queue(spool, now)
        meta = queue.submit(tiny_grid(2), title="t")
        assert queue.try_claim(meta.campaign_id, 0, "w") is not None
        queue.record_failure(meta.campaign_id, 1, "boom")
        before = queue.status(meta.campaign_id)
        assert (before.leased, before.pending, before.settled) == (1, 1, False)
        # The lease dies at the boundary, but the point is still pending:
        # an expired lease must never count a point as settled.
        now[0] = 10.0
        after = queue.status(meta.campaign_id)
        assert (after.leased, after.pending, after.settled) == (0, 1, False)


class TestSharding:
    def test_shards_partition_the_campaign(self, spool):
        queue = JobQueue(spool)
        meta = queue.submit(tiny_grid(5), title="t")
        shard0 = queue.shard_records(meta.campaign_id, (0, 2))
        shard1 = queue.shard_records(meta.campaign_id, (1, 2))
        assert [r.index for r in shard0] == [0, 2, 4]
        assert [r.index for r in shard1] == [1, 3]
        # Disjoint and covering.
        indices = {r.index for r in shard0} | {r.index for r in shard1}
        assert indices == {0, 1, 2, 3, 4}

    def test_runnable_skips_done_and_failed(self, spool):
        queue = JobQueue(spool)
        grid = tiny_grid(3)
        meta = queue.submit(grid, title="t")
        records = queue.records(meta.campaign_id)
        from repro.harness.parallel import execute_point

        result, _ = execute_point(records[0].point())
        queue.cache.put(records[0].spec, result, records[0].label)
        queue.record_failure(meta.campaign_id, 1, "boom")
        remaining = [r.index for r in queue.runnable(meta.campaign_id)]
        assert remaining == [2]

    def test_parse_shard(self):
        assert parse_shard("0/1") == (0, 1)
        assert parse_shard("3/8") == (3, 8)
        for bad in ("", "3", "3/", "/8", "8/3", "-1/2", "a/b", "1/0"):
            with pytest.raises(ServeError):
                parse_shard(bad)
