"""Bad: tracer emits without guards, counted kinds without their counters."""


class Machine:
    def __init__(self, tracer, stats):
        self.tracer = tracer
        self.stats = stats

    def begin(self, tx):
        self.tracer.emit("tx.begin", tx)  # unguarded AND uncounted

    def commit(self, tx):
        if self.tracer is not None:
            self.tracer.emit("tx.commit", tx)  # guarded, but no incr here
        return True
