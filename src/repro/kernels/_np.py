"""The package's single numpy import gate.

Every vectorized kernel reaches numpy through this module, so the optional
dependency has exactly one seam: tests monkeypatch :data:`numpy` to ``None``
to exercise the no-numpy fallback paths, and the analyze self-lint asserts
that no sim package imports numpy anywhere outside ``repro.kernels``.
"""

from __future__ import annotations

from ..errors import ConfigError

try:  # pragma: no cover - exercised via monkeypatching in tests
    import numpy
except ImportError:  # pragma: no cover
    numpy = None  # type: ignore[assignment]

#: The error a user sees when asking for the vectorized engine without
#: numpy installed.  Kept as one constant so the message the docs promise
#: and the message the tests pin are the same string.
NUMPY_MISSING_MSG = (
    "engine 'vectorized' requires numpy, which is not installed; "
    "install the optional extra (pip install repro[vectorized]) or use "
    "engine='auto' to fall back to the scalar engine"
)


def numpy_available() -> bool:
    """Whether the vectorized engine can run in this process."""
    return numpy is not None


def require_numpy():
    """Return the numpy module or raise the documented ConfigError."""
    if numpy is None:
        raise ConfigError(NUMPY_MISSING_MSG)
    return numpy
