"""Property tests of sweep-grid construction (hypothesis).

``build_grid`` is the seam the parallel executor relies on: the grid must
be the exact cartesian product of the axes (every combination once, nothing
else) and its ordering must be a pure function of the axes — never of how
many workers later run it.  These properties hold for arbitrary axis
shapes.
"""

from __future__ import annotations

import dataclasses
import itertools

from hypothesis import given, strategies as st

from repro.harness.config import ExperimentSpec, consolidated
from repro.harness.sweep import SweepAxis, build_grid
from repro.params import HTMConfig
from repro.workloads import WorkloadParams


def base_spec() -> ExperimentSpec:
    return ExperimentSpec(
        name="grid-prop",
        htm=HTMConfig(),
        benchmarks=consolidated(
            "hashmap", 1,
            WorkloadParams(threads=1, txs_per_thread=1,
                           value_bytes=16 << 10, keys=64, initial_fill=16),
        ),
        scale=1 / 16,
        cores=4,
    )


#: Spec fields safe to sweep without tripping validation, with transforms.
_FIELD_TRANSFORMS = {
    "seed": lambda spec, v: dataclasses.replace(spec, seed=v),
    "max_steps": lambda spec, v: dataclasses.replace(spec, max_steps=v),
    "membound_instances": lambda spec, v: dataclasses.replace(
        spec, membound_instances=v
    ),
    "cores": lambda spec, v: dataclasses.replace(spec, cores=v),
}

_axis_values = st.lists(
    st.integers(min_value=1, max_value=1_000_000), min_size=1, max_size=4,
    unique=True,
)

_axes_strategy = (
    st.lists(
        st.sampled_from(sorted(_FIELD_TRANSFORMS)),
        min_size=1,
        max_size=len(_FIELD_TRANSFORMS),
        unique=True,
    )
    .flatmap(
        lambda fields: st.tuples(
            st.just(fields),
            st.tuples(*[_axis_values for _ in fields]),
        )
    )
    .map(
        lambda pair: [
            SweepAxis(name, values, _FIELD_TRANSFORMS[name])
            for name, values in zip(pair[0], pair[1])
        ]
    )
)


@given(axes=_axes_strategy)
def test_grid_is_exact_cartesian_product(axes):
    points = build_grid(base_spec(), axes)
    expected = list(itertools.product(*(axis.values for axis in axes)))
    assert len(points) == len(expected)
    # Every combination appears exactly once, in product order.
    assert [point.key for point in points] == expected
    assert len({point.key for point in points}) == len(points)


@given(axes=_axes_strategy)
def test_every_combo_is_applied_to_its_spec(axes):
    points = build_grid(base_spec(), axes)
    for point in points:
        for axis, value in zip(axes, point.key):
            assert getattr(point.spec, axis.name) == value


@given(axes=_axes_strategy)
def test_ordering_is_deterministic(axes):
    """Construction is pure: same axes, same grid — the property the
    executor's order-stable results (for any ``jobs``) rest on."""
    first = build_grid(base_spec(), axes)
    second = build_grid(base_spec(), axes)
    assert [p.key for p in first] == [p.key for p in second]
    assert [p.spec for p in first] == [p.spec for p in second]
