"""Command-line interface: regenerate any figure or table of the paper.

Usage::

    python -m repro list
    python -m repro fig6
    python -m repro fig9 --full
    python -m repro all --seed 7 --jobs 4 --cache-dir .repro-cache
    python -m repro bench fig6 --jobs 4
    python -m repro faults --workload hashmap --crashes 50 --seed 1
    python -m repro trace fig7 --report
"""

from __future__ import annotations

import argparse
import sys

from .harness.cache import ResultCache
from .harness.export import to_json, to_markdown
from .harness.figures import ALL_FIGURES
from .harness.config import DEFAULT_SCALE
from .harness.timer import Stopwatch

#: Figures that accept (quick, scale, seed); tables take no arguments.
_STATIC = {"table1", "table2", "table4"}


def _run_one(
    name: str,
    quick: bool,
    scale: float,
    seed: int,
    jobs: int = 1,
    cache: ResultCache = None,
) -> list:
    driver = ALL_FIGURES[name]
    stopwatch = Stopwatch()
    if name in _STATIC:
        results = driver()
    else:
        results = driver(quick=quick, scale=scale, seed=seed, jobs=jobs, cache=cache)
    if not isinstance(results, tuple):
        results = (results,)
    for result in results:
        print(result.pretty())
        print()
    print(f"[{name}] regenerated in {stopwatch} wall clock")
    return list(results)


def main(argv=None) -> int:
    if argv is None:
        argv = sys.argv[1:]
    if argv and argv[0] == "faults":
        from .faults.cli import main as faults_main

        return faults_main(argv[1:])
    if argv and argv[0] == "lint":
        from .analyze.cli import main as lint_main

        return lint_main(argv[1:])
    if argv and argv[0] == "bench":
        from .harness.bench import main as bench_main

        return bench_main(argv[1:])
    if argv and argv[0] == "trace":
        from .obs.cli import main as trace_main

        return trace_main(argv[1:])
    if argv and argv[0] == "profile":
        from .perf.cli import main as profile_main

        return profile_main(argv[1:])
    parser = argparse.ArgumentParser(
        prog="python -m repro",
        description="Regenerate the paper's tables and figures.",
    )
    parser.add_argument(
        "figure",
        help="one of: " + ", ".join(sorted(ALL_FIGURES)) + ", all, list"
        " (or the 'faults' subcommand: python -m repro faults --help)",
    )
    parser.add_argument(
        "--full",
        action="store_true",
        help="run the paper's full sweep matrix instead of the quick one",
    )
    parser.add_argument(
        "--scale",
        type=float,
        default=DEFAULT_SCALE,
        help=f"machine scale factor (default {DEFAULT_SCALE:g})",
    )
    parser.add_argument("--seed", type=int, default=2020)
    parser.add_argument(
        "--jobs",
        type=int,
        default=1,
        help="worker processes per figure grid (results are bit-identical "
        "for any value)",
    )
    parser.add_argument(
        "--cache-dir",
        metavar="PATH",
        help="on-disk result cache; unchanged points are not re-simulated",
    )
    parser.add_argument(
        "--json", metavar="PATH", help="also write the results as JSON"
    )
    parser.add_argument(
        "--markdown", metavar="PATH", help="also write the results as Markdown"
    )
    args = parser.parse_args(argv)

    if args.figure == "list":
        for name in sorted(ALL_FIGURES):
            print(name)
        return 0
    if args.figure == "all":
        names = sorted(ALL_FIGURES)
    elif args.figure in ALL_FIGURES:
        names = [args.figure]
    else:
        parser.error(
            f"unknown figure {args.figure!r}; try 'python -m repro list'"
        )
    cache = ResultCache(args.cache_dir) if args.cache_dir else None
    collected = []
    for name in names:
        collected.extend(
            _run_one(
                name, not args.full, args.scale, args.seed,
                jobs=args.jobs, cache=cache,
            )
        )
    if args.json:
        with open(args.json, "w", encoding="utf-8") as handle:
            handle.write(to_json(collected))
        print(f"wrote {args.json}")
    if args.markdown:
        with open(args.markdown, "w", encoding="utf-8") as handle:
            handle.write(to_markdown(collected))
        print(f"wrote {args.markdown}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
