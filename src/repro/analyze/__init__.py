"""repro.analyze — static analysis for the determinism/layering contracts.

See ``docs/ANALYSIS.md`` for the rule catalogue and ``python -m repro lint``
for the CLI.
"""

from .core import (
    AnalysisReport,
    Checker,
    Finding,
    Project,
    SourceFile,
    register,
    registered_checkers,
    render_json,
    render_text,
    run_analysis,
)
from .dataflow import CallGraph, FunctionKey, ProjectIndex, engine_for
from .sarif import render_sarif

__all__ = [
    "AnalysisReport",
    "CallGraph",
    "Checker",
    "Finding",
    "FunctionKey",
    "Project",
    "ProjectIndex",
    "SourceFile",
    "engine_for",
    "register",
    "registered_checkers",
    "render_json",
    "render_sarif",
    "render_text",
    "run_analysis",
]
