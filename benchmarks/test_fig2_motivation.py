"""Figure 2: LLC-Bounded vs Ideal unbounded HTM throughput (Section III-C).

Paper shape: the bounded design is up to 6.2x slower than the ideal
unbounded HTM once consolidated transactions outgrow the on-chip caches.
"""

from __future__ import annotations

import pytest

from repro.harness.figures import fig2, fig2_grid


def test_fig2(benchmark, quick, jobs, show):
    result = benchmark.pedantic(
        lambda: fig2(quick=quick, jobs=jobs), rounds=1, iterations=1
    )
    show(result)
    speedups = result.column("ideal_speedup")
    # Shape: Ideal wins on every benchmark, substantially on at least one.
    assert all(s >= 1.0 for s in speedups)
    assert max(speedups) >= 1.5


@pytest.mark.smoke
def test_fig2_smoke(smoke_point):
    """One tiny Fig. 2 point must still build and simulate end-to-end."""
    result = smoke_point(fig2_grid)
    assert result.committed_ops > 0
    assert result.verified
