"""The HTM transaction lifecycle over caches, directory, logs, and signatures.

:class:`HTMSystem` implements everything the four evaluated designs share —
begin, transactional read/write with staged conflict checks, synchronous
abort with full rollback, and the parallel DRAM/NVM commit protocol — and
defers five policy points to subclasses (see :mod:`repro.htm.designs`):

* whether the coherence directory is used for on-chip detection,
* when off-chip conflict checks fire (never / on LLC miss / on every access),
* what happens when a transactional line is evicted from the LLC,
* how off-chip conflicts are detected (signatures, exact sets, nothing),
* what bookkeeping each recorded access needs (signature-only designs
  populate their filters at access time).

Aborts are performed *synchronously* by the winning side, mirroring the
paper's broadcast-and-invalidate: the victim's speculative state is rolled
back immediately (so memory never exposes doomed data), its rollback latency
is charged to the victim's own clock, and the victim's thread observes the
TSS abort flag at its next transactional operation and unwinds to its retry
loop — exactly the suspended-thread protocol of Section IV-E.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Set, Tuple

from ..cache.hierarchy import CacheHierarchy
from ..cache.setassoc import CacheLineMeta
from ..cache.directory import DirectoryEntry
from ..errors import (
    AbortReason,
    TransactionAborted,
    TransactionStateError,
)
from ..mem.address import NVM_BASE
from ..mem.controller import MemoryController
from ..params import DramLogPolicy, HTMConfig, LINE_SIZE, MachineConfig, WORD_SIZE
from ..sim.engine import SimThread
from ..sim.stats import StatsRegistry
from ..signatures.isolation import ConflictDomainRegistry
from .conflict import (
    ConflictLocation,
    Resolution,
    ResolutionPolicy,
    resolve_conflict,
    resolve_conflict_oldest_wins,
)
from .tss import TransactionStatusStructure, TxStatus
from .txid import TxIdAllocator

#: Inlined forms of :func:`line_of` / :func:`word_of` for the access paths,
#: which run once per simulated memory operation.
_LINE_MASK = ~(LINE_SIZE - 1)
_WORD_MASK = ~(WORD_SIZE - 1)


@dataclass
class TxHandle:
    """All state of one running hardware transaction."""

    tx_id: int
    thread: SimThread
    core_id: int
    process_id: int
    domain_id: int
    started_at_ns: float
    #: Speculative data: line address -> {word address -> value}.
    write_buffer: Dict[int, Dict[int, int]] = field(default_factory=dict)
    read_lines: Set[int] = field(default_factory=set)
    written_lines: Set[int] = field(default_factory=set)
    #: L1-evicted written lines, in eviction order (DHTM's overflow list).
    overflow_list: List[int] = field(default_factory=list)
    #: DRAM lines moved off-chip: updated in place under undo logging, or
    #: redo-logged under the Figure 10 ablation.
    dram_overflowed_lines: Set[int] = field(default_factory=set)
    #: NVM lines buffered (uncommitted) in the DRAM cache.
    nvm_overflowed_lines: Set[int] = field(default_factory=set)
    #: NVM lines whose redo-log append has already been charged.
    nvm_logged_lines: Set[int] = field(default_factory=set)
    signature: Optional[object] = None  # SignaturePair for designs that use it
    reads: int = 0
    writes: int = 0

    @property
    def cached_written_lines(self) -> Set[int]:
        return (
            self.written_lines
            - self.dram_overflowed_lines
            - self.nvm_overflowed_lines
        )

    def buffered_value(self, addr: int) -> Optional[int]:
        words = self.write_buffer.get(addr & _LINE_MASK)
        if words is None:
            return None
        return words.get(addr & _WORD_MASK)

    def buffer_write(self, addr: int, value: int) -> None:
        buffer = self.write_buffer
        line_addr = addr & _LINE_MASK
        words = buffer.get(line_addr)
        if words is None:
            buffer[line_addr] = {addr & _WORD_MASK: value}
        else:
            words[addr & _WORD_MASK] = value


class HTMSystem:
    """Base class for all evaluated HTM designs."""

    #: Subclasses: does this design use the coherence directory on-chip?
    USES_DIRECTORY = True

    def __init__(
        self,
        machine: MachineConfig,
        config: HTMConfig,
        controller: MemoryController,
        hierarchy: CacheHierarchy,
        stats: StatsRegistry,
        kit=None,
    ) -> None:
        self.machine = machine
        self.config = config
        self.controller = controller
        self.hierarchy = hierarchy
        self.stats = stats
        #: Duck-typed engine kit (see :mod:`repro.kernels`) selecting the
        #: signature filter classes; None keeps the scalar defaults so this
        #: layer never imports the kernels package.
        self.kernel_kit = kit
        self.tss = TransactionStatusStructure()
        self.tx_ids = TxIdAllocator()
        self.domains = ConflictDomainRegistry(self._isolation_enabled())
        self._active: Dict[int, TxHandle] = {}
        #: Optional trace capture (set by the System facade).
        self.capture = None
        #: Epoch dispatcher (:class:`repro.htm.batch.BatchDispatcher`), set
        #: by the System facade under ``engine="batched"``; the block-level
        #: context methods in :mod:`repro.runtime.txapi` route through it.
        self.batch = None
        #: Optional event tracer (set by ``repro.obs.attach_tracer``); hook
        #: sites guard with ``is not None`` and never import the obs package.
        self.tracer = None
        hierarchy.on_l1_evict = self._handle_l1_evict
        hierarchy.on_llc_evict = self._handle_llc_evict
        # The off-chip trigger is a pure policy function of the miss bit, so
        # sample it once: the access paths can then skip the two-level cache
        # probe in ``would_miss_llc`` entirely for designs that either never
        # check (LLC-bounded) or always check (signature-only).
        trigger_on_hit = self._offchip_trigger(False)
        trigger_on_miss = self._offchip_trigger(True)
        self._offchip_always = trigger_on_hit and trigger_on_miss
        self._offchip_on_miss_only = trigger_on_miss and not trigger_on_hit
        # Per-access invariants, hoisted: the address-space split and the
        # configured log policy never change after construction.
        self._nvm_base = NVM_BASE
        self._nvm_end = controller.address_space.nvm_end
        self._nvm_write_ns = machine.latency.nvm_write_ns
        self._dram_redo = config.dram_log_policy == DramLogPolicy.REDO

    # ---------------------------------------------------------------- hooks

    def _isolation_enabled(self) -> bool:
        return self.config.isolation

    def _offchip_trigger(self, llc_miss: bool) -> bool:
        """When must an access be checked against off-chip tracking?

        Evaluated *before* the cache fill, so a losing requester's line is
        never installed (the hardware nacks the request): if it were, later
        requests would hit on-chip, skip the signature check, and read
        uncommitted in-place data.
        """
        raise NotImplementedError

    def _on_access_recorded(self, tx: TxHandle, line_addr: int, is_write: bool) -> None:
        """Per-design bookkeeping after an access is permitted."""

    def _on_llc_overflow(
        self, tx: TxHandle, line_addr: int, wrote: bool, read: bool
    ) -> None:
        """A transactional line left the LLC; migrate its tracking."""
        raise NotImplementedError

    def _offchip_conflicts(
        self,
        domain_id: int,
        line_addr: int,
        is_write: bool,
        exclude_tx: Optional[int],
        requester_overflowed: Optional[bool] = None,
    ) -> List[Tuple[int, bool]]:
        """(victim tx, is-true-conflict) pairs for an off-chip check.

        ``requester_overflowed`` (None for non-transactional requesters)
        lets implementations stop probing once the requester's fate is
        sealed under Table II.
        """
        raise NotImplementedError

    # ------------------------------------------------------------- lifecycle

    def begin(
        self, thread: SimThread, core_id: int, process_id: int, domain_id: int
    ) -> TxHandle:
        tx_id = self.tx_ids.allocate()
        tx = TxHandle(
            tx_id=tx_id,
            thread=thread,
            core_id=core_id,
            process_id=process_id,
            domain_id=domain_id,
            started_at_ns=thread.clock_ns,
        )
        self.tss.register(tx_id, self.domains.effective_domain(domain_id))
        self._active[tx_id] = tx
        self._register_tracking(tx)
        if self.capture is not None:
            self.capture.begin(tx_id, thread.thread_id)
        self.stats.incr("tx.begins")
        if self.tracer is not None:
            self.tracer.emit(
                "tx.begin",
                ts_ns=thread.clock_ns,
                tx_id=tx_id,
                thread_id=thread.thread_id,
                core=core_id,
                process=process_id,
                domain=domain_id,
            )
        return tx

    def _register_tracking(self, tx: TxHandle) -> None:
        """Create and register per-design off-chip tracking (signatures)."""

    def active_transaction(self, tx_id: int) -> Optional[TxHandle]:
        return self._active.get(tx_id)

    def active_in_process(self, process_id: int) -> List[TxHandle]:
        return [t for t in self._active.values() if t.process_id == process_id]

    # --------------------------------------------------------------- access

    def tx_read(self, tx: TxHandle, addr: int) -> int:
        self._check_doomed(tx)
        line_addr = addr & _LINE_MASK
        hierarchy = self.hierarchy
        thread = tx.thread
        self._onchip_conflict_check(tx, line_addr, is_write=False)
        if self._offchip_always or (
            self._offchip_on_miss_only
            and hierarchy.would_miss_llc(tx.core_id, line_addr)
        ):
            self._offchip_conflict_check(
                requester=tx,
                domain_id=tx.domain_id,
                line_addr=line_addr,
                is_write=False,
            )
        result = hierarchy.access(
            tx.core_id, line_addr, False, tx.tx_id, now_ns=thread.clock_ns
        )
        thread.advance(result.latency_ns)
        self._check_doomed(tx)  # the access may have overflowed us to death
        if self.USES_DIRECTORY:
            hierarchy.directory.record_access(line_addr, tx.tx_id, False)
            if (
                line_addr in tx.dram_overflowed_lines
                or line_addr in tx.nvm_overflowed_lines
            ):
                # Re-fetching one's own spilled line brings *speculative*
                # data back on-chip; ownership must be re-established or a
                # later reader would see it as innocent shared data.
                hierarchy.directory.record_access(line_addr, tx.tx_id, True)
        tx.read_lines.add(line_addr)
        tx.reads += 1
        if self.capture is not None:
            self.capture.op(tx.tx_id, False, addr)
        self._on_access_recorded(tx, line_addr, is_write=False)
        if self._dram_redo and line_addr in tx.dram_overflowed_lines:
            # Read indirection: the new value lives in the redo log.
            thread.advance(self.controller.redo_dram_indirection_latency())
            self.stats.incr("dram.redo_read_indirections")
        words = tx.write_buffer.get(line_addr)
        if words is not None:
            buffered = words.get(addr & _WORD_MASK)
            if buffered is not None:
                return buffered
        return self.controller.load_word(addr)

    def tx_write(self, tx: TxHandle, addr: int, value: int) -> None:
        self._check_doomed(tx)
        line_addr = addr & _LINE_MASK
        hierarchy = self.hierarchy
        thread = tx.thread
        self._onchip_conflict_check(tx, line_addr, is_write=True)
        if self._offchip_always or (
            self._offchip_on_miss_only
            and hierarchy.would_miss_llc(tx.core_id, line_addr)
        ):
            self._offchip_conflict_check(
                requester=tx,
                domain_id=tx.domain_id,
                line_addr=line_addr,
                is_write=True,
            )
        result = hierarchy.access(
            tx.core_id, line_addr, True, tx.tx_id, now_ns=thread.clock_ns
        )
        thread.advance(result.latency_ns)
        self._check_doomed(tx)
        if self.USES_DIRECTORY:
            hierarchy.directory.record_access(line_addr, tx.tx_id, True)
        tx.written_lines.add(line_addr)
        tx.writes += 1
        if self.capture is not None:
            self.capture.op(tx.tx_id, True, addr)
        self._on_access_recorded(tx, line_addr, is_write=True)
        if (
            self._nvm_base <= addr < self._nvm_end
            and line_addr not in tx.nvm_logged_lines
        ):
            # Hardware redo logging streams the record out at store time;
            # ADR makes it durable once the controller accepts it.
            tx.nvm_logged_lines.add(line_addr)
            thread.advance(self._nvm_write_ns)
            self.stats.incr("nvm.log_appends")
        tx.buffer_write(addr, value)

    # ------------------------------------------------------- context switches

    def context_switch(self, tx: TxHandle, new_core_id: int) -> None:
        """Migrate a running transaction to another core (Section IV-E).

        The directory and signatures already name transactions by ID rather
        than core, so only the private cache needs handling: modified lines
        are flushed to the LLC (findable later via the overflow list) and
        the transaction simply resumes from the new core with a cold L1.
        The flush cost is charged to the migrating thread; hardware support
        can reduce it, which the paper cites [49].
        """
        self._check_doomed(tx)
        flushed = self.hierarchy.flush_private_cache(tx.core_id)
        tx.thread.advance(flushed * self.machine.latency.llc_ns)
        tx.core_id = new_core_id
        self.stats.incr("tx.context_switches")

    # -------------------------------------------------- non-transactional path

    def nontx_access(
        self,
        thread: SimThread,
        core_id: int,
        domain_id: int,
        addr: int,
        is_write: bool,
        value: Optional[int] = None,
    ) -> int:
        """An access outside any transaction (co-runners, slow paths).

        Non-transactional requests cannot be nacked, so any transaction they
        collide with aborts (Section IV-D's "Optimization" discussion).
        """
        line_addr = addr & _LINE_MASK
        # Fast path: with no transaction active anywhere there is nothing to
        # conflict with — the directory holds no Tx fields and the domain
        # registry holds no signatures, so both checks are vacuous.
        if self._active:
            if self.USES_DIRECTORY:
                conflict = self.hierarchy.directory.check_access(
                    line_addr, None, is_write
                )
                if conflict is not None:
                    for victim_id in sorted(conflict.victims):
                        self._abort_tx_id(
                            victim_id,
                            AbortReason.NON_TX_CONFLICT,
                            line_addr=line_addr,
                        )
            if self._offchip_always or (
                self._offchip_on_miss_only
                and self.hierarchy.would_miss_llc(core_id, line_addr)
            ):
                # Check before the fill: the victims' rollback must restore
                # the in-place data this request is about to read.
                self._offchip_conflict_check(
                    requester=None,
                    domain_id=domain_id,
                    line_addr=line_addr,
                    is_write=is_write,
                )
        result = self.hierarchy.access(
            core_id, line_addr, is_write, None, now_ns=thread.clock_ns
        )
        thread.advance(result.latency_ns)
        if is_write:
            # ``value is None`` means "dirty the line but let the caller
            # manage the data" (slow paths buffer NVM values for atomicity).
            if value is not None:
                self.controller.store_word(addr, value)
            return 0
        return self.controller.load_word(addr)

    # ------------------------------------------------------------ conflicts

    def _onchip_conflict_check(
        self, tx: TxHandle, line_addr: int, is_write: bool
    ) -> None:
        if not self.USES_DIRECTORY:
            return
        conflict = self.hierarchy.directory.check_access(
            line_addr, tx.tx_id, is_write
        )
        if conflict is None:
            return
        victims = [v for v in sorted(conflict.victims) if self.tss.is_active(v)]
        if not victims:
            return
        self.stats.incr("conflicts.onchip")
        resolution = self._resolve(
            ConflictLocation.ON_CHIP, tx.tx_id, victims, now_ns=tx.thread.clock_ns
        )
        if resolution.requester_aborts:
            self._abort(
                tx,
                AbortReason.CONFLICT_COHERENCE,
                line_addr=line_addr,
                other_tx=victims[0],
            )
            raise TransactionAborted(AbortReason.CONFLICT_COHERENCE, tx.tx_id)
        for victim_id in sorted(resolution.victims_to_abort):
            self._abort_tx_id(
                victim_id,
                AbortReason.CONFLICT_COHERENCE,
                line_addr=line_addr,
                other_tx=tx.tx_id,
            )

    def _offchip_conflict_check(
        self,
        requester: Optional[TxHandle],
        domain_id: int,
        line_addr: int,
        is_write: bool,
    ) -> None:
        exclude = requester.tx_id if requester is not None else None
        # The probe short-circuit encodes Table II; under other policies the
        # full hit list must be gathered.
        requester_overflowed = (
            self.tss.is_overflowed(requester.tx_id)
            if requester is not None
            and self.config.resolution == ResolutionPolicy.TABLE2
            else None
        )
        hits = self._offchip_conflicts(
            domain_id, line_addr, is_write, exclude, requester_overflowed
        )
        if not hits:
            return
        self.stats.incr("conflicts.offchip")
        victims = [tx_id for tx_id, _ in hits]
        truly = {tx_id: is_true for tx_id, is_true in hits}
        if requester is None:
            # Non-transactional requester always wins.
            for victim_id in victims:
                reason = (
                    AbortReason.NON_TX_CONFLICT
                    if truly[victim_id]
                    else AbortReason.FALSE_POSITIVE
                )
                self._abort_tx_id(victim_id, reason, line_addr=line_addr)
            return
        resolution = self._resolve(
            ConflictLocation.OFF_CHIP,
            requester.tx_id,
            victims,
            now_ns=requester.thread.clock_ns,
        )
        if resolution.requester_aborts:
            reason = (
                AbortReason.CONFLICT_TRUE
                if any(truly.values())
                else AbortReason.FALSE_POSITIVE
            )
            true_victims = [v for v in victims if truly[v]]
            self._abort(
                requester,
                reason,
                line_addr=line_addr,
                other_tx=true_victims[0] if true_victims else victims[0],
            )
            raise TransactionAborted(reason, requester.tx_id)
        for victim_id in sorted(resolution.victims_to_abort):
            reason = (
                AbortReason.CONFLICT_TRUE
                if truly[victim_id]
                else AbortReason.FALSE_POSITIVE
            )
            self._abort_tx_id(
                victim_id, reason, line_addr=line_addr, other_tx=requester.tx_id
            )

    def _resolve(
        self,
        location: ConflictLocation,
        requester_id: int,
        victims: List[int],
        now_ns: float = 0.0,
    ) -> Resolution:
        if self.config.resolution == ResolutionPolicy.OLDEST_WINS:
            return resolve_conflict_oldest_wins(
                requester_id, victims, tracer=self.tracer, now_ns=now_ns
            )
        return resolve_conflict(
            location,
            self.tss.is_overflowed(requester_id),
            victims,
            {v: self.tss.is_overflowed(v) for v in victims},
            tracer=self.tracer,
            now_ns=now_ns,
            requester_id=requester_id,
        )

    # ------------------------------------------------------------- evictions

    def _handle_l1_evict(self, core_id: int, meta: CacheLineMeta) -> None:
        writer = meta.tx_writer
        if writer is None:
            return
        tx = self._active.get(writer)
        if tx is None or not self.tss.is_active(writer):
            return
        tx.overflow_list.append(meta.line_addr)
        self.stats.incr("l1.tx_evictions")

    def _handle_llc_evict(
        self, meta: CacheLineMeta, entry: Optional[DirectoryEntry]
    ) -> None:
        writers: Set[int] = set()
        readers: Set[int] = set()
        if meta.tx_writer is not None:
            writers.add(meta.tx_writer)
        if meta.tx_readers:
            readers.update(meta.tx_readers)
        if entry is not None:
            if entry.tx_owner is not None:
                writers.add(entry.tx_owner)
            readers.update(entry.tx_sharers)
        involved = writers | readers
        for tx_id in sorted(involved):
            tx = self._active.get(tx_id)
            if tx is None or not self.tss.is_active(tx_id):
                continue
            self.stats.incr("llc.tx_evictions")
            if self.tracer is not None:
                self.tracer.emit(
                    "llc.overflow",
                    ts_ns=tx.thread.clock_ns,
                    tx_id=tx_id,
                    thread_id=tx.thread.thread_id,
                    line_addr=meta.line_addr,
                    wrote=tx_id in writers,
                    read=tx_id in readers,
                )
            self._on_llc_overflow(
                tx,
                meta.line_addr,
                wrote=tx_id in writers,
                read=tx_id in readers,
            )

    # ---------------------------------------------------------------- commit

    def commit(self, tx: TxHandle) -> None:
        self._check_doomed(tx)
        if not self.tss.is_active(tx.tx_id):
            raise TransactionStateError(f"commit of non-active tx {tx.tx_id}")
        latency = self._commit_latency_and_publish(tx)
        tx.thread.advance(latency)
        self.hierarchy.clear_tx_markers(tx.tx_id, tx.cached_written_lines)
        if self.USES_DIRECTORY:
            self.hierarchy.directory.clear_transaction(tx.tx_id)
        self.domains.unregister(tx.tx_id)
        self.tss.mark_committed(tx.tx_id)
        self._active.pop(tx.tx_id, None)
        self.tss.reclaim(tx.tx_id)
        if self.capture is not None:
            self.capture.commit(tx.tx_id)
        self.stats.incr("tx.commits")
        if self.tracer is not None:
            self.tracer.emit(
                "tx.commit",
                ts_ns=tx.thread.clock_ns,
                tx_id=tx.tx_id,
                thread_id=tx.thread.thread_id,
                latency_ns=max(0.0, tx.thread.clock_ns - tx.started_at_ns),
                reads=tx.reads,
                writes=tx.writes,
            )
        self.stats.histogram("tx.latency_ns").record(
            max(0.0, tx.thread.clock_ns - tx.started_at_ns)
        )

    def _commit_latency_and_publish(self, tx: TxHandle) -> float:
        """Run the parallel DRAM/NVM commit protocols; returns thread charge."""
        space = self.controller.address_space
        nvm_lines: Dict[int, Dict[int, int]] = {}
        dram_words: Dict[int, int] = {}
        for line_addr, words in tx.write_buffer.items():
            if space.is_nvm(line_addr):
                nvm_lines[line_addr] = words
            else:
                dram_words.update(words)

        # Locating the write-set in LLC / DRAM cache via the overflow list
        # (Section IV-B): one LLC reference per overflow-list entry.
        walk_ns = len(tx.overflow_list) * self.machine.latency.llc_ns
        if self.tracer is not None:
            # Also stamps the commit time for the timeless controller/log
            # events emitted during the protocol below.
            self.tracer.emit(
                "tx.commit.phase",
                ts_ns=tx.thread.clock_ns,
                tx_id=tx.tx_id,
                thread_id=tx.thread.thread_id,
                phase="walk",
                phase_ns=walk_ns,
            )

        nvm_ns = 0.0
        if nvm_lines:
            nvm_ns = self.controller.commit_nvm_transaction(tx.tx_id, nvm_lines)
        if self.tracer is not None and nvm_ns:
            self.tracer.emit(
                "tx.commit.phase",
                ts_ns=tx.thread.clock_ns,
                tx_id=tx.tx_id,
                thread_id=tx.thread.thread_id,
                phase="nvm",
                phase_ns=nvm_ns,
            )

        # Fault hook: the window between the (durable) NVM commit protocol
        # and the volatile DRAM publish — a crash here must still recover
        # the transaction's persistent writes.
        injector = self.controller.fault_injector
        if injector is not None:
            injector.on_mid_commit(tx.tx_id)

        dram_ns = 0.0
        if tx.dram_overflowed_lines:
            if self.config.dram_log_policy == DramLogPolicy.UNDO:
                dram_ns = self.controller.commit_undo(tx.tx_id)
            else:
                dram_ns = self.controller.commit_redo_dram(tx.tx_id)
        if self.tracer is not None and dram_ns:
            self.tracer.emit(
                "tx.commit.phase",
                ts_ns=tx.thread.clock_ns,
                tx_id=tx.tx_id,
                thread_id=tx.thread.thread_id,
                phase="dram",
                phase_ns=dram_ns,
            )

        # Publish volatile data: buffered DRAM words become globally visible.
        self.controller.publish_dram_words(dram_words)

        # DRAM and NVM protocols run in parallel (Section IV-B).
        return walk_ns + max(nvm_ns, dram_ns)

    # ----------------------------------------------------------------- abort

    def explicit_abort(self, tx: TxHandle) -> None:
        self._abort(tx, AbortReason.EXPLICIT)
        raise TransactionAborted(AbortReason.EXPLICIT, tx.tx_id)

    def abort_all_in_process(self, process_id: int, reason: AbortReason) -> int:
        """Kill every active transaction of one process (lock acquisition)."""
        doomed = [t for t in self._active.values() if t.process_id == process_id]
        for tx in doomed:
            self._abort(tx, reason)
        return len(doomed)

    def _abort_tx_id(
        self,
        tx_id: int,
        reason: AbortReason,
        line_addr: Optional[int] = None,
        other_tx: Optional[int] = None,
    ) -> None:
        tx = self._active.get(tx_id)
        if tx is None or not self.tss.is_active(tx_id):
            return
        self._abort(tx, reason, line_addr=line_addr, other_tx=other_tx)

    def _abort(
        self,
        tx: TxHandle,
        reason: AbortReason,
        line_addr: Optional[int] = None,
        other_tx: Optional[int] = None,
    ) -> None:
        """Synchronously roll back ``tx``; its thread unwinds on next use.

        ``line_addr``/``other_tx`` attribute conflict aborts: the cache line
        fought over and the transaction on the winning side (``None`` for
        capacity/fallback aborts or non-transactional aggressors).
        """
        self.tss.mark_aborted(tx.tx_id, reason)
        self.stats.incr("tx.aborts")
        self.stats.incr(f"tx.aborts.{reason.value}")
        if self.tracer is not None:
            # The only site that counts ``tx.aborts``, so traced abort
            # events equal the counters exactly (the forensics contract).
            self.tracer.emit(
                "tx.abort",
                ts_ns=tx.thread.clock_ns,
                tx_id=tx.tx_id,
                thread_id=tx.thread.thread_id,
                reason=reason.value,
                line_addr=line_addr,
                other_tx=other_tx,
            )
        cost = 0.0
        self.hierarchy.invalidate_written_lines(tx.tx_id, tx.cached_written_lines)
        if self.USES_DIRECTORY:
            self.hierarchy.directory.clear_transaction(tx.tx_id)
        if tx.dram_overflowed_lines:
            if self.config.dram_log_policy == DramLogPolicy.UNDO:
                cost += self.controller.rollback_undo(tx.tx_id)
            else:
                cost += self.controller.discard_redo_dram(tx.tx_id)
        if tx.nvm_overflowed_lines or tx.nvm_logged_lines:
            cost += self.controller.abort_nvm(
                tx.tx_id, sorted(tx.nvm_overflowed_lines)
            )
        self.domains.unregister(tx.tx_id)
        self._active.pop(tx.tx_id, None)
        if self.capture is not None:
            self.capture.abort(tx.tx_id)
        tx.write_buffer.clear()
        tx.thread.advance(cost)
        self.stats.histogram("tx.aborted_attempt_ns").record(
            max(0.0, tx.thread.clock_ns - tx.started_at_ns)
        )

    def acknowledge_abort(self, tx: TxHandle) -> None:
        """The owning thread saw the abort; reclaim the TSS entry."""
        self.tss.reclaim(tx.tx_id)

    def _check_doomed(self, tx: TxHandle) -> None:
        entry = self.tss.entry(tx.tx_id)
        if entry.status is TxStatus.ABORTED:
            reason = entry.abort_reason or AbortReason.EXPLICIT
            raise TransactionAborted(reason, tx.tx_id)
        if entry.status is TxStatus.COMMITTED:
            raise TransactionStateError(
                f"operation on committed transaction {tx.tx_id}"
            )

    # ------------------------------------------------------------- overflow

    def _mark_overflowed(self, tx: TxHandle) -> None:
        if not self.tss.is_overflowed(tx.tx_id):
            self.tss.set_overflowed(tx.tx_id)
            self.stats.incr("tx.overflows")

    def _spill_written_line(self, tx: TxHandle, line_addr: int) -> None:
        """Move a written line's speculative data off-chip (UHTM/Ideal)."""
        words = tx.write_buffer.get(line_addr)
        if words is None:
            # Written line with no buffered words should not happen, but a
            # line can appear written via stale meta after partial clears.
            return
        if self.controller.address_space.is_nvm(line_addr):
            if line_addr not in tx.nvm_overflowed_lines:
                self.controller.buffer_early_evicted_nvm(tx.tx_id, line_addr, dict(words))
                tx.nvm_overflowed_lines.add(line_addr)
                self.stats.incr("nvm.early_evictions")
        else:
            if self.config.dram_log_policy == DramLogPolicy.UNDO:
                self.controller.log_undo_and_update(tx.tx_id, line_addr, dict(words))
            else:
                self.controller.log_redo_dram(tx.tx_id, line_addr, dict(words))
            tx.dram_overflowed_lines.add(line_addr)
            self.stats.incr("dram.overflow_spills")
