"""The epoch dispatcher: fused block paths for ``engine="batched"``.

The min-clock engine resumes one thread per step, and a step runs atomically
— no other thread can observe or perturb state until the next yield.  Every
workload already issues its memory operations in blocks between yields
(``write_payload``/``read_payload`` walk :data:`~repro.workloads.base
.CHUNK_LINES` lines per chunk, the membound co-runner sweeps
``_SWEEP_CHUNK`` read-modify-write pairs), so a whole block *is* an epoch:
a batch of operations whose interleaving against other threads is fixed by
construction.  What the scalar engine spends on that block is largely
interpreter overhead — context/method frames, double cache probes, per-op
result allocation, per-op counter calls.

:class:`BatchDispatcher` replays each block through fused loops that mirror
:meth:`~repro.htm.base.HTMSystem.tx_read` /
:meth:`~repro.htm.base.HTMSystem.tx_write` /
:meth:`~repro.htm.base.HTMSystem.nontx_access` and
:meth:`~repro.cache.hierarchy.CacheHierarchy.access` operation for
operation — same probe order, same conflict-check staging, same float
additions to the thread clock, same counter totals.  The inner eviction
handlers (``handle_l1_eviction``/``handle_llc_eviction``) are inlined
statement-for-statement as well: the three fused loops deliberately repeat
that code, because a shared helper would reintroduce exactly the per-op
call frames the epoch core exists to remove.  Bit-identity against the
scalar engine is enforced by the differential, trace-neutrality, and
byte-identical-export suites in ``tests/kernels``.

The *dependency fence* drops a block back to scalar single-step dispatch
whenever per-operation ordering could be observed from outside the fused
loop: an event tracer or trace capture attached (per-op events must
interleave exactly as the scalar engine emits them), a fault injector armed
(crash points must see every intermediate hook), or the bandwidth model
enabled (channel queueing is stateful per request).  Conflicts do *not*
fence a block — the fused loops run the exact scalar conflict-resolution
staging inline per line, which is what the epoch-fence mutation tests pin
down.
"""

from __future__ import annotations

from typing import List, Optional

from ..cache.coherence import CoherenceRequest, MesiState, next_state_for_holder
from ..errors import AbortReason, TransactionAborted
from ..mem.address import DRAM_BASE
from ..params import LINE_SIZE
from .base import HTMSystem, TxHandle, _LINE_MASK, _WORD_MASK
from .conflict import ConflictLocation, ResolutionPolicy
from .tss import TxStatus

_GET_S = CoherenceRequest.GET_S
_MODIFIED = MesiState.MODIFIED
_EXCLUSIVE = MesiState.EXCLUSIVE
_SHARED = MesiState.SHARED


class BatchDispatcher:
    """Fused epoch execution over one :class:`~repro.htm.base.HTMSystem`.

    Installed by the runtime as ``htm.batch`` when the engine kit is
    batched; the block-granular context methods
    (:meth:`~repro.runtime.txapi.TxContext.write_block`,
    :meth:`~repro.runtime.txapi.TxContext.read_block`,
    :meth:`~repro.runtime.txapi.DirectContext.rmw_add_block`) route through
    it.  Word-granular operations never enter the dispatcher and always
    take the scalar path.
    """

    def __init__(self, htm: HTMSystem, epoch_stats) -> None:
        self.htm = htm
        self.epoch = epoch_stats
        # Construction-time invariant hoists, mirroring the scalar paths'
        # own per-access hoists in HTMSystem.__init__ / CacheHierarchy.
        hierarchy = htm.hierarchy
        controller = htm.controller
        self.hierarchy = hierarchy
        self.controller = controller
        self._uses_directory = type(htm).USES_DIRECTORY
        self._records_access = (
            type(htm)._on_access_recorded is not HTMSystem._on_access_recorded
        )
        self._table2 = htm.config.resolution == ResolutionPolicy.TABLE2
        self._l1_hit_ns = hierarchy._l1_hit_ns
        self._llc_hit_ns = hierarchy._llc_hit_ns
        space = controller.address_space
        self._dram_end = space.dram_end
        # One DRAM demand read costs a constant when no channel is modelled
        # (BackingStore.read_ns is latency.dram_ns); the bandwidth fence
        # guarantees the channel term is absent whenever a block is fused.
        self._dram_demand_ns = controller.latency.dram_ns

    # ------------------------------------------------------------- fencing

    def _fence_reason(self) -> Optional[str]:
        """Why batching is forbidden right now, or ``None`` if allowed."""
        htm = self.htm
        if (
            htm.tracer is not None
            or self.hierarchy.tracer is not None
            or self.controller.tracer is not None
        ):
            return "tracer"
        if htm.capture is not None:
            return "capture"
        if self.controller.fault_injector is not None:
            return "fault"
        if self.controller.dram_channel is not None:
            return "bandwidth"
        return None

    # ---------------------------------------------------- conflict staging

    def _onchip_resolution(
        self, tx: TxHandle, line_addr: int, is_write: bool, conflict
    ) -> None:
        """The post-probe half of ``HTMSystem._onchip_conflict_check``.

        The fused loops call ``directory.check_access`` themselves (exactly
        once per access, like the scalar path) and only pay this resolution
        staging when a conflict actually surfaced.
        """
        htm = self.htm
        victims = [
            v for v in sorted(conflict.victims) if htm.tss.is_active(v)
        ]
        if not victims:
            return
        htm.stats.incr("conflicts.onchip")
        resolution = htm._resolve(
            ConflictLocation.ON_CHIP,
            tx.tx_id,
            victims,
            now_ns=tx.thread.clock_ns,
        )
        if resolution.requester_aborts:
            htm._abort(
                tx,
                AbortReason.CONFLICT_COHERENCE,
                line_addr=line_addr,
                other_tx=victims[0],
            )
            raise TransactionAborted(AbortReason.CONFLICT_COHERENCE, tx.tx_id)
        for victim_id in sorted(resolution.victims_to_abort):
            htm._abort_tx_id(
                victim_id,
                AbortReason.CONFLICT_COHERENCE,
                line_addr=line_addr,
                other_tx=tx.tx_id,
            )

    def _offchip_resolution(
        self,
        requester: Optional[TxHandle],
        line_addr: int,
        hits,
    ) -> None:
        """The post-probe half of ``HTMSystem._offchip_conflict_check``.

        The fused loops run the signature/exact-set probe themselves
        (``htm._offchip_conflicts``, exactly once per triggering access)
        and pay this resolution staging only on a hit.
        """
        htm = self.htm
        htm.stats.incr("conflicts.offchip")
        victims = [tx_id for tx_id, _ in hits]
        truly = {tx_id: is_true for tx_id, is_true in hits}
        if requester is None:
            for victim_id in victims:
                reason = (
                    AbortReason.NON_TX_CONFLICT
                    if truly[victim_id]
                    else AbortReason.FALSE_POSITIVE
                )
                htm._abort_tx_id(victim_id, reason, line_addr=line_addr)
            return
        resolution = htm._resolve(
            ConflictLocation.OFF_CHIP,
            requester.tx_id,
            victims,
            now_ns=requester.thread.clock_ns,
        )
        if resolution.requester_aborts:
            reason = (
                AbortReason.CONFLICT_TRUE
                if any(truly.values())
                else AbortReason.FALSE_POSITIVE
            )
            true_victims = [v for v in victims if truly[v]]
            htm._abort(
                requester,
                reason,
                line_addr=line_addr,
                other_tx=true_victims[0] if true_victims else victims[0],
            )
            raise TransactionAborted(reason, requester.tx_id)
        for victim_id in sorted(resolution.victims_to_abort):
            reason = (
                AbortReason.CONFLICT_TRUE
                if truly[victim_id]
                else AbortReason.FALSE_POSITIVE
            )
            htm._abort_tx_id(
                victim_id,
                reason,
                line_addr=line_addr,
                other_tx=requester.tx_id,
            )

    # ------------------------------------------------------- tx block paths

    def tx_write_block(
        self, tx: TxHandle, addr: int, nbytes: int, tag: int
    ) -> None:
        """Fused twin of ``write_block`` over ``HTMSystem.tx_write``."""
        width = -(-nbytes // LINE_SIZE)
        reason = self._fence_reason()
        if reason is not None or width < 2:
            self.epoch.note_scalar(width, reason or "narrow")
            htm = self.htm
            offset = 0
            while offset < nbytes:
                htm.tx_write(tx, addr + offset, tag)
                offset += LINE_SIZE
            return
        self.epoch.note_flush(width)

        htm = self.htm
        hierarchy = self.hierarchy
        controller = self.controller
        directory = hierarchy.directory
        l1s = hierarchy.l1s
        l1 = l1s[tx.core_id]
        llc = hierarchy.llc
        l1_holders = hierarchy.l1_holders
        thread = tx.thread
        core_id = tx.core_id
        tx_id = tx.tx_id
        domain_id = tx.domain_id
        uses_directory = self._uses_directory
        records_access = self._records_access
        table2 = self._table2
        offchip_always = htm._offchip_always
        offchip_on_miss = htm._offchip_on_miss_only
        offchip_conflicts = htm._offchip_conflicts
        l1_hit_ns = self._l1_hit_ns
        llc_hit_ns = self._llc_hit_ns
        nvm_base = htm._nvm_base
        nvm_end = htm._nvm_end
        nvm_write_ns = htm._nvm_write_ns
        dram_end = self._dram_end
        dram_demand_ns = self._dram_demand_ns
        demand_latency = controller.demand_access_latency
        check_access = directory.check_access
        record_access = directory.record_access
        evict_line = directory.evict_line
        on_l1_evict = hierarchy.on_l1_evict
        on_llc_evict = hierarchy.on_llc_evict
        l1_lookup = l1.lookup
        l1_peek = l1.peek
        l1_fill = l1.fill
        llc_lookup = llc.lookup
        llc_peek = llc.peek
        llc_fill = llc.fill
        entry = htm.tss.entry(tx_id)
        write_buffer = tx.write_buffer
        written_lines = tx.written_lines
        nvm_logged = tx.nvm_logged_lines
        aborted = TxStatus.ABORTED
        committed = TxStatus.COMMITTED

        log_appends = 0
        offset = 0
        try:
            while offset < nbytes:
                cur_addr = addr + offset
                word_addr = cur_addr & _WORD_MASK
                line_addr = cur_addr & _LINE_MASK
                offset += LINE_SIZE
                # -- tx_write, fused ------------------------------------
                if entry.status is aborted:
                    raise TransactionAborted(
                        entry.abort_reason or AbortReason.EXPLICIT, tx_id
                    )
                if entry.status is committed:
                    htm._check_doomed(tx)  # raises TransactionStateError
                if uses_directory:
                    conflict = check_access(line_addr, tx_id, True)
                    if conflict is not None:
                        self._onchip_resolution(tx, line_addr, True, conflict)
                if offchip_always or (
                    offchip_on_miss
                    and l1_peek(line_addr) is None
                    and llc_peek(line_addr) is None
                ):
                    hits = offchip_conflicts(
                        domain_id,
                        line_addr,
                        True,
                        tx_id,
                        entry.overflowed if table2 else None,
                    )
                    if hits:
                        self._offchip_resolution(tx, line_addr, hits)
                # -- hierarchy.access(is_write=True), fused -------------
                meta = l1_lookup(line_addr)
                if meta is None:
                    latency = llc_hit_ns
                    if llc_lookup(line_addr) is None:
                        if DRAM_BASE <= line_addr < dram_end:
                            latency += dram_demand_ns
                        else:
                            latency += demand_latency(
                                line_addr, thread.clock_ns + latency
                            )
                        _, llc_victims = llc_fill(line_addr)
                        for victim in llc_victims:
                            # handle_llc_eviction, inlined
                            vline = victim.line_addr
                            vholders = l1_holders.pop(vline, None)
                            if vholders:
                                for vcore in vholders:
                                    vmeta = l1s[vcore].remove(vline)
                                    if vmeta is not None:
                                        victim.dirty = (
                                            victim.dirty or vmeta.dirty
                                        )
                                        if vmeta.tx_writer is not None:
                                            victim.tx_writer = vmeta.tx_writer
                                        if vmeta.tx_readers:
                                            vreaders = victim.tx_readers
                                            if vreaders is None:
                                                victim.tx_readers = set(
                                                    vmeta.tx_readers
                                                )
                                            else:
                                                vreaders.update(
                                                    vmeta.tx_readers
                                                )
                            ventry = evict_line(vline)
                            if victim.dirty and victim.tx_writer is None:
                                hierarchy.writebacks += 1
                            if (
                                victim.tx_writer is not None
                                or victim.tx_readers
                                or ventry is not None
                            ) and on_llc_evict is not None:
                                on_llc_evict(victim, ventry)
                    meta, victims = l1_fill(line_addr)
                    holders = l1_holders.get(line_addr)
                    if holders is None:
                        l1_holders[line_addr] = {core_id}
                    else:
                        holders.add(core_id)
                    for victim in victims:
                        # handle_l1_eviction, inlined
                        vline = victim.line_addr
                        vholders = l1_holders.get(vline)
                        if vholders is not None:
                            vholders.discard(core_id)
                            if not vholders:
                                del l1_holders[vline]
                        llc_meta = llc_peek(vline)
                        if llc_meta is not None:
                            llc_meta.dirty = llc_meta.dirty or victim.dirty
                            if victim.tx_writer is not None:
                                llc_meta.tx_writer = victim.tx_writer
                            if victim.tx_readers:
                                vreaders = llc_meta.tx_readers
                                if vreaders is None:
                                    llc_meta.tx_readers = set(
                                        victim.tx_readers
                                    )
                                else:
                                    vreaders.update(victim.tx_readers)
                        if (
                            victim.tx_writer is not None
                            and on_l1_evict is not None
                        ):
                            on_l1_evict(core_id, victim)
                else:
                    latency = l1_hit_ns
                holders = l1_holders.get(line_addr)
                if holders is not None and (
                    len(holders) != 1 or core_id not in holders
                ):
                    hierarchy.invalidate_other_l1s(core_id, line_addr)
                meta.mesi = _MODIFIED
                meta.dirty = True
                meta.tx_writer = tx_id
                thread.clock_ns += latency
                # -- post-access bookkeeping ----------------------------
                if entry.status is aborted:
                    # The fill may have overflowed us to death.
                    raise TransactionAborted(
                        entry.abort_reason or AbortReason.EXPLICIT, tx_id
                    )
                if uses_directory:
                    record_access(line_addr, tx_id, True)
                written_lines.add(line_addr)
                tx.writes += 1
                if records_access:
                    htm._on_access_recorded(tx, line_addr, is_write=True)
                if nvm_base <= cur_addr < nvm_end and line_addr not in nvm_logged:
                    nvm_logged.add(line_addr)
                    thread.clock_ns += nvm_write_ns
                    log_appends += 1
                words = write_buffer.get(line_addr)
                if words is None:
                    write_buffer[line_addr] = {word_addr: tag}
                else:
                    words[word_addr] = tag
        finally:
            # Counter increments commute, so the epoch's total is flushed
            # in one call — also on the abort unwind, keeping the final
            # counters equal to the scalar engine's per-op increments.
            if log_appends:
                htm.stats.incr("nvm.log_appends", log_appends)

    def tx_read_block(self, tx: TxHandle, addr: int, nbytes: int) -> int:
        """Fused twin of ``read_block`` over ``HTMSystem.tx_read``.

        Loads are pure (backing-store/DRAM-cache dict reads), so only the
        first line's value — the one ``read_block`` returns — is actually
        materialised; the scalar path computes and discards the rest.
        """
        width = -(-nbytes // LINE_SIZE)
        reason = self._fence_reason()
        if reason is not None or width < 2:
            self.epoch.note_scalar(width, reason or "narrow")
            htm = self.htm
            first = 0
            offset = 0
            index = 0
            while offset < nbytes:
                value = htm.tx_read(tx, addr + offset)
                if index == 0:
                    first = value
                offset += LINE_SIZE
                index += 1
            return first
        self.epoch.note_flush(width)

        htm = self.htm
        hierarchy = self.hierarchy
        controller = self.controller
        directory = hierarchy.directory
        l1s = hierarchy.l1s
        l1 = l1s[tx.core_id]
        llc = hierarchy.llc
        l1_holders = hierarchy.l1_holders
        thread = tx.thread
        core_id = tx.core_id
        tx_id = tx.tx_id
        domain_id = tx.domain_id
        uses_directory = self._uses_directory
        records_access = self._records_access
        table2 = self._table2
        offchip_always = htm._offchip_always
        offchip_on_miss = htm._offchip_on_miss_only
        offchip_conflicts = htm._offchip_conflicts
        l1_hit_ns = self._l1_hit_ns
        llc_hit_ns = self._llc_hit_ns
        dram_end = self._dram_end
        dram_demand_ns = self._dram_demand_ns
        demand_latency = controller.demand_access_latency
        check_access = directory.check_access
        record_access = directory.record_access
        evict_line = directory.evict_line
        on_l1_evict = hierarchy.on_l1_evict
        on_llc_evict = hierarchy.on_llc_evict
        l1_lookup = l1.lookup
        l1_peek = l1.peek
        l1_fill = l1.fill
        llc_lookup = llc.lookup
        llc_peek = llc.peek
        llc_fill = llc.fill
        entry = htm.tss.entry(tx_id)
        read_lines = tx.read_lines
        dram_overflowed = tx.dram_overflowed_lines
        nvm_overflowed = tx.nvm_overflowed_lines
        dram_redo = htm._dram_redo
        aborted = TxStatus.ABORTED
        committed = TxStatus.COMMITTED

        first = 0
        redo_indirections = 0
        offset = 0
        index = 0
        try:
            while offset < nbytes:
                cur_addr = addr + offset
                word_addr = cur_addr & _WORD_MASK
                line_addr = cur_addr & _LINE_MASK
                offset += LINE_SIZE
                # -- tx_read, fused -------------------------------------
                if entry.status is aborted:
                    raise TransactionAborted(
                        entry.abort_reason or AbortReason.EXPLICIT, tx_id
                    )
                if entry.status is committed:
                    htm._check_doomed(tx)
                if uses_directory:
                    conflict = check_access(line_addr, tx_id, False)
                    if conflict is not None:
                        self._onchip_resolution(tx, line_addr, False, conflict)
                if offchip_always or (
                    offchip_on_miss
                    and l1_peek(line_addr) is None
                    and llc_peek(line_addr) is None
                ):
                    hits = offchip_conflicts(
                        domain_id,
                        line_addr,
                        False,
                        tx_id,
                        entry.overflowed if table2 else None,
                    )
                    if hits:
                        self._offchip_resolution(tx, line_addr, hits)
                # -- hierarchy.access(is_write=False), fused ------------
                meta = l1_lookup(line_addr)
                if meta is None:
                    latency = llc_hit_ns
                    if llc_lookup(line_addr) is None:
                        if DRAM_BASE <= line_addr < dram_end:
                            latency += dram_demand_ns
                        else:
                            latency += demand_latency(
                                line_addr, thread.clock_ns + latency
                            )
                        _, llc_victims = llc_fill(line_addr)
                        for victim in llc_victims:
                            # handle_llc_eviction, inlined
                            vline = victim.line_addr
                            vholders = l1_holders.pop(vline, None)
                            if vholders:
                                for vcore in vholders:
                                    vmeta = l1s[vcore].remove(vline)
                                    if vmeta is not None:
                                        victim.dirty = (
                                            victim.dirty or vmeta.dirty
                                        )
                                        if vmeta.tx_writer is not None:
                                            victim.tx_writer = vmeta.tx_writer
                                        if vmeta.tx_readers:
                                            vreaders = victim.tx_readers
                                            if vreaders is None:
                                                victim.tx_readers = set(
                                                    vmeta.tx_readers
                                                )
                                            else:
                                                vreaders.update(
                                                    vmeta.tx_readers
                                                )
                            ventry = evict_line(vline)
                            if victim.dirty and victim.tx_writer is None:
                                hierarchy.writebacks += 1
                            if (
                                victim.tx_writer is not None
                                or victim.tx_readers
                                or ventry is not None
                            ) and on_llc_evict is not None:
                                on_llc_evict(victim, ventry)
                    meta, victims = l1_fill(line_addr)
                    holders = l1_holders.get(line_addr)
                    if holders is None:
                        l1_holders[line_addr] = {core_id}
                    else:
                        holders.add(core_id)
                    for victim in victims:
                        # handle_l1_eviction, inlined
                        vline = victim.line_addr
                        vholders = l1_holders.get(vline)
                        if vholders is not None:
                            vholders.discard(core_id)
                            if not vholders:
                                del l1_holders[vline]
                        llc_meta = llc_peek(vline)
                        if llc_meta is not None:
                            llc_meta.dirty = llc_meta.dirty or victim.dirty
                            if victim.tx_writer is not None:
                                llc_meta.tx_writer = victim.tx_writer
                            if victim.tx_readers:
                                vreaders = llc_meta.tx_readers
                                if vreaders is None:
                                    llc_meta.tx_readers = set(
                                        victim.tx_readers
                                    )
                                else:
                                    vreaders.update(victim.tx_readers)
                        if (
                            victim.tx_writer is not None
                            and on_l1_evict is not None
                        ):
                            on_l1_evict(core_id, victim)
                else:
                    latency = l1_hit_ns
                holders = l1_holders.get(line_addr)
                shared = False
                if holders:
                    for other in holders:
                        if other == core_id:
                            continue
                        shared = True
                        other_meta = l1s[other].peek(line_addr)
                        if other_meta is not None:
                            other_meta.mesi = next_state_for_holder(
                                _GET_S, other_meta.mesi
                            )
                if shared:
                    meta.mesi = _SHARED
                elif meta.mesi is not _MODIFIED:
                    meta.mesi = _EXCLUSIVE
                readers = meta.tx_readers
                if readers is None:
                    meta.tx_readers = {tx_id}
                else:
                    readers.add(tx_id)
                thread.clock_ns += latency
                # -- post-access bookkeeping ----------------------------
                if entry.status is aborted:
                    raise TransactionAborted(
                        entry.abort_reason or AbortReason.EXPLICIT, tx_id
                    )
                if uses_directory:
                    record_access(line_addr, tx_id, False)
                    if (
                        line_addr in dram_overflowed
                        or line_addr in nvm_overflowed
                    ):
                        record_access(line_addr, tx_id, True)
                read_lines.add(line_addr)
                tx.reads += 1
                if records_access:
                    htm._on_access_recorded(tx, line_addr, is_write=False)
                if dram_redo and line_addr in dram_overflowed:
                    thread.clock_ns += (
                        controller.redo_dram_indirection_latency()
                    )
                    redo_indirections += 1
                if index == 0:
                    words = tx.write_buffer.get(line_addr)
                    buffered = None
                    if words is not None:
                        buffered = words.get(word_addr)
                    if buffered is not None:
                        first = buffered
                    else:
                        first = controller.load_word(cur_addr)
                index += 1
        finally:
            if redo_indirections:
                htm.stats.incr(
                    "dram.redo_read_indirections", redo_indirections
                )
        return first

    # --------------------------------------------------- non-tx block path

    def nontx_rmw_block(
        self,
        thread,
        core_id: int,
        domain_id: int,
        addrs: List[int],
        delta: int,
    ) -> None:
        """Fused read-modify-write sweep over ``HTMSystem.nontx_access``.

        Per address: the non-transactional read (directory + off-chip
        staging, GetS, load) followed by the write of ``value + delta``
        (staging, GetM, store) — the membound co-runner's inner loop, which
        is the single largest consumer of scalar dispatch time.
        """
        width = 2 * len(addrs)
        reason = self._fence_reason()
        if reason is not None or width < 4:
            self.epoch.note_scalar(width, reason or "narrow")
            nontx = self.htm.nontx_access
            for addr in addrs:
                value = nontx(thread, core_id, domain_id, addr, False)
                nontx(
                    thread, core_id, domain_id, addr, True, value=value + delta
                )
            return
        self.epoch.note_flush(width)

        htm = self.htm
        hierarchy = self.hierarchy
        controller = self.controller
        directory = hierarchy.directory
        l1s = hierarchy.l1s
        l1 = l1s[core_id]
        llc = hierarchy.llc
        l1_holders = hierarchy.l1_holders
        active = htm._active
        uses_directory = self._uses_directory
        offchip_always = htm._offchip_always
        offchip_on_miss = htm._offchip_on_miss_only
        offchip_conflicts = htm._offchip_conflicts
        l1_hit_ns = self._l1_hit_ns
        llc_hit_ns = self._llc_hit_ns
        dram_end = self._dram_end
        dram_demand_ns = self._dram_demand_ns
        demand_latency = controller.demand_access_latency
        check_access = directory.check_access
        evict_line = directory.evict_line
        on_l1_evict = hierarchy.on_l1_evict
        on_llc_evict = hierarchy.on_llc_evict
        load_word = controller.load_word
        store_word = controller.store_word
        rmw_word = controller.rmw_word
        l1_lookup = l1.lookup
        l1_peek = l1.peek
        l1_fill = l1.fill
        llc_lookup = llc.lookup
        llc_peek = llc.peek
        llc_fill = llc.fill
        abort_tx_id = htm._abort_tx_id
        non_tx_conflict = AbortReason.NON_TX_CONFLICT
        false_positive = AbortReason.FALSE_POSITIVE

        for addr in addrs:
            line_addr = addr & _LINE_MASK
            # ``value`` stays None when no transaction was active at the
            # write's issue point: then no conflict staging (and so no
            # victim rollback) can run between the scalar sequence's load
            # and store, and the pair fuses into one ``rmw_word`` at the
            # tail.  Otherwise the load happens here — the same point the
            # scalar read op returns its value, before the write staging's
            # potential rollbacks — and the store replays it exactly.
            value = None
            for is_write in (False, True):
                # -- nontx_access staging, fused ------------------------
                if active:
                    if is_write:
                        value = load_word(addr)
                    if uses_directory:
                        conflict = check_access(line_addr, None, is_write)
                        if conflict is not None:
                            for victim_id in sorted(conflict.victims):
                                abort_tx_id(
                                    victim_id,
                                    non_tx_conflict,
                                    line_addr=line_addr,
                                )
                    if offchip_always or (
                        offchip_on_miss
                        and l1_peek(line_addr) is None
                        and llc_peek(line_addr) is None
                    ):
                        hits = offchip_conflicts(
                            domain_id, line_addr, is_write, None, None
                        )
                        if hits:
                            htm.stats.incr("conflicts.offchip")
                            for victim_id, is_true in hits:
                                abort_tx_id(
                                    victim_id,
                                    non_tx_conflict
                                    if is_true
                                    else false_positive,
                                    line_addr=line_addr,
                                )
                # -- hierarchy.access, fused (tx_id None) ---------------
                meta = l1_lookup(line_addr)
                if meta is None:
                    latency = llc_hit_ns
                    if llc_lookup(line_addr) is None:
                        if DRAM_BASE <= line_addr < dram_end:
                            latency += dram_demand_ns
                        else:
                            latency += demand_latency(
                                line_addr, thread.clock_ns + latency
                            )
                        _, llc_victims = llc_fill(line_addr)
                        for victim in llc_victims:
                            # handle_llc_eviction, inlined
                            vline = victim.line_addr
                            vholders = l1_holders.pop(vline, None)
                            if vholders:
                                for vcore in vholders:
                                    vmeta = l1s[vcore].remove(vline)
                                    if vmeta is not None:
                                        victim.dirty = (
                                            victim.dirty or vmeta.dirty
                                        )
                                        if vmeta.tx_writer is not None:
                                            victim.tx_writer = vmeta.tx_writer
                                        if vmeta.tx_readers:
                                            vreaders = victim.tx_readers
                                            if vreaders is None:
                                                victim.tx_readers = set(
                                                    vmeta.tx_readers
                                                )
                                            else:
                                                vreaders.update(
                                                    vmeta.tx_readers
                                                )
                            ventry = evict_line(vline)
                            if victim.dirty and victim.tx_writer is None:
                                hierarchy.writebacks += 1
                            if (
                                victim.tx_writer is not None
                                or victim.tx_readers
                                or ventry is not None
                            ) and on_llc_evict is not None:
                                on_llc_evict(victim, ventry)
                    meta, victims = l1_fill(line_addr)
                    holders = l1_holders.get(line_addr)
                    if holders is None:
                        l1_holders[line_addr] = {core_id}
                    else:
                        holders.add(core_id)
                    for victim in victims:
                        # handle_l1_eviction, inlined
                        vline = victim.line_addr
                        vholders = l1_holders.get(vline)
                        if vholders is not None:
                            vholders.discard(core_id)
                            if not vholders:
                                del l1_holders[vline]
                        llc_meta = llc_peek(vline)
                        if llc_meta is not None:
                            llc_meta.dirty = llc_meta.dirty or victim.dirty
                            if victim.tx_writer is not None:
                                llc_meta.tx_writer = victim.tx_writer
                            if victim.tx_readers:
                                vreaders = llc_meta.tx_readers
                                if vreaders is None:
                                    llc_meta.tx_readers = set(
                                        victim.tx_readers
                                    )
                                else:
                                    vreaders.update(victim.tx_readers)
                        if (
                            victim.tx_writer is not None
                            and on_l1_evict is not None
                        ):
                            on_l1_evict(core_id, victim)
                else:
                    latency = l1_hit_ns
                if is_write:
                    holders = l1_holders.get(line_addr)
                    if holders is not None and (
                        len(holders) != 1 or core_id not in holders
                    ):
                        hierarchy.invalidate_other_l1s(core_id, line_addr)
                    meta.mesi = _MODIFIED
                    meta.dirty = True
                else:
                    holders = l1_holders.get(line_addr)
                    shared = False
                    if holders:
                        for other in holders:
                            if other == core_id:
                                continue
                            shared = True
                            other_meta = l1s[other].peek(line_addr)
                            if other_meta is not None:
                                other_meta.mesi = next_state_for_holder(
                                    _GET_S, other_meta.mesi
                                )
                    if shared:
                        meta.mesi = _SHARED
                    elif meta.mesi is not _MODIFIED:
                        meta.mesi = _EXCLUSIVE
                thread.clock_ns += latency
            # -- data movement ------------------------------------------
            if value is None:
                rmw_word(addr, delta)
            else:
                store_word(addr, value + delta)
