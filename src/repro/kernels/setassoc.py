"""Vectorized set-associative tag array over packed int arrays.

A drop-in twin of :class:`repro.cache.setassoc.SetAssociativeArray`: tags
live in a ``(num_sets, ways)`` int64 matrix (-1 = invalid) and LRU order in
a parallel monotone-stamp matrix, so probes are whole-row compares and
victim selection is an argmin — no per-set dict churn.  Line metadata stays
in one flat dict keyed by line address.

Equivalence contract with the scalar class (proven by ``tests/kernels/``):
identical hit/miss/eviction counters, identical victim choice (the scalar
dict pops its first key, which is always the minimum-stamp resident here),
and :meth:`resident_lines` enumerates each set's residents in stamp order —
exactly the scalar bucket-dict insertion order.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Tuple

from ..cache.setassoc import CacheLineMeta
from ..params import CacheGeometry, LINE_SIZE
from ._np import require_numpy

#: Set-index shift for the fixed simulator line size (64 B -> 6).
_LINE_SHIFT = LINE_SIZE.bit_length() - 1


class VectorSetAssociativeArray:
    """Tag storage for one cache level, packed into numpy int arrays."""

    def __init__(self, geometry: CacheGeometry, name: str) -> None:
        np = require_numpy()
        self._np = np
        self.geometry = geometry
        self.name = name
        num_sets = geometry.num_sets
        self._num_sets = num_sets
        # Same mask-vs-modulo indexing rule as the scalar array (and the same
        # bug class guard: the mask is only ever num_sets - 1 for powers of
        # two, never the raw set count).
        self._set_mask: Optional[int] = (
            num_sets - 1 if num_sets & (num_sets - 1) == 0 else None
        )
        self._ways = geometry.ways
        self._tags = np.full((num_sets, geometry.ways), -1, dtype=np.int64)
        self._stamps = np.zeros((num_sets, geometry.ways), dtype=np.int64)
        self._clock = 0  # monotone touch counter; larger = more recent
        self._meta: Dict[int, CacheLineMeta] = {}
        self.hits = 0
        self.misses = 0
        self.evictions = 0

    def _set_index(self, line_addr: int) -> int:
        mask = self._set_mask
        if mask is not None:
            return (line_addr >> _LINE_SHIFT) & mask
        return (line_addr // LINE_SIZE) % self._num_sets

    def lookup(
        self, line_addr: int, touch: bool = True
    ) -> Optional[CacheLineMeta]:
        """Probe for a line; refresh its LRU stamp on a hit."""
        meta = self._meta.get(line_addr)
        if meta is None:
            self.misses += 1
            return None
        if touch:
            np = self._np
            index = self._set_index(line_addr)
            row = self._tags[index]
            way = int(np.nonzero(row == line_addr)[0][0])
            self._clock += 1
            self._stamps[index, way] = self._clock
        self.hits += 1
        return meta

    def peek(self, line_addr: int) -> Optional[CacheLineMeta]:
        """Probe without touching LRU state or hit/miss counters."""
        return self._meta.get(line_addr)

    def fill(
        self, line_addr: int
    ) -> Tuple[CacheLineMeta, Sequence[CacheLineMeta]]:
        """Insert a line (must not be resident); returns (meta, victims)."""
        np = self._np
        index = self._set_index(line_addr)
        row = self._tags[index]
        free = np.nonzero(row < 0)[0]
        self._clock += 1
        meta = CacheLineMeta(line_addr)
        if free.size:
            way = int(free[0])
            row[way] = line_addr
            self._stamps[index, way] = self._clock
            self._meta[line_addr] = meta
            return meta, ()
        # Set is full: evict the LRU resident (minimum stamp — the line the
        # scalar bucket dict would pop first).
        stamps = self._stamps[index]
        evicted: List[CacheLineMeta] = []
        way = int(np.argmin(stamps))
        victim_addr = int(row[way])
        evicted.append(self._meta.pop(victim_addr))
        self.evictions += 1
        row[way] = line_addr
        stamps[way] = self._clock
        self._meta[line_addr] = meta
        return meta, evicted

    def install(self, line_addr: int) -> List[CacheLineMeta]:
        """Insert a line (must not be resident); returns evicted victims."""
        assert (
            self.peek(line_addr) is None
        ), f"{self.name}: double install {line_addr:#x}"
        return list(self.fill(line_addr)[1])

    def remove(self, line_addr: int) -> Optional[CacheLineMeta]:
        """Invalidate a line, returning its metadata if present."""
        meta = self._meta.pop(line_addr, None)
        if meta is None:
            return None
        np = self._np
        index = self._set_index(line_addr)
        row = self._tags[index]
        way = int(np.nonzero(row == line_addr)[0][0])
        row[way] = -1
        self._stamps[index, way] = 0
        return meta

    def resident_count(self) -> int:
        return len(self._meta)

    def resident_lines(self) -> List[int]:
        """All resident lines, per set in LRU-to-MRU order (scalar order)."""
        np = self._np
        lines: List[int] = []
        for index in range(self._num_sets):
            row = self._tags[index]
            occupied = np.nonzero(row >= 0)[0]
            if not occupied.size:
                continue
            order = occupied[
                np.argsort(self._stamps[index][occupied], kind="stable")
            ]
            lines.extend(int(addr) for addr in row[order])
        return lines

    def clear(self) -> None:
        self._tags[:] = -1
        self._stamps[:] = 0
        self._meta.clear()

    def occupancy_by_predicate(self, predicate) -> int:
        return sum(1 for meta in self._meta.values() if predicate(meta))

    # -- batch kernels ------------------------------------------------------

    def probe_batch(self, line_addrs):
        """Residency of many lines at once (no LRU touch, no counters)."""
        np = self._np
        addrs = np.asarray(line_addrs, dtype=np.int64)
        mask = self._set_mask
        if mask is not None:
            indices = (addrs >> _LINE_SHIFT) & mask
        else:
            indices = (addrs // LINE_SIZE) % self._num_sets
        return (self._tags[indices] == addrs[:, None]).any(axis=1)
