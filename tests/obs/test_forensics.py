"""Forensics: abort decomposition must equal the run's own counters."""

from __future__ import annotations

from repro.obs import analyze_events, build_timelines, format_report
from repro.obs.capture import trace_experiment
from repro.obs.forensics import REASON_GROUPS


def test_reason_groups_cover_every_abort_reason():
    from repro.errors import AbortReason

    grouped = [r for reasons in REASON_GROUPS.values() for r in reasons]
    assert sorted(grouped) == sorted(r.value for r in AbortReason)


class TestAgainstCounters:
    def test_abort_counts_equal_tx_aborts_counters(self, contended_spec):
        run = trace_experiment(contended_spec)
        assert run.dropped == 0
        report = analyze_events(run.events)
        assert run.result.aborts > 0, "spec not contended enough to test"
        assert report.reason_counts == run.result.aborts_by_reason
        assert report.abort_count == run.result.aborts
        assert report.begins == run.result.begins
        assert report.commits == run.result.commits
        assert sum(report.group_counts.values()) == report.abort_count

    def test_conflict_aborts_carry_an_edge(self, contended_spec):
        run = trace_experiment(contended_spec)
        report = analyze_events(run.events)
        conflict_aborts = [
            a
            for a in report.aborts
            if a.reason in ("conflict_coherence", "conflict_true", "false_positive")
        ]
        assert conflict_aborts, "spec not contended enough to test"
        for record in conflict_aborts:
            assert record.line_addr is not None
            assert record.other_tx is not None
            assert record.other_tx != record.tx_id

    def test_format_report_mentions_every_reason(self, contended_spec):
        run = trace_experiment(contended_spec)
        report = analyze_events(run.events)
        text = format_report(report, label=run.label)
        assert run.label in text
        for reason in report.reason_counts:
            assert f"tx.aborts.{reason}" in text
        for group in REASON_GROUPS:
            assert group in text


class TestTimelines:
    def test_every_transaction_resolves(self, tiny_spec):
        run = trace_experiment(tiny_spec)
        timelines = build_timelines(run.events)
        assert len(timelines) == run.result.begins + run.result.slow_path_executions
        outcomes = [t.outcome for t in timelines.values()]
        assert outcomes.count("committed") == run.result.commits
        assert outcomes.count("aborted") == run.result.aborts
        assert None not in outcomes

    def test_timelines_are_ordered_and_attributed(self, tiny_spec):
        run = trace_experiment(tiny_spec)
        for timeline in build_timelines(run.events).values():
            assert timeline.end_ns >= timeline.begin_ns
            assert timeline.thread_id is not None
            assert timeline.events[0].kind in ("tx.begin", "slowpath.begin")
            if timeline.outcome == "aborted":
                assert timeline.abort_reason is not None
