"""Tests for transaction IDs and the transaction status structure."""

from __future__ import annotations

import pytest

from repro.errors import AbortReason, TransactionStateError
from repro.htm.tss import TransactionStatusStructure, TxStatus
from repro.htm.txid import TxIdAllocator


class TestTxIdAllocator:
    def test_monotonically_increasing(self):
        allocator = TxIdAllocator()
        ids = [allocator.allocate() for _ in range(5)]
        assert ids == sorted(ids)
        assert len(set(ids)) == 5

    def test_starts_at_one(self):
        assert TxIdAllocator().allocate() == 1

    def test_zero_start_rejected(self):
        with pytest.raises(ValueError):
            TxIdAllocator(start=0)

    def test_last_allocated(self):
        allocator = TxIdAllocator()
        allocator.allocate()
        allocator.allocate()
        assert allocator.last_allocated == 2


class TestTss:
    def test_register_and_lookup(self):
        tss = TransactionStatusStructure()
        entry = tss.register(1, domain_id=7)
        assert entry.status is TxStatus.ACTIVE
        assert not entry.overflowed
        assert tss.is_active(1)

    def test_double_register_rejected(self):
        tss = TransactionStatusStructure()
        tss.register(1, 0)
        with pytest.raises(TransactionStateError):
            tss.register(1, 0)

    def test_unknown_entry_raises(self):
        with pytest.raises(TransactionStateError):
            TransactionStatusStructure().entry(9)

    def test_abort_flag_and_reason(self):
        tss = TransactionStatusStructure()
        tss.register(1, 0)
        tss.mark_aborted(1, AbortReason.CAPACITY)
        entry = tss.entry(1)
        assert entry.status is TxStatus.ABORTED
        assert entry.abort_reason is AbortReason.CAPACITY
        assert not tss.is_active(1)

    def test_double_abort_keeps_first_reason(self):
        tss = TransactionStatusStructure()
        tss.register(1, 0)
        tss.mark_aborted(1, AbortReason.CAPACITY)
        tss.mark_aborted(1, AbortReason.FALSE_POSITIVE)
        assert tss.entry(1).abort_reason is AbortReason.CAPACITY

    def test_commit(self):
        tss = TransactionStatusStructure()
        tss.register(1, 0)
        tss.mark_committed(1)
        assert tss.entry(1).status is TxStatus.COMMITTED

    def test_commit_of_aborted_rejected(self):
        tss = TransactionStatusStructure()
        tss.register(1, 0)
        tss.mark_aborted(1, AbortReason.EXPLICIT)
        with pytest.raises(TransactionStateError):
            tss.mark_committed(1)

    def test_abort_of_committed_rejected(self):
        tss = TransactionStatusStructure()
        tss.register(1, 0)
        tss.mark_committed(1)
        with pytest.raises(TransactionStateError):
            tss.mark_aborted(1, AbortReason.EXPLICIT)

    def test_overflow_bit(self):
        tss = TransactionStatusStructure()
        tss.register(1, 0)
        assert not tss.is_overflowed(1)
        tss.set_overflowed(1)
        assert tss.is_overflowed(1)

    def test_active_in_domain(self):
        tss = TransactionStatusStructure()
        tss.register(1, domain_id=7)
        tss.register(2, domain_id=7)
        tss.register(3, domain_id=8)
        tss.mark_committed(2)
        assert tss.active_in_domain(7) == [1]

    def test_reclaim_only_completed(self):
        tss = TransactionStatusStructure()
        tss.register(1, 0)
        tss.reclaim(1)  # active: not reclaimed
        assert len(tss) == 1
        tss.mark_committed(1)
        tss.reclaim(1)
        assert len(tss) == 0
