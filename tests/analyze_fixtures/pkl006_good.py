"""Good: only module-level functions and plain data cross the boundary."""

import json
import pickle
from concurrent.futures import ProcessPoolExecutor, ThreadPoolExecutor


def execute_point(point):
    return point.spec


def run_grid(points):
    with ProcessPoolExecutor(max_workers=2) as pool:
        return list(pool.map(execute_point, [p for p in points]))


def encode_record(record):
    return pickle.dumps((record.spec, record.key))


def threads_share_the_process(path):
    handle = open(path)
    with ThreadPoolExecutor() as pool:  # threads: no pickle boundary
        future = pool.submit(lambda: handle.read())
    return future


def json_dumps_is_not_pickle(payload):
    return json.dumps({"ok": payload})
