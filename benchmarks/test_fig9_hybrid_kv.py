"""Figure 9: hybrid key-value stores vs transaction footprint (Section VI-C).

Paper shape: as footprints grow past the caches, the unbounded designs pull
ahead of LLC-Bounded; isolation (_opt) beats the naive signatures (_sig) on
Hybrid-Index, whose DRAM+NVM transactions overflow more.
"""

from __future__ import annotations

import pytest

from repro.harness.figures import fig9, fig9_grid


def test_fig9(benchmark, quick, jobs, show):
    fig9a, fig9b = benchmark.pedantic(
        lambda: fig9(quick=quick, jobs=jobs), rounds=1, iterations=1
    )
    show(fig9a)
    show(fig9b)
    for result in (fig9a, fig9b):
        opt_col = next(c for c in result.columns if c.endswith("_opt"))
        sig_col = next(c for c in result.columns if c.endswith("_sig"))
        opt = result.column(opt_col)
        sig = result.column(sig_col)
        # Isolation helps (or at worst matches) at every footprint.
        assert sum(opt) >= sum(sig) - 0.1 * len(opt)
    # At the largest footprint the unbounded design beats the baseline on
    # Hybrid-Index (the paper's headline for this figure).
    last_row = fig9a.rows[-1]
    opt_index = fig9a.columns.index(
        next(c for c in fig9a.columns if c.endswith("_opt"))
    )
    assert last_row[opt_index] > 1.0


@pytest.mark.smoke
def test_fig9_smoke(smoke_point):
    """One tiny Fig. 9 point must still build and simulate end-to-end."""
    result = smoke_point(fig9_grid)
    assert result.committed_ops > 0
    assert result.verified
