"""Tests for the DRAM cache in front of NVM."""

from __future__ import annotations

import pytest

from repro.mem.address import MemoryKind
from repro.mem.backend import BackingStore
from repro.mem.dram_cache import DramCache
from repro.params import LINE_SIZE, LatencyConfig, MemoryConfig


@pytest.fixture
def nvm():
    return BackingStore(MemoryKind.NVM, LatencyConfig())


def make_cache(nvm, lines=4):
    config = MemoryConfig(
        dram_cache_bytes=lines * LINE_SIZE, dram_cache_ways=min(lines, 16)
    )
    return DramCache(config, nvm)


class TestFillAndLookup:
    def test_fill_then_lookup(self, nvm):
        cache = make_cache(nvm)
        cache.fill(0x40, {0x40: 7}, tx_id=1, committed=True)
        entry = cache.lookup(0x40)
        assert entry is not None
        assert entry.words[0x40] == 7

    def test_lookup_miss(self, nvm):
        assert make_cache(nvm).lookup(0x40) is None

    def test_fill_updates_existing(self, nvm):
        cache = make_cache(nvm)
        cache.fill(0x40, {0x40: 1}, 1, committed=False)
        cache.fill(0x40, {0x48: 2}, 1, committed=True)
        entry = cache.lookup(0x40)
        assert entry.words == {0x40: 1, 0x48: 2}
        assert entry.committed


class TestEvictionAndDrain:
    def test_committed_lines_drain_to_nvm(self, nvm):
        cache = make_cache(nvm, lines=2)
        cache.fill(0x00, {0x00: 1}, 1, committed=True)
        cache.fill(0x40, {0x40: 2}, 1, committed=True)
        cache.fill(0x80, {0x80: 3}, 1, committed=True)  # evicts 0x00
        assert nvm.load(0x00) == 1
        assert cache.lookup(0x00) is None
        assert cache.drains == 1

    def test_uncommitted_lines_are_pinned(self, nvm):
        cache = make_cache(nvm, lines=2)
        cache.fill(0x00, {0x00: 1}, 1, committed=False)
        cache.fill(0x40, {0x40: 2}, 1, committed=False)
        cache.fill(0x80, {0x80: 3}, 2, committed=False)
        # Nothing drains: uncommitted data must not reach NVM in place.
        assert nvm.load(0x00) == 0
        assert cache.overcommits == 1

    def test_drain_all(self, nvm):
        cache = make_cache(nvm)
        cache.fill(0x00, {0x00: 1}, 1, committed=True)
        cache.fill(0x40, {0x40: 2}, 2, committed=False)
        drained = cache.drain_all()
        assert drained == 1
        assert nvm.load(0x00) == 1
        assert nvm.load(0x40) == 0  # uncommitted stays put


class TestInvalidation:
    def test_invalidate_uncommitted(self, nvm):
        cache = make_cache(nvm)
        cache.fill(0x40, {0x40: 9}, tx_id=5, committed=False)
        assert cache.invalidate(0x40, tx_id=5)
        assert cache.lookup(0x40) is None
        assert cache.invalidations == 1

    def test_invalidate_wrong_tx_refused(self, nvm):
        cache = make_cache(nvm)
        cache.fill(0x40, {0x40: 9}, tx_id=5, committed=False)
        assert not cache.invalidate(0x40, tx_id=6)
        assert cache.lookup(0x40) is not None

    def test_invalidate_committed_refused(self, nvm):
        """Committed data is durable; the abort path must never drop it."""
        cache = make_cache(nvm)
        cache.fill(0x40, {0x40: 9}, tx_id=5, committed=True)
        assert not cache.invalidate(0x40, tx_id=5)

    def test_invalidated_line_never_drains(self, nvm):
        cache = make_cache(nvm, lines=2)
        cache.fill(0x00, {0x00: 1}, 1, committed=False)
        cache.invalidate(0x00, 1)
        cache.fill(0x40, {0x40: 2}, 2, committed=True)
        cache.fill(0x80, {0x80: 3}, 2, committed=True)
        cache.drain_all()
        assert nvm.load(0x00) == 0

    def test_mark_committed(self, nvm):
        cache = make_cache(nvm)
        cache.fill(0x40, {0x40: 9}, tx_id=5, committed=False)
        assert cache.mark_committed(0x40, 5)
        entry = cache.lookup(0x40)
        assert entry.committed

    def test_mark_committed_wrong_tx(self, nvm):
        cache = make_cache(nvm)
        cache.fill(0x40, {0x40: 9}, tx_id=5, committed=False)
        assert not cache.mark_committed(0x40, 7)


class TestVolatility:
    def test_wipe_loses_everything(self, nvm):
        cache = make_cache(nvm)
        cache.fill(0x40, {0x40: 9}, 1, committed=True)
        cache.wipe()
        assert cache.lookup(0x40) is None
        assert nvm.load(0x40) == 0  # never drained → lost (redo log recovers)
