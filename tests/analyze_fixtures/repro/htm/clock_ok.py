"""Good (for CLK008): the clock reached only *through* a declared funnel."""

from ..harness import timer as host_timer


def profile_step(engine):
    watch = host_timer.Stopwatch()  # the funnel absorbs the clock taint
    engine.step()
    return watch.elapsed_s()
