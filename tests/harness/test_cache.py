"""Tests for the on-disk result cache and its content-hash keying."""

from __future__ import annotations

import dataclasses
import json

from repro.harness.cache import CACHE_VERSION, ResultCache, spec_fingerprint
from repro.harness.config import ExperimentSpec, consolidated
from repro.harness.metrics import (
    RunResult,
    run_result_from_dict,
    run_result_to_dict,
)
from repro.harness.sweep import with_signature_bits, with_value_bytes
from repro.params import HTMConfig
from repro.workloads import WorkloadParams


def small_spec(**changes) -> ExperimentSpec:
    spec = ExperimentSpec(
        name="cache-test",
        htm=HTMConfig(),
        benchmarks=consolidated(
            "hashmap", 2,
            WorkloadParams(threads=2, txs_per_thread=2,
                           value_bytes=16 << 10, keys=64, initial_fill=16),
        ),
        scale=1 / 16,
        cores=4,
    )
    return dataclasses.replace(spec, **changes) if changes else spec


def sample_result(label: str = "1k_opt") -> RunResult:
    return RunResult(
        label=label,
        elapsed_ns=123456.75,
        committed_ops=8,
        commits=8,
        begins=11,
        aborts=3,
        aborts_by_reason={"false_positive": 2, "capacity": 1},
        overflows=4,
        sig_checks=100,
        verified=True,
        ops_by_process={0: 4, 1: 4},
    )


class TestFingerprint:
    def test_stable_and_hex(self):
        first = spec_fingerprint(small_spec())
        second = spec_fingerprint(small_spec())
        assert first == second
        assert len(first) == 64
        int(first, 16)  # valid hex

    def test_seed_changes_key(self):
        assert spec_fingerprint(small_spec()) != spec_fingerprint(
            small_spec(seed=small_spec().seed + 1)
        )

    def test_sig_bits_change_key(self):
        assert spec_fingerprint(small_spec()) != spec_fingerprint(
            with_signature_bits(small_spec(), 512)
        )

    def test_workload_params_change_key(self):
        assert spec_fingerprint(small_spec()) != spec_fingerprint(
            with_value_bytes(small_spec(), 32 << 10)
        )

    def test_label_changes_key(self):
        assert spec_fingerprint(small_spec(), label="a") != spec_fingerprint(
            small_spec(), label="b"
        )

    def test_version_changes_key(self):
        assert spec_fingerprint(small_spec(), version=CACHE_VERSION) != (
            spec_fingerprint(small_spec(), version=CACHE_VERSION + 1)
        )


class TestResultRoundTrip:
    def test_to_from_dict_exact(self):
        result = sample_result()
        rebuilt = run_result_from_dict(run_result_to_dict(result))
        assert rebuilt == result
        # int keys survive the stringly JSON trip
        assert rebuilt.ops_by_process == {0: 4, 1: 4}

    def test_json_trip_preserves_floats_exactly(self):
        result = sample_result()
        payload = json.loads(json.dumps(run_result_to_dict(result)))
        assert run_result_from_dict(payload).elapsed_ns == result.elapsed_ns


class TestResultCache:
    def test_hit_on_identical_spec(self, tmp_path):
        cache = ResultCache(tmp_path)
        cache.put(small_spec(), sample_result())
        hit = cache.get(small_spec())
        assert hit == sample_result()
        assert cache.stats.hits == 1
        assert cache.stats.stores == 1

    def test_miss_on_changed_fields(self, tmp_path):
        cache = ResultCache(tmp_path)
        cache.put(small_spec(), sample_result())
        assert cache.get(small_spec(seed=99)) is None
        assert cache.get(with_signature_bits(small_spec(), 512)) is None
        assert cache.get(with_value_bytes(small_spec(), 32 << 10)) is None
        assert cache.stats.misses == 3

    def test_version_stamp_invalidates(self, tmp_path):
        old = ResultCache(tmp_path, version=1)
        old.put(small_spec(), sample_result())
        new = ResultCache(tmp_path, version=2)
        assert new.get(small_spec()) is None
        assert new.stats.misses == 1
        # The old entry is untouched; rolling back still hits.
        assert ResultCache(tmp_path, version=1).get(small_spec()) is not None

    def test_corrupted_entry_falls_back_to_miss(self, tmp_path):
        cache = ResultCache(tmp_path)
        path = cache.put(small_spec(), sample_result())
        path.write_text("{ not json", encoding="utf-8")
        assert cache.get(small_spec()) is None
        assert cache.stats.corrupt == 1
        assert cache.stats.misses == 1
        # Recompute-and-store repairs the entry.
        cache.put(small_spec(), sample_result())
        assert cache.get(small_spec()) == sample_result()

    def test_schema_drifted_entry_is_a_miss(self, tmp_path):
        cache = ResultCache(tmp_path)
        path = cache.put(small_spec(), sample_result())
        payload = json.loads(path.read_text(encoding="utf-8"))
        payload["result"]["no_such_metric"] = 1
        path.write_text(json.dumps(payload), encoding="utf-8")
        assert cache.get(small_spec()) is None
        assert cache.stats.corrupt == 1

    def test_layout_fans_out_by_prefix(self, tmp_path):
        cache = ResultCache(tmp_path)
        path = cache.put(small_spec(), sample_result())
        fingerprint = cache.fingerprint(small_spec())
        assert path == tmp_path / fingerprint[:2] / f"{fingerprint}.json"
        assert path.is_file()

    def test_all_engines_share_one_entry(self, tmp_path):
        """A result computed under any engine serves every other engine.

        Engines are proven bit-identical, so the fingerprint excludes the
        knob: a grid seeded under scalar warms the cache for batched and
        vectorized runs (and vice versa) instead of tripling the store.
        """
        cache = ResultCache(tmp_path)
        cache.put(small_spec(engine="scalar"), sample_result())
        for engine in ("scalar", "vectorized", "batched", "auto", None):
            assert cache.get(small_spec(engine=engine)) == sample_result()
        assert cache.stats.hits == 5
        assert cache.stats.misses == 0
