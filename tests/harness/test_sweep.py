"""Tests for the parameter-sweep utility."""

from __future__ import annotations

import pytest

from repro.harness.config import ExperimentSpec, consolidated
from repro.harness.sweep import (
    SweepAxis,
    run_sweep,
    with_design,
    with_isolation,
    with_seed,
    with_signature_bits,
    with_value_bytes,
)
from repro.params import HTMConfig
from repro.workloads import WorkloadParams


def base_spec():
    return ExperimentSpec(
        name="sweep",
        htm=HTMConfig(),
        benchmarks=consolidated(
            "hashmap", 2,
            WorkloadParams(threads=2, txs_per_thread=2,
                           value_bytes=16 << 10, keys=64, initial_fill=16),
        ),
        scale=1 / 16,
        cores=4,
    )


class TestTransforms:
    def test_with_design(self):
        spec = with_design(base_spec(), "ideal")
        assert spec.htm.design == "ideal"

    def test_with_signature_bits(self):
        spec = with_signature_bits(base_spec(), 512)
        assert spec.htm.signature.bits == 512

    def test_with_isolation(self):
        assert not with_isolation(base_spec(), False).htm.isolation

    def test_with_value_bytes(self):
        spec = with_value_bytes(base_spec(), 32 << 10)
        assert all(
            b.params.value_bytes == 32 << 10 for b in spec.benchmarks
        )

    def test_with_seed(self):
        assert with_seed(base_spec(), 7).seed == 7


class TestRunSweep:
    def test_cross_product_rows(self):
        result = run_sweep(
            base_spec(),
            axes=[
                SweepAxis("design", ["llc_bounded", "ideal"], with_design),
                SweepAxis("seed", [1, 2], with_seed),
            ],
            metrics={
                "tput": lambda run: run.throughput,
                "aborts": lambda run: run.aborts,
            },
        )
        assert result.columns == ["design", "seed", "tput", "aborts"]
        assert len(result.rows) == 4
        designs = {row[0] for row in result.rows}
        assert designs == {"llc_bounded", "ideal"}
        assert all(row[2] > 0 for row in result.rows)

    def test_validation(self):
        with pytest.raises(ValueError):
            run_sweep(base_spec(), axes=[], metrics={"x": lambda r: 0})
        with pytest.raises(ValueError):
            run_sweep(
                base_spec(),
                axes=[SweepAxis("seed", [1], with_seed)],
                metrics={},
            )

    def test_single_axis(self):
        result = run_sweep(
            base_spec(),
            axes=[SweepAxis("seed", [1, 2, 3], with_seed)],
            metrics={"ops": lambda run: run.committed_ops},
        )
        assert len(result.rows) == 3
        assert all(row[1] > 0 for row in result.rows)
