"""Configuration tests: Table III defaults, scaling, and validation."""

from __future__ import annotations

import dataclasses

import pytest

from repro.errors import ConfigError
from repro.params import (
    CacheGeometry,
    DramLogPolicy,
    HTMConfig,
    HTMDesign,
    LatencyConfig,
    LINE_SIZE,
    MachineConfig,
    MemoryConfig,
    SignatureConfig,
    WORD_SIZE,
    WORDS_PER_LINE,
)


class TestTableIIIDefaults:
    """The default machine is the paper's Table III configuration."""

    def test_cores(self):
        assert MachineConfig().cores == 16

    def test_clock(self):
        assert MachineConfig().clock_ghz == 2.0

    def test_l1_geometry(self):
        l1 = MachineConfig().l1
        assert l1.size_bytes == 32 * 1024
        assert l1.ways == 8

    def test_llc_geometry(self):
        llc = MachineConfig().llc
        assert llc.size_bytes == 16 * 1024 * 1024
        assert llc.ways == 16

    def test_l1_latency(self):
        assert MachineConfig().latency.l1_ns == 1.5

    def test_llc_latency(self):
        assert MachineConfig().latency.llc_ns == 15.0

    def test_dram_latency(self):
        assert MachineConfig().latency.dram_ns == 82.0

    def test_nvm_latencies(self):
        latency = MachineConfig().latency
        assert latency.nvm_read_ns == 175.0
        assert latency.nvm_write_ns == 94.0

    def test_nvm_write_faster_than_read(self):
        """The ADR write-queue asymmetry the paper calls out."""
        latency = MachineConfig().latency
        assert latency.nvm_write_ns < latency.nvm_read_ns

    def test_line_and_word_sizes(self):
        assert LINE_SIZE == 64
        assert WORD_SIZE == 8
        assert WORDS_PER_LINE == 8


class TestCacheGeometry:
    def test_num_lines(self):
        geometry = CacheGeometry(size_bytes=32 * 1024, ways=8)
        assert geometry.num_lines == 512

    def test_num_sets(self):
        geometry = CacheGeometry(size_bytes=32 * 1024, ways=8)
        assert geometry.num_sets == 64

    def test_rejects_nondivisible_size(self):
        with pytest.raises(ConfigError):
            CacheGeometry(size_bytes=1000, ways=8)

    def test_rejects_nonpositive(self):
        with pytest.raises(ConfigError):
            CacheGeometry(size_bytes=0, ways=8)
        with pytest.raises(ConfigError):
            CacheGeometry(size_bytes=1024, ways=0)


class TestScaling:
    def test_scale_preserves_associativity(self):
        machine = MachineConfig.scaled(1 / 16)
        assert machine.l1.ways == 8
        assert machine.llc.ways == 16

    def test_scale_shrinks_sets(self):
        base = MachineConfig()
        machine = MachineConfig.scaled(1 / 16)
        assert machine.l1.num_sets == base.l1.num_sets // 16
        assert machine.llc.num_sets == base.llc.num_sets // 16

    def test_scale_one_is_paper_scale(self):
        machine = MachineConfig.scaled(1.0)
        assert machine.l1.size_bytes == 32 * 1024
        assert machine.llc.size_bytes == 16 * 1024 * 1024

    def test_scale_records_factor(self):
        assert MachineConfig.scaled(1 / 4).scale == 0.25

    def test_invalid_scale_rejected(self):
        with pytest.raises(ConfigError):
            MachineConfig.scaled(0)
        with pytest.raises(ConfigError):
            MachineConfig.scaled(2.0)

    def test_scaled_cores_override(self):
        assert MachineConfig.scaled(1 / 16, cores=4).cores == 4

    def test_extreme_scale_keeps_at_least_one_set(self):
        machine = MachineConfig.scaled(1 / 4096)
        assert machine.l1.num_sets >= 1
        assert machine.llc.num_sets >= 1


class TestSignatureConfig:
    def test_effective_bits_scale(self):
        config = SignatureConfig(bits=1024)
        assert config.effective_bits(1.0) == 1024
        assert config.effective_bits(1 / 16) == 64

    def test_effective_bits_floor(self):
        config = SignatureConfig(bits=512)
        assert config.effective_bits(1 / 4096) >= 8

    def test_labels(self):
        assert SignatureConfig(bits=512).label == "512"
        assert SignatureConfig(bits=1024).label == "1k"
        assert SignatureConfig(bits=4096).label == "4k"

    def test_rejects_tiny_filter(self):
        with pytest.raises(ConfigError):
            SignatureConfig(bits=4)

    def test_rejects_zero_hashes(self):
        with pytest.raises(ConfigError):
            SignatureConfig(hash_functions=0)


class TestHTMConfig:
    def test_default_design_is_uhtm(self):
        assert HTMConfig().design == HTMDesign.UHTM

    def test_rejects_unknown_design(self):
        with pytest.raises(ConfigError):
            HTMConfig(design="magic")

    def test_rejects_unknown_log_policy(self):
        with pytest.raises(ConfigError):
            HTMConfig(dram_log_policy="write-ahead")

    def test_rejects_negative_retries(self):
        with pytest.raises(ConfigError):
            HTMConfig(max_retries=-1)

    def test_backoff_bounds(self):
        with pytest.raises(ConfigError):
            HTMConfig(backoff_ns=100.0, backoff_max_ns=50.0)

    def test_labels_match_paper_figures(self):
        assert HTMConfig(design=HTMDesign.LLC_BOUNDED).label == "LLC-Bounded"
        assert HTMConfig(design=HTMDesign.IDEAL).label == "Ideal"
        assert (
            HTMConfig(design=HTMDesign.UHTM, isolation=False,
                      signature=SignatureConfig(bits=512)).label
            == "512_sig"
        )
        assert (
            HTMConfig(design=HTMDesign.UHTM, isolation=True,
                      signature=SignatureConfig(bits=4096)).label
            == "4k_opt"
        )
        assert (
            HTMConfig(design=HTMDesign.SIGNATURE_ONLY,
                      signature=SignatureConfig(bits=1024)).label
            == "SigOnly-1k"
        )

    def test_policies_enumerated(self):
        assert set(DramLogPolicy.ALL) == {"undo", "redo"}
        assert len(HTMDesign.ALL) == 4


class TestMemoryConfig:
    def test_defaults_positive(self):
        config = MemoryConfig()
        assert config.dram_bytes > 0
        assert config.nvm_bytes > 0
        assert config.dram_log_bytes > 0
        assert config.nvm_log_bytes > 0

    def test_rejects_zero_sizes(self):
        with pytest.raises(ConfigError):
            MemoryConfig(dram_bytes=0)

    def test_configs_are_frozen(self):
        with pytest.raises(dataclasses.FrozenInstanceError):
            MachineConfig().cores = 4
        with pytest.raises(dataclasses.FrozenInstanceError):
            LatencyConfig().l1_ns = 1.0


class TestLatencyValidation:
    def test_negative_latency_rejected(self):
        with pytest.raises(ConfigError):
            LatencyConfig(dram_ns=-1.0)
