"""Tests for the bandwidth-limited memory channel model."""

from __future__ import annotations

import dataclasses

import pytest

from repro import HTMConfig, MachineConfig, System
from repro.mem.address import MemoryKind
from repro.mem.channel import MemoryChannel
from repro.params import LINE_SIZE, MemoryConfig


class TestChannelQueueing:
    def test_idle_channel_no_delay(self):
        channel = MemoryChannel("dram", service_ns=2.5)
        assert channel.request(100.0) == 0.0
        assert channel.busy_until_ns == 102.5

    def test_back_to_back_requests_queue(self):
        channel = MemoryChannel("dram", service_ns=10.0)
        assert channel.request(0.0) == 0.0
        assert channel.request(0.0) == 10.0
        assert channel.request(0.0) == 20.0

    def test_spaced_requests_do_not_queue(self):
        channel = MemoryChannel("dram", service_ns=10.0)
        channel.request(0.0)
        assert channel.request(50.0) == 0.0

    def test_stats(self):
        channel = MemoryChannel("nvm", service_ns=10.0)
        channel.request(0.0)
        channel.request(0.0)
        assert channel.stats.requests == 2
        assert channel.stats.queued_ns_total == 10.0
        assert channel.stats.mean_queue_ns == 5.0

    def test_utilisation(self):
        channel = MemoryChannel("dram", service_ns=10.0)
        for i in range(5):
            channel.request(i * 100.0)
        assert channel.utilisation(1000.0) == pytest.approx(0.05)
        assert channel.utilisation(0.0) == 0.0


class TestBandwidthModelIntegration:
    def make_machine(self, model_bandwidth):
        base = MachineConfig.scaled(1 / 256, cores=4)
        return dataclasses.replace(
            base,
            memory=dataclasses.replace(
                base.memory, model_bandwidth=model_bandwidth
            ),
        )

    def run_streamers(self, model_bandwidth):
        system = System(self.make_machine(model_bandwidth), HTMConfig())
        proc = system.process("stream")
        nlines = 2048
        base = system.heap.alloc(nlines * LINE_SIZE, MemoryKind.DRAM)

        def make_worker(index):
            def worker(api):
                for i in range(nlines // 4):
                    addr = base + ((index * nlines // 4) + i) * LINE_SIZE
                    api.nontx.read_word(addr)
                    if i % 64 == 0:
                        yield

            return worker

        for i in range(4):
            proc.thread(make_worker(i))
        system.run()
        return system

    def test_disabled_by_default(self):
        system = self.run_streamers(model_bandwidth=False)
        assert system.controller.dram_channel is None

    def test_contention_lengthens_runtime(self):
        """Four concurrent streams over one channel must take longer than
        with infinite bandwidth."""
        free = self.run_streamers(model_bandwidth=False)
        limited = self.run_streamers(model_bandwidth=True)
        assert limited.elapsed_ns > free.elapsed_ns
        assert limited.controller.dram_channel.stats.requests > 0

    def test_queueing_observed_under_bursts(self):
        system = self.run_streamers(model_bandwidth=True)
        assert system.controller.dram_channel.stats.queued_ns_total > 0

    def test_determinism_with_bandwidth(self):
        a = self.run_streamers(model_bandwidth=True)
        b = self.run_streamers(model_bandwidth=True)
        assert a.elapsed_ns == b.elapsed_ns
