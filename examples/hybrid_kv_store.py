#!/usr/bin/env python3
"""A hybrid DRAM/NVM key-value store in one transaction (the paper's Fig. 1).

Mirrors the motivating example: a B-tree index kept in DRAM (to accelerate
scans) and a hash-table index in NVM, updated together atomically.  The demo
shows that after concurrent inserts — including aborted attempts — the two
indexes agree key-for-key, and that after a crash the NVM side recovers
while the DRAM index can be rebuilt from it.

Run with:  python examples/hybrid_kv_store.py
"""

from repro import HTMConfig, MachineConfig, MemoryKind, System
from repro.runtime.txapi import RawContext
from repro.workloads.btree import TxBTree
from repro.workloads.hashmap import TxHashMap

THREADS = 4
INSERTS_PER_THREAD = 30
VALUE_WORDS = 8


def main() -> None:
    system = System(
        MachineConfig.scaled(1 / 16, cores=4), HTMConfig(design="uhtm"), seed=7
    )
    app = system.process("hybrid-kv")
    heap = system.heap
    raw = RawContext(system.controller)

    # The two indexes of the motivating example (Section III-A):
    #   "The b+tree is placed in DRAM to accelerate a scan operation while
    #    others such as put/get/update/delete use the hash-table in NVM."
    btree = TxBTree.create(heap, raw, MemoryKind.DRAM)
    table = TxHashMap.create(heap, raw, MemoryKind.NVM, nbuckets=64)

    def make_worker(index):
        def worker(api):
            for i in range(INSERTS_PER_THREAD):
                key = index * 1000 + i
                record = heap.alloc_words(VALUE_WORDS, MemoryKind.NVM)

                def put(tx, key=key, record=record):
                    # Write the record payload in NVM...
                    for w in range(VALUE_WORDS):
                        tx.write_word(record + w * 8, key)
                    yield
                    # ...then update BOTH indexes atomically (Figure 1).
                    table.insert(tx, key, record)
                    btree.insert(tx, key, record)

                yield from api.run_transaction(put)

        return worker

    for i in range(THREADS):
        app.thread(make_worker(i))
    system.run()

    hash_keys = sorted(table.keys(raw))
    btree_keys = btree.keys(raw)
    print(f"inserted keys          : {len(hash_keys)}")
    print(f"indexes agree          : {hash_keys == btree_keys}")
    print(f"aborts during run      : {system.abort_breakdown()}")
    assert hash_keys == btree_keys
    assert len(hash_keys) == THREADS * INSERTS_PER_THREAD

    # Scans use the DRAM B-tree:
    window = btree.scan(raw, 1000, 1010)
    print(f"scan [1000, 1010]      : {[k for k, _ in window]}")

    print("\n=== crash: DRAM index is lost, NVM table recovers ===")
    system.crash()
    system.recover()
    recovered = sorted(table.keys(raw))
    print(f"recovered NVM keys     : {len(recovered)}")
    assert recovered == hash_keys

    # Rebuild the volatile index from persistent state (what a real system
    # does at startup — the paper: "The programmers' responsibility is to
    # place data structures in NVM if they are necessary for data recovery").
    rebuilt = TxBTree.create(heap, raw, MemoryKind.DRAM)
    for key in recovered:
        rebuilt.insert(raw, key, table.get(raw, key))
    print(f"rebuilt DRAM index     : {len(rebuilt.keys(raw))} keys")
    assert rebuilt.keys(raw) == recovered
    print("\nhybrid kv-store OK")


if __name__ == "__main__":
    main()
