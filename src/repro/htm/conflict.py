"""Conflict resolution policy (Table II).

|                    | Overflowed?  | Action                  |
|--------------------|--------------|-------------------------|
| On-chip cache      | One          | Abort non-overflowed Tx |
|                    | None or both | Requester-wins          |
| Off-chip memory    | One          | Abort non-overflowed Tx |
|                    | None or both | Requester-aborts        |

Overflowed transactions are prioritised because aborting one is expensive
(undo-log rollback) and it would likely overflow again on retry.  Requester
wins inside the caches (nacking is free there); off-chip the requester
aborts itself because "the policy does not require extra communication
between processors".
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import FrozenSet, List, Optional


class ConflictLocation(enum.Enum):
    ON_CHIP = "on_chip"
    OFF_CHIP = "off_chip"


@dataclass(frozen=True)
class Resolution:
    """Outcome of resolving one conflict edge.

    ``requester_aborts`` and ``victims_to_abort`` are mutually exclusive by
    construction: either the requester dies, or some set of victims does.
    """

    requester_aborts: bool
    victims_to_abort: FrozenSet[int]


class ResolutionPolicy:
    """Selectable conflict-resolution policies.

    ``TABLE2`` is the paper's (requester-wins on-chip, requester-aborts
    off-chip, overflow priority).  ``OLDEST_WINS`` is the classic
    timestamp-ordering extension the paper's discussion points at for its
    acknowledged livelock problem: the transaction with the smallest ID
    (the oldest) wins every conflict, so some transaction always makes
    progress.  The ``policy-ablation`` benchmark compares them.
    """

    TABLE2 = "table2"
    OLDEST_WINS = "oldest_wins"

    ALL = (TABLE2, OLDEST_WINS)


def _emit_resolution(
    tracer,
    location: ConflictLocation,
    requester_id: Optional[int],
    victims: List[int],
    resolution: Resolution,
    now_ns: float,
) -> None:
    if tracer is None:
        return
    tracer.emit(
        "conflict.resolve",
        ts_ns=now_ns,
        tx_id=requester_id,
        location=location.value,
        victims=tuple(victims),
        requester_aborts=resolution.requester_aborts,
        victims_aborted=tuple(sorted(resolution.victims_to_abort)),
    )


def resolve_conflict_oldest_wins(
    requester_id: int,
    victims: List[int],
    tracer=None,
    now_ns: float = 0.0,
) -> Resolution:
    """Timestamp ordering: the lowest transaction ID survives."""
    oldest = min(victims + [requester_id])
    if oldest != requester_id:
        resolution = Resolution(True, frozenset())
    else:
        resolution = Resolution(False, frozenset(victims))
    _emit_resolution(
        tracer, ConflictLocation.ON_CHIP, requester_id, victims, resolution, now_ns
    )
    return resolution


def resolve_conflict(
    location: ConflictLocation,
    requester_overflowed: bool,
    victims: List[int],
    victim_overflowed: "dict[int, bool]",
    tracer=None,
    now_ns: float = 0.0,
    requester_id: Optional[int] = None,
) -> Resolution:
    """Apply Table II to a requester-vs-victims conflict.

    With multiple victims (e.g. a write against several readers), the
    requester survives only if it beats *every* victim; otherwise it aborts
    and no victim does.  That conservative choice avoids asymmetric partial
    aborts the paper does not describe.
    """
    resolution = _apply_table2(
        location, requester_overflowed, victims, victim_overflowed
    )
    _emit_resolution(tracer, location, requester_id, victims, resolution, now_ns)
    return resolution


def _apply_table2(
    location: ConflictLocation,
    requester_overflowed: bool,
    victims: List[int],
    victim_overflowed: "dict[int, bool]",
) -> Resolution:
    doomed: List[int] = []
    for victim in victims:
        v_overflowed = victim_overflowed.get(victim, False)
        if requester_overflowed != v_overflowed:
            if requester_overflowed:
                doomed.append(victim)  # abort the non-overflowed one
            else:
                return Resolution(True, frozenset())
        elif location is ConflictLocation.ON_CHIP:
            doomed.append(victim)  # requester-wins
        else:
            return Resolution(True, frozenset())  # requester-aborts
    return Resolution(False, frozenset(doomed))
