"""Tests for the transactional heap."""

from __future__ import annotations

import pytest

from repro.errors import ConfigError
from repro.mem.address import MemoryKind
from repro.mem.controller import MemoryController
from repro.params import LINE_SIZE, LatencyConfig, MemoryConfig, WORD_SIZE
from repro.runtime.heap import TxHeap


@pytest.fixture
def heap():
    return TxHeap(MemoryController(MemoryConfig(), LatencyConfig()))


class TestTxHeap:
    def test_alloc_in_correct_region(self, heap):
        dram = heap.alloc(64, MemoryKind.DRAM)
        nvm = heap.alloc(64, MemoryKind.NVM)
        space = heap.controller.address_space
        assert space.is_dram(dram)
        assert space.is_nvm(nvm)
        assert not space.is_log(dram)
        assert not space.is_log(nvm)

    def test_alloc_words(self, heap):
        addr = heap.alloc_words(3, MemoryKind.DRAM)
        assert addr % LINE_SIZE == 0

    def test_alloc_words_rejects_nonpositive(self, heap):
        with pytest.raises(ConfigError):
            heap.alloc_words(0, MemoryKind.DRAM)

    def test_free_and_reuse(self, heap):
        addr = heap.alloc_words(8, MemoryKind.NVM)
        heap.free_words(addr, 8, MemoryKind.NVM)
        assert heap.alloc_words(8, MemoryKind.NVM) == addr

    def test_field_addressing(self, heap):
        base = heap.alloc_words(4, MemoryKind.DRAM)
        assert TxHeap.field(base, 0) == base
        assert TxHeap.field(base, 3) == base + 3 * WORD_SIZE

    def test_allocator_accessor(self, heap):
        assert heap.allocator(MemoryKind.DRAM) is not heap.allocator(
            MemoryKind.NVM
        )
