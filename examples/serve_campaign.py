#!/usr/bin/env python3
"""Job-service demo: submit a campaign, drain it with a sharded fleet.

The whole lifecycle in one script: a fig2 smoke campaign goes into a
spool directory, two sharded worker *processes* (the same thing
``python -m repro serve daemon`` launches) drain it into the shared
result cache while the client streams per-point progress, and the
assembled results are compared against a serial ``run_grid`` of the same
points — they must be identical, that is the service's whole contract.

The spool survives anything: SIGKILL the workers (or this script) at any
moment, rerun it, and only the unfinished points are simulated again.

Run with:  python examples/serve_campaign.py
"""

import os
import subprocess
import sys
import tempfile
from pathlib import Path

from repro.harness.figures import FIGURE_GRIDS
from repro.harness.parallel import run_grid
from repro.serve import ServeClient
from repro.serve.daemon import worker_command

QUICK, SCALE, SEED = True, 1 / 64, 3


def main() -> None:
    with tempfile.TemporaryDirectory(prefix="repro-spool-") as spool:
        print(f"=== Submit: fig2 smoke grid -> {spool} ===")
        client = ServeClient(spool)
        meta = client.submit_figure("fig2", quick=QUICK, scale=SCALE,
                                    seed=SEED)
        print(f"campaign {meta.campaign_id}: {meta.total_points} points")
        # Submission is idempotent — same content, same campaign:
        again = client.submit_figure("fig2", quick=QUICK, scale=SCALE,
                                     seed=SEED)
        assert again.campaign_id == meta.campaign_id

        print()
        print("=== Drain: two sharded worker processes ===")
        env = dict(os.environ)
        src = str(Path(__file__).resolve().parents[1] / "src")
        env["PYTHONPATH"] = src + (
            os.pathsep + env["PYTHONPATH"] if env.get("PYTHONPATH") else ""
        )
        workers = [
            subprocess.Popen(
                worker_command(spool, shard, 2, drain=True, poll_s=0.1),
                env=env,
            )
            for shard in range(2)
        ]

        def progress(status, newly):
            for index, label in newly:
                print(f"  point {index} done ({label})")

        client.watch(meta.campaign_id, timeout_s=300, progress=progress)
        for worker in workers:
            worker.wait(timeout=60)

        print()
        print("=== Verify: served results == serial run_grid ===")
        served = client.results(meta.campaign_id)
        direct = run_grid(FIGURE_GRIDS["fig2"](quick=QUICK, scale=SCALE,
                                               seed=SEED))
        assert served == direct, "service results diverged from serial!"
        print(f"{len(served)} points identical — the fleet is just a "
              "faster way to fill the same cache")

        print()
        print("=== Figure export, byte-identical to a direct run ===")
        for figure in client.figure_results(meta.campaign_id):
            print(figure.pretty())


if __name__ == "__main__":
    sys.exit(main())
