"""Hardware address signatures (per-core read/write Bloom filters).

Signatures encode the addresses of LLC-overflowed transactional lines so
conflicts beyond the on-chip caches can be detected without walking the log
(Section IV-D).  They are real Bloom filters over a hardware-style hash
family, so false positives *emerge* from filter saturation exactly as they
would in the modelled hardware rather than being injected statistically.
"""

from .addresssig import SignaturePair
from .bloom import BloomFilter
from .hashing import H3HashFamily, MultiplicativeHashFamily
from .isolation import ConflictDomainRegistry

__all__ = [
    "SignaturePair",
    "BloomFilter",
    "H3HashFamily",
    "MultiplicativeHashFamily",
    "ConflictDomainRegistry",
]
