"""``repro.serve`` — the simulator as a sharded, queued job service.

``run_grid`` fans a figure grid over one process pool on one host and
blocks until the last point returns.  This package turns the same grids
into **submit-and-watch campaigns**: a persistent on-disk job queue (the
*spool*) holds campaigns of :class:`~repro.harness.parallel.GridPoint`s, a
shardable worker fleet leases points and runs them through the shared
execution core (:func:`~repro.harness.parallel.execute_point`), and the
content-addressed :class:`~repro.harness.cache.ResultCache` is the shared
artifact store every worker publishes into.

Correctness never depends on coordination: specs are pure functions of
their seed, so re-executing a point is idempotent, and cache publication
is one atomic rename.  Leases (and shards) only reduce duplicate work.
That is what makes checkpoint/resume first-class — SIGKILL any worker or
the whole fleet, restart, and exactly the unpublished remainder is
recomputed.

See ``docs/SERVE.md`` for the queue format, the lease protocol, sharding,
and failure semantics; ``python -m repro serve --help`` for the CLI.
"""

from __future__ import annotations

from .client import ServeClient, ServiceExecutor
from .daemon import Daemon
from .jobstore import CampaignMeta, CampaignStore, JobRecord, ServeError
from .queue import CampaignStatus, JobQueue, Lease
from .worker import Worker, WorkerStats

__all__ = [
    "CampaignMeta",
    "CampaignStatus",
    "CampaignStore",
    "Daemon",
    "JobQueue",
    "JobRecord",
    "Lease",
    "ServeClient",
    "ServeError",
    "ServiceExecutor",
    "Worker",
    "WorkerStats",
]
