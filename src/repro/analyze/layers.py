"""The declared layer DAG of the repro tree.

LAY002 derives its verdicts from this file, so the architecture is written
down once, reviewable, and enforced — rather than implied by whatever the
imports happen to be.  Edges point *downward*: a package may import only the
packages listed for it (plus itself and the standard library).

The stack mirrors the hardware it models: foundational enums and parameters
at the bottom, then memory devices, the deterministic simulator core, caches
and signatures above the memory they index, the HTM protocol over all of
those, and the runtime/workload/harness layers on top.
"""

from __future__ import annotations

from typing import Dict, FrozenSet

#: package -> packages it may import from.  Must stay acyclic.
LAYER_DAG: Dict[str, FrozenSet[str]] = {
    "mem": frozenset(),
    "sim": frozenset({"mem"}),
    "cache": frozenset({"mem", "sim"}),
    "signatures": frozenset({"sim"}),
    "htm": frozenset({"mem", "sim", "cache", "signatures"}),
    # Vectorized twins of the scalar kernel classes: the package imports the
    # layers whose interfaces it re-implements, and only the runtime (for
    # kit injection), harness, and perf (for engine-knob CLI validation)
    # import it — htm/cache/signatures receive kits duck-typed and stay
    # below it.
    "kernels": frozenset({"mem", "sim", "cache", "signatures"}),
    "runtime": frozenset(
        {"mem", "sim", "cache", "signatures", "htm", "kernels"}
    ),
    "workloads": frozenset({"mem", "sim", "runtime"}),
    "harness": frozenset(
        {"mem", "sim", "htm", "runtime", "workloads", "kernels"}
    ),
    "faults": frozenset(
        {"mem", "sim", "htm", "runtime", "workloads", "harness"}
    ),
    # Observability sits on top like faults/: it reads every layer through
    # duck-typed hook attributes, and nothing below ever imports it.
    "obs": frozenset(
        {"mem", "sim", "cache", "signatures", "htm", "runtime", "workloads",
         "harness"}
    ),
    # Profiling also sits on top: it instruments hot entry points in every
    # layer (and drives the harness), and nothing below ever imports it.
    "perf": frozenset(
        {"mem", "sim", "cache", "signatures", "htm", "runtime", "workloads",
         "harness", "kernels"}
    ),
    # The job service drives the harness (grids, cache, figures) from
    # separate processes; nothing below ever imports it.
    "serve": frozenset(
        {"mem", "sim", "htm", "runtime", "workloads", "harness"}
    ),
    # Traffic reporting sits on top like obs (which it drives for traced
    # tail forensics); the scenario's moving parts live lower — arrivals
    # in sim/, the tenant workload in workloads/, the figure in harness/.
    "traffic": frozenset(
        {"mem", "sim", "htm", "runtime", "workloads", "harness", "obs"}
    ),
    "analyze": frozenset(),
}

#: Leaf modules importable from anywhere (shared vocabulary, no behaviour
#: above the standard library).
UNLAYERED_MODULES: FrozenSet[str] = frozenset({"errors", "params"})

#: The wall-clock funnels (posix path suffixes): the only modules that may
#: call ``time.*``/``datetime.now`` directly.  DET001 exempts them from its
#: per-file clock ban and CLK008 enforces the stronger funnel property —
#: no sim-critical function may even *reach* a clock read through the call
#: graph except through these.  Profiling and queue lease deadlines are
#: inherently wall-clock activities; their readings only ever describe the
#: host, never the simulation.
CLOCK_FUNNEL_FILES: tuple = (
    "repro/harness/timer.py",
    "repro/perf/phases.py",
    "repro/serve/clock.py",
)

#: Attribute names that are the memory layer's *internals*: the backing
#: stores, hardware logs, and the DRAM cache.  Section IV-B makes the
#: controller "the only component allowed to touch the reserved log areas";
#: the protocol (htm/) and applications (workloads/) must go through
#: ``mem.controller`` / ``cache.hierarchy`` entry-point methods instead of
#: reaching into these.
MEM_INTERNAL_ATTRS: FrozenSet[str] = frozenset(
    {"dram", "nvm", "dram_log", "nvm_log", "dram_cache", "backend"}
)

#: Packages forbidden from touching :data:`MEM_INTERNAL_ATTRS` directly.
INTERNALS_RESTRICTED_PACKAGES: FrozenSet[str] = frozenset({"htm", "workloads"})

#: Names a receiver expression may end in for an attribute access to count
#: as "reaching through the controller" (``self.controller.nvm_log`` …).
CONTROLLER_NAMES: FrozenSet[str] = frozenset({"controller", "_controller"})


def assert_acyclic() -> None:
    """Sanity check used by the test suite: the declared DAG has no cycle."""
    state: Dict[str, int] = {}

    def visit(package: str) -> None:
        state[package] = 1
        for dep in LAYER_DAG.get(package, frozenset()):
            mark = state.get(dep, 0)
            if mark == 1:
                raise ValueError(f"layer cycle through {package!r} -> {dep!r}")
            if mark == 0:
                visit(dep)
        state[package] = 2

    for package in LAYER_DAG:
        if state.get(package, 0) == 0:
            visit(package)
