"""End-to-end workload runs under each HTM design, with verification."""

from __future__ import annotations

import pytest

from repro import HTMConfig, MachineConfig, System
from repro.mem.address import MemoryKind
from repro.workloads import WORKLOADS, WorkloadParams

ALL_BENCHMARKS = (
    "hashmap",
    "btree",
    "rbtree",
    "skiplist",
    "hybrid_index",
    "dual_kv",
    "echo",
)


def run_workload(name, design="uhtm", params=None, seed=2020, **workload_kwargs):
    system = System(
        MachineConfig.scaled(1 / 64, cores=4), HTMConfig(design=design), seed=seed
    )
    proc = system.process(name)
    params = params or WorkloadParams(
        threads=4, txs_per_thread=4, value_bytes=100 << 10, keys=64,
        initial_fill=16,
    )
    workload = WORKLOADS[name](system, proc, params, **workload_kwargs)
    workload.spawn()
    system.run()
    return system, workload


@pytest.mark.parametrize("name", ALL_BENCHMARKS)
class TestAllWorkloadsAllDesignsLite:
    def test_uhtm_runs_and_verifies(self, name):
        system, workload = run_workload(name, "uhtm")
        assert workload.verify()
        assert system.stats.counter("ops.committed") > 0

    def test_llc_bounded_runs_and_verifies(self, name):
        system, workload = run_workload(name, "llc_bounded")
        assert workload.verify()
        assert system.stats.counter("ops.committed") > 0

    def test_ideal_runs_and_verifies(self, name):
        system, workload = run_workload(name, "ideal")
        assert workload.verify()


class TestDeterminism:
    @pytest.mark.parametrize("name", ["hashmap", "hybrid_index", "echo", "skiplist"])
    def test_same_seed_same_counters(self, name):
        first, _ = run_workload(name, seed=99)
        second, _ = run_workload(name, seed=99)
        assert first.stats.snapshot() == second.stats.snapshot()
        assert first.elapsed_ns == second.elapsed_ns

    def test_different_seed_differs_somewhere(self):
        first, _ = run_workload("hashmap", seed=1)
        second, _ = run_workload("hashmap", seed=2)
        assert first.elapsed_ns != second.elapsed_ns


class TestHybridConsistency:
    def test_indexes_agree_after_concurrency(self):
        params = WorkloadParams(
            threads=4, txs_per_thread=6, value_bytes=50 << 10,
            keys=128, initial_fill=32,
        )
        system, workload = run_workload("hybrid_index", params=params)
        assert workload.verify()  # includes cross-index agreement

    def test_dual_store_catches_up(self):
        system, workload = run_workload("dual_kv")
        assert not workload.crl
        assert workload.verify()


class TestEchoSpecifics:
    def test_long_tx_scheduling_materialises(self):
        params = WorkloadParams(
            threads=3, txs_per_thread=10, value_bytes=8 << 10,
            keys=512, initial_fill=256,
        )
        system, workload = run_workload(
            "echo", params=params, long_tx_ratio=0.05,
            long_scan_bytes=1 << 20, hot_keys=32,
        )
        assert workload.long_txs_executed >= 1
        assert workload.verify()

    def test_scan_keys_disjoint_from_hot_chains(self):
        params = WorkloadParams(
            threads=2, txs_per_thread=2, value_bytes=8 << 10,
            keys=512, initial_fill=256,
        )
        system, workload = run_workload(
            "echo", params=params, long_tx_ratio=0.5,
            long_scan_bytes=1 << 16, hot_keys=32,
        )
        nbuckets = max(128, params.initial_fill)
        from repro.workloads.hashmap import TxHashMap

        hot_buckets = {TxHashMap._hash(k) % nbuckets for k in range(32)}
        for key in workload._scan_keys:
            assert TxHashMap._hash(key) % nbuckets not in hot_buckets


class TestMemBound:
    def test_membound_stops_on_signal(self):
        system = System(MachineConfig.scaled(1 / 64, cores=4), HTMConfig())
        proc = system.process("hog")
        stop = {"flag": False}
        hog = WORKLOADS["membound"](
            system,
            proc,
            WorkloadParams(threads=1, value_bytes=64, initial_fill=0),
            llc_multiple=1.0,
            stop_when=lambda: stop["flag"],
            max_sweeps=1_000_000,
        )
        hog.spawn()
        system.run(max_steps=50)
        stop["flag"] = True
        system.run()
        assert system.engine.all_done()

    def test_membound_fills_llc(self):
        system = System(MachineConfig.scaled(1 / 256, cores=2), HTMConfig())
        proc = system.process("hog")
        hog = WORKLOADS["membound"](
            system,
            proc,
            WorkloadParams(threads=1, value_bytes=64, initial_fill=0),
            llc_multiple=2.0,
            max_sweeps=3,
        )
        hog.spawn()
        system.run()
        assert hog.sweeps_completed >= 1
        occupancy = system.hierarchy.llc.resident_count()
        assert occupancy > system.machine.llc.num_lines * 0.9
