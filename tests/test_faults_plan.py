"""Tests for fault plans and the event-counting injector."""

from __future__ import annotations

import json

import pytest

from repro.errors import ConfigError, PowerFailure
from repro.faults import (
    CrashPoint,
    FaultInjector,
    FaultPlan,
    TriggerKind,
    after_commit_mark,
    after_nvm_append,
    at_step,
    at_time,
    before_commit_mark,
    during_recovery,
    mid_commit,
)
from repro.mem.address import MemoryKind, Region
from repro.mem.log import HardwareLog, RecordKind


class TestCrashPoint:
    def test_ordinal_must_be_positive(self):
        with pytest.raises(ConfigError):
            CrashPoint(TriggerKind.NVM_LOG_APPEND, ordinal=0)

    def test_sim_time_ignores_ordinal_but_needs_nonnegative_time(self):
        CrashPoint(TriggerKind.SIM_TIME, at_ns=0.0)  # fine
        with pytest.raises(ConfigError):
            CrashPoint(TriggerKind.SIM_TIME, at_ns=-1.0)

    def test_describe(self):
        assert "nvm_log_append #3" in CrashPoint(
            TriggerKind.NVM_LOG_APPEND, 3
        ).describe()
        assert "t=50ns" in CrashPoint(TriggerKind.SIM_TIME, at_ns=50.0).describe()

    def test_dict_round_trip(self):
        for point in (
            CrashPoint(TriggerKind.COMMIT_MARK, 7),
            CrashPoint(TriggerKind.SIM_TIME, at_ns=123.5),
            CrashPoint(TriggerKind.RECOVERY_REPLAY, 2),
        ):
            assert CrashPoint.from_dict(point.to_dict()) == point

    def test_value_semantics(self):
        a = CrashPoint(TriggerKind.MID_COMMIT, 2)
        b = CrashPoint(TriggerKind.MID_COMMIT, 2)
        assert a == b and hash(a) == hash(b)


class TestFaultPlan:
    def test_empty_plan_is_run_to_completion(self):
        plan = FaultPlan()
        assert len(plan) == 0
        assert plan.run_step is None
        assert plan.recovery_steps == ()
        assert "run to completion" in plan.describe()

    def test_only_first_step_may_be_run_phase(self):
        with pytest.raises(ConfigError):
            FaultPlan(
                (
                    CrashPoint(TriggerKind.NVM_LOG_APPEND, 1),
                    CrashPoint(TriggerKind.COMMIT_MARK, 1),
                )
            )

    def test_stacked_recovery_steps_are_legal(self):
        plan = FaultPlan(
            (
                CrashPoint(TriggerKind.NVM_LOG_APPEND, 4),
                CrashPoint(TriggerKind.RECOVERY_REPLAY, 1),
                CrashPoint(TriggerKind.RECOVERY_REPLAY, 3),
            )
        )
        assert plan.run_step == CrashPoint(TriggerKind.NVM_LOG_APPEND, 4)
        assert len(plan.recovery_steps) == 2

    def test_recovery_only_plan_has_no_run_step(self):
        plan = during_recovery(2)
        assert plan.run_step is None
        assert plan.recovery_steps == (CrashPoint(TriggerKind.RECOVERY_REPLAY, 2),)

    def test_json_round_trip(self):
        plan = during_recovery(2, after=after_nvm_append(9))
        payload = json.loads(json.dumps(plan.to_dict()))
        assert FaultPlan.from_dict(payload) == plan

    def test_constructors(self):
        assert after_nvm_append(3).steps[0].kind is TriggerKind.NVM_LOG_APPEND
        assert before_commit_mark(1).steps[0].kind is TriggerKind.PRE_COMMIT_MARK
        assert after_commit_mark(1).steps[0].kind is TriggerKind.COMMIT_MARK
        assert mid_commit(2).steps[0].kind is TriggerKind.MID_COMMIT
        assert at_step(5).steps[0].kind is TriggerKind.ENGINE_STEP
        assert at_time(9.0).steps[0].at_ns == 9.0


class TestFaultInjector:
    def test_unarmed_injector_only_counts(self):
        injector = FaultInjector()
        injector.on_engine_step(10.0)
        injector.on_mid_commit(1)
        injector.after_commit_mark(1)
        assert injector.counts[TriggerKind.ENGINE_STEP] == 1
        assert injector.counts[TriggerKind.MID_COMMIT] == 1
        assert injector.counts[TriggerKind.COMMIT_MARK] == 1
        assert injector.fired == []

    def test_armed_point_fires_on_exact_ordinal(self):
        injector = FaultInjector()
        point = CrashPoint(TriggerKind.MID_COMMIT, 3)
        injector.arm(point)
        injector.on_mid_commit(1)
        injector.on_mid_commit(2)
        with pytest.raises(PowerFailure):
            injector.on_mid_commit(3)
        assert injector.fired == [point]
        assert injector.armed is None  # one-shot

    def test_fired_point_does_not_refire(self):
        injector = FaultInjector()
        injector.arm(CrashPoint(TriggerKind.MID_COMMIT, 1))
        with pytest.raises(PowerFailure):
            injector.on_mid_commit(1)
        injector.on_mid_commit(1)  # counts, but no longer armed

    def test_sim_time_fires_on_clock_not_count(self):
        injector = FaultInjector()
        injector.arm(CrashPoint(TriggerKind.SIM_TIME, at_ns=100.0))
        injector.on_engine_step(50.0)
        injector.on_engine_step(99.9)
        with pytest.raises(PowerFailure):
            injector.on_engine_step(100.0)

    def test_log_observer_counts_only_redo_records(self):
        log = HardwareLog(Region(MemoryKind.NVM, 0x1000, 1 << 16), "nvm")
        injector = FaultInjector()
        log.add_observer(injector.observe_nvm_log)
        log.append_data(RecordKind.REDO, 1, 0x40, {0x40: 1})
        log.append_mark(RecordKind.COMMIT, 1)
        assert injector.counts[TriggerKind.NVM_LOG_APPEND] == 1

    def test_crash_during_append_leaves_record_indexed(self):
        """A PowerFailure from the observer models ADR: the record is
        already durable, so the log's tx index must already cover it."""
        log = HardwareLog(Region(MemoryKind.NVM, 0x1000, 1 << 16), "nvm")
        injector = FaultInjector()
        log.add_observer(injector.observe_nvm_log)
        injector.arm(CrashPoint(TriggerKind.NVM_LOG_APPEND, 1))
        with pytest.raises(PowerFailure):
            log.append_data(RecordKind.REDO, 7, 0x40, {0x40: 1})
        assert log.data_tx_ids() == [7]
        assert len(log.records_of(7)) == 1

    def test_before_commit_mark_vetoes_under_seeded_bug(self):
        assert FaultInjector().before_commit_mark(1) is True
        assert (
            FaultInjector(suppress_commit_marks=True).before_commit_mark(1)
            is False
        )
