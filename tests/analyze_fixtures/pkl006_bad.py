"""Bad: process-local values shipped across the pickle boundary."""

import pickle
import threading
from concurrent.futures import ProcessPoolExecutor


def _to_b64(value):
    return pickle.dumps(value)


def map_a_lambda(points):
    transform = lambda point: point.spec  # noqa: E731
    with ProcessPoolExecutor(max_workers=2) as pool:
        return list(pool.map(transform, points))


def submit_a_nested_function(points):
    def execute(point):
        return point.spec

    with ProcessPoolExecutor() as pool:
        return [pool.submit(execute, point) for point in points]


def pickle_an_open_handle(path):
    handle = open(path)
    return pickle.dumps(handle)


def pickle_a_lock():
    guard = threading.Lock()
    return _to_b64(guard)


class JobRecord:
    def __init__(self, spec, key):
        self.spec = spec
        self.key = key


def record_capturing_a_tracer(system, fingerprint):
    return JobRecord(spec=system.tracer, key=fingerprint)
