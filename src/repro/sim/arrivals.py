"""Open-loop arrival processes and skewed key sampling.

The traffic scenario (``repro.traffic``) drives workloads *open-loop*: each
request has an absolute arrival time drawn from a stochastic process, and a
busy server does not slow the arrivals down — latency honestly includes the
queueing delay behind earlier requests.  Everything here is pure arithmetic
over a caller-provided ``random.Random`` (a named
:class:`~repro.sim.rng.RngStreams` stream), so the same seed yields the
same arrival schedule and key sequence on every run, platform, and worker
count — the determinism contract the rest of the simulator already keeps.

Two processes are provided:

* :func:`poisson_arrivals` — memoryless arrivals at a constant mean rate;
* :func:`bursty_arrivals` — an MMPP-style on/off process: exponentially
  distributed ON periods during which arrivals are Poisson at
  ``burst_factor`` times the base rate, alternating with silent OFF
  periods.  Same machinery queueing theory uses to model flash crowds.
"""

from __future__ import annotations

from bisect import bisect_left
from typing import TYPE_CHECKING, Generator, List

from ..errors import ConfigError

if TYPE_CHECKING:  # the streams are random.Random; only the type is needed
    import random


class ZipfSampler:
    """A seed-stable Zipfian key sampler: rank ``k`` has weight 1/(k+1)^theta.

    The cumulative distribution is precomputed once and sampling is a
    binary search over it, so one uniform draw maps to one key by pure
    arithmetic — no rejection loops, no platform-dependent float paths.
    ``theta = 0`` degenerates to uniform; ``theta ~ 0.99`` is the YCSB
    default skew.  Rank 0 is the hottest key.
    """

    def __init__(self, keys: int, theta: float) -> None:
        if keys < 1:
            raise ConfigError("ZipfSampler needs at least one key")
        if theta < 0:
            raise ConfigError("zipf theta must be >= 0")
        self.keys = keys
        self.theta = theta
        total = 0.0
        cumulative: List[float] = []
        for rank in range(keys):
            total += (rank + 1) ** -theta
            cumulative.append(total)
        self._cdf = [value / total for value in cumulative]
        self._cdf[-1] = 1.0

    def sample(self, rng: random.Random) -> int:
        """Draw one key rank in ``[0, keys)`` from ``rng``."""
        return min(self.keys - 1, bisect_left(self._cdf, rng.random()))

    def weight(self, rank: int) -> float:
        """The probability mass of ``rank`` (for tests and reports)."""
        previous = self._cdf[rank - 1] if rank > 0 else 0.0
        return self._cdf[rank] - previous


def poisson_arrivals(
    rng: random.Random, mean_gap_ns: float, horizon_ns: float
) -> Generator[float, None, None]:
    """Absolute arrival times of a Poisson process over ``[0, horizon_ns)``."""
    if mean_gap_ns <= 0:
        raise ConfigError("mean_gap_ns must be > 0")
    rate = 1.0 / mean_gap_ns
    at_ns = rng.expovariate(rate)
    while at_ns < horizon_ns:
        yield at_ns
        at_ns += rng.expovariate(rate)


def bursty_arrivals(
    rng: random.Random,
    mean_gap_ns: float,
    horizon_ns: float,
    on_ns: float,
    off_ns: float,
    burst_factor: float = 2.0,
) -> Generator[float, None, None]:
    """MMPP-style on/off arrivals over ``[0, horizon_ns)``.

    Alternating ON/OFF phases with exponential durations (means ``on_ns``
    and ``off_ns``, starting ON); arrivals occur only during ON phases, as
    a Poisson process with mean gap ``mean_gap_ns / burst_factor``.  With
    ``burst_factor = (on_ns + off_ns) / on_ns`` the long-run rate matches
    :func:`poisson_arrivals` at the same ``mean_gap_ns``, concentrated
    into bursts.
    """
    if mean_gap_ns <= 0:
        raise ConfigError("mean_gap_ns must be > 0")
    if on_ns <= 0 or off_ns <= 0:
        raise ConfigError("burst on/off durations must be > 0")
    if burst_factor <= 0:
        raise ConfigError("burst_factor must be > 0")
    burst_rate = burst_factor / mean_gap_ns
    phase_start = 0.0
    on = True
    while phase_start < horizon_ns:
        duration = rng.expovariate(1.0 / (on_ns if on else off_ns))
        phase_end = phase_start + duration
        if on:
            at_ns = phase_start + rng.expovariate(burst_rate)
            while at_ns < phase_end and at_ns < horizon_ns:
                yield at_ns
                at_ns += rng.expovariate(burst_rate)
        phase_start = phase_end
        on = not on
