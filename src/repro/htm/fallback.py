"""The per-process fallback lock of Algorithm 1.

Commercial best-effort HTMs guarantee forward progress through a
programmer-provided slow path guarded by a lock.  A fast-path transaction
reads the lock at begin, so the lock word is in every transaction's read
set: acquiring it for the slow path conflicts with — and therefore aborts —
every running fast-path transaction in the same process.  Waiters spin with
``pause()`` until the lock frees (Algorithm 1, lines 11–13).

Locks are per process (they protect one application's data), independent of
whether *signature* isolation is enabled.
"""

from __future__ import annotations

from typing import Dict, Optional


class FallbackLock:
    """One slow-path lock; instances are kept per process."""

    def __init__(self, name: str = "") -> None:
        self.name = name
        self._holder_thread: Optional[int] = None
        #: Simulated time at which the current holder acquired the lock.
        self.acquired_at_ns: float = 0.0
        self.acquisitions = 0

    @property
    def locked(self) -> bool:
        return self._holder_thread is not None

    @property
    def holder(self) -> Optional[int]:
        return self._holder_thread

    def acquire(self, thread_id: int, now_ns: float) -> None:
        assert self._holder_thread is None, "acquire of a held fallback lock"
        self._holder_thread = thread_id
        self.acquired_at_ns = now_ns
        self.acquisitions += 1

    def release(self, thread_id: int) -> None:
        assert self._holder_thread == thread_id, "release by non-holder"
        self._holder_thread = None


class FallbackLockTable:
    """Lazily created fallback locks, one per process."""

    def __init__(self) -> None:
        self._locks: Dict[int, FallbackLock] = {}

    def lock_for(self, process_id: int) -> FallbackLock:
        lock = self._locks.get(process_id)
        if lock is None:
            lock = FallbackLock(f"proc{process_id}")
            self._locks[process_id] = lock
        return lock

    def total_acquisitions(self) -> int:
        return sum(lock.acquisitions for lock in self._locks.values())
