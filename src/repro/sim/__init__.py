"""Deterministic discrete-event simulation core.

The engine interleaves simulated threads at *operation* granularity: each
thread is a Python generator that yields once per workload operation, and the
engine always resumes the runnable thread with the smallest local clock.
Every memory access performed inside a step charges latency to the owning
thread's clock, so the resulting schedule is a deterministic serialisation
consistent with per-thread timing — the same abstraction at which gem5's
syscall-emulation mode orders racing requests.
"""

from .engine import Engine, SimThread, ThreadState
from .rng import RngStreams
from .stats import StatsRegistry
from .trace import TraceEvent, TraceRecorder

__all__ = [
    "Engine",
    "SimThread",
    "ThreadState",
    "RngStreams",
    "StatsRegistry",
    "TraceEvent",
    "TraceRecorder",
]
