"""Memory-access contexts: one interface, three execution modes.

Workload data structures take a :class:`MemoryContext` and never know
whether they are running speculatively (fast path), serialised under the
fallback lock (slow path), or entirely outside transactions (co-runners).
That is exactly the programming model of Algorithm 1, where the same body
runs on both paths.

Block helpers operate at line granularity: reading or writing a payload of
``n`` bytes touches ``ceil(n / 64)`` lines with one access each, which is
how a hardware transaction's footprint actually accrues.
"""

from __future__ import annotations

from typing import Dict

from ..errors import ReproError
from ..htm.base import HTMSystem, TxHandle
from ..mem.address import line_of
from ..params import LINE_SIZE
from ..sim.engine import SimThread


class MemoryContext:
    """The access interface workload code programs against."""

    #: True when reads/writes are speculative and may abort.
    transactional = False

    def read_word(self, addr: int) -> int:
        raise NotImplementedError

    def write_word(self, addr: int, value: int) -> None:
        raise NotImplementedError

    # -- payload helpers ----------------------------------------------------

    def read_block(self, addr: int, nbytes: int) -> int:
        """Scan a payload: one read per line; returns the first line's word."""
        first = 0
        offset = 0
        index = 0
        while offset < nbytes:
            value = self.read_word(addr + offset)
            if index == 0:
                first = value
            offset += LINE_SIZE
            index += 1
        return first

    def write_block(self, addr: int, nbytes: int, tag: int) -> None:
        """Fill a payload: one write per line, storing ``tag`` in each."""
        offset = 0
        while offset < nbytes:
            self.write_word(addr + offset, tag)
            offset += LINE_SIZE


class RawContext(MemoryContext):
    """Untimed direct access to memory contents — setup/verification only.

    Workload pre-population and test oracles use this "fast-forward" mode
    (gem5's functional accesses): no caches, no conflicts, no latency.
    Never use it from measured thread bodies.
    """

    def __init__(self, controller) -> None:
        self._controller = controller

    def read_word(self, addr: int) -> int:
        return self._controller.load_word(addr)

    def write_word(self, addr: int, value: int) -> None:
        self._controller.store_word(addr, value)


class TxContext(MemoryContext):
    """Speculative accesses inside a hardware transaction."""

    transactional = True

    def __init__(self, htm: HTMSystem, handle: TxHandle) -> None:
        self._htm = htm
        self._handle = handle

    @property
    def tx_id(self) -> int:
        return self._handle.tx_id

    @property
    def handle(self) -> TxHandle:
        return self._handle

    def read_word(self, addr: int) -> int:
        return self._htm.tx_read(self._handle, addr)

    def write_word(self, addr: int, value: int) -> None:
        self._htm.tx_write(self._handle, addr, value)

    # Block operations route through the epoch dispatcher when one is
    # installed (engine="batched"): a whole block issued at one scheduler
    # step is an epoch, flushed through fused loops that are bit-identical
    # to the scalar per-word walk.  Word operations above never batch.

    def read_block(self, addr: int, nbytes: int) -> int:
        batch = self._htm.batch
        if batch is not None:
            return batch.tx_read_block(self._handle, addr, nbytes)
        return MemoryContext.read_block(self, addr, nbytes)

    def write_block(self, addr: int, nbytes: int, tag: int) -> None:
        batch = self._htm.batch
        if batch is not None:
            batch.tx_write_block(self._handle, addr, nbytes, tag)
            return
        MemoryContext.write_block(self, addr, nbytes, tag)

    def abort(self) -> None:
        """Explicitly abort (``_xabort()``)."""
        self._htm.explicit_abort(self._handle)


class DirectContext(MemoryContext):
    """Plain non-transactional accesses (memory-intensive co-runners)."""

    def __init__(
        self,
        htm: HTMSystem,
        thread: SimThread,
        core_id: int,
        domain_id: int,
    ) -> None:
        self._htm = htm
        self._thread = thread
        self._core_id = core_id
        self._domain_id = domain_id

    def read_word(self, addr: int) -> int:
        return self._htm.nontx_access(
            self._thread, self._core_id, self._domain_id, addr, is_write=False
        )

    def write_word(self, addr: int, value: int) -> None:
        self._htm.nontx_access(
            self._thread,
            self._core_id,
            self._domain_id,
            addr,
            is_write=True,
            value=value,
        )

    def rmw_add_block(self, addrs, delta: int = 1) -> None:
        """Read-modify-write sweep: ``mem[a] += delta`` for each address.

        Exactly equivalent to ``write_word(a, read_word(a) + delta)`` per
        address; the co-runner sweep loops issue it so the epoch dispatcher
        can fuse the whole chunk under ``engine="batched"``.
        """
        batch = self._htm.batch
        if batch is not None:
            batch.nontx_rmw_block(
                self._thread, self._core_id, self._domain_id, addrs, delta
            )
            return
        nontx = self._htm.nontx_access
        thread = self._thread
        core_id = self._core_id
        domain_id = self._domain_id
        for addr in addrs:
            value = nontx(thread, core_id, domain_id, addr, False)
            nontx(thread, core_id, domain_id, addr, True, value=value + delta)


class SlowPathContext(MemoryContext):
    """Serialised execution under the fallback lock, still failure-atomic.

    NVM writes are buffered and redo-logged; :meth:`finalize` appends the
    durable commit mark and publishes through the DRAM cache, so a crash
    mid-slow-path leaves no torn persistent state.  DRAM writes go straight
    to memory — the lock already serialises them and they need no
    durability.
    """

    def __init__(
        self,
        htm: HTMSystem,
        thread: SimThread,
        core_id: int,
        domain_id: int,
    ) -> None:
        self._htm = htm
        self._thread = thread
        self._core_id = core_id
        self._domain_id = domain_id
        self._controller = htm.controller
        #: Pseudo transaction ID for the durable log records.
        self.tx_id = htm.tx_ids.allocate()
        self._nvm_buffer: Dict[int, Dict[int, int]] = {}
        self._finalized = False
        if htm.tracer is not None:
            htm.tracer.emit(
                "slowpath.begin",
                ts_ns=thread.clock_ns,
                tx_id=self.tx_id,
                thread_id=thread.thread_id,
                core=core_id,
                domain=domain_id,
            )

    def read_word(self, addr: int) -> int:
        if self._controller.address_space.is_nvm(addr):
            words = self._nvm_buffer.get(line_of(addr))
            if words is not None and addr in words:
                self._htm.nontx_access(
                    self._thread, self._core_id, self._domain_id, addr, False
                )
                return words[addr]
        return self._htm.nontx_access(
            self._thread, self._core_id, self._domain_id, addr, is_write=False
        )

    def write_word(self, addr: int, value: int) -> None:
        if self._controller.address_space.is_nvm(addr):
            self._htm.nontx_access(
                self._thread,
                self._core_id,
                self._domain_id,
                addr,
                is_write=True,
                value=None,
            )
            line_addr = line_of(addr)
            first_touch = line_addr not in self._nvm_buffer
            self._nvm_buffer.setdefault(line_addr, {})[addr] = value
            if first_touch:
                # Stream the redo record out, as the fast path does.
                self._thread.advance(self._controller.latency.nvm_write_ns)
        else:
            self._htm.nontx_access(
                self._thread,
                self._core_id,
                self._domain_id,
                addr,
                is_write=True,
                value=value,
            )

    def finalize(self) -> None:
        """Durably commit the buffered NVM writes (commit mark + publish)."""
        if self._finalized:
            raise ReproError("slow path finalized twice")
        self._finalized = True
        if self._nvm_buffer:
            if self._htm.tracer is not None:
                # Stamp before the timeless controller's commit events.
                self._htm.tracer.emit(
                    "slowpath.commit",
                    ts_ns=self._thread.clock_ns,
                    tx_id=self.tx_id,
                    thread_id=self._thread.thread_id,
                    nvm_lines=len(self._nvm_buffer),
                )
            self._thread.advance(
                self._controller.commit_nvm_transaction(
                    self.tx_id, self._nvm_buffer
                )
            )
            self._nvm_buffer.clear()
        elif self._htm.tracer is not None:
            self._htm.tracer.emit(
                "slowpath.commit",
                ts_ns=self._thread.clock_ns,
                tx_id=self.tx_id,
                thread_id=self._thread.thread_id,
                nvm_lines=0,
            )
