"""Abort-retry chains and tail-amplification analysis from obs timelines.

The traffic figure reports *request* latency — arrival to completion,
queueing included — from the workload's own histograms.  This module
answers the follow-up question: how much of that tail did aborts
manufacture?

A traced run's event stream is grouped per thread into *retry chains*
(every aborted attempt of a transaction followed by the attempt that
finally committed, fast path or slow).  Because the arrival schedule is a
pure function of the spec's named rng streams
(:func:`repro.workloads.open_loop.thread_fork`), the exact per-thread
arrival times can be replayed offline and married to the chain sequence —
both are FIFO per thread.  That enables an honest, queueing-aware
counterfactual: re-run each thread's open-loop queue with every chain's
service time shrunk to its *final* (successful) attempt alone, i.e. the
run as it would have been with the same arrivals and zero aborts.  Tail
amplification at a quantile is::

    amp(q) = percentile(actual arrival->completion, q)
             / percentile(abort-free replay arrival->completion, q)

This charges aborts for everything they cause: the retries themselves
*and* the queueing delay those retries push onto every request behind
them — the dominant term at the tail of an open-loop system.  A design
whose aborts only shuffle work around has amp ~ 1; one whose aborts stack
retries onto a backlog shows amp >> 1 exactly at p99/p999.

The excess time of dirty chains (chain latency minus the final attempt)
is attributed to forensic abort groups
(:data:`repro.obs.forensics.REASON_GROUPS`), so the report can say *which
kind* of abort bought the tail — for the traffic scenario, the shared
domain's ``signature_alias`` share is the paper's Section IV-D story.
"""

from __future__ import annotations

import math
from collections import defaultdict
from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional, Sequence, Tuple

from ..errors import SimulationError
from ..harness.config import ExperimentSpec
from ..obs.capture import trace_experiment
from ..obs.events import (
    SLOWPATH_COMMIT,
    TX_ABORT,
    TX_COMMIT,
    TraceEvent,
)
from ..obs.forensics import REASON_GROUPS
from ..obs.timeline import build_timelines
from ..sim.rng import RngStreams
from ..sim.stats import ratio
from ..workloads.open_loop import ARRIVALS_STREAM, arrival_times, thread_fork

#: Outcomes that terminate a retry chain.
_TERMINAL = ("committed", "slowpath")

#: Event kinds that settle an attempt's outcome.
_OUTCOME_KINDS = (TX_COMMIT, TX_ABORT, SLOWPATH_COMMIT)

#: ``BenchmarkSpec.kwargs`` keys that shape the arrival schedule.
_ARRIVAL_KWARGS = (
    "arrival",
    "mean_gap_ns",
    "horizon_ns",
    "burst_on_ns",
    "burst_off_ns",
    "burst_factor",
)


def _group_of(reason: str) -> str:
    for group, reasons in REASON_GROUPS.items():
        if reason in reasons:
            return group
    return "fallback"


def _settle_ts(timeline) -> float:
    """The instant the attempt's outcome landed.

    ``TxTimeline.end_ns`` is the last event *attributed* to the attempt,
    which for committed transactions includes asynchronous log writeback
    that overlaps the thread's next transaction; the thread itself moves
    on at the outcome event, and that is the completion the workload's
    latency histogram observes.
    """
    for event in timeline.events:
        if event.kind in _OUTCOME_KINDS:
            return event.ts_ns
    return timeline.end_ns


@dataclass(frozen=True)
class RetryChain:
    """One transaction's journey to commit: zero or more aborted attempts
    followed by the attempt that finished (fast path or slow path)."""

    thread_id: int
    begin_ns: float
    end_ns: float
    #: "committed" (fast path) or "slowpath".
    outcome: str
    #: Forensic group of each aborted attempt, in order.
    abort_groups: Tuple[str, ...]
    #: Duration of the final (successful) attempt alone.
    final_attempt_ns: float

    @property
    def latency_ns(self) -> float:
        return max(0.0, self.end_ns - self.begin_ns)

    @property
    def clean(self) -> bool:
        return not self.abort_groups and self.outcome == "committed"

    @property
    def excess_ns(self) -> float:
        """Time the chain spent beyond its final attempt (retries, backoff)."""
        return max(0.0, self.latency_ns - self.final_attempt_ns)


def build_chains(events: Iterable[TraceEvent]) -> List[RetryChain]:
    """Stitch per-attempt timelines into per-thread retry chains.

    Attempts are ordered by begin time within each thread; a chain is the
    aborted attempts since the last terminal outcome plus the terminal
    attempt itself.  Attempts still in flight when the trace ends (no
    outcome) are dropped, as are threads' trailing aborted attempts with
    no terminal successor.
    """
    by_thread: Dict[int, List] = defaultdict(list)
    for timeline in build_timelines(events).values():
        if timeline.thread_id is None or timeline.outcome is None:
            continue
        by_thread[timeline.thread_id].append(timeline)
    chains: List[RetryChain] = []
    for thread_id in sorted(by_thread):
        attempts = sorted(
            by_thread[thread_id], key=lambda t: (t.begin_ns, t.tx_id)
        )
        pending: List = []
        for attempt in attempts:
            pending.append(attempt)
            if attempt.outcome not in _TERMINAL:
                continue
            settled = _settle_ts(attempt)
            chains.append(
                RetryChain(
                    thread_id=thread_id,
                    begin_ns=pending[0].begin_ns,
                    end_ns=settled,
                    outcome=attempt.outcome,
                    abort_groups=tuple(
                        _group_of(a.abort_reason or "explicit")
                        for a in pending[:-1]
                    ),
                    final_attempt_ns=max(0.0, settled - attempt.begin_ns),
                )
            )
            pending = []
    return chains


def reconstruct_arrivals(spec: ExperimentSpec) -> List[List[float]]:
    """Replay every tenant thread's arrival schedule from the spec alone.

    Benchmarks get simulated processes in spec order with pids numbered
    from 1, and thread ids are handed out sequentially as those processes
    spawn — so benchmark thread ``j`` of tenant ``t`` is exactly sim
    thread ``sum(threads of tenants < t) + j``, and the returned list is
    indexable by ``RetryChain.thread_id``.  Co-runner threads spawn after
    every benchmark thread and run no transactions, so they never appear
    in the chains.
    """
    root = RngStreams(spec.seed)
    schedules: List[List[float]] = []
    for index, bench in enumerate(spec.benchmarks):
        if bench.workload != "open_loop":
            raise SimulationError(
                f"cannot replay arrivals of workload {bench.workload!r}; "
                "the traffic report only analyzes open_loop tenants"
            )
        kwargs = dict(bench.kwargs_dict())
        arrival_kwargs = {
            key: kwargs[key] for key in _ARRIVAL_KWARGS if key in kwargs
        }
        pid = index + 1
        for thread_index in range(bench.params.threads):
            rng = thread_fork(root, pid, thread_index).stream(ARRIVALS_STREAM)
            schedules.append(list(arrival_times(rng, **arrival_kwargs)))
    return schedules


def chain_percentile(latencies: Sequence[float], fraction: float) -> float:
    """Nearest-rank percentile over a pre-sorted latency list (0.0 if empty)."""
    if not latencies:
        return 0.0
    rank = max(0, math.ceil(fraction * len(latencies)) - 1)
    return latencies[rank]


@dataclass
class TailReport:
    """Tail amplification of one traced traffic configuration."""

    label: str
    chains: int
    clean_chains: int
    #: Actual arrival-to-completion request latency percentiles.
    p50_ns: float
    p99_ns: float
    p999_ns: float
    #: p999 of the abort-free replay (same arrivals, final attempts only).
    ideal_p999_ns: float
    #: percentile(actual, q) / percentile(abort-free replay, q); 0.0 when
    #: there are no requests to compare.
    amplification_p50: float
    amplification_p99: float
    amplification_p999: float
    #: Dirty chains' excess time (latency minus final attempt), split
    #: evenly over each chain's aborts and summed per forensic group.
    excess_ns_by_group: Dict[str, float] = field(default_factory=dict)

    @property
    def dirty_chains(self) -> int:
        return self.chains - self.clean_chains

    def to_dict(self) -> Dict[str, object]:
        return {
            "label": self.label,
            "chains": self.chains,
            "clean_chains": self.clean_chains,
            "p50_ns": self.p50_ns,
            "p99_ns": self.p99_ns,
            "p999_ns": self.p999_ns,
            "ideal_p999_ns": self.ideal_p999_ns,
            "amplification_p50": self.amplification_p50,
            "amplification_p99": self.amplification_p99,
            "amplification_p999": self.amplification_p999,
            "excess_ns_by_group": dict(self.excess_ns_by_group),
        }


def analyze_chains(
    chains: Sequence[RetryChain],
    arrivals: Sequence[Sequence[float]],
    label: str = "",
) -> TailReport:
    """Marry chains to their arrival schedules and compute amplification.

    ``arrivals[thread_id]`` is the thread's absolute arrival times (from
    :func:`reconstruct_arrivals`, or synthetic in tests).  Chains and
    arrivals are both FIFO per thread, so the k-th chain of a thread
    serves its k-th arrival; trailing arrivals whose chains the trace
    dropped are ignored.  The abort-free counterfactual replays each
    thread's queue with service times shrunk to the chains' final
    attempts.
    """
    by_thread: Dict[int, List[RetryChain]] = defaultdict(list)
    for chain in chains:
        by_thread[chain.thread_id].append(chain)
    actual: List[float] = []
    ideal: List[float] = []
    clean = 0
    excess: Dict[str, float] = {}
    for thread_id in sorted(by_thread):
        thread_chains = sorted(
            by_thread[thread_id], key=lambda c: c.begin_ns
        )
        if thread_id >= len(arrivals):
            raise SimulationError(
                f"chains on thread {thread_id} but only "
                f"{len(arrivals)} arrival schedules; thread mapping is off"
            )
        schedule = arrivals[thread_id]
        if len(thread_chains) > len(schedule):
            raise SimulationError(
                f"thread {thread_id} completed {len(thread_chains)} chains "
                f"for {len(schedule)} arrivals; thread mapping is off"
            )
        finish = 0.0
        for chain, at_ns in zip(thread_chains, schedule):
            if chain.clean:
                clean += 1
            else:
                share = chain.excess_ns / max(1, len(chain.abort_groups))
                for group in chain.abort_groups:
                    excess[group] = excess.get(group, 0.0) + share
            actual.append(max(0.0, chain.end_ns - at_ns))
            start = max(at_ns, finish)
            finish = start + chain.final_attempt_ns
            ideal.append(finish - at_ns)
    actual.sort()
    ideal.sort()

    def amp(fraction: float) -> float:
        return ratio(
            chain_percentile(actual, fraction),
            chain_percentile(ideal, fraction),
        )

    return TailReport(
        label=label,
        chains=len(actual),
        clean_chains=clean,
        p50_ns=chain_percentile(actual, 0.50),
        p99_ns=chain_percentile(actual, 0.99),
        p999_ns=chain_percentile(actual, 0.999),
        ideal_p999_ns=chain_percentile(ideal, 0.999),
        amplification_p50=amp(0.50),
        amplification_p99=amp(0.99),
        amplification_p999=amp(0.999),
        excess_ns_by_group=excess,
    )


def tail_report(
    spec: ExperimentSpec, label: Optional[str] = None
) -> TailReport:
    """Trace one traffic spec in-process and analyze its retry chains.

    Tracing is a pure observer (the trace-neutrality tests pin this), so
    the traced run's metrics match the cacheable figure point for the same
    spec bit for bit.
    """
    traced = trace_experiment(spec, label)
    return analyze_chains(
        build_chains(traced.events), reconstruct_arrivals(spec), traced.label
    )
