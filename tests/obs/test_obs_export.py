"""Exporters: Chrome trace_event structure and JSONL round-trips."""

from __future__ import annotations

import json

from repro.obs import chrome_trace, to_jsonl, write_chrome_trace, write_jsonl
from repro.obs.capture import trace_experiment


class TestChromeTrace:
    def test_document_structure(self, tiny_spec):
        run = trace_experiment(tiny_spec)
        doc = chrome_trace([(run.label, run.events)])
        assert set(doc) == {"traceEvents", "displayTimeUnit"}
        assert doc["displayTimeUnit"] == "ns"
        assert isinstance(doc["traceEvents"], list)
        phases = {event["ph"] for event in doc["traceEvents"]}
        assert "M" in phases  # process_name metadata
        assert "X" in phases  # transaction spans

    def test_one_span_per_transaction(self, tiny_spec):
        run = trace_experiment(tiny_spec)
        doc = chrome_trace([(run.label, run.events)])
        spans = [e for e in doc["traceEvents"] if e["ph"] == "X"]
        assert (
            len(spans)
            == run.result.begins + run.result.slow_path_executions
        )
        committed = [s for s in spans if s["args"].get("outcome") == "committed"]
        assert len(committed) == run.result.commits
        for span in spans:
            assert span["dur"] >= 0.0
            assert span["ts"] >= 0.0

    def test_each_run_gets_its_own_pid(self, tiny_spec, contended_spec):
        runs = [trace_experiment(tiny_spec), trace_experiment(contended_spec)]
        doc = chrome_trace([(run.label, run.events) for run in runs])
        metadata = [e for e in doc["traceEvents"] if e["ph"] == "M"]
        assert [m["pid"] for m in metadata] == [0, 1]
        assert [m["args"]["name"] for m in metadata] == [r.label for r in runs]

    def test_document_is_json_serialisable(self, tiny_spec, tmp_path):
        run = trace_experiment(tiny_spec)
        path = tmp_path / "trace.json"
        write_chrome_trace(str(path), [(run.label, run.events)])
        loaded = json.loads(path.read_text())
        assert loaded == chrome_trace([(run.label, run.events)])


class TestJsonl:
    def test_one_line_per_event_and_round_trip(self, tiny_spec, tmp_path):
        run = trace_experiment(tiny_spec)
        text = to_jsonl(run.events)
        lines = text.splitlines()
        assert len(lines) == len(run.events)
        for line, event in zip(lines, run.events):
            assert json.loads(line) == event.to_dict()
        path = tmp_path / "events.jsonl"
        write_jsonl(str(path), run.events)
        assert path.read_text() == text

    def test_jsonl_is_byte_stable(self, tiny_spec):
        run_a = trace_experiment(tiny_spec)
        run_b = trace_experiment(tiny_spec)
        assert to_jsonl(run_a.events) == to_jsonl(run_b.events)
