"""``python -m repro trace`` — trace a figure grid or a single workload.

Examples::

    python -m repro trace fig7 --report            # trace + abort forensics
    python -m repro trace hashmap --out t.json     # one workload, Chrome JSON
    python -m repro trace fig6 --jsonl fig6.jsonl  # raw event stream

``--report`` also cross-checks the forensic decomposition against the run's
own counters: the report's per-reason abort counts must equal the run's
``tx.aborts.*`` values exactly.  A mismatch (or a ring overflow, which makes
counts inexact) is an error, not a warning in fine print.
"""

from __future__ import annotations

import argparse
import sys
from typing import List, Optional, Sequence

from ..harness.config import DEFAULT_SCALE, ExperimentSpec, consolidated
from ..harness.figures import FIGURE_GRIDS
from ..harness.parallel import GridPoint
from ..params import HTMConfig
from ..workloads import WorkloadParams
from .capture import DEFAULT_CAPACITY, TracedRun, trace_grid
from .export import write_chrome_trace, write_jsonl
from .forensics import analyze_events, format_report

#: Workloads the single-workload form accepts (the benchmark set; co-runner
#: workloads make no sense as a traced benchmark on their own).
TRACE_WORKLOADS = (
    "hashmap",
    "btree",
    "rbtree",
    "skiplist",
    "hybrid_index",
    "dual_kv",
    "echo",
)

KB = 1 << 10


def _workload_points(
    workload: str, scale: float, seed: int
) -> List[GridPoint]:
    params = WorkloadParams(
        threads=4,
        txs_per_thread=4,
        value_bytes=100 * KB,
        ops_per_tx=1,
        keys=256,
        initial_fill=64,
    )
    spec = ExperimentSpec(
        name=f"trace:{workload}",
        htm=HTMConfig(),
        benchmarks=consolidated(workload, 2, params),
        scale=scale,
        cores=16,
        membound_instances=1,
        seed=seed,
    )
    return [GridPoint(spec, label=f"{workload}:{spec.htm.label}")]


def _build_points(
    target: str, scale: float, seed: int
) -> List[GridPoint]:
    if target in FIGURE_GRIDS:
        return FIGURE_GRIDS[target](quick=True, scale=scale, seed=seed)
    if target in TRACE_WORKLOADS:
        return _workload_points(target, scale, seed)
    choices = ", ".join(sorted(FIGURE_GRIDS) + sorted(TRACE_WORKLOADS))
    raise SystemExit(f"unknown trace target {target!r}; choose one of: {choices}")


def _check_report(run: TracedRun) -> List[str]:
    """Forensics-vs-counters cross-check; returns the discrepancies."""
    problems: List[str] = []
    if run.dropped:
        problems.append(
            f"{run.label}: ring dropped {run.dropped} events — counts are "
            "inexact; re-run with a larger --capacity"
        )
        return problems
    report = analyze_events(run.events)
    if report.reason_counts != run.result.aborts_by_reason:
        problems.append(
            f"{run.label}: forensic abort counts {report.reason_counts} "
            f"!= counters {run.result.aborts_by_reason}"
        )
    if report.begins != run.result.begins:
        problems.append(
            f"{run.label}: traced begins {report.begins} "
            f"!= counter {run.result.begins}"
        )
    if report.commits != run.result.commits:
        problems.append(
            f"{run.label}: traced commits {report.commits} "
            f"!= counter {run.result.commits}"
        )
    return problems


def main(argv: Optional[Sequence[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro trace",
        description=(
            "Trace a figure grid or a single workload and export the event "
            "stream as Chrome trace_event JSON (and optionally JSONL)."
        ),
    )
    parser.add_argument(
        "target",
        help=(
            "a figure grid (%s) or a workload (%s)"
            % (", ".join(sorted(FIGURE_GRIDS)), ", ".join(TRACE_WORKLOADS))
        ),
    )
    parser.add_argument(
        "--out",
        default=None,
        help="Chrome trace_event JSON path (default: TRACE_<target>.json)",
    )
    parser.add_argument(
        "--jsonl",
        default=None,
        metavar="PATH",
        help="also write the raw event stream as JSON Lines",
    )
    parser.add_argument(
        "--report",
        action="store_true",
        help=(
            "print the abort-forensics report per run and cross-check it "
            "against the run's tx.aborts.* counters (non-zero exit on drift)"
        ),
    )
    parser.add_argument(
        "--jobs", type=int, default=1, help="worker processes (default: 1)"
    )
    parser.add_argument("--seed", type=int, default=2020)
    parser.add_argument("--scale", type=float, default=DEFAULT_SCALE)
    parser.add_argument(
        "--capacity",
        type=int,
        default=DEFAULT_CAPACITY,
        help="per-run event-ring capacity (default: %(default)s)",
    )
    parser.add_argument(
        "--points",
        type=int,
        default=0,
        metavar="N",
        help="trace only the first N grid points (0 = all)",
    )
    args = parser.parse_args(argv)

    points = _build_points(args.target, args.scale, args.seed)
    if args.points > 0:
        points = points[: args.points]
    print(f"tracing {len(points)} point(s) of {args.target!r} ...")
    runs = trace_grid(points, jobs=args.jobs, capacity=args.capacity)

    out_path = args.out or f"TRACE_{args.target}.json"
    write_chrome_trace(out_path, [(run.label, run.events) for run in runs])
    total_events = sum(len(run.events) for run in runs)
    print(f"wrote {out_path} ({total_events} events across {len(runs)} runs)")
    if args.jsonl:
        write_jsonl(
            args.jsonl, (event for run in runs for event in run.events)
        )
        print(f"wrote {args.jsonl}")

    exit_code = 0
    if args.report:
        for run in runs:
            print()
            print(format_report(analyze_events(run.events), label=run.label))
            for problem in _check_report(run):
                print(f"ERROR: {problem}", file=sys.stderr)
                exit_code = 1
        print()
        if exit_code == 0:
            print(
                "forensics cross-check: every per-reason abort count matches "
                "its run's tx.aborts.* counters"
            )
        else:
            print("forensics cross-check FAILED", file=sys.stderr)
    return exit_code


if __name__ == "__main__":
    raise SystemExit(main())
