"""Fixture: violations silenced by line and a second one left visible."""

import random  # repro: allow[DET001]
import secrets


def draw():
    return random.random()  # uses the sanctioned-by-review exception above
