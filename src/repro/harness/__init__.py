"""The experiment harness: regenerates every table and figure.

Each ``figN`` function in :mod:`repro.harness.figures` configures the
corresponding experiment of the paper's evaluation (Sections III and VI),
runs it through :func:`repro.harness.runner.run_experiment`, and returns a
:class:`FigureResult` whose rows mirror the published series.  The
``benchmarks/`` directory exposes one pytest-benchmark target per figure.
"""

from .cache import CACHE_VERSION, ResultCache, spec_fingerprint
from .config import BenchmarkSpec, ExperimentSpec
from .metrics import RunResult, run_result_from_dict, run_result_to_dict
from .parallel import GridPoint, run_grid, run_grid_detailed, run_keyed
from .report import format_table
from .runner import ExperimentFailure, run_experiment

__all__ = [
    "BenchmarkSpec",
    "CACHE_VERSION",
    "ExperimentFailure",
    "ExperimentSpec",
    "GridPoint",
    "ResultCache",
    "RunResult",
    "format_table",
    "run_experiment",
    "run_grid",
    "run_grid_detailed",
    "run_keyed",
    "run_result_from_dict",
    "run_result_to_dict",
    "spec_fingerprint",
]
