"""Bad (warning tier): a plain write inside the durability-critical scope."""


def export_results(path, text):
    with open(path, "w", encoding="utf-8") as handle:
        handle.write(text)
