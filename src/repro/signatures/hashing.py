"""Hash families for hardware Bloom-filter signatures.

Two implementations of the same interface:

* :class:`H3HashFamily` — the classic hardware H3 scheme (per-input-bit
  random masks XOR-folded into the output), the family Bulk and LogTM-SE
  assume.  Faithful but slow in Python; used in tests to validate the fast
  family's statistics.
* :class:`MultiplicativeHashFamily` — Fibonacci-style multiplicative mixing
  with per-function odd constants.  Statistically equivalent uniformity for
  line addresses at a fraction of the cost; the default in simulations.

Signature checks sit on the simulator's hottest path (every LLC miss in
UHTM; every access in signature-only designs), and the same few thousand
line addresses recur across transactions.  Each family therefore memoises,
per input value, both the index tuple and the flat OR-mask of those indices
(an LRU memo, capped at :data:`MEMO_CAPACITY` entries), so a warm probe is
one dict hit instead of ``k`` multiply/mix/mod rounds.  A family's outputs
are a pure function of ``(functions, buckets, seed)``, which also makes the
instances themselves shareable: :func:`shared_multiplicative` hands out one
memoised family per parameter triple instead of re-deriving multipliers for
every transaction's signature pair.
"""

from __future__ import annotations

from functools import lru_cache
from typing import Dict, List, Sequence, Tuple

from ..sim.rng import RngStreams

_MASK64 = (1 << 64) - 1

#: Per-family LRU memo capacity (entries are ~100 bytes; 64Ki entries bound
#: each memo to a few MB while covering any realistic working set).
MEMO_CAPACITY = 1 << 16


class HashFamily:
    """Interface: k independent functions from 64-bit ints to [0, buckets).

    Subclasses implement :meth:`indices`; the base class layers the memoised
    fast paths :meth:`indices_for` (tuple of k indices) and :meth:`or_mask`
    (the flat big-int mask with those k bits set) on top of it.
    """

    def __init__(self, functions: int, buckets: int) -> None:
        if functions < 1:
            raise ValueError("need at least one hash function")
        if buckets < 1:
            raise ValueError("need at least one bucket")
        self.functions = functions
        self.buckets = buckets
        # Bound methods wrapped in per-instance LRU memos: the hot path pays
        # one cache probe per value instead of k hash computations.
        self.indices_for = lru_cache(maxsize=MEMO_CAPACITY)(self._indices_tuple)
        self.or_mask = lru_cache(maxsize=MEMO_CAPACITY)(self._or_mask)

    def indices(self, value: int) -> Sequence[int]:
        raise NotImplementedError

    def _indices_tuple(self, value: int) -> Tuple[int, ...]:
        return tuple(self.indices(value))

    def _or_mask(self, value: int) -> int:
        mask = 0
        for index in self.indices_for(value):
            mask |= 1 << index
        return mask


class H3HashFamily(HashFamily):
    """H3: output = XOR of random masks selected by the input's set bits."""

    INPUT_BITS = 48  # physical line addresses fit comfortably

    def __init__(self, functions: int, buckets: int, seed: int = 0x5EED) -> None:
        super().__init__(functions, buckets)
        rng = RngStreams(seed).stream("signatures.h3_masks")
        self._masks: List[List[int]] = [
            [rng.getrandbits(32) for _ in range(self.INPUT_BITS)]
            for _ in range(functions)
        ]

    def indices(self, value: int) -> Sequence[int]:
        out = []
        for masks in self._masks:
            acc = 0
            v = value & _MASK64
            bit = 0
            while v and bit < self.INPUT_BITS:
                if v & 1:
                    acc ^= masks[bit]
                v >>= 1
                bit += 1
            out.append(acc % self.buckets)
        return out


class MultiplicativeHashFamily(HashFamily):
    """Per-function odd multipliers with xor-shift finalisation."""

    def __init__(self, functions: int, buckets: int, seed: int = 0x5EED) -> None:
        super().__init__(functions, buckets)
        rng = RngStreams(seed).stream("signatures.multipliers")
        self._multipliers = [
            (rng.getrandbits(64) | 1) & _MASK64 for _ in range(functions)
        ]

    def indices(self, value: int) -> Sequence[int]:
        out = []
        v = value & _MASK64
        buckets = self.buckets
        for multiplier in self._multipliers:
            h = (v * multiplier) & _MASK64
            h ^= h >> 33
            h = (h * 0xFF51AFD7ED558CCD) & _MASK64
            h ^= h >> 33
            out.append(h % buckets)
        return out


#: Shared multiplicative families, one per (functions, buckets, seed).  A
#: family's multipliers — and hence every output — are derived solely from
#: these three parameters, so sharing an instance (and its warm memo) across
#: the thousands of per-transaction signature pairs is behaviour-neutral.
_SHARED_FAMILIES: Dict[Tuple[int, int, int], MultiplicativeHashFamily] = {}


def shared_multiplicative(
    functions: int, buckets: int, seed: int
) -> MultiplicativeHashFamily:
    """The process-wide memoised family for ``(functions, buckets, seed)``."""
    key = (functions, buckets, seed)
    family = _SHARED_FAMILIES.get(key)
    if family is None:
        family = MultiplicativeHashFamily(functions, buckets, seed=seed)
        _SHARED_FAMILIES[key] = family
    return family
