#!/usr/bin/env python3
"""Failure-atomicity demo: crash mid-run, recover, audit the invariants.

A bank-transfer workload moves value between NVM accounts inside durable
transactions, with a conserved total.  The simulation is cut off mid-flight
(a power failure), volatile state is wiped, and the redo log is replayed.
The audit shows the conserved quantity is intact and no transfer was ever
half-applied — the exact guarantee Section IV-C's recovery protocol makes.

Run with:  python examples/crash_recovery.py
"""

from repro import HTMConfig, MachineConfig, MemoryKind, System

ACCOUNTS = 16
INITIAL_BALANCE = 1000
THREADS = 4
TRANSFERS = 100


def main() -> None:
    system = System(
        MachineConfig.scaled(1 / 16, cores=4), HTMConfig(design="uhtm"), seed=11
    )
    app = system.process("bank")
    heap = system.heap
    accounts = [heap.alloc_words(1, MemoryKind.NVM) for _ in range(ACCOUNTS)]

    # Seed balances durably (one setup transaction per account).
    def seeder(api):
        for account in accounts:
            def deposit(tx, account=account):
                tx.write_word(account, INITIAL_BALANCE)
                yield

            yield from api.run_transaction(deposit)

    app.thread(seeder)
    system.run()
    total = ACCOUNTS * INITIAL_BALANCE
    print(f"seeded {ACCOUNTS} accounts with {INITIAL_BALANCE} each "
          f"(conserved total = {total})")

    def make_teller(index):
        def teller(api):
            rng = api.rng
            for _ in range(TRANSFERS):
                src, dst = rng.sample(range(ACCOUNTS), 2)
                amount = rng.randrange(1, 50)

                def transfer(tx, src=src, dst=dst, amount=amount):
                    from_balance = tx.read_word(accounts[src])
                    to_balance = tx.read_word(accounts[dst])
                    yield  # crash window: both updates or neither
                    tx.write_word(accounts[src], from_balance - amount)
                    tx.write_word(accounts[dst], to_balance + amount)

                yield from api.run_transaction(transfer)

        return teller

    for i in range(THREADS):
        app.thread(make_teller(i))

    # Cut the run mid-flight: a power failure in the middle of the day.
    system.run(max_steps=300)
    in_flight = system.stats.counter("tx.begins") - system.stats.counter(
        "tx.commits"
    ) - system.stats.counter("tx.aborts")
    print(f"crash injected: {system.stats.counter('tx.commits')} commits, "
          f"{in_flight} transactions in flight")

    system.crash()
    report = system.recover()
    print(f"recovery replayed {report.replayed_lines} redo-log lines")

    balances = [system.controller.nvm.load(a) for a in accounts]
    print(f"recovered total: {sum(balances)} (expected {total})")
    assert sum(balances) == total, "money was created or destroyed!"
    print("failure-atomicity audit passed: every transfer was all-or-nothing")


if __name__ == "__main__":
    main()
