"""Bad: sim-critical code reading the wall clock, directly and via a wrapper."""

import time


def _now():
    return time.time()  # direct read outside every funnel


def step(engine):
    engine.tick = _now()  # reaches the clock through the local wrapper
    return engine.tick
