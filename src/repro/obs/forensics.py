"""Abort forensics: decompose every abort and track signature saturation.

The Figure 7 attribution claim — staged detection drops the false-positive
abort rate from >99 % to 26 %, isolation to 9 % — is only checkable if each
abort can be traced to its cause.  ``tx.abort`` events are emitted at the
single site that increments the ``tx.aborts`` / ``tx.aborts.<reason>``
counters, so a report's per-reason counts equal the run's counters exactly
(the CLI cross-checks this and fails loudly on drift or ring overflow).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional, Tuple

from .events import SIG_SATURATION, TX_ABORT, TX_BEGIN, TX_COMMIT, TraceEvent

#: Abort reasons grouped by detection mechanism (the forensic decomposition).
#: ``precise`` aborts come from exact information — the coherence directory,
#: an exact-set hit, or a non-transactional collision; ``signature_alias``
#: aborts are pure Bloom-filter noise; ``capacity`` is footprint overflow in
#: bounded designs; ``fallback`` is the runtime protocol (lock preemption,
#: explicit ``_xabort``).  Every AbortReason value appears exactly once.
REASON_GROUPS: Dict[str, Tuple[str, ...]] = {
    "precise": ("conflict_coherence", "conflict_true", "non_tx_conflict"),
    "signature_alias": ("false_positive",),
    "capacity": ("capacity",),
    "fallback": ("lock_preempted", "explicit"),
}


@dataclass(frozen=True)
class AbortRecord:
    """One abort, fully attributed."""

    ts_ns: float
    tx_id: int
    reason: str
    group: str
    #: The conflicting cache line (None for capacity/fallback aborts).
    line_addr: Optional[int]
    #: The transaction on the other side of the conflict edge (None when
    #: the aggressor was non-transactional or there was no conflict).
    other_tx: Optional[int]


@dataclass
class ForensicsReport:
    """The decomposed abort record of one traced run."""

    begins: int = 0
    commits: int = 0
    aborts: List[AbortRecord] = field(default_factory=list)
    #: Per-AbortReason counts; equals the run's ``tx.aborts.*`` counters.
    reason_counts: Dict[str, int] = field(default_factory=dict)
    #: Per-group counts (precise / signature_alias / capacity / fallback).
    group_counts: Dict[str, int] = field(default_factory=dict)
    #: (ts_ns, read_saturation, write_saturation) samples, in time order.
    saturation: List[Tuple[float, float, float]] = field(default_factory=list)

    @property
    def abort_count(self) -> int:
        return len(self.aborts)


def _group_of(reason: str) -> str:
    for group, reasons in REASON_GROUPS.items():
        if reason in reasons:
            return group
    return "fallback"


def analyze_events(events: Iterable[TraceEvent]) -> ForensicsReport:
    """Build the forensics report from a captured event stream."""
    report = ForensicsReport()
    for event in events:
        if event.kind == TX_BEGIN:
            report.begins += 1
        elif event.kind == TX_COMMIT:
            report.commits += 1
        elif event.kind == TX_ABORT:
            reason = event.get("reason", "explicit")
            group = _group_of(reason)
            report.aborts.append(
                AbortRecord(
                    ts_ns=event.ts_ns,
                    tx_id=event.tx_id if event.tx_id is not None else -1,
                    reason=reason,
                    group=group,
                    line_addr=event.get("line_addr"),
                    other_tx=event.get("other_tx"),
                )
            )
            report.reason_counts[reason] = report.reason_counts.get(reason, 0) + 1
            report.group_counts[group] = report.group_counts.get(group, 0) + 1
        elif event.kind == SIG_SATURATION:
            report.saturation.append(
                (event.ts_ns, event.get("read", 0.0), event.get("write", 0.0))
            )
    return report


def format_report(report: ForensicsReport, label: str = "") -> str:
    """Render the report as the CLI's human-readable text."""
    lines: List[str] = []
    title = f"Abort forensics — {label}" if label else "Abort forensics"
    lines.append(title)
    lines.append("=" * len(title))
    lines.append(
        f"begins={report.begins} commits={report.commits} "
        f"aborts={report.abort_count}"
    )
    lines.append("")
    lines.append("By detection mechanism:")
    for group in REASON_GROUPS:
        count = report.group_counts.get(group, 0)
        share = count / report.abort_count if report.abort_count else 0.0
        lines.append(f"  {group:<16} {count:>6}  ({share:6.1%})")
    lines.append("")
    lines.append("By abort reason (equals the run's tx.aborts.* counters):")
    for reason in sorted(report.reason_counts):
        lines.append(f"  tx.aborts.{reason:<20} {report.reason_counts[reason]:>6}")
    worst = _worst_aborts(report)
    if worst:
        lines.append("")
        lines.append("Sample conflict edges (tx <- aggressor @ line):")
        for record in worst:
            line = (
                f"0x{record.line_addr:x}" if record.line_addr is not None else "-"
            )
            other = record.other_tx if record.other_tx is not None else "-"
            lines.append(
                f"  t={record.ts_ns:>12.1f}ns  tx {record.tx_id} "
                f"<- {other} @ {line}  [{record.reason}]"
            )
    if report.saturation:
        first_ts, first_read, first_write = report.saturation[0]
        last_ts, last_read, last_write = report.saturation[-1]
        peak_read = max(sample[1] for sample in report.saturation)
        peak_write = max(sample[2] for sample in report.saturation)
        lines.append("")
        lines.append(
            f"Signature saturation: {len(report.saturation)} samples, "
            f"read {first_read:.1%} -> {last_read:.1%} (peak {peak_read:.1%}), "
            f"write {first_write:.1%} -> {last_write:.1%} (peak {peak_write:.1%})"
        )
    return "\n".join(lines)


def _worst_aborts(report: ForensicsReport, limit: int = 5) -> List[AbortRecord]:
    """The first few aborts that carry a concrete conflict edge."""
    with_edges = [a for a in report.aborts if a.line_addr is not None]
    return with_edges[:limit]
