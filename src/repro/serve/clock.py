"""The serve layer's sanctioned wall-clock reads.

DET001 bans clock calls everywhere outside this file, the harness
stopwatch, and the perf phase timers, because simulation results must
never depend on real time.  The job service, however, is *about* real
time: lease deadlines must be comparable across processes and hosts, and
workers poll the spool on wall-clock intervals.  None of these readings
ever reaches a simulation — they only sequence the machinery around it —
so the whole package funnels its clock use through these two helpers,
keeping the exemption auditable at a glance.
"""

from __future__ import annotations

import time


def wall_now() -> float:
    """Seconds since the epoch — the cross-process lease timebase."""
    return time.time()


def sleep(seconds: float) -> None:
    """Block the calling worker/client between spool polls."""
    time.sleep(seconds)
