"""Tests for campaign sweeps, the minimizer, and the faults CLI."""

from __future__ import annotations

import json
import random

import pytest

from repro.errors import ConfigError
from repro.faults import (
    CampaignConfig,
    FaultPlan,
    TriggerKind,
    minimize_plan,
    probe_events,
    run_campaign,
    sample_plans,
)
from repro.faults.cli import main as faults_main


class TestCampaignConfig:
    def test_unknown_workload_rejected(self):
        with pytest.raises(ConfigError):
            CampaignConfig(workload="nope")

    def test_unknown_bug_rejected(self):
        with pytest.raises(ConfigError):
            CampaignConfig(inject_bug="off_by_one")

    def test_crashes_must_be_positive(self):
        with pytest.raises(ConfigError):
            CampaignConfig(crashes=0)


class TestSampling:
    def test_sampling_is_deterministic_per_seed(self):
        counts, _ = probe_events(CampaignConfig(crashes=1, seed=4))
        first = sample_plans(random.Random(4), counts, 20)
        second = sample_plans(random.Random(4), counts, 20)
        assert first == second

    def test_samples_cover_multiple_kinds(self):
        counts, _ = probe_events(CampaignConfig(crashes=1, seed=4))
        plans = sample_plans(random.Random(4), counts, 40)
        kinds = {p.steps[0].kind for p in plans}
        assert len(kinds) >= 3
        assert any(len(p) > 1 for p in plans), "no stacked recovery crash"


class TestCampaign:
    def test_sound_machine_campaign_fully_verifies(self):
        result = run_campaign(CampaignConfig(workload="hashmap", crashes=12, seed=2))
        assert result.ok
        assert result.crash_points_tested == 12
        assert result.recoveries_verified == 12
        assert result.minimized is None
        metrics = result.metrics()
        assert metrics.ok and metrics.verification_rate == 1.0
        assert metrics.minimized_plan_steps is None

    def test_campaign_figure_exports(self):
        result = run_campaign(CampaignConfig(workload="dual_kv", crashes=6, seed=3))
        figure = result.to_figure()
        text = figure.pretty()
        assert "Fault campaign" in text
        assert "recoveries" in " ".join(figure.notes)

    def test_buggy_machine_is_caught_and_minimized(self):
        """The acceptance regression: a machine that skips durable commit
        marks must be flagged by the oracle and shrunk to a <= 3-step
        reproducing plan."""
        result = run_campaign(
            CampaignConfig(
                workload="hashmap",
                crashes=8,
                seed=1,
                inject_bug="skip_commit_mark",
            )
        )
        assert not result.ok
        assert result.failures
        assert result.minimized is not None
        assert len(result.minimized) <= 3
        # The minimized plan must still reproduce on a fresh machine.
        shrunk = minimize_plan(
            CampaignConfig(
                workload="hashmap", crashes=1, seed=1, inject_bug="skip_commit_mark"
            ),
            result.minimized,
        )
        assert shrunk.reproduced

    def test_minimizer_reports_non_reproducing_plans(self):
        config = CampaignConfig(workload="hashmap", crashes=1, seed=2)
        result = minimize_plan(config, FaultPlan())
        assert not result.reproduced
        assert result.plan == FaultPlan()


class TestFaultsCli:
    def test_clean_campaign_exits_zero(self, capsys):
        code = faults_main(
            ["--workload", "hashmap", "--crashes", "8", "--seed", "1"]
        )
        out = capsys.readouterr().out
        assert code == 0
        assert "8/8 recoveries verified" in out

    def test_buggy_campaign_exits_nonzero_and_prints_reproducer(self, capsys):
        code = faults_main(
            [
                "--workload", "hashmap", "--crashes", "6", "--seed", "1",
                "--inject-bug", "skip_commit_mark",
            ]
        )
        out = capsys.readouterr().out
        assert code == 1
        assert "CRASH-CONSISTENCY FAILURE" in out
        assert "minimized reproducer" in out

    def test_json_export(self, tmp_path, capsys):
        path = tmp_path / "campaign.json"
        code = faults_main(
            ["--workload", "dual_kv", "--crashes", "4", "--json", str(path)]
        )
        capsys.readouterr()
        assert code == 0
        payload = json.loads(path.read_text())
        assert payload  # one figure entry with rows

    def test_main_module_delegates_faults_subcommand(self, capsys):
        from repro.__main__ import main

        code = main(["faults", "--workload", "hashmap", "--crashes", "4"])
        out = capsys.readouterr().out
        assert code == 0
        assert "recoveries verified" in out


class TestTriggerCoverage:
    def test_probe_counts_every_hook(self):
        counts, _ = probe_events(CampaignConfig(workload="hashmap", seed=1))
        assert counts.nvm_log_appends > 0
        assert counts.commit_marks > 0
        assert counts.mid_commits > 0
        assert counts.engine_steps > 0
        assert counts.recovery_replays > 0
        assert counts.end_ns > 0
        assert counts.of(TriggerKind.NVM_LOG_APPEND) == counts.nvm_log_appends
