"""Tests for the transactional coherence directory."""

from __future__ import annotations

import pytest

from repro.cache.directory import Directory


@pytest.fixture
def directory():
    return Directory()


class TestConflictCases:
    """The paper's three conflict cases (Section IV-D)."""

    def test_write_after_write(self, directory):
        directory.record_access(0x40, tx_id=1, is_write=True)
        conflict = directory.check_access(0x40, tx_id=2, is_write=True)
        assert conflict is not None
        assert conflict.victims == frozenset({1})
        assert conflict.kind == "waw"

    def test_read_after_write_exclusive_vs_sharers(self, directory):
        """GetM against Tx-Sharers: requester writes what others read."""
        directory.record_access(0x40, tx_id=1, is_write=False)
        directory.record_access(0x40, tx_id=2, is_write=False)
        conflict = directory.check_access(0x40, tx_id=3, is_write=True)
        assert conflict is not None
        assert conflict.victims == frozenset({1, 2})

    def test_write_after_read_shared_vs_owner(self, directory):
        """GetS against a Tx-Owner."""
        directory.record_access(0x40, tx_id=1, is_write=True)
        conflict = directory.check_access(0x40, tx_id=2, is_write=False)
        assert conflict is not None
        assert conflict.victims == frozenset({1})
        assert conflict.kind == "war"

    def test_no_conflict_among_readers(self, directory):
        directory.record_access(0x40, tx_id=1, is_write=False)
        assert directory.check_access(0x40, tx_id=2, is_write=False) is None

    def test_own_accesses_never_conflict(self, directory):
        directory.record_access(0x40, tx_id=1, is_write=True)
        assert directory.check_access(0x40, tx_id=1, is_write=True) is None
        assert directory.check_access(0x40, tx_id=1, is_write=False) is None

    def test_nontx_requester_conflicts_with_owner(self, directory):
        directory.record_access(0x40, tx_id=1, is_write=True)
        conflict = directory.check_access(0x40, tx_id=None, is_write=False)
        assert conflict is not None and conflict.victims == frozenset({1})

    def test_untracked_line_no_conflict(self, directory):
        assert directory.check_access(0x40, tx_id=1, is_write=True) is None


class TestLifecycle:
    def test_clear_transaction_removes_all_fields(self, directory):
        directory.record_access(0x40, 1, True)
        directory.record_access(0x80, 1, False)
        directory.record_access(0x80, 2, False)
        cleared = directory.clear_transaction(1)
        assert cleared == 2
        assert directory.check_access(0x40, 3, True) is None
        # tx 2's sharing of 0x80 must survive:
        conflict = directory.check_access(0x80, 3, True)
        assert conflict is not None and conflict.victims == frozenset({2})

    def test_clear_unknown_transaction(self, directory):
        assert directory.clear_transaction(42) == 0

    def test_entry_removed_when_no_tx_left(self, directory):
        directory.record_access(0x40, 1, False)
        directory.clear_transaction(1)
        assert len(directory) == 0

    def test_evict_line_returns_entry(self, directory):
        directory.record_access(0x40, 1, True)
        directory.record_access(0x40, 2, False)
        entry = directory.evict_line(0x40)
        assert entry.tx_owner == 1
        assert entry.tx_sharers == {2}
        assert directory.check_access(0x40, 3, True) is None

    def test_evict_unknown_line(self, directory):
        assert directory.evict_line(0x40) is None

    def test_evict_updates_reverse_index(self, directory):
        directory.record_access(0x40, 1, True)
        directory.evict_line(0x40)
        assert directory.lines_of(1) == set()

    def test_lines_of(self, directory):
        directory.record_access(0x40, 1, True)
        directory.record_access(0x80, 1, False)
        assert directory.lines_of(1) == {0x40, 0x80}

    def test_transactions_on(self, directory):
        directory.record_access(0x40, 1, True)
        directory.record_access(0x40, 2, False)
        assert set(directory.transactions_on(0x40)) == {1, 2}
        assert list(directory.transactions_on(0x999)) == []

    def test_counters(self, directory):
        directory.record_access(0x40, 1, True)
        directory.check_access(0x40, 2, True)
        directory.check_access(0x80, 2, True)
        assert directory.conflict_checks == 2
        assert directory.conflicts_found == 1
