"""Simulated processes: the unit of conflict domains and fallback locks.

A process groups threads that share data.  Its PID doubles as its conflict
domain ID — matching the paper's modified pthread library, which "generate[s]
a transaction group ID shared by threads in the process" — and as the key of
its fallback lock.
"""

from __future__ import annotations

from typing import Callable, Generator, List, TYPE_CHECKING

from ..sim.engine import SimThread
from .thread import ThreadApi

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from .system import System

ThreadBodyFn = Callable[[ThreadApi], Generator[None, None, None]]


class SimProcess:
    """One application: a conflict domain with its own fallback lock."""

    def __init__(self, system: "System", pid: int, name: str) -> None:
        self.system = system
        self.pid = pid
        self.name = name
        self.threads: List[SimThread] = []

    @property
    def domain_id(self) -> int:
        return self.pid

    def thread(
        self,
        body: ThreadBodyFn,
        name: str = "",
        migrate_every_ns: float = 0.0,
    ) -> SimThread:
        """Spawn a simulated thread running ``body(api)`` (a generator fn).

        ``migrate_every_ns`` > 0 emulates a preemptive scheduler that
        migrates the thread to the next core after each quantum, including
        mid-transaction (Section IV-E context switches).
        """
        thread_id = self.system.next_thread_id()
        core_id = thread_id % self.system.machine.cores
        label = name or f"{self.name}.t{len(self.threads)}"

        def factory(sim_thread: SimThread) -> Generator[None, None, None]:
            api = ThreadApi(
                self.system, self, sim_thread, core_id,
                migrate_every_ns=migrate_every_ns,
            )
            return body(api)

        sim_thread = SimThread(thread_id, label, factory)
        self.threads.append(sim_thread)
        self.system.engine.add_thread(sim_thread)
        return sim_thread
