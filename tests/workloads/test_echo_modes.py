"""Tests for Echo's horizon (steady-state) mode and scheduling details."""

from __future__ import annotations

import pytest

from repro import HTMConfig, MachineConfig, System
from repro.workloads import EchoWorkload, WorkloadParams


def run_echo(horizon_ns=0.0, long_tx_ratio=0.0, seed=3, **kwargs):
    system = System(
        MachineConfig.scaled(1 / 64, cores=4), HTMConfig(), seed=seed
    )
    proc = system.process("echo")
    params = WorkloadParams(
        threads=3, txs_per_thread=6, value_bytes=8 << 10,
        keys=256, initial_fill=128,
    )
    workload = EchoWorkload(
        system, proc, params,
        long_tx_ratio=long_tx_ratio,
        long_scan_bytes=1 << 18,
        hot_keys=16,
        horizon_ns=horizon_ns,
        **kwargs,
    )
    workload.spawn()
    system.run()
    return system, workload


class TestFixedWorkMode:
    def test_all_batches_processed(self):
        system, workload = run_echo()
        assert not workload.queue
        assert workload.verify()
        # 2 clients x 6 batches each (threads=3 -> 1 master + 2 clients).
        assert system.stats.counter("ops.committed") > 0

    def test_deterministic(self):
        a, _ = run_echo(seed=9)
        b, _ = run_echo(seed=9)
        assert a.elapsed_ns == b.elapsed_ns


class TestHorizonMode:
    def test_run_ends_near_horizon(self):
        horizon = 2e5  # 0.2 ms
        system, workload = run_echo(horizon_ns=horizon)
        assert workload.verify()
        # Threads stop issuing at the horizon; the tail is bounded by one
        # transaction's latency.
        assert system.elapsed_ns < horizon * 3

    def test_leftover_queue_is_acceptable(self):
        system, workload = run_echo(horizon_ns=2e5)
        assert workload.verify()  # integrity only, queue may be non-empty

    def test_closed_loop_queue_bounded(self):
        system, workload = run_echo(horizon_ns=5e5, queue_cap=2)
        assert len(workload.queue) <= 2 + 2  # cap plus in-flight slack

    def test_longer_horizon_more_ops(self):
        short, _ = run_echo(horizon_ns=1e5)
        long_run, _ = run_echo(horizon_ns=5e5)
        assert (
            long_run.stats.counter("ops.committed")
            > short.stats.counter("ops.committed")
        )


class TestLongTxScheduling:
    def test_ratio_zero_means_none(self):
        _, workload = run_echo(long_tx_ratio=0.0)
        assert workload.long_txs_executed == 0

    def test_fixed_work_slots_materialise_small_ratios(self):
        _, workload = run_echo(long_tx_ratio=0.01)
        assert workload.long_txs_executed >= 1

    def test_horizon_mode_schedules_by_stride(self):
        _, workload = run_echo(horizon_ns=1.5e6, long_tx_ratio=0.2)
        assert workload.long_txs_executed >= 1

    def test_scan_counts_roughly_track_ratio(self):
        _, low = run_echo(long_tx_ratio=0.05)
        _, high = run_echo(long_tx_ratio=0.5)
        assert high.long_txs_executed > low.long_txs_executed
