"""Per-thread runtime façade and the Algorithm 1 retry/fallback protocol.

``run_transaction`` is a generator (thread bodies drive it with ``yield
from``) so it can interleave with other threads while spinning on the
fallback lock or sleeping through backoff.  Its control flow is a direct
transliteration of the paper's Algorithm 1:

* fast path while the lock is free, with the lock in the read set (a
  slow-path acquisition aborts every running transaction in the process);
* on abort: wait for the lock if we were preempted by it, back off
  randomly, and retry up to ``max_retries`` times;
* on a capacity abort: take the slow path immediately, without retrying
  ("capacity overflows tend to happen repeatedly even after restarts");
* slow path: acquire the lock, run the same body serialised but still
  failure-atomic, release.
"""

from __future__ import annotations

import inspect
from typing import Callable, Generator, Optional, TYPE_CHECKING

from ..errors import AbortReason, TransactionAborted
from ..sim.engine import SimThread
from .txapi import DirectContext, MemoryContext, SlowPathContext, TxContext

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from .process import SimProcess
    from .system import System

#: Cost of one ``pause()`` spin iteration while waiting on the lock, ns.
PAUSE_NS = 100.0

TxBody = Callable[[MemoryContext], Optional[Generator[None, None, None]]]


class ThreadApi:
    """Everything a simulated thread's body can do."""

    def __init__(
        self,
        system: "System",
        process: "SimProcess",
        sim_thread: SimThread,
        core_id: int,
        migrate_every_ns: float = 0.0,
    ) -> None:
        self.system = system
        self.process = process
        self.thread = sim_thread
        self.core_id = core_id
        self.rng = system.rng.fork(sim_thread.thread_id).stream("thread")
        self.heap = system.heap
        #: Preemptive-scheduler emulation: migrate this thread to the next
        #: core every so many simulated nanoseconds (0 = pinned), exercising
        #: the Section IV-E context-switch protocol mid-transaction.
        self.migrate_every_ns = migrate_every_ns
        self._last_migration_ns = sim_thread.clock_ns
        #: Non-transactional context for out-of-transaction work.
        self.nontx = DirectContext(
            system.htm, sim_thread, core_id, process.domain_id
        )

    # -- timing helpers -------------------------------------------------------

    def charge(self, ns: float) -> None:
        self.thread.advance(ns)

    def charge_op(self) -> None:
        self.thread.advance(self.system.machine.latency.cpu_op_ns)

    # -- Algorithm 1 ------------------------------------------------------------

    def run_transaction(
        self, body: TxBody, ops: int = 1
    ) -> Generator[None, None, None]:
        """Execute ``body`` with full ACID guarantees; ``yield from`` this.

        ``body`` may be a plain function or a generator function (yield
        points inside it are scheduling boundaries).  ``ops`` is how many
        logical operations the transaction performs, counted into the
        throughput statistics on success.
        """
        system = self.system
        stats = system.stats
        lock = system.locks.lock_for(self.process.pid)
        retries = 0
        capacity = False
        while True:
            while lock.locked:  # Algorithm 1 line 4 / 11-13
                self.thread.advance(PAUSE_NS)
                yield
            handle = system.htm.begin(
                self.thread, self.core_id, self.process.pid, self.process.domain_id
            )
            ctx = TxContext(system.htm, handle)
            self.charge_op()
            try:
                result = body(ctx)
                if inspect.isgenerator(result):
                    while True:
                        try:
                            next(result)
                        except StopIteration:
                            break
                        self._maybe_migrate(handle)
                        yield
                system.htm.commit(handle)
                stats.incr("ops.committed", ops)
                stats.incr(f"ops.by_process.{self.process.pid}", ops)
                stats.incr("tx.fast_path_successes")
                return
            except TransactionAborted as aborted:
                system.htm.acknowledge_abort(handle)
                stats.incr("tx.retries")
                if aborted.reason is AbortReason.CAPACITY:
                    capacity = True  # Algorithm 1 line 15-17
                    break
                retries += 1
                if retries > system.htm.config.max_retries:
                    break  # Algorithm 1 line 18-20
                self._backoff(retries)
                yield
        if capacity:
            stats.incr("tx.capacity_fallbacks")
        yield from self._slow_path(body, ops)

    def _maybe_migrate(self, handle) -> None:
        """Preempt-and-migrate when the quantum expired (Section IV-E)."""
        if not self.migrate_every_ns:
            return
        if self.thread.clock_ns - self._last_migration_ns < self.migrate_every_ns:
            return
        self._last_migration_ns = self.thread.clock_ns
        new_core = (self.core_id + 1) % self.system.machine.cores
        self.system.htm.context_switch(handle, new_core)
        self.core_id = new_core
        self.nontx = DirectContext(
            self.system.htm, self.thread, new_core, self.process.domain_id
        )

    def _backoff(self, attempt: int) -> None:
        """Randomised exponential backoff after a conflict abort."""
        config = self.system.htm.config
        ceiling = min(
            config.backoff_ns * (2 ** min(attempt, 6)), config.backoff_max_ns
        )
        self.thread.advance(self.rng.uniform(config.backoff_ns, max(config.backoff_ns, ceiling)))

    def _slow_path(
        self, body: TxBody, ops: int
    ) -> Generator[None, None, None]:
        system = self.system
        lock = system.locks.lock_for(self.process.pid)
        while lock.locked:
            self.thread.advance(PAUSE_NS)
            yield
        lock.acquire(self.thread.thread_id, self.thread.clock_ns)
        # Acquiring the lock conflicts with every fast-path transaction in
        # this process (the lock word is in their read sets).
        system.htm.abort_all_in_process(
            self.process.pid, AbortReason.LOCK_PREEMPTED
        )
        system.stats.incr("tx.slow_path_executions")
        try:
            ctx = SlowPathContext(
                system.htm, self.thread, self.core_id, self.process.domain_id
            )
            self.charge_op()
            result = body(ctx)
            if inspect.isgenerator(result):
                yield from result
            ctx.finalize()
            system.stats.incr("ops.committed", ops)
            system.stats.incr(f"ops.by_process.{self.process.pid}", ops)
        finally:
            lock.release(self.thread.thread_id)
