"""The checker framework: registry, suppressions, reporters, CLI plumbing."""

from __future__ import annotations

import json
from pathlib import Path

import pytest

from repro.analyze import registered_checkers, render_json, render_text, run_analysis
from repro.analyze.cli import main as lint_main
from repro.analyze.layers import assert_acyclic

FIXTURES = Path(__file__).parent.parent / "analyze_fixtures"


class TestRegistry:
    def test_all_four_rules_registered(self):
        assert {"DET001", "LAY002", "HOOK003", "FSM004"} <= set(
            registered_checkers()
        )

    def test_rules_filter_unknown_rejected(self):
        with pytest.raises(ValueError, match="unknown rule"):
            run_analysis([FIXTURES / "det001_good.py"], rules=["NOPE999"])

    def test_layer_dag_is_acyclic(self):
        assert_acyclic()


class TestSuppressions:
    def test_line_suppression_hides_only_its_line(self):
        report = run_analysis([FIXTURES / "suppressed.py"], rules=["DET001"])
        assert report.suppressed == 1
        assert [f.message for f in report.findings] == [
            "'import secrets' bypasses the seeded RngStreams; draw from a "
            "named stream of repro.sim.rng instead"
        ]

    def test_file_suppression_hides_everything(self):
        report = run_analysis([FIXTURES / "suppressed_file.py"], rules=["DET001"])
        assert report.findings == []
        assert report.suppressed >= 2


class TestReporters:
    def test_text_reporter_lists_locations(self):
        report = run_analysis([FIXTURES / "det001_bad.py"], rules=["DET001"])
        text = render_text(report)
        assert "det001_bad.py" in text
        assert "DET001" in text
        assert "finding(s)" in text

    def test_json_reporter_round_trips(self):
        report = run_analysis([FIXTURES / "det001_bad.py"], rules=["DET001"])
        payload = json.loads(render_json(report))
        assert payload["ok"] is False
        assert payload["files_checked"] == 1
        assert all(
            {"rule", "path", "line", "col", "message"} <= set(f)
            for f in payload["findings"]
        )

    def test_syntax_error_becomes_parse_finding(self, tmp_path):
        bad = tmp_path / "broken.py"
        bad.write_text("def broken(:\n", encoding="utf-8")
        report = run_analysis([bad])
        assert [f.rule for f in report.findings] == ["PARSE"]


class TestCli:
    def test_exit_zero_on_clean_file(self, capsys):
        assert lint_main([str(FIXTURES / "det001_good.py")]) == 0

    def test_exit_one_on_each_bad_fixture(self, capsys):
        for name in (
            "det001_bad.py",
            "lay002_bad.py",
            "hook003_bad.py",
            "fsm004_bad.py",
            "fsm004_unreachable.py",
            "fsm004_bad_directory.py",
            "repro/htm/import_bad.py",
        ):
            assert lint_main([str(FIXTURES / name)]) == 1, name

    def test_exit_two_on_missing_path(self, capsys):
        assert lint_main(["definitely/not/a/path.py"]) == 2

    def test_exit_two_on_unknown_rule(self, capsys):
        assert (
            lint_main(["--rules", "NOPE999", str(FIXTURES / "det001_good.py")])
            == 2
        )

    def test_json_flag_emits_json(self, capsys):
        lint_main(["--json", str(FIXTURES / "det001_good.py")])
        payload = json.loads(capsys.readouterr().out)
        assert payload["ok"] is True

    def test_list_rules(self, capsys):
        assert lint_main(["--list-rules"]) == 0
        out = capsys.readouterr().out
        for rule in ("DET001", "LAY002", "HOOK003", "FSM004"):
            assert rule in out

    def test_fix_suppress_silences_a_bad_file(self, tmp_path, capsys):
        scratch = tmp_path / "scratch.py"
        scratch.write_text(
            (FIXTURES / "det001_bad.py").read_text(encoding="utf-8"),
            encoding="utf-8",
        )
        assert lint_main(["--rules", "DET001", str(scratch)]) == 1
        assert (
            lint_main(["--rules", "DET001", "--fix-suppress", str(scratch)]) == 1
        )
        assert lint_main(["--rules", "DET001", str(scratch)]) == 0
        assert "repro: allow[DET001]" in scratch.read_text(encoding="utf-8")
