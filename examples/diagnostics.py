#!/usr/bin/env python3
"""Diagnostics demo: NVM wear accounting and memory-bandwidth modelling.

Two instruments a persistent-memory study needs beyond throughput:

1. **Wear** — NVM wears out per cell; the tracker reports in-place line
   writes, write amplification (log bytes per payload byte), and the
   hot-line tail for an update-heavy workload.
2. **Bandwidth** — with ``MemoryConfig(model_bandwidth=True)`` every
   off-chip access competes for a finite channel; the demo shows commit
   bursts queueing on the NVM channel.

Run with:  python examples/diagnostics.py
"""

import dataclasses

from repro import HTMConfig, MachineConfig, MemoryKind, System
from repro.mem.wear import WearTracker
from repro.workloads import WORKLOADS, WorkloadParams


def wear_demo() -> None:
    print("=== NVM wear accounting ===")
    system = System(MachineConfig.scaled(1 / 16, cores=4), HTMConfig(), seed=4)
    tracker = WearTracker().attach(system.controller)
    proc = system.process("kv")
    params = WorkloadParams(
        threads=4, txs_per_thread=8, value_bytes=16 << 10,
        keys=64, initial_fill=32, update_ratio=0.9,  # update-heavy: hot lines
    )
    workload = WORKLOADS["hashmap"](system, proc, params)
    workload.spawn()
    system.run()
    system.controller.dram_cache.drain_all()  # flush pending in-place writes
    print(f"in-place NVM line writes : {tracker.total_line_writes}")
    print(f"distinct lines written   : {tracker.distinct_lines}")
    print(f"hottest line write count : {tracker.max_line_writes}")
    print(f"median line write count  : {tracker.percentile_line_writes(0.5)}")
    print(f"write amplification      : {tracker.write_amplification():.2f}x "
          f"(log bytes per payload byte)")
    tracker.detach()


def bandwidth_demo() -> None:
    print("\n=== memory-bandwidth modelling ===")
    results = {}
    for modelled in (False, True):
        base = MachineConfig.scaled(1 / 16, cores=4, cache_scale=1 / 256)
        machine = dataclasses.replace(
            base,
            memory=dataclasses.replace(base.memory, model_bandwidth=modelled),
        )
        system = System(machine, HTMConfig(), seed=4)
        proc = system.process("kv")
        params = WorkloadParams(
            threads=4, txs_per_thread=6, value_bytes=64 << 10,
            keys=64, initial_fill=32, kind=MemoryKind.NVM,
        )
        workload = WORKLOADS["btree"](system, proc, params)
        workload.spawn()
        system.run()
        results[modelled] = system
        label = "finite bandwidth " if modelled else "infinite bandwidth"
        print(f"{label}: {system.elapsed_ns / 1e6:7.3f} ms simulated")
    limited = results[True]
    channel = limited.controller.nvm_channel
    print(f"NVM channel requests     : {channel.stats.requests}")
    print(f"mean queueing delay      : {channel.stats.mean_queue_ns:.1f} ns")
    slowdown = results[True].elapsed_ns / results[False].elapsed_ns
    print(f"contention slowdown      : {slowdown:.2f}x")
    assert slowdown > 1.0


def main() -> None:
    wear_demo()
    bandwidth_demo()
    print("\ndiagnostics demo OK")


if __name__ == "__main__":
    main()
