"""Durable storage for the serve spool: layout, records, atomic writes.

One *spool* directory is the whole service state — there is no broker
process to lose.  Everything follows the same durability discipline as
:meth:`repro.harness.cache.ResultCache.put`: stage under a writer-unique
temporary name, publish with one atomic rename, treat anything unreadable
as absent.  The layout::

    <spool>/
      cache/                      # shared ResultCache (the artifact store)
      campaigns/<id>/
        points.jsonl              # one JobRecord per line, submission order
        campaign.json             # metadata; written LAST = campaign exists
        leases/<index>.json       # best-effort work claims (queue.py)
        failures/<index>.json     # points that died with ExperimentFailure
        cancelled                 # marker: workers stop picking points up

``points.jsonl`` is immutable after publish; all mutable state lives in
single-purpose marker files, so no file is ever rewritten in place by two
parties.  A campaign only *exists* once ``campaign.json`` has landed —
writers stage the (potentially large) point list first, so a reader can
never observe a half-submitted campaign.

Specs travel as pickles (base64 in the JSONL): :class:`ExperimentSpec` is
a frozen value type that pickles cleanly — the same property the process
pool relies on — and the fingerprint in each record lets readers poll
doneness without ever unpickling.
"""

from __future__ import annotations

import base64
import json
import os
import pickle
from dataclasses import dataclass
from pathlib import Path
from typing import Any, Dict, Iterable, List, Optional, Union

from ..errors import ReproError
from ..harness.config import ExperimentSpec
from ..harness.parallel import GridPoint

#: Schema stamp for spool files; bump on incompatible layout changes.
SPOOL_VERSION = 1

CACHE_DIR = "cache"
CAMPAIGNS_DIR = "campaigns"
POINTS_FILE = "points.jsonl"
META_FILE = "campaign.json"
LEASES_DIR = "leases"
FAILURES_DIR = "failures"
CANCEL_MARKER = "cancelled"


class ServeError(ReproError):
    """A job-service operation failed (bad spool state, incomplete campaign)."""


def write_json_atomic(path: Path, payload: Any) -> None:
    """Publish ``payload`` at ``path`` via a writer-unique tmp + rename."""
    path.parent.mkdir(parents=True, exist_ok=True)
    tmp = path.with_name(f"{path.name}.{os.getpid()}.tmp")
    tmp.write_text(
        json.dumps(payload, indent=2, sort_keys=True), encoding="utf-8"
    )
    tmp.replace(path)


def write_text_atomic(path: Path, text: str) -> None:
    """Publish already-rendered ``text`` at ``path`` the same way."""
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    tmp = path.with_name(f"{path.name}.{os.getpid()}.tmp")
    tmp.write_text(text, encoding="utf-8")
    tmp.replace(path)


def read_json(path: Path) -> Optional[Any]:
    """The parsed payload, or ``None`` for missing/torn/corrupt files."""
    try:
        return json.loads(path.read_text(encoding="utf-8"))
    except (OSError, ValueError):
        return None


def _to_b64(value: Any) -> str:
    return base64.b64encode(
        pickle.dumps(value, protocol=pickle.HIGHEST_PROTOCOL)
    ).decode("ascii")


def _from_b64(blob: str) -> Any:
    return pickle.loads(base64.b64decode(blob.encode("ascii")))


@dataclass(frozen=True)
class JobRecord:
    """One queued grid point, as stored in ``points.jsonl``.

    ``index`` is the submission position (and the sharding key),
    ``fingerprint`` the point's content hash in the shared cache — the
    doneness probe.  ``label`` is the *original* ``GridPoint.label``
    (``None`` for most figure points): it feeds the fingerprint, so the
    distinction from the resolved :attr:`display_label` must survive the
    round trip byte-for-byte.  ``spec``/``key`` travel as pickles so any
    grid the harness can build, the queue can hold.
    """

    index: int
    fingerprint: str
    label: Optional[str]
    spec: ExperimentSpec
    key: Any = None

    @property
    def display_label(self) -> str:
        """What progress lines show (same resolution as the grid executor)."""
        return self.label or self.spec.htm.label

    def point(self) -> GridPoint:
        return GridPoint(spec=self.spec, label=self.label, key=self.key)


def encode_record(record: JobRecord) -> Dict[str, Any]:
    return {
        "index": record.index,
        "fingerprint": record.fingerprint,
        "label": record.label,
        "spec_name": record.spec.name,  # human-greppable provenance
        "spec_pickle": _to_b64(record.spec),
        "key_pickle": _to_b64(record.key),
    }


def decode_record(payload: Dict[str, Any]) -> JobRecord:
    return JobRecord(
        index=int(payload["index"]),
        fingerprint=payload["fingerprint"],
        label=payload["label"],
        spec=_from_b64(payload["spec_pickle"]),
        key=_from_b64(payload["key_pickle"]),
    )


@dataclass(frozen=True)
class CampaignMeta:
    """The ``campaign.json`` payload: identity plus figure provenance.

    ``figure``/``quick``/``scale``/``seed`` are set when the campaign was
    submitted from a figure grid, letting ``repro serve results --figure``
    re-assemble the exact figure export from the warm cache.
    """

    campaign_id: str
    title: str
    total_points: int
    created: float
    figure: Optional[str] = None
    quick: bool = True
    scale: float = 0.0
    seed: int = 0

    def to_payload(self) -> Dict[str, Any]:
        return {
            "spool_version": SPOOL_VERSION,
            "campaign_id": self.campaign_id,
            "title": self.title,
            "total_points": self.total_points,
            "created": self.created,
            "figure": self.figure,
            "quick": self.quick,
            "scale": self.scale,
            "seed": self.seed,
        }

    @classmethod
    def from_payload(cls, payload: Dict[str, Any]) -> "CampaignMeta":
        return cls(
            campaign_id=payload["campaign_id"],
            title=payload["title"],
            total_points=int(payload["total_points"]),
            created=float(payload["created"]),
            figure=payload.get("figure"),
            quick=bool(payload.get("quick", True)),
            scale=float(payload.get("scale", 0.0)),
            seed=int(payload.get("seed", 0)),
        )


class CampaignStore:
    """Path discipline and IO for one spool directory."""

    def __init__(self, root: Union[str, Path]) -> None:
        self.root = Path(root)

    # -- layout ------------------------------------------------------------

    @property
    def cache_dir(self) -> Path:
        return self.root / CACHE_DIR

    @property
    def campaigns_dir(self) -> Path:
        return self.root / CAMPAIGNS_DIR

    def campaign_dir(self, campaign_id: str) -> Path:
        return self.campaigns_dir / campaign_id

    def meta_path(self, campaign_id: str) -> Path:
        return self.campaign_dir(campaign_id) / META_FILE

    def points_path(self, campaign_id: str) -> Path:
        return self.campaign_dir(campaign_id) / POINTS_FILE

    def lease_path(self, campaign_id: str, index: int) -> Path:
        return self.campaign_dir(campaign_id) / LEASES_DIR / f"{index}.json"

    def failure_path(self, campaign_id: str, index: int) -> Path:
        return self.campaign_dir(campaign_id) / FAILURES_DIR / f"{index}.json"

    def cancel_path(self, campaign_id: str) -> Path:
        return self.campaign_dir(campaign_id) / CANCEL_MARKER

    # -- campaigns ---------------------------------------------------------

    def exists(self, campaign_id: str) -> bool:
        return self.meta_path(campaign_id).is_file()

    def publish(self, meta: CampaignMeta, records: Iterable[JobRecord]) -> None:
        """Write a campaign durably: points first, metadata last.

        The metadata rename is the publication point — a crash anywhere
        earlier leaves a directory no reader considers a campaign (and a
        resubmission with the same id simply overwrites the staging).
        """
        directory = self.campaign_dir(meta.campaign_id)
        directory.mkdir(parents=True, exist_ok=True)
        points_path = self.points_path(meta.campaign_id)
        tmp = points_path.with_name(
            f"{points_path.name}.{os.getpid()}.tmp"
        )
        with tmp.open("w", encoding="utf-8") as handle:
            for record in records:
                handle.write(
                    json.dumps(encode_record(record), sort_keys=True) + "\n"
                )
        tmp.replace(points_path)
        write_json_atomic(self.meta_path(meta.campaign_id), meta.to_payload())

    def load_meta(self, campaign_id: str) -> CampaignMeta:
        payload = read_json(self.meta_path(campaign_id))
        if payload is None:
            raise ServeError(
                f"no campaign {campaign_id!r} in spool {self.root}"
            )
        return CampaignMeta.from_payload(payload)

    def load_records(self, campaign_id: str) -> List[JobRecord]:
        path = self.points_path(campaign_id)
        try:
            lines = path.read_text(encoding="utf-8").splitlines()
        except OSError as exc:
            raise ServeError(
                f"campaign {campaign_id!r} has no readable point list: {exc}"
            ) from exc
        records = []
        for line in lines:
            if not line.strip():
                continue
            try:
                records.append(decode_record(json.loads(line)))
            except Exception as exc:  # torn line = corrupt campaign, say so
                raise ServeError(
                    f"campaign {campaign_id!r} has a corrupt point record: "
                    f"{exc}"
                ) from exc
        return records

    def list_ids(self) -> List[str]:
        """Published campaign ids, oldest first (created, then id)."""
        if not self.campaigns_dir.is_dir():
            return []
        stamped = []
        for entry in sorted(self.campaigns_dir.iterdir()):
            if not entry.is_dir():
                continue
            payload = read_json(entry / META_FILE)
            if payload is None:
                continue  # still being staged, or torn: not a campaign yet
            stamped.append((float(payload.get("created", 0.0)), entry.name))
        return [name for _, name in sorted(stamped)]
