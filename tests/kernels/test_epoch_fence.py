"""Epoch-fence mutation kill-tests and batched/scalar interleaving properties.

The batched engine's correctness story has two legs: the fused block loops
are bit-identical to the scalar walk when batching is legal, and the
dependency fence drops every block back to scalar dispatch whenever per-op
ordering is observable from outside the loop (tracer, trace capture, fault
injector, bandwidth channel).  Each mutant below weakens one leg and must
be *caught* by the same fingerprints the differential tier compares — if a
mutant survives, the tier cannot actually detect that bug class.

The Hypothesis suite at the bottom searches the interleaving space the
recorded scenarios only sample: random per-thread schedules of
transactional block writes/reads and non-transactional RMW sweeps over
shared DRAM and NVM chunks, with yield points inside transactions so they
genuinely overlap.  Scalar and batched runs of the same schedule must agree
on the full counter snapshot and the simulated end time.
"""

import pytest

np = pytest.importorskip("numpy")

from repro.htm.batch import BatchDispatcher
from repro.mem.address import MemoryKind
from repro.params import HTMConfig, LINE_SIZE, MachineConfig
from repro.runtime.system import System

SCALE = 1 / 64

#: Shared-array geometry for the conflict workload: two threads hammer the
#: same chunks, transactions yield mid-body, so conflicts and aborts occur.
CHUNK_LINES = 16


def fingerprint(system):
    """Everything a run observably produces: end time plus every counter."""
    return (system.elapsed_ns, system.stats.snapshot())


def conflict_worker(api, bases, rounds=12, width=8):
    nbytes = width * LINE_SIZE
    sweep = [bases[0] + i * LINE_SIZE for i in range(width)]
    for round_no in range(rounds):
        def body(tx, tag=round_no):
            tx.write_block(bases[0], nbytes, tag)
            yield  # scheduling boundary: transactions overlap => conflicts
            tx.read_block(bases[1], nbytes)

        yield from api.run_transaction(body)
        api.nontx.rmw_add_block(sweep, 1)
        yield


def run_conflict_workload(
    engine, mutant_cls=None, capture=False, bandwidth=False, seed=11
):
    machine = MachineConfig.scaled(SCALE)
    if bandwidth:
        import dataclasses

        machine = dataclasses.replace(
            machine,
            memory=dataclasses.replace(machine.memory, model_bandwidth=True),
        )
    system = System(
        machine, HTMConfig(), seed=seed, engine=engine, capture_trace=capture
    )
    if mutant_cls is not None:
        assert system.htm.batch is not None, "mutants require engine=batched"
        system.htm.batch = mutant_cls(system.htm, system.engine.epoch_stats)
    dram = system.heap.alloc(2 * CHUNK_LINES * LINE_SIZE, MemoryKind.DRAM)
    nvm = system.heap.alloc(CHUNK_LINES * LINE_SIZE, MemoryKind.NVM)
    bases = (dram, nvm)
    proc = system.process("fence")
    for _ in range(2):
        proc.thread(lambda api: conflict_worker(api, bases))
    system.run()
    return system


# -- controls: the real dispatcher is exact and the fence holds --------------


def test_batched_matches_scalar_on_conflict_workload():
    scalar = run_conflict_workload("scalar")
    batched = run_conflict_workload("batched")
    assert scalar.stats.counter("tx.aborts") > 0, "scenario must conflict"
    assert fingerprint(scalar) == fingerprint(batched)
    assert batched.epoch_stats.epochs > 0, "blocks must actually batch"


def test_capture_fence_drops_to_scalar_and_stays_identical():
    scalar = run_conflict_workload("scalar", capture=True)
    batched = run_conflict_workload("batched", capture=True)
    assert fingerprint(scalar) == fingerprint(batched)
    s_trace, b_trace = scalar.captured_trace(), batched.captured_trace()
    assert (s_trace.total_txs(), s_trace.total_ops()) == (
        b_trace.total_txs(),
        b_trace.total_ops(),
    )
    assert b_trace.total_ops() > 0
    assert batched.epoch_stats.epochs == 0, "capture must fence every block"
    assert "capture" in batched.epoch_stats.fences


def test_bandwidth_fence_drops_to_scalar_and_stays_identical():
    scalar = run_conflict_workload("scalar", bandwidth=True)
    batched = run_conflict_workload("batched", bandwidth=True)
    assert fingerprint(scalar) == fingerprint(batched)
    assert batched.epoch_stats.epochs == 0, "bandwidth must fence every block"
    assert "bandwidth" in batched.epoch_stats.fences


# -- mutants: each weakened fence / staging rule must be caught --------------


class FencelessDispatcher(BatchDispatcher):
    """Ignores every fence: batches even when ordering is observable."""

    def _fence_reason(self):
        return None


class SilentConflictDispatcher(BatchDispatcher):
    """Skips the conflict-resolution staging inside the fused loops."""

    def _onchip_resolution(self, tx, line_addr, is_write, conflict):
        return None

    def _offchip_resolution(self, requester, line_addr, hits):
        return None


def test_fenceless_mutant_killed_by_capture_divergence():
    scalar = run_conflict_workload("scalar", capture=True)
    mutant = run_conflict_workload(
        "batched", mutant_cls=FencelessDispatcher, capture=True
    )
    s_trace, m_trace = scalar.captured_trace(), mutant.captured_trace()
    # The fused loops record nothing into the capture — batching past the
    # fence visibly loses trace operations.
    assert m_trace.total_ops() < s_trace.total_ops()


def test_fenceless_mutant_killed_by_bandwidth_divergence():
    scalar = run_conflict_workload("scalar", bandwidth=True)
    mutant = run_conflict_workload(
        "batched", mutant_cls=FencelessDispatcher, bandwidth=True
    )
    # The fused loops charge flat device latency; with the channel model
    # armed, skipping per-request queueing must show up in the end time.
    assert fingerprint(mutant) != fingerprint(scalar)


def test_silent_conflict_mutant_killed_by_counter_divergence():
    scalar = run_conflict_workload("scalar")
    mutant = run_conflict_workload(
        "batched", mutant_cls=SilentConflictDispatcher
    )
    assert fingerprint(mutant) != fingerprint(scalar)


# -- Hypothesis: random interleavings, batched == scalar ---------------------

pytest.importorskip("hypothesis")

from hypothesis import given, settings  # noqa: E402
from hypothesis import strategies as st  # noqa: E402

op = st.tuples(
    st.sampled_from(["txw", "txr", "rmw"]),
    st.integers(min_value=0, max_value=3),  # which shared chunk
    st.sampled_from([1, 2, 4, 8, 16]),  # block width in lines
)
schedule = st.lists(op, min_size=1, max_size=10)


def run_schedule(engine, schedules, seed):
    system = System(
        MachineConfig.scaled(SCALE), HTMConfig(), seed=seed, engine=engine
    )
    dram = system.heap.alloc(2 * CHUNK_LINES * LINE_SIZE, MemoryKind.DRAM)
    nvm = system.heap.alloc(2 * CHUNK_LINES * LINE_SIZE, MemoryKind.NVM)
    span = CHUNK_LINES * LINE_SIZE
    bases = (dram, dram + span, nvm, nvm + span)
    proc = system.process("prop")

    def worker(api, plan):
        for kind, chunk, width in plan:
            base = bases[chunk]
            nbytes = width * LINE_SIZE
            if kind == "rmw":
                api.nontx.rmw_add_block(
                    [base + i * LINE_SIZE for i in range(width)], 1
                )
            else:
                def body(tx, kind=kind, base=base, nbytes=nbytes):
                    if kind == "txw":
                        tx.write_block(base, nbytes, 0xB10C)
                    else:
                        tx.read_block(base, nbytes)
                    yield  # overlap with the other thread's transaction

                yield from api.run_transaction(body)
            yield

    for plan in schedules:
        proc.thread(lambda api, plan=plan: worker(api, plan))
    system.run()
    return fingerprint(system)


@settings(max_examples=20, deadline=None)
@given(
    schedules=st.lists(schedule, min_size=1, max_size=3),
    seed=st.integers(min_value=0, max_value=2**16),
)
def test_batched_matches_scalar_over_random_interleavings(schedules, seed):
    assert run_schedule("scalar", schedules, seed) == run_schedule(
        "batched", schedules, seed
    )
