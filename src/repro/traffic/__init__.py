"""Open-loop traffic reporting: retry chains and tail amplification.

The scenario itself lives lower in the stack — arrivals in
:mod:`repro.sim.arrivals`, the tenant workload in
:mod:`repro.workloads.open_loop`, the cacheable figure in
:mod:`repro.harness.figures` (``traffic``).  This package is the
observability top layer over it: it traces traffic experiments through
:mod:`repro.obs`, stitches per-attempt timelines into abort-retry *chains*,
and reports how much of the latency tail the aborts manufactured
(:mod:`repro.traffic.report`), with a CLI front-end
(``python -m repro traffic``, :mod:`repro.traffic.cli`).
"""

from .report import (
    RetryChain,
    TailReport,
    analyze_chains,
    build_chains,
    reconstruct_arrivals,
    tail_report,
)

__all__ = [
    "RetryChain",
    "TailReport",
    "analyze_chains",
    "build_chains",
    "reconstruct_arrivals",
    "tail_report",
]
