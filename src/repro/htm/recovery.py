"""Crash injection and post-failure recovery (Section IV-C).

"UHTM restores the program state from a power failure with NVM data only.
UHTM replays the committed redo entries in the NVM log area and disregards
the uncommitted one, as same as the recovery of redo-logging in the
conventional database logging."

:class:`CrashController` wipes every volatile structure — CPU caches, the
DRAM backing store, the DRAM log, and the DRAM cache — then replays the NVM
log.  Durability tests build data structures transactionally, crash at
arbitrary points, recover, and verify that exactly the committed state is
visible.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..cache.hierarchy import CacheHierarchy
from ..mem.controller import MemoryController


@dataclass
class RecoveryReport:
    """What a recovery pass did."""

    replayed_lines: int
    surviving_nvm_words: int


class CrashController:
    """Injects power failures and runs recovery over a simulated machine."""

    def __init__(self, controller: MemoryController, hierarchy: CacheHierarchy) -> None:
        self._controller = controller
        self._hierarchy = hierarchy
        self.crashes = 0

    def crash(self) -> None:
        """Power failure: all volatile state is lost instantly.

        Pending writes in the controller's write-pending queue are durable
        under ADR, which in this model means everything already appended to
        the NVM log or stored to the NVM backing store survives.
        """
        self.crashes += 1
        self._hierarchy.wipe()
        self._controller.crash()

    def recover(self) -> RecoveryReport:
        """Replay committed NVM redo records into the NVM backing store."""
        replayed = self._controller.recover()
        return RecoveryReport(
            replayed_lines=replayed,
            surviving_nvm_words=self._controller.nvm.word_count(),
        )
