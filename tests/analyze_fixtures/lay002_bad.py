"""BAD fixture: reaching into the controller's internals."""


class CommitPath:
    def __init__(self, controller):
        self.controller = controller

    def publish(self, words):
        for addr, value in words.items():
            self.controller.dram.store(addr, value)

    def append(self, tx_id, line_addr, words):
        self.controller.nvm_log.append_data("redo", tx_id, line_addr, words)
