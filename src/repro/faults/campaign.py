"""Fault-injection campaigns: sweep seeded crash points, verify every one.

A campaign builds a fresh simulated machine per plan (same workload, same
seed — the runs are deterministic, so two executions of one plan are
bit-identical), cuts the power where the plan says, recovers, and asks the
:class:`~repro.faults.oracle.CrashOracle` whether exactly the committed
prefix survived.  A probe run (no injection, final power cut only) first
measures the event space — how many NVM log appends, commit marks, engine
steps, replayable lines a run produces — so sampled crash points land where
something actually happens.

When a plan fails the oracle, the campaign hands it to the
:mod:`~repro.faults.minimize` shrinker, which returns the smallest plan that
still reproduces the inconsistency — the line to paste into a regression
test.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple, TYPE_CHECKING

from ..errors import ConfigError, PowerFailure
from ..sim.rng import RngStreams

if TYPE_CHECKING:  # pragma: no cover
    import random
from ..harness.metrics import CampaignMetrics
from ..harness.report import FigureResult
from ..htm.recovery import RecoveryReport
from ..mem.address import MemoryKind
from ..params import HTMConfig, MachineConfig
from ..workloads import WORKLOADS, WorkloadParams
from .injector import FaultInjector
from .oracle import CrashOracle, OracleVerdict
from .plan import CrashPoint, FaultPlan, TriggerKind

#: Run-phase kinds a sampled plan may crash at, with sampling weights.
_SAMPLED_KINDS: Tuple[Tuple[TriggerKind, int], ...] = (
    (TriggerKind.NVM_LOG_APPEND, 4),
    (TriggerKind.PRE_COMMIT_MARK, 2),
    (TriggerKind.COMMIT_MARK, 2),
    (TriggerKind.MID_COMMIT, 2),
    (TriggerKind.ENGINE_STEP, 2),
    (TriggerKind.SIM_TIME, 1),
)

#: One sampled plan in this many gets a stacked crash-during-recovery step.
_RECOVERY_STACK_RATE = 4


@dataclass(frozen=True)
class CampaignConfig:
    """Everything one campaign needs; small enough to sweep by hand."""

    workload: str = "hashmap"
    crashes: int = 50
    seed: int = 1
    design: str = "uhtm"
    threads: int = 2
    txs_per_thread: int = 3
    ops_per_tx: int = 1
    #: Paper-scale value size (shrunk by the 1/64 machine scale).
    value_bytes: int = 8 << 10
    keys: int = 32
    initial_fill: int = 8
    #: Seeded durability bug for oracle self-validation (``None`` = sound
    #: machine; ``"skip_commit_mark"`` = drop every durable commit mark).
    inject_bug: Optional[str] = None
    minimize_failures: bool = True

    def __post_init__(self) -> None:
        if self.workload not in WORKLOADS:
            raise ConfigError(
                f"unknown workload {self.workload!r}; "
                f"choose from {sorted(WORKLOADS)}"
            )
        if self.crashes < 1:
            raise ConfigError("crashes must be >= 1")
        if self.inject_bug not in (None, "skip_commit_mark"):
            raise ConfigError(f"unknown injected bug {self.inject_bug!r}")


@dataclass
class EventCounts:
    """The event space measured by the probe run."""

    nvm_log_appends: int = 0
    commit_marks: int = 0
    mid_commits: int = 0
    engine_steps: int = 0
    recovery_replays: int = 0
    end_ns: float = 0.0

    def of(self, kind: TriggerKind) -> int:
        return {
            TriggerKind.NVM_LOG_APPEND: self.nvm_log_appends,
            TriggerKind.PRE_COMMIT_MARK: self.commit_marks,
            TriggerKind.COMMIT_MARK: self.commit_marks,
            TriggerKind.MID_COMMIT: self.mid_commits,
            TriggerKind.ENGINE_STEP: self.engine_steps,
            TriggerKind.SIM_TIME: 0,
            TriggerKind.RECOVERY_REPLAY: self.recovery_replays,
        }[kind]


@dataclass
class PlanOutcome:
    """One executed plan: where it crashed and what the oracle said."""

    plan: FaultPlan
    verdict: OracleVerdict
    report: RecoveryReport
    #: Descriptions of the crash points that actually fired (a run-phase
    #: point with an ordinal past the event space never fires — the run
    #: completes and the campaign cuts power at the end instead).
    fired: List[str] = field(default_factory=list)
    crashes: int = 0

    @property
    def ok(self) -> bool:
        return self.verdict.ok


@dataclass
class CampaignResult:
    """A finished campaign, ready for reporting/export."""

    config: CampaignConfig
    counts: EventCounts
    outcomes: List[PlanOutcome]
    minimized: Optional[FaultPlan] = None
    minimizer_runs: int = 0

    @property
    def crash_points_tested(self) -> int:
        return len(self.outcomes)

    @property
    def recoveries_verified(self) -> int:
        return sum(1 for o in self.outcomes if o.ok)

    @property
    def failures(self) -> List[PlanOutcome]:
        return [o for o in self.outcomes if not o.ok]

    @property
    def replayed_lines(self) -> int:
        return sum(o.report.replayed_lines for o in self.outcomes)

    @property
    def discarded_records(self) -> int:
        return sum(o.report.discarded_records for o in self.outcomes)

    @property
    def ok(self) -> bool:
        return not self.failures

    def metrics(self) -> CampaignMetrics:
        return CampaignMetrics(
            workload=self.config.workload,
            crash_points_tested=self.crash_points_tested,
            recoveries_verified=self.recoveries_verified,
            failures=len(self.failures),
            replayed_lines=self.replayed_lines,
            discarded_records=self.discarded_records,
            minimized_plan_steps=(
                len(self.minimized) if self.minimized is not None else None
            ),
        )

    def to_figure(self) -> FigureResult:
        """Render per-trigger-kind coverage as a report/export table."""
        result = FigureResult(
            figure="faults",
            title=(
                f"Fault campaign: {self.config.workload} × "
                f"{self.crash_points_tested} crash points "
                f"(design={self.config.design}, seed={self.config.seed})"
            ),
            columns=["crash point", "plans", "fired", "verified", "failed"],
        )
        by_kind: Dict[str, List[PlanOutcome]] = {}
        for outcome in self.outcomes:
            key = (
                outcome.plan.steps[0].kind.value
                if outcome.plan.steps
                else "run_to_completion"
            )
            if len(outcome.plan) > 1:
                key += "+recovery"
            by_kind.setdefault(key, []).append(outcome)
        for key in sorted(by_kind):
            group = by_kind[key]
            result.add_row(
                key,
                len(group),
                sum(1 for o in group if o.fired),
                sum(1 for o in group if o.ok),
                sum(1 for o in group if not o.ok),
            )
        result.note(
            f"{self.recoveries_verified}/{self.crash_points_tested} recoveries "
            f"verified; {self.replayed_lines} lines replayed, "
            f"{self.discarded_records} uncommitted records discarded"
        )
        if self.failures:
            first = self.failures[0]
            result.note(f"first failure: plan [{first.plan.describe()}] — "
                        f"{first.verdict.describe()}")
        if self.minimized is not None:
            result.note(
                f"minimized reproducer ({len(self.minimized)} step(s), "
                f"{self.minimizer_runs} shrink runs): "
                f"[{self.minimized.describe()}]"
            )
        return result


# -- machine construction ----------------------------------------------------


def build_system(config: CampaignConfig):
    """A fresh machine + workload + armed oracle for one campaign run."""
    from ..runtime.system import System  # deferred: keeps import cycle out

    system = System(
        MachineConfig.scaled(1 / 64, cores=max(2, config.threads)),
        HTMConfig(design=config.design),
        seed=config.seed,
    )
    process = system.process(config.workload)
    params = WorkloadParams(
        threads=config.threads,
        txs_per_thread=config.txs_per_thread,
        ops_per_tx=config.ops_per_tx,
        value_bytes=config.value_bytes,
        keys=config.keys,
        initial_fill=config.initial_fill,
        kind=MemoryKind.NVM,
    )
    workload = WORKLOADS[config.workload](system, process, params)
    workload.spawn()  # runs setup (RawContext) and registers the threads
    oracle = CrashOracle(system)
    oracle.arm()  # baseline = post-setup NVM contents
    return system, workload, oracle


# -- plan execution ----------------------------------------------------------


def execute_plan(config: CampaignConfig, plan: FaultPlan) -> PlanOutcome:
    """Run one plan on a fresh machine; crash, recover, ask the oracle."""
    system, _workload, oracle = build_system(config)
    injector = FaultInjector(
        suppress_commit_marks=(config.inject_bug == "skip_commit_mark")
    )
    system.install_fault_injector(injector)

    fired: List[str] = []
    crashes = 0
    run_step = plan.run_step
    if run_step is not None:
        injector.arm(run_step)
    try:
        system.run()
        injector.disarm()  # the armed point never fired; run completed
    except PowerFailure as failure:
        fired.append(failure.description)
    system.crash()  # power is cut either way: at the plan's point or the end
    crashes += 1

    report: Optional[RecoveryReport] = None
    for step in plan.recovery_steps:
        injector.arm(step)
        try:
            report = system.recover()
            injector.disarm()
            break  # recovery finished before the point fired
        except PowerFailure as failure:
            fired.append(failure.description)
            system.crash()
            crashes += 1
    else:
        report = None
    if report is None:
        report = system.recover()  # final, uninterrupted recovery
    verdict = oracle.verify()
    return PlanOutcome(
        plan=plan, verdict=verdict, report=report, fired=fired, crashes=crashes
    )


# -- the probe ---------------------------------------------------------------


def probe_events(config: CampaignConfig) -> Tuple[EventCounts, PlanOutcome]:
    """Measure the event space with an uninjected run + final power cut."""
    system, _workload, oracle = build_system(config)
    injector = FaultInjector(
        suppress_commit_marks=(config.inject_bug == "skip_commit_mark")
    )
    system.install_fault_injector(injector)  # counting mode: never armed
    system.run()
    end_ns = system.elapsed_ns
    system.crash()
    report = system.recover()
    counts = EventCounts(
        nvm_log_appends=injector.counts[TriggerKind.NVM_LOG_APPEND],
        commit_marks=injector.counts[TriggerKind.PRE_COMMIT_MARK],
        mid_commits=injector.counts[TriggerKind.MID_COMMIT],
        engine_steps=injector.counts[TriggerKind.ENGINE_STEP],
        recovery_replays=injector.counts[TriggerKind.RECOVERY_REPLAY],
        end_ns=end_ns,
    )
    outcome = PlanOutcome(
        plan=FaultPlan(), verdict=oracle.verify(), report=report, crashes=1
    )
    return counts, outcome


# -- sampling ----------------------------------------------------------------


def sample_plans(
    rng: "random.Random", counts: EventCounts, crashes: int
) -> List[FaultPlan]:
    """Seeded crash points spread over the measured event space.

    Ordinals run up to slightly past the event count, so run-to-completion
    power cuts stay in the mix; roughly one plan in four stacks a
    crash-during-recovery step on top.
    """
    population = [kind for kind, weight in _SAMPLED_KINDS for _ in range(weight)]
    plans: List[FaultPlan] = []
    for _ in range(crashes):
        kind = rng.choice(population)
        if kind is TriggerKind.SIM_TIME:
            step = CrashPoint(
                TriggerKind.SIM_TIME,
                at_ns=rng.uniform(0.0, max(1.0, counts.end_ns)),
            )
        else:
            ceiling = max(1, counts.of(kind)) + 2  # +2: include "never fires"
            step = CrashPoint(kind, ordinal=rng.randint(1, ceiling))
        steps = (step,)
        if (
            counts.recovery_replays > 0
            and rng.randrange(_RECOVERY_STACK_RATE) == 0
        ):
            replay_at = rng.randint(1, max(1, counts.recovery_replays))
            steps += (CrashPoint(TriggerKind.RECOVERY_REPLAY, replay_at),)
        plans.append(FaultPlan(steps))
    return plans


# -- the campaign ------------------------------------------------------------


def run_campaign(config: CampaignConfig) -> CampaignResult:
    """Probe, sample, execute every plan, and shrink the first failure."""
    from .minimize import minimize_plan  # deferred: minimize imports campaign

    counts, probe_outcome = probe_events(config)
    rng = RngStreams(config.seed).stream("faults.plan_sampling")
    plans = sample_plans(rng, counts, config.crashes - 1)
    outcomes = [probe_outcome]  # the uninjected final power cut counts too
    for plan in plans:
        outcomes.append(execute_plan(config, plan))
    result = CampaignResult(config=config, counts=counts, outcomes=outcomes)
    if config.minimize_failures and result.failures:
        minimized = minimize_plan(config, result.failures[0].plan)
        result.minimized = minimized.plan
        result.minimizer_runs = minimized.runs
    return result
