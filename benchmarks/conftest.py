"""Shared configuration for the figure-regeneration benchmarks.

Each benchmark regenerates one table or figure of the paper.  By default the
*quick* matrix runs (reduced sweeps, suitable for CI); set ``REPRO_FULL=1``
to run the paper's full matrix.

The printed tables are the deliverable; the timing measured by
pytest-benchmark is the harness cost of regenerating the figure.
"""

from __future__ import annotations

import os

import pytest


@pytest.fixture(scope="session")
def quick() -> bool:
    return os.environ.get("REPRO_FULL", "") != "1"


@pytest.fixture
def show():
    """Print a FigureResult under the benchmark output."""

    def _show(result) -> None:
        print()
        print(result.pretty())

    return _show
