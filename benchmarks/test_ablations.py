"""Ablations of DESIGN.md's called-out design choices.

Not figures from the paper — these quantify the design decisions the paper
makes (or defers):

* flat vs banked signature organisation (the hardware-layout choice),
* Table II resolution vs oldest-wins timestamp ordering (the livelock
  mitigation the paper leaves to future work).
"""

from __future__ import annotations

from repro.harness.config import ExperimentSpec, consolidated, mixed_pmdk
from repro.harness.report import FigureResult
from repro.harness.runner import run_experiment
from repro.params import HTMConfig, HTMDesign, SignatureConfig
from repro.workloads import WorkloadParams

KB = 1 << 10


def _params(quick):
    return WorkloadParams(
        threads=4,
        txs_per_thread=4 if quick else 8,
        value_bytes=100 * KB,
        keys=256,
        initial_fill=64,
    )


def run_signature_design_ablation(quick: bool) -> FigureResult:
    result = FigureResult(
        "Ablation A",
        "Flat vs banked signature organisation (1k bits, UHTM opt)",
        ["organisation", "abort_rate", "fp_share", "throughput"],
    )
    for label, banked in (("flat", False), ("banked", True)):
        config = HTMConfig(
            design=HTMDesign.UHTM,
            signature=SignatureConfig(bits=1024, banked=banked),
            isolation=True,
        )
        spec = ExperimentSpec(
            name=f"ablation:sig:{label}",
            htm=config,
            benchmarks=mixed_pmdk(_params(quick)),
            scale=1 / 16,
            cores=16,
            membound_instances=2,
        )
        run = run_experiment(spec, label=label)
        result.add_row(
            label, run.abort_rate, run.false_positive_share, run.throughput
        )
    return result


def run_resolution_policy_ablation(quick: bool) -> FigureResult:
    result = FigureResult(
        "Ablation B",
        "Table II resolution vs oldest-wins timestamp ordering",
        ["policy", "abort_rate", "slow_paths", "throughput"],
    )
    for policy in ("table2", "oldest_wins"):
        config = HTMConfig(
            design=HTMDesign.UHTM,
            signature=SignatureConfig(bits=1024),
            isolation=True,
            resolution=policy,
        )
        spec = ExperimentSpec(
            name=f"ablation:policy:{policy}",
            htm=config,
            benchmarks=consolidated("btree", 4, _params(quick)),
            scale=1 / 16,
            cores=16,
            membound_instances=2,
        )
        run = run_experiment(spec, label=policy)
        result.add_row(
            policy, run.abort_rate, run.slow_path_executions, run.throughput
        )
    return result


def test_signature_design_ablation(benchmark, quick, show):
    result = benchmark.pedantic(
        lambda: run_signature_design_ablation(quick), rounds=1, iterations=1
    )
    show(result)
    rows = result.row_map()
    # Both organisations must make progress; banked may abort slightly more.
    assert rows["flat"][3] > 0 and rows["banked"][3] > 0


def test_resolution_policy_ablation(benchmark, quick, show):
    result = benchmark.pedantic(
        lambda: run_resolution_policy_ablation(quick), rounds=1, iterations=1
    )
    show(result)
    rows = result.row_map()
    # Oldest-wins guarantees progress without more serialisation than
    # Table II resolution under the same contention.
    assert rows["oldest_wins"][2] <= rows["table2"][2] + 8
    assert rows["oldest_wins"][3] > 0
