"""Hypothesis model-based tests: each structure vs a Python dict."""

from __future__ import annotations

import pytest
from hypothesis import given, settings, strategies as st

from repro import HTMConfig, MachineConfig, System
from repro.mem.address import MemoryKind
from repro.runtime.txapi import RawContext
from repro.workloads.btree import TxBTree
from repro.workloads.hashmap import TxHashMap
from repro.workloads.rbtree import TxRBTree
from repro.workloads.skiplist import TxSkipList


def make_env():
    system = System(MachineConfig.scaled(1 / 64, cores=2), HTMConfig())
    return system.heap, RawContext(system.controller)


ops = st.lists(
    st.tuples(
        st.sampled_from(["insert", "get", "delete"]),
        st.integers(min_value=0, max_value=60),
        st.integers(min_value=0, max_value=10_000),
    ),
    max_size=120,
)


@settings(max_examples=25, deadline=None)
@given(ops=ops)
def test_hashmap_matches_dict(ops):
    heap, ctx = make_env()
    table = TxHashMap.create(heap, ctx, MemoryKind.NVM, nbuckets=8)
    model = {}
    for op, key, value in ops:
        if op == "insert":
            assert table.insert(ctx, key, value) == (key not in model)
            model[key] = value
        elif op == "get":
            assert table.get(ctx, key) == model.get(key)
        else:
            assert table.delete(ctx, key) == (key in model)
            model.pop(key, None)
    assert sorted(table.keys(ctx)) == sorted(model)
    assert table.check_integrity(ctx)


@settings(max_examples=20, deadline=None)
@given(
    entries=st.dictionaries(
        st.integers(min_value=0, max_value=500),
        st.integers(min_value=0, max_value=10_000),
        max_size=80,
    )
)
def test_btree_matches_dict(entries):
    heap, ctx = make_env()
    tree = TxBTree.create(heap, ctx, MemoryKind.DRAM)
    for key, value in entries.items():
        tree.insert(ctx, key, value)
    for key, value in entries.items():
        assert tree.get(ctx, key) == value
    assert tree.keys(ctx) == sorted(entries)
    assert tree.check_integrity(ctx)


@settings(max_examples=20, deadline=None)
@given(
    entries=st.dictionaries(
        st.integers(min_value=0, max_value=500),
        st.integers(min_value=0, max_value=10_000),
        max_size=80,
    ),
    lo=st.integers(min_value=0, max_value=500),
    span=st.integers(min_value=0, max_value=100),
)
def test_btree_scan_matches_dict_range(entries, lo, span):
    heap, ctx = make_env()
    tree = TxBTree.create(heap, ctx, MemoryKind.DRAM)
    for key, value in entries.items():
        tree.insert(ctx, key, value)
    hi = lo + span
    expected = sorted(
        (k, v) for k, v in entries.items() if lo <= k <= hi
    )
    assert tree.scan(ctx, lo, hi) == expected


@settings(max_examples=20, deadline=None)
@given(
    entries=st.dictionaries(
        st.integers(min_value=0, max_value=500),
        st.integers(min_value=0, max_value=10_000),
        max_size=80,
    )
)
def test_rbtree_matches_dict(entries):
    heap, ctx = make_env()
    tree = TxRBTree.create(heap, ctx, MemoryKind.DRAM)
    for key, value in entries.items():
        tree.insert(ctx, key, value)
    for key, value in entries.items():
        assert tree.get(ctx, key) == value
    assert tree.keys(ctx) == sorted(entries)
    assert tree.check_integrity(ctx)


@settings(max_examples=20, deadline=None)
@given(
    entries=st.dictionaries(
        st.integers(min_value=0, max_value=500),
        st.integers(min_value=0, max_value=10_000),
        max_size=60,
    ),
    seed=st.integers(min_value=0, max_value=1000),
)
def test_skiplist_matches_dict(entries, seed):
    heap, ctx = make_env()
    slist = TxSkipList.create(heap, ctx, MemoryKind.NVM, seed=seed)
    for key, value in entries.items():
        slist.insert(ctx, key, value)
    for key, value in entries.items():
        assert slist.get(ctx, key) == value
    assert slist.keys(ctx) == sorted(entries)
    assert slist.check_integrity(ctx)
