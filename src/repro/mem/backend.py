"""Word-addressed backing stores for DRAM and NVM.

A :class:`BackingStore` holds the *globally visible* contents of one medium
as a sparse word-address → value map, and knows its read/write latencies.
Unwritten words read as zero, like zero-initialised physical memory.

The NVM store survives a simulated crash; the DRAM store is wiped.  Values
are opaque Python ints (the heap stores 64-bit words: keys, payload words,
and pointers encoded as addresses).
"""

from __future__ import annotations

from typing import Dict, Iterator, Tuple

from ..errors import AddressError
from ..params import LatencyConfig, WORD_SIZE
from .address import MemoryKind

#: Word-alignment mask, inlined on the load/store hot path (``word_of`` as a
#: function call was measurable at access frequency).
_WORD_MASK = ~(WORD_SIZE - 1)


class BackingStore:
    """The contents and timing of one physical memory medium."""

    def __init__(self, kind: MemoryKind, latency: LatencyConfig) -> None:
        self.kind = kind
        self._words: Dict[int, int] = {}
        # Plain attributes, not properties: read on every memory access.
        if kind is MemoryKind.DRAM:
            self.read_ns = latency.dram_ns
            self.write_ns = latency.dram_ns
        else:
            self.read_ns = latency.nvm_read_ns
            self.write_ns = latency.nvm_write_ns

    def load(self, addr: int) -> int:
        """Read the 64-bit word containing ``addr``."""
        return self._words.get(addr & _WORD_MASK, 0)

    def store(self, addr: int, value: int) -> None:
        """Write the 64-bit word containing ``addr``."""
        if not isinstance(value, int):
            raise AddressError(f"stores take int values, got {type(value).__name__}")
        self._words[addr & _WORD_MASK] = value

    def rmw(self, addr: int, delta: int) -> None:
        """Fused read-modify-write of one word: load + store in one call.

        Exactly ``store(addr, load(addr) + delta)``; the epoch dispatcher's
        sweep path issues it per address, paying one method call and one
        mask instead of two of each (the value is an int by construction,
        so the store-side type check is vacuous).
        """
        key = addr & _WORD_MASK
        words = self._words
        words[key] = words.get(key, 0) + delta

    def store_line(self, words: Dict[int, int]) -> None:
        """Bulk store of already word-aligned, validated (addr, value) pairs.

        The DRAM-cache drain path writes whole line images whose keys came
        through :meth:`store`-validated write buffers, so the per-word
        alignment and type checks would be pure overhead.
        """
        self._words.update(words)

    def words(self) -> Iterator[Tuple[int, int]]:
        """Iterate over (word address, value) pairs that were written."""
        return iter(self._words.items())

    def word_count(self) -> int:
        return len(self._words)

    def wipe(self) -> None:
        """Lose all contents (power failure on a volatile medium)."""
        self._words.clear()

    def clone_contents(self) -> Dict[int, int]:
        """Snapshot contents (used by recovery tests as ground truth)."""
        return dict(self._words)
