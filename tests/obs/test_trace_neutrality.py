"""Trace neutrality: attaching a tracer must not change the simulation.

The tracing subsystem's headline contract (docs/OBSERVABILITY.md): every
hook site is an ``is not None`` test plus an event append, so a traced run
and an untraced run of the same spec execute the exact same simulation —
identical metric dicts, byte-identical exported JSON.  The differential
below is the proof, and it extends to the process pool: ``trace_grid`` with
1 and 2 workers returns identical results *and* identical event streams.
"""

from __future__ import annotations

import json

from repro.harness.metrics import run_result_to_dict
from repro.harness.parallel import GridPoint
from repro.harness.runner import run_experiment
from repro.obs.capture import trace_experiment, trace_grid


class TestTraceNeutrality:
    def test_traced_run_metrics_bit_identical_to_untraced(self, tiny_spec):
        plain = run_experiment(tiny_spec)
        traced = trace_experiment(tiny_spec)
        assert run_result_to_dict(traced.result) == run_result_to_dict(plain)
        assert traced.events, "tracer captured nothing — hooks are dead"

    def test_traced_run_neutral_under_contention(self, contended_spec):
        plain = run_experiment(contended_spec)
        traced = trace_experiment(contended_spec)
        assert plain.aborts > 0, "spec not contended enough to test"
        assert run_result_to_dict(traced.result) == run_result_to_dict(plain)

    def test_exported_json_byte_identical(self, tiny_spec):
        plain = run_experiment(tiny_spec)
        traced = trace_experiment(tiny_spec)
        a = json.dumps(run_result_to_dict(plain), sort_keys=True)
        b = json.dumps(run_result_to_dict(traced.result), sort_keys=True)
        assert a.encode("utf-8") == b.encode("utf-8")

    def test_ring_overflow_is_still_neutral(self, tiny_spec):
        """Dropping events must only lose observability, never change runs."""
        plain = run_experiment(tiny_spec)
        traced = trace_experiment(tiny_spec, capacity=16)
        assert traced.dropped > 0
        assert len(traced.events) == 16
        assert run_result_to_dict(traced.result) == run_result_to_dict(plain)


class TestTraceGridParallel:
    def test_results_and_events_identical_across_job_counts(
        self, tiny_spec, contended_spec
    ):
        points = [
            GridPoint(spec=tiny_spec),
            GridPoint(spec=contended_spec),
            GridPoint(spec=tiny_spec, label="again"),
        ]
        serial = trace_grid(points, jobs=1)
        pooled = trace_grid(points, jobs=2)
        assert [r.label for r in serial] == [r.label for r in pooled]
        for a, b in zip(serial, pooled):
            assert run_result_to_dict(a.result) == run_result_to_dict(b.result)
            assert a.events == b.events  # the stream survives pickling intact
            assert a.dropped == b.dropped


class TestTraceNeutralityPerEngine:
    """The tracer sees the same simulation whichever kernel engine runs it.

    Scalar and vectorized engines are bit-identical by contract, so the
    traced event stream — not just the metrics — must match across engines
    too.  This extends the neutrality proof from "tracing doesn't change
    the run" to "tracing can't even tell the engines apart".
    """

    def _trace(self, spec, engine):
        import dataclasses

        return trace_experiment(dataclasses.replace(spec, engine=engine))

    def test_events_and_metrics_identical_across_engines(self, tiny_spec):
        import pytest

        pytest.importorskip("numpy")
        scalar = self._trace(tiny_spec, "scalar")
        vectorized = self._trace(tiny_spec, "vectorized")
        assert run_result_to_dict(scalar.result) == run_result_to_dict(
            vectorized.result
        )
        assert scalar.events == vectorized.events
        assert scalar.dropped == vectorized.dropped

    def test_contended_events_identical_across_engines(self, contended_spec):
        import pytest

        pytest.importorskip("numpy")
        scalar = self._trace(contended_spec, "scalar")
        vectorized = self._trace(contended_spec, "vectorized")
        assert scalar.result.aborts > 0, "spec not contended enough to test"
        assert scalar.events == vectorized.events
