"""SARIF 2.1.0 export for ``python -m repro lint --sarif``.

SARIF is the interchange format CI code-scanning UIs ingest; emitting it
lets the lint job upload one artifact that renders findings inline on the
PR diff.  Only the small core of the schema is produced: one run, one
driver, a rule table from the registry, and one result per finding with a
physical location.  Columns are 1-based in SARIF (the analyzer's are
0-based AST offsets).
"""

from __future__ import annotations

import json
from typing import Dict, List

from .core import AnalysisReport, registered_checkers

SARIF_VERSION = "2.1.0"
SARIF_SCHEMA = (
    "https://raw.githubusercontent.com/oasis-tcs/sarif-spec/master/"
    "Schemata/sarif-schema-2.1.0.json"
)

#: Finding severity -> SARIF result level.
_LEVELS = {"error": "error", "warning": "warning"}


def sarif_payload(report: AnalysisReport) -> Dict[str, object]:
    checkers = registered_checkers()
    rules: List[Dict[str, object]] = []
    rule_index: Dict[str, int] = {}
    for rule_id in report.rules_run:
        checker = checkers.get(rule_id)
        rule_index[rule_id] = len(rules)
        rules.append(
            {
                "id": rule_id,
                "shortDescription": {
                    "text": checker.description if checker else rule_id
                },
            }
        )
    results: List[Dict[str, object]] = []
    for finding in report.findings:
        result: Dict[str, object] = {
            "ruleId": finding.rule,
            "level": _LEVELS.get(finding.severity, "error"),
            "message": {"text": finding.message},
            "locations": [
                {
                    "physicalLocation": {
                        "artifactLocation": {"uri": finding.path},
                        "region": {
                            "startLine": finding.line,
                            "startColumn": finding.col + 1,
                        },
                    }
                }
            ],
        }
        if finding.rule in rule_index:
            result["ruleIndex"] = rule_index[finding.rule]
        results.append(result)
    return {
        "$schema": SARIF_SCHEMA,
        "version": SARIF_VERSION,
        "runs": [
            {
                "tool": {
                    "driver": {
                        "name": "repro-lint",
                        "informationUri": "docs/ANALYSIS.md",
                        "rules": rules,
                    }
                },
                "results": results,
            }
        ],
    }


def render_sarif(report: AnalysisReport) -> str:
    return json.dumps(sarif_payload(report), indent=2, sort_keys=True)
