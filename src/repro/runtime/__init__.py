"""The software runtime over the simulated hardware.

This package is what workload code programs against:

* :class:`TxHeap` — a word-addressable heap spanning the DRAM and NVM heap
  regions (objects are line-aligned arrays of 64-bit words).
* :class:`TxContext` / :class:`SlowPathContext` / :class:`DirectContext` —
  one memory-access interface with three implementations: speculative
  (inside a hardware transaction), serialised-but-durable (the Algorithm 1
  slow path), and plain non-transactional (co-runners).
* :class:`ThreadApi` — per-thread façade whose ``run_transaction``
  implements Algorithm 1's retry/fallback protocol.
* :class:`System` — assembles a whole machine: engine, memory controller,
  cache hierarchy, HTM design, processes, and threads.
"""

from .heap import TxHeap
from .process import SimProcess
from .system import System
from .thread import ThreadApi
from .txapi import (
    DirectContext,
    MemoryContext,
    RawContext,
    SlowPathContext,
    TxContext,
)

__all__ = [
    "TxHeap",
    "SimProcess",
    "System",
    "ThreadApi",
    "DirectContext",
    "MemoryContext",
    "RawContext",
    "SlowPathContext",
    "TxContext",
]
