"""Signature isolation: conflict domains (Section IV-D, "Optimization").

"The conflict domain denotes a group of transactions that share the address
space and, therefore, potentially conflict with each other."  The paper
generates a transaction-group ID per process in the (modified) pthread
library; we attach a domain ID to each simulated process.

When isolation is enabled, an LLC miss is checked only against signatures
registered in the *same* domain, eliminating the false conflicts between
unrelated consolidated applications that otherwise raise the abort rate by
17 percentage points.
"""

from __future__ import annotations

from typing import Dict, Iterator, List, Optional, Set, Tuple

from .addresssig import SignaturePair

#: Domain ID used for every transaction when isolation is disabled.
GLOBAL_DOMAIN = 0

#: Shared empty result for :meth:`ConflictDomainRegistry.members` misses.
_NO_MEMBERS: Dict[int, SignaturePair] = {}


class ConflictDomainRegistry:
    """Tracks which active transactions' signatures live in which domain."""

    def __init__(self, isolation_enabled: bool) -> None:
        self.isolation_enabled = isolation_enabled
        self._domains: Dict[int, Dict[int, SignaturePair]] = {}
        self._domain_of_tx: Dict[int, int] = {}

    def effective_domain(self, domain_id: int) -> int:
        """The domain a transaction lands in under the current policy."""
        return domain_id if self.isolation_enabled else GLOBAL_DOMAIN

    def register(
        self, tx_id: int, domain_id: int, signature: SignaturePair
    ) -> None:
        domain = self.effective_domain(domain_id)
        self._domains.setdefault(domain, {})[tx_id] = signature
        self._domain_of_tx[tx_id] = domain

    def unregister(self, tx_id: int) -> None:
        domain = self._domain_of_tx.pop(tx_id, None)
        if domain is None:
            return
        members = self._domains.get(domain)
        if members is not None:
            members.pop(tx_id, None)
            if not members:
                del self._domains[domain]

    def members(self, domain_id: int) -> Dict[int, SignaturePair]:
        """The registered signatures an access from ``domain_id`` can hit.

        Hot-path variant of :meth:`signatures_to_check`: returns the
        internal per-domain dict (insertion-ordered, never to be mutated by
        callers) so the probe loop pays no generator machinery.  The caller
        is responsible for skipping its own transaction.
        """
        members = self._domains.get(self.effective_domain(domain_id))
        return members if members is not None else _NO_MEMBERS

    def signatures_to_check(
        self, domain_id: int, exclude_tx: Optional[int] = None
    ) -> Iterator[Tuple[int, SignaturePair]]:
        """Signatures an access from ``domain_id`` must be checked against.

        With isolation on, only the requester's domain; with it off, every
        registered signature (one flat domain).
        """
        domain = self.effective_domain(domain_id)
        members = self._domains.get(domain)
        if not members:
            return
        for tx_id, signature in members.items():
            if tx_id == exclude_tx:
                continue
            yield tx_id, signature

    def active_tx_ids(self) -> Set[int]:
        return set(self._domain_of_tx)

    def domains(self) -> List[int]:
        return sorted(self._domains)

    def __len__(self) -> int:
        return len(self._domain_of_tx)
