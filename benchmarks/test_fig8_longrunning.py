"""Figure 8: Echo with long-running read-only transactions (Section VI-B).

Paper shape: rare multi-megabyte read-only scans drastically degrade the
LLC-bounded design (every scan capacity-aborts and serialises the process
behind the fallback lock) while UHTM sustains much more of its baseline
throughput.  The paper reports 4.2x at 0.5%; our scaled-down reproduction
shows the same ordering at a smaller magnitude (see EXPERIMENTS.md).
"""

from __future__ import annotations

import pytest

from repro.harness.figures import fig8, fig8_grid


def test_fig8(benchmark, quick, jobs, show):
    result = benchmark.pedantic(
        lambda: fig8(quick=quick, jobs=jobs), rounds=1, iterations=1
    )
    show(result)
    rows = result.rows
    # Row 0 is the 0% baseline (1.0 / 1.0 by construction).
    assert rows[0][1] == 1.0 and rows[0][2] == 1.0
    for pct, bounded, uhtm, speedup in rows[1:]:
        # Long transactions hurt the bounded design more.
        assert speedup > 1.0, f"at {pct}%: UHTM must beat LLC-Bounded"
    # Degradation of the bounded design grows with the long-tx share.
    bounded_series = [row[1] for row in rows]
    assert bounded_series[-1] < bounded_series[0]


@pytest.mark.smoke
def test_fig8_smoke(smoke_point):
    """One tiny Fig. 8 point must still build and simulate end-to-end."""
    result = smoke_point(fig8_grid)
    assert result.committed_ops > 0
    assert result.verified
