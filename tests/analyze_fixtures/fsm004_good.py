"""GOOD fixture: a tiny but total, reachable, SWMR-preserving protocol."""

import enum


class MesiState(enum.Enum):
    INVALID = 0
    SHARED = 1
    MODIFIED = 2


class CoherenceRequest(enum.Enum):
    GET_S = "GetS"
    GET_M = "GetM"


def next_state_for_requester(request, other_copies):
    if request is CoherenceRequest.GET_S:
        return MesiState.SHARED
    return MesiState.MODIFIED


def next_state_for_holder(request, current):
    if current is MesiState.INVALID:
        return MesiState.INVALID
    if request is CoherenceRequest.GET_M:
        return MesiState.INVALID
    return MesiState.SHARED


def check_swmr(states):
    writers = sum(1 for s in states if s is MesiState.MODIFIED)
    readers = sum(1 for s in states if s is MesiState.SHARED)
    return writers <= 1 and (writers == 0 or readers == 0)
