"""Smoke tier: the tracing pipeline must run end-to-end in seconds.

One tiny Fig. 7 point is traced, decomposed, and exported; the forensic
abort counts must equal the run's own ``tx.aborts.*`` counters and the
Chrome document must have the trace_event structure.  This is the CI
guard for ``python -m repro trace``.
"""

from __future__ import annotations

import pytest

from repro.harness.figures import fig7_grid
from repro.obs import analyze_events, chrome_trace
from repro.obs.capture import trace_grid


@pytest.mark.smoke
def test_trace_smoke():
    points = fig7_grid(quick=True, scale=1 / 64, seed=2020)[:1]
    (run,) = trace_grid(points)
    assert run.dropped == 0
    assert run.events

    report = analyze_events(run.events)
    assert report.begins == run.result.begins
    assert report.commits == run.result.commits
    assert report.reason_counts == run.result.aborts_by_reason

    doc = chrome_trace([(run.label, run.events)])
    assert doc["displayTimeUnit"] == "ns"
    spans = [e for e in doc["traceEvents"] if e["ph"] == "X"]
    assert len(spans) == run.result.begins + run.result.slow_path_executions
