"""repro.analyze — static analysis for the determinism/layering contracts.

See ``docs/ANALYSIS.md`` for the rule catalogue and ``python -m repro lint``
for the CLI.
"""

from .core import (
    AnalysisReport,
    Checker,
    Finding,
    Project,
    SourceFile,
    register,
    registered_checkers,
    render_json,
    render_text,
    run_analysis,
)

__all__ = [
    "AnalysisReport",
    "Checker",
    "Finding",
    "Project",
    "SourceFile",
    "register",
    "registered_checkers",
    "render_json",
    "render_text",
    "run_analysis",
]
