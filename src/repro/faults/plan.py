"""Fault plans: *where* a campaign cuts the power.

A :class:`FaultPlan` is a small, serialisable program of crash points.  The
first step (if any) fires while the workload runs; every later step fires
during a recovery attempt, modelling a power failure that strikes recovery
itself.  Plans are value objects — hashable, comparable, JSON round-trippable
— so a failing campaign can print one line that reproduces the failure and
the minimizer can treat shrinking as a search over plain data.

Crash points name architectural events, not wall-clock accidents:

========================  =====================================================
``nvm_log_append``        after the Nth redo record lands in the NVM log (the
                          torn-commit window between a transaction's data
                          records and its commit mark)
``pre_commit_mark``       just before the Nth durable commit mark would be
                          written (all data logged, commit not yet final)
``commit_mark``           just after the Nth durable commit mark (committed,
                          but nothing published to the DRAM cache yet)
``mid_commit``            between the NVM and DRAM phases of the Nth commit
``engine_step``           before the Nth simulated thread step
``sim_time``              at the first step whose clock reaches ``at_ns``
``recovery_replay``       after the Nth replayed line of a recovery attempt
========================  =====================================================
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Any, Dict, Tuple

from ..errors import ConfigError


class TriggerKind(enum.Enum):
    NVM_LOG_APPEND = "nvm_log_append"
    PRE_COMMIT_MARK = "pre_commit_mark"
    COMMIT_MARK = "commit_mark"
    MID_COMMIT = "mid_commit"
    ENGINE_STEP = "engine_step"
    SIM_TIME = "sim_time"
    RECOVERY_REPLAY = "recovery_replay"


#: Trigger kinds that fire while the workload runs (every kind except the
#: recovery-phase one).
RUN_KINDS = tuple(k for k in TriggerKind if k is not TriggerKind.RECOVERY_REPLAY)


@dataclass(frozen=True)
class CrashPoint:
    """One crash trigger: the Nth occurrence of an architectural event."""

    kind: TriggerKind
    #: Fire on the Nth event of this kind (1-based).  Ignored for
    #: ``SIM_TIME``, which fires on the clock instead.
    ordinal: int = 1
    #: ``SIM_TIME`` only: crash at the first step at or past this time.
    at_ns: float = 0.0

    def __post_init__(self) -> None:
        if self.kind is TriggerKind.SIM_TIME:
            if self.at_ns < 0:
                raise ConfigError("sim_time crash points need at_ns >= 0")
        elif self.ordinal < 1:
            raise ConfigError(f"crash-point ordinal must be >= 1, got {self.ordinal}")

    @property
    def in_recovery(self) -> bool:
        return self.kind is TriggerKind.RECOVERY_REPLAY

    def describe(self) -> str:
        if self.kind is TriggerKind.SIM_TIME:
            return f"at t={self.at_ns:g}ns"
        return f"after {self.kind.value} #{self.ordinal}"

    def to_dict(self) -> Dict[str, Any]:
        payload: Dict[str, Any] = {"kind": self.kind.value}
        if self.kind is TriggerKind.SIM_TIME:
            payload["at_ns"] = self.at_ns
        else:
            payload["ordinal"] = self.ordinal
        return payload

    @classmethod
    def from_dict(cls, payload: Dict[str, Any]) -> "CrashPoint":
        return cls(
            kind=TriggerKind(payload["kind"]),
            ordinal=int(payload.get("ordinal", 1)),
            at_ns=float(payload.get("at_ns", 0.0)),
        )


@dataclass(frozen=True)
class FaultPlan:
    """An ordered program of crash points for one campaign run.

    Grammar: at most one run-phase step, and it must come first; every
    subsequent step is a ``recovery_replay`` point, crashing successive
    recovery attempts.  (After a run-phase crash the workload's generators
    are dead — only recovery can be interrupted again.)
    """

    steps: Tuple[CrashPoint, ...] = field(default_factory=tuple)

    def __post_init__(self) -> None:
        for index, step in enumerate(self.steps):
            if index > 0 and not step.in_recovery:
                raise ConfigError(
                    "only the first plan step may be a run-phase crash point"
                )

    def __len__(self) -> int:
        return len(self.steps)

    @property
    def run_step(self) -> CrashPoint | None:
        if self.steps and not self.steps[0].in_recovery:
            return self.steps[0]
        return None

    @property
    def recovery_steps(self) -> Tuple[CrashPoint, ...]:
        skip = 1 if self.run_step is not None else 0
        return self.steps[skip:]

    def describe(self) -> str:
        if not self.steps:
            return "run to completion, then cut power"
        return " ; then ".join(s.describe() for s in self.steps)

    def to_dict(self) -> Dict[str, Any]:
        return {"steps": [s.to_dict() for s in self.steps]}

    @classmethod
    def from_dict(cls, payload: Dict[str, Any]) -> "FaultPlan":
        return cls(
            steps=tuple(CrashPoint.from_dict(p) for p in payload.get("steps", ()))
        )


# -- convenience constructors ------------------------------------------------


def after_nvm_append(n: int) -> FaultPlan:
    return FaultPlan((CrashPoint(TriggerKind.NVM_LOG_APPEND, n),))


def before_commit_mark(n: int) -> FaultPlan:
    return FaultPlan((CrashPoint(TriggerKind.PRE_COMMIT_MARK, n),))


def after_commit_mark(n: int) -> FaultPlan:
    return FaultPlan((CrashPoint(TriggerKind.COMMIT_MARK, n),))


def mid_commit(n: int) -> FaultPlan:
    return FaultPlan((CrashPoint(TriggerKind.MID_COMMIT, n),))


def at_step(n: int) -> FaultPlan:
    return FaultPlan((CrashPoint(TriggerKind.ENGINE_STEP, n),))


def at_time(ns: float) -> FaultPlan:
    return FaultPlan((CrashPoint(TriggerKind.SIM_TIME, at_ns=ns),))


def during_recovery(n: int, after: FaultPlan | None = None) -> FaultPlan:
    """Crash after the Nth replayed line, optionally stacked on ``after``."""
    base = after.steps if after is not None else ()
    return FaultPlan(base + (CrashPoint(TriggerKind.RECOVERY_REPLAY, n),))
