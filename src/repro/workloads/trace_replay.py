"""Replay a captured memory trace as a workload.

Trace-driven simulation decouples workload generation from the machine under
test: capture once (``System(capture_trace=True)``), then replay the same
committed transaction streams under any HTM design, cache scale, or latency
configuration — the standard methodology for architecture studies and the
natural way to feed this simulator traces derived from real applications.

Replay allocates one arena per memory kind sized to the trace's offsets and
issues each transaction through the normal Algorithm 1 retry loop, so
conflict detection, logging, and fallback behave exactly as for native
workloads.
"""

from __future__ import annotations

from typing import Callable, Generator, List

from ..mem.address import MemoryKind
from ..sim.tracefile import MemoryTrace
from .base import Workload, WorkloadParams

#: Operations issued between scheduling yields inside a replayed tx.
_OP_CHUNK = 16


class TraceReplayWorkload(Workload):
    """Drives one captured :class:`MemoryTrace` through the system."""

    name = "trace_replay"

    def __init__(
        self,
        system,
        process,
        params: WorkloadParams,
        trace: MemoryTrace,
    ) -> None:
        super().__init__(system, process, params)
        self.trace = trace
        self._arena = {}
        self.replayed_txs = 0

    def setup(self) -> None:
        for kind in (MemoryKind.DRAM, MemoryKind.NVM):
            size = self.trace.arena_bytes(kind)
            self._arena[kind] = (
                self.system.heap.alloc(max(64, size), kind) if size else 0
            )

    def resolve(self, kind: MemoryKind, offset: int) -> int:
        return self._arena[kind] + offset

    def thread_bodies(self) -> List[Callable]:
        return [
            self._make_body(thread_trace)
            for thread_trace in self.trace.threads
        ]

    def _make_body(self, thread_trace) -> Callable:
        def body(api) -> Generator[None, None, None]:
            for traced_tx in thread_trace.txs:
                ops = traced_tx.ops

                def work(tx, ops=ops):
                    for index, op in enumerate(ops):
                        addr = self.resolve(op.kind, op.offset)
                        if op.is_write:
                            tx.write_word(addr, op.offset)
                        else:
                            tx.read_word(addr)
                        if index % _OP_CHUNK == _OP_CHUNK - 1:
                            yield

                yield from api.run_transaction(work, ops=1)
                self.replayed_txs += 1

        return body

    def verify(self) -> bool:
        return self.replayed_txs == self.trace.total_txs()
