"""GOOD fixture: the determinism-clean spellings of the same patterns."""

from typing import Dict, Set


def iterate(active: Set[int], table: Dict[int, int]):
    out = []
    for tx_id in sorted(active):
        out.append(tx_id)
    for key, value in table.items():
        out.append(key + value)
    total = sum(x for x in active)
    hottest = max(active)
    return out, total, hottest
