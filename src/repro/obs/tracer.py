"""The ring-buffer tracer and the hook-point wiring.

A :class:`Tracer` is a bounded deque of :class:`~repro.obs.events.TraceEvent`
records: memory use is capped at ``capacity`` events, the oldest events are
dropped first (and counted), and emission is a constant-time append.

When no tracer is attached every hook site is a single ``is not None``
attribute test — the disabled cost the trace-neutrality test keeps honest.
Hook sites never import this package; they hold a duck-typed ``tracer``
attribute that :func:`attach_tracer` assigns, keeping the layer DAG
pointing strictly downward.
"""

from __future__ import annotations

from collections import deque
from typing import Deque, List, Optional

from .events import TraceEvent

#: Default ring capacity: bounded memory even for long runs (a few hundred
#: MB worst case), sized so every quick-matrix grid point the CLI traces
#: fits without drops — ``--report``'s exact cross-check needs a whole run.
DEFAULT_CAPACITY = 1 << 20


class Tracer:
    """Receives typed events from the simulator's hook points."""

    def __init__(self, capacity: int = DEFAULT_CAPACITY) -> None:
        if capacity < 1:
            raise ValueError("tracer capacity must be >= 1")
        self.capacity = capacity
        self._events: Deque[TraceEvent] = deque(maxlen=capacity)
        #: Events evicted from the ring because it was full.
        self.dropped = 0
        self._last_ts_ns = 0.0

    def emit(
        self,
        kind: str,
        ts_ns: Optional[float] = None,
        tx_id: Optional[int] = None,
        thread_id: Optional[int] = None,
        **data: object,
    ) -> None:
        """Record one event.

        ``ts_ns=None`` means "the emitter does not track simulated time"
        (memory controller, hardware logs); the event is stamped with the
        last explicitly-stamped time, which the HTM-level caller set just
        before reaching the timeless component.
        """
        if ts_ns is None:
            ts_ns = self._last_ts_ns
        else:
            self._last_ts_ns = ts_ns
        if len(self._events) == self.capacity:
            self.dropped += 1
        self._events.append(
            TraceEvent(kind, ts_ns, tx_id, thread_id, tuple(sorted(data.items())))
        )

    def __len__(self) -> int:
        return len(self._events)

    def events(self) -> List[TraceEvent]:
        """The buffered events, oldest first (a copy)."""
        return list(self._events)

    def clear(self) -> None:
        self._events.clear()
        self.dropped = 0
        self._last_ts_ns = 0.0


def attach_tracer(system, tracer: Tracer) -> Tracer:
    """Arm every hook point of a built :class:`~repro.runtime.system.System`.

    Purely an observer: assigning the ``tracer`` attributes changes no
    simulation behaviour, which is why a traced run's metrics are
    bit-identical to an untraced run's.
    """
    system.htm.tracer = tracer
    system.engine.tracer = tracer
    system.hierarchy.tracer = tracer
    system.controller.tracer = tracer
    system.controller.dram_log.tracer = tracer
    system.controller.nvm_log.tracer = tracer
    return tracer


def detach_tracer(system) -> None:
    """Disarm every hook point (events stop flowing immediately)."""
    system.htm.tracer = None
    system.engine.tracer = None
    system.hierarchy.tracer = None
    system.controller.tracer = None
    system.controller.dram_log.tracer = None
    system.controller.nvm_log.tracer = None
