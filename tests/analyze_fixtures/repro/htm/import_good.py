"""GOOD fixture: htm/ importing downward, as the DAG allows."""

from repro.cache.hierarchy import CacheHierarchy
from repro.mem.controller import MemoryController


def wire(controller: MemoryController, hierarchy: CacheHierarchy):
    return controller, hierarchy
