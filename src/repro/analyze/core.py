"""The checker framework behind ``python -m repro lint``.

The simulator's headline guarantee — byte-identical replays under one seed —
rests on invariants that are easy to break silently: a stray ``import
random``, a cache line mutated behind the controller's back, an unguarded
fault hook, an incomplete coherence transition.  :mod:`repro.analyze` checks
those invariants at lint time, before a fault campaign has to find them
dynamically.

Structure:

* a :class:`Checker` registry (one checker per rule id),
* :class:`SourceFile` — parsed source with parent links and suppressions,
* :class:`Project` — the file set plus cross-file type hints,
* text/JSON reporters and an :func:`run_analysis` entry point.

Suppressions are in-file comments::

    value = random.random()  # repro: allow[DET001]   (this line only)
    # repro: allow-file[LAY002]                       (whole file)

The CLI's ``--fix-suppress`` appends the line form to every finding, but the
intended workflow is to *fix* findings; suppressions are for the rare
sanctioned exception and are themselves visible in review.
"""

from __future__ import annotations

import ast
import json
import re
from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, Iterable, List, Optional, Sequence, Set, Tuple

#: Packages whose behaviour feeds figure output; the strictest rules apply.
SIM_CRITICAL_PACKAGES = frozenset(
    {"sim", "htm", "cache", "mem", "signatures", "workloads", "kernels"}
)

#: Every package of the repro tree (used to infer a file's logical package
#: when it is not under ``repro/`` itself, e.g. test fixtures).
KNOWN_PACKAGES = frozenset(
    {
        "sim",
        "htm",
        "cache",
        "mem",
        "signatures",
        "workloads",
        "kernels",
        "harness",
        "faults",
        "obs",
        "runtime",
        "serve",
        "traffic",
        "analyze",
    }
)

_SUPPRESS_LINE = re.compile(r"#\s*repro:\s*allow\[([A-Z]+\d+(?:\s*,\s*[A-Z]+\d+)*)\]")
_SUPPRESS_FILE = re.compile(
    r"#\s*repro:\s*allow-file\[([A-Z]+\d+(?:\s*,\s*[A-Z]+\d+)*)\]"
)


#: Finding severities, most severe first.  ``error`` findings are protocol
#: violations; ``warning`` findings are blanket-net heuristics (e.g.
#: ATOM005's non-atomic-write catch-all) a reviewer should look at.
SEVERITIES = ("error", "warning")


@dataclass(frozen=True)
class Finding:
    """One rule violation at one source location."""

    rule: str
    path: str
    line: int
    col: int
    message: str
    severity: str = "error"

    def location(self) -> str:
        return f"{self.path}:{self.line}:{self.col}"

    def to_dict(self) -> Dict[str, object]:
        return {
            "rule": self.rule,
            "path": self.path,
            "line": self.line,
            "col": self.col,
            "message": self.message,
            "severity": self.severity,
        }


def _split_rules(spec: str) -> List[str]:
    return [part.strip() for part in spec.split(",") if part.strip()]


class SourceFile:
    """One parsed source file plus its suppression tables."""

    def __init__(self, path: Path, text: str) -> None:
        self.path = path
        self.text = text
        self.lines = text.splitlines()
        self.tree = ast.parse(text, filename=str(path))
        attach_parents(self.tree)
        self.line_suppressions: Dict[int, Set[str]] = {}
        self.file_suppressions: Set[str] = set()
        for lineno, line in enumerate(self.lines, start=1):
            match = _SUPPRESS_FILE.search(line)
            if match:
                self.file_suppressions.update(_split_rules(match.group(1)))
                continue
            match = _SUPPRESS_LINE.search(line)
            if match:
                self.line_suppressions.setdefault(lineno, set()).update(
                    _split_rules(match.group(1))
                )

    @property
    def package(self) -> Optional[str]:
        """The file's logical repro package.

        Inside the tree this is the path segment after ``repro/`` (``None``
        for top-level modules like ``__main__.py``).  Outside the tree —
        lint fixtures, scratch files — the last path segment matching a
        known package name is used, so a fixture under
        ``analyze_fixtures/htm/`` is checked as if it lived in ``htm/``.
        """
        parts = self.path.parts
        if "repro" in parts:
            index = len(parts) - 1 - parts[::-1].index("repro")
            rest = parts[index + 1 : -1]
            return rest[0] if rest else None
        for part in reversed(parts[:-1]):
            if part in KNOWN_PACKAGES:
                return part
        return None

    @property
    def sim_critical(self) -> bool:
        """Strict determinism rules apply: sim packages and foreign files
        (fixtures) alike; only the non-critical repro packages are exempt."""
        package = self.package
        if "repro" in self.path.parts:
            return package in SIM_CRITICAL_PACKAGES
        return True

    def suppressed(self, rule: str, line: int) -> bool:
        if rule in self.file_suppressions:
            return True
        return rule in self.line_suppressions.get(line, ())


@dataclass
class Project:
    """The analysed file set plus cross-file type hints for checkers."""

    files: List[SourceFile]
    #: Attribute names annotated as set-typed anywhere in the project
    #: (class fields and ``self.x: Set[...]`` assignments).
    set_typed_attrs: Set[str] = field(default_factory=set)
    #: Function/method names whose return annotation is set-typed.
    set_returning_callables: Set[str] = field(default_factory=set)

    @classmethod
    def load(cls, paths: Sequence[Path]) -> Tuple["Project", List[Finding]]:
        """Parse every ``.py`` file under ``paths``; syntax errors become
        PARSE findings rather than crashing the run."""
        errors: List[Finding] = []
        files: List[SourceFile] = []
        for path in _collect_py_files(paths):
            text = path.read_text(encoding="utf-8")
            try:
                files.append(SourceFile(path, text))
            except SyntaxError as error:
                errors.append(
                    Finding(
                        rule="PARSE",
                        path=str(path),
                        line=error.lineno or 1,
                        col=error.offset or 0,
                        message=f"syntax error: {error.msg}",
                    )
                )
        project = cls(files=files)
        project._index_set_types()
        return project, errors

    def _index_set_types(self) -> None:
        for source in self.files:
            for node in ast.walk(source.tree):
                if isinstance(node, ast.AnnAssign) and _is_set_annotation(
                    node.annotation
                ):
                    target = node.target
                    if isinstance(target, ast.Name):
                        # Class-body field (dataclass or plain).
                        if isinstance(_parent(target, 2), ast.ClassDef):
                            self.set_typed_attrs.add(target.id)
                    elif isinstance(target, ast.Attribute):
                        self.set_typed_attrs.add(target.attr)
                elif isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
                    if node.returns is not None and _is_set_annotation(node.returns):
                        self.set_returning_callables.add(node.name)


class Checker:
    """Base class: one rule id, checked per file (and/or per project)."""

    rule = "XXX000"
    description = ""
    severity = "error"

    def check(self, source: SourceFile, project: Project) -> Iterable[Finding]:
        return ()

    def finding(
        self,
        source: SourceFile,
        node: ast.AST,
        message: str,
        severity: Optional[str] = None,
    ) -> Finding:
        return Finding(
            rule=self.rule,
            path=str(source.path),
            line=getattr(node, "lineno", 1),
            col=getattr(node, "col_offset", 0),
            message=message,
            severity=severity or self.severity,
        )


_REGISTRY: Dict[str, Checker] = {}


def register(checker_cls):
    """Class decorator: add a checker to the global registry."""
    checker = checker_cls()
    if checker.rule in _REGISTRY:
        raise ValueError(f"duplicate checker rule {checker.rule}")
    _REGISTRY[checker.rule] = checker
    return checker_cls


def registered_checkers() -> Dict[str, Checker]:
    # Import the rule modules on first use so the registry is populated
    # without import-order games.
    from . import (  # noqa: F401
        atomic,
        clockflow,
        determinism,
        fsm,
        hooks,
        layering,
        pickles,
        tracing,
    )

    return dict(_REGISTRY)


@dataclass
class AnalysisReport:
    """Everything one run produced, ready for a reporter."""

    findings: List[Finding]
    files_checked: int
    rules_run: List[str]
    suppressed: int = 0

    @property
    def ok(self) -> bool:
        return not self.findings


def run_analysis(
    paths: Sequence[Path],
    rules: Optional[Sequence[str]] = None,
    report_paths: Optional[Sequence[Path]] = None,
) -> AnalysisReport:
    """Run the registered checkers over every ``.py`` file under ``paths``.

    With ``report_paths`` (the ``--changed`` fast path), the whole tree is
    still loaded — the cross-file checkers need full symbol tables and call
    graphs — but only findings in those files are reported.
    """
    checkers = registered_checkers()
    if rules is not None:
        unknown = sorted(set(rules) - set(checkers))
        if unknown:
            raise ValueError(f"unknown rule(s): {', '.join(unknown)}")
        checkers = {rule: checkers[rule] for rule in rules}
    project, findings = Project.load(paths)
    reported: Optional[Set[str]] = None
    if report_paths is not None:
        reported = {str(p.resolve()) for p in _collect_py_files(report_paths)}
        findings = [
            f for f in findings if str(Path(f.path).resolve()) in reported
        ]
    suppressed = 0
    for source in project.files:
        if reported is not None and str(source.path.resolve()) not in reported:
            continue
        for checker in checkers.values():
            for finding in checker.check(source, project):
                if source.suppressed(finding.rule, finding.line):
                    suppressed += 1
                    continue
                findings.append(finding)
    findings.sort(key=lambda f: (f.path, f.line, f.col, f.rule))
    return AnalysisReport(
        findings=findings,
        files_checked=len(project.files),
        rules_run=sorted(checkers),
        suppressed=suppressed,
    )


# -- reporters ---------------------------------------------------------------


def render_text(report: AnalysisReport) -> str:
    out: List[str] = []
    for finding in report.findings:
        tag = "" if finding.severity == "error" else f" [{finding.severity}]"
        out.append(
            f"{finding.location()}: {finding.rule}{tag} {finding.message}"
        )
    noun = "file" if report.files_checked == 1 else "files"
    summary = (
        f"{len(report.findings)} finding(s) in {report.files_checked} {noun} "
        f"(rules: {', '.join(report.rules_run)}"
    )
    if report.suppressed:
        summary += f"; {report.suppressed} suppressed"
    summary += ")"
    out.append(summary)
    return "\n".join(out)


def render_json(report: AnalysisReport) -> str:
    return json.dumps(
        {
            "findings": [f.to_dict() for f in report.findings],
            "files_checked": report.files_checked,
            "rules_run": report.rules_run,
            "suppressed": report.suppressed,
            "ok": report.ok,
        },
        indent=2,
        sort_keys=True,
    )


# -- AST utilities shared by checkers ---------------------------------------

_PARENT_ATTR = "_repro_parent"


def attach_parents(tree: ast.AST) -> None:
    """Give every node a parent link (checkers walk upward for context)."""
    for node in ast.walk(tree):
        for child in ast.iter_child_nodes(node):
            setattr(child, _PARENT_ATTR, node)


def parent_of(node: ast.AST) -> Optional[ast.AST]:
    return getattr(node, _PARENT_ATTR, None)


def _parent(node: ast.AST, levels: int) -> Optional[ast.AST]:
    current: Optional[ast.AST] = node
    for _ in range(levels):
        if current is None:
            return None
        current = parent_of(current)
    return current


def ancestors(node: ast.AST) -> Iterable[ast.AST]:
    current = parent_of(node)
    while current is not None:
        yield current
        current = parent_of(current)


def enclosing_function(node: ast.AST) -> Optional[ast.AST]:
    for ancestor in ancestors(node):
        if isinstance(ancestor, (ast.FunctionDef, ast.AsyncFunctionDef)):
            return ancestor
    return None


def in_type_checking_block(node: ast.AST) -> bool:
    """Is the node under an ``if TYPE_CHECKING:`` guard?"""
    for ancestor in ancestors(node):
        if isinstance(ancestor, ast.If):
            test = ancestor.test
            if isinstance(test, ast.Name) and test.id == "TYPE_CHECKING":
                return True
            if isinstance(test, ast.Attribute) and test.attr == "TYPE_CHECKING":
                return True
    return False


_SET_ANNOTATION_NAMES = {"Set", "FrozenSet", "set", "frozenset", "MutableSet", "AbstractSet"}


def _is_set_annotation(annotation: ast.AST) -> bool:
    """Does an annotation expression denote a set type?

    Handles ``Set[int]``, ``set[int]``, ``typing.Set[...]``, bare ``set`` /
    ``frozenset``, ``Optional[Set[...]]`` and string annotations.
    """
    if isinstance(annotation, ast.Constant) and isinstance(annotation.value, str):
        try:
            annotation = ast.parse(annotation.value, mode="eval").body
        except SyntaxError:
            return False
    if isinstance(annotation, ast.Subscript):
        value = annotation.value
        head = None
        if isinstance(value, ast.Name):
            head = value.id
        elif isinstance(value, ast.Attribute):
            head = value.attr
        if head in _SET_ANNOTATION_NAMES:
            return True
        if head in {"Optional", "Final", "ClassVar"}:
            return _is_set_annotation(annotation.slice)
        return False
    if isinstance(annotation, ast.Name):
        return annotation.id in {"set", "frozenset", "FrozenSet"}
    if isinstance(annotation, ast.Attribute):
        return annotation.attr in _SET_ANNOTATION_NAMES
    return False


def is_set_annotation(annotation: ast.AST) -> bool:
    return _is_set_annotation(annotation)


def _collect_py_files(paths: Sequence[Path]) -> List[Path]:
    seen: Set[Path] = set()
    out: List[Path] = []
    for path in paths:
        if path.is_dir():
            candidates = sorted(path.rglob("*.py"))
        else:
            candidates = [path]
        for candidate in candidates:
            resolved = candidate.resolve()
            if resolved not in seen:
                seen.add(resolved)
                out.append(candidate)
    return out
