"""The submit-and-watch client, and the figure drivers' service backend.

:class:`ServeClient` is the programmatic face of the spool: submit a grid
(or a figure by name), stream per-point progress, and assemble finished
campaigns back into ``RunResult`` lists in submission order — exactly
what :func:`~repro.harness.parallel.run_grid` returns, so downstream
consumers cannot tell the difference.

:class:`ServiceExecutor` packages that loop behind the harness's
:data:`~repro.harness.parallel.GridExecutor` contract.  Handing it to any
figure driver (``fig9(..., executor=ServiceExecutor(spool))`` or
``python -m repro fig9 --serve SPOOL``) reroutes the figure's grid
through the job service — same grid, same keys, same rows, byte-identical
exports — executed by whatever worker fleet is attached to the spool.
"""

from __future__ import annotations

from pathlib import Path
from typing import Any, Callable, Dict, List, Optional, Sequence, Tuple, Union

from ..harness.cache import ResultCache
from ..harness.metrics import RunResult
from ..harness.parallel import GridOutcome, GridPoint, PointRun
from ..harness.report import FigureResult
from .clock import sleep, wall_now
from .jobstore import CACHE_DIR, CampaignMeta, JobRecord, ServeError
from .queue import CampaignStatus, JobQueue

#: ``(status, newly_done)`` progress callback: ``newly_done`` lists the
#: ``(index, display_label)`` of points that completed since the last call.
WatchProgress = Callable[[CampaignStatus, List[Tuple[int, str]]], None]

DEFAULT_WATCH_POLL_S = 0.5


class ServeClient:
    """Submit campaigns to a spool and read their progress/results back."""

    def __init__(self, spool: Union[str, Path]) -> None:
        self.spool = Path(spool)
        self.queue = JobQueue(self.spool)

    # -- submission --------------------------------------------------------

    def submit_points(
        self,
        points: Sequence[GridPoint],
        title: str,
        campaign_id: Optional[str] = None,
        figure: Optional[str] = None,
        quick: bool = True,
        scale: float = 0.0,
        seed: int = 0,
    ) -> CampaignMeta:
        return self.queue.submit(
            points,
            title=title,
            campaign_id=campaign_id,
            figure=figure,
            quick=quick,
            scale=scale,
            seed=seed,
        )

    def submit_figure(
        self,
        figure: str,
        quick: bool = True,
        scale: Optional[float] = None,
        seed: int = 2020,
        campaign_id: Optional[str] = None,
    ) -> CampaignMeta:
        """Queue one figure's experiment grid as a campaign."""
        from ..harness.config import DEFAULT_SCALE
        from ..harness.figures import FIGURE_GRIDS

        if figure not in FIGURE_GRIDS:
            raise ServeError(
                f"unknown figure {figure!r}; submittable figures: "
                + ", ".join(sorted(FIGURE_GRIDS))
            )
        scale = DEFAULT_SCALE if scale is None else scale
        points = FIGURE_GRIDS[figure](quick=quick, scale=scale, seed=seed)
        return self.submit_points(
            points,
            title=figure,
            campaign_id=campaign_id,
            figure=figure,
            quick=quick,
            scale=scale,
            seed=seed,
        )

    # -- progress ----------------------------------------------------------

    def status(self, campaign_id: str) -> CampaignStatus:
        return self.queue.status(campaign_id)

    def statuses(self) -> List[CampaignStatus]:
        return [
            self.queue.status(meta.campaign_id)
            for meta in self.queue.campaigns()
        ]

    def watch(
        self,
        campaign_id: str,
        timeout_s: Optional[float] = None,
        poll_s: float = DEFAULT_WATCH_POLL_S,
        progress: Optional[WatchProgress] = None,
    ) -> CampaignStatus:
        """Block until the campaign completes, streaming per-point progress.

        Raises :class:`ServeError` on timeout, cancellation, or when the
        campaign settles with failed points (nothing left to wait for).
        """
        records = self.queue.records(campaign_id)
        done: Dict[int, bool] = {}
        deadline = None if timeout_s is None else wall_now() + timeout_s
        while True:
            newly: List[Tuple[int, str]] = []
            for record in records:
                if done.get(record.index):
                    continue
                if self.queue.cache.has_fingerprint(record.fingerprint):
                    done[record.index] = True
                    newly.append((record.index, record.display_label))
            status = self.queue.status(campaign_id)
            if progress is not None and (newly or status.complete):
                progress(status, newly)
            if status.complete:
                return status
            if status.cancelled:
                raise ServeError(f"campaign {campaign_id!r} was cancelled")
            if status.settled:
                failures = self.queue.failures(campaign_id)
                detail = "; ".join(
                    f"[{index}] {message}"
                    for index, message in sorted(failures.items())
                )
                raise ServeError(
                    f"campaign {campaign_id!r} settled with "
                    f"{status.failed} failed point(s): {detail}"
                )
            if deadline is not None and wall_now() >= deadline:
                raise ServeError(
                    f"campaign {campaign_id!r} still has "
                    f"{status.pending} pending point(s) after "
                    f"{timeout_s:.0f}s (is a worker fleet attached?)"
                )
            sleep(poll_s)

    # -- results -----------------------------------------------------------

    def results(self, campaign_id: str) -> List[RunResult]:
        """The campaign's ``RunResult``s in submission order.

        Interchangeable with what ``run_grid`` over the same points
        returns.  Raises :class:`ServeError` if any point is missing
        (still pending, failed, or a corrupt cache entry).
        """
        return [run.result for run in self.point_runs(campaign_id)]

    def point_runs(self, campaign_id: str) -> List[PointRun]:
        runs = []
        for record in self.queue.records(campaign_id):
            result = self.queue.cache.get_fingerprint(record.fingerprint)
            if result is None:
                message = self.queue.failure(campaign_id, record.index)
                raise ServeError(
                    f"campaign {campaign_id!r} point [{record.index}] "
                    f"({record.display_label}) has no result"
                    + (f": failed with {message}" if message else
                       " yet (still pending?)")
                )
            runs.append(
                PointRun(
                    key=record.key,
                    label=record.display_label,
                    fingerprint=record.fingerprint,
                    cached=True,
                    elapsed_s=0.0,
                    result=result,
                )
            )
        return runs

    def keyed_results(self, campaign_id: str) -> Dict[Any, RunResult]:
        return {
            run.key: run.result for run in self.point_runs(campaign_id)
        }

    def figure_results(self, campaign_id: str) -> List[FigureResult]:
        """Re-assemble the figure a campaign was submitted from.

        Runs the original figure driver against the spool's warm cache —
        every point hits, zero simulations — so the output (and its JSON
        export) is byte-identical to ``python -m repro <figure>`` run
        directly with the same quick/scale/seed.
        """
        from ..harness.figures import ALL_FIGURES

        meta = self.queue.store.load_meta(campaign_id)
        if meta.figure is None:
            raise ServeError(
                f"campaign {campaign_id!r} was not submitted from a figure; "
                "use results() instead"
            )
        status = self.queue.status(campaign_id)
        if not status.complete:
            raise ServeError(
                f"campaign {campaign_id!r} is not complete "
                f"({status.done}/{status.total} done, {status.failed} failed)"
            )
        driver = ALL_FIGURES[meta.figure]
        results = driver(
            quick=meta.quick,
            scale=meta.scale,
            seed=meta.seed,
            jobs=1,
            cache=self.queue.cache,
        )
        if not isinstance(results, tuple):
            results = (results,)
        return list(results)


class ServiceExecutor:
    """A :data:`~repro.harness.parallel.GridExecutor` backed by the spool.

    Submits the grid as a campaign, waits for the attached worker fleet,
    and assembles a :class:`GridOutcome` in submission order.  The
    ``simulated`` count reflects fleet-side work (points not already in
    the shared cache at submit time); per-point ``elapsed_s`` is 0.0
    because simulation wall time was spent in other processes.
    """

    def __init__(
        self,
        spool: Union[str, Path],
        timeout_s: Optional[float] = None,
        poll_s: float = DEFAULT_WATCH_POLL_S,
        title: str = "grid",
        progress: Optional[WatchProgress] = None,
    ) -> None:
        self.spool = Path(spool)
        self.timeout_s = timeout_s
        self.poll_s = poll_s
        self.title = title
        self.progress = progress

    def __call__(
        self,
        points: Sequence[GridPoint],
        cache: Optional[ResultCache] = None,
    ) -> GridOutcome:
        client = ServeClient(self.spool)
        meta = client.submit_points(points, title=self.title)
        records = client.queue.records(meta.campaign_id)
        done_at_submit = {
            record.index
            for record in records
            if client.queue.cache.has_fingerprint(record.fingerprint)
        }
        client.watch(
            meta.campaign_id,
            timeout_s=self.timeout_s,
            poll_s=self.poll_s,
            progress=self.progress,
        )
        runs = client.point_runs(meta.campaign_id)
        for run, record in zip(runs, records):
            run.cached = record.index in done_at_submit
        self._mirror(cache, records, runs)
        return GridOutcome(
            runs=runs,
            simulated=len(records) - len(done_at_submit),
            cache_hits=len(done_at_submit),
        )

    def _mirror(
        self,
        cache: Optional[ResultCache],
        records: Sequence[JobRecord],
        runs: Sequence[PointRun],
    ) -> None:
        """Copy results into a caller-side cache rooted elsewhere.

        Keeps ``--cache-dir`` semantics intact when a figure runs through
        the service: the caller's cache ends up as warm as a local run
        would have left it.  (No simulations are counted — none ran here.)
        """
        if cache is None:
            return
        spool_root = Path(self.spool) / CACHE_DIR
        try:
            same = spool_root.resolve() == Path(cache.root).resolve()
        except OSError:
            same = False
        if same:
            return
        for record, run in zip(records, runs):
            if not cache.has_fingerprint(record.fingerprint):
                cache.put(record.spec, run.result, record.label)
