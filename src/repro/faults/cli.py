"""``python -m repro faults ...`` — run a fault-injection campaign.

Examples::

    python -m repro faults --workload hashmap --crashes 50 --seed 1
    python -m repro faults --workload dual_kv --crashes 20 --json out.json
    python -m repro faults --workload hashmap --inject-bug skip_commit_mark

Exit status is 0 when every recovery verified, 1 when the oracle caught an
inconsistency (the minimized reproducing plan is printed alongside).
"""

from __future__ import annotations

import argparse
from typing import List, Optional

from ..errors import ConfigError
from ..harness.export import to_json, to_markdown
from ..harness.timer import Stopwatch
from .campaign import CampaignConfig, run_campaign

#: Workloads a campaign can sweep: the suite's persistent/hybrid stores plus
#: the other transactional structures.  The bandwidth co-runners (membound,
#: graphhog) are deliberately absent — they barely transact and make
#: per-plan reruns pathologically slow.
CAMPAIGN_WORKLOADS = (
    "hashmap", "btree", "hybrid_index", "dual_kv", "rbtree", "skiplist", "echo"
)


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro faults",
        description="Sweep seeded crash points and verify every recovery "
        "against the crash-consistency oracle.",
    )
    parser.add_argument(
        "--workload",
        default="hashmap",
        choices=sorted(CAMPAIGN_WORKLOADS),
        help="workload to run under injection (default: hashmap)",
    )
    parser.add_argument(
        "--crashes", type=int, default=50,
        help="crash points to test, including the final power cut (default 50)",
    )
    parser.add_argument("--seed", type=int, default=1)
    parser.add_argument(
        "--design", default="uhtm",
        choices=("llc_bounded", "signature_only", "uhtm", "ideal"),
    )
    parser.add_argument("--threads", type=int, default=2)
    parser.add_argument("--txs", type=int, default=3, dest="txs_per_thread")
    parser.add_argument(
        "--no-minimize", action="store_false", dest="minimize",
        help="skip shrinking the first failing plan",
    )
    parser.add_argument(
        "--inject-bug",
        choices=("skip_commit_mark",),
        help="seed a deliberate durability bug (oracle self-validation)",
    )
    parser.add_argument("--json", metavar="PATH",
                        help="also write the campaign table as JSON")
    parser.add_argument("--markdown", metavar="PATH",
                        help="also write the campaign table as Markdown")
    return parser


def main(argv: Optional[List[str]] = None) -> int:
    parser = build_parser()
    args = parser.parse_args(argv)
    try:
        config = CampaignConfig(
            workload=args.workload,
            crashes=args.crashes,
            seed=args.seed,
            design=args.design,
            threads=args.threads,
            txs_per_thread=args.txs_per_thread,
            inject_bug=args.inject_bug,
            minimize_failures=args.minimize,
        )
    except ConfigError as error:
        parser.error(str(error))
    stopwatch = Stopwatch()
    result = run_campaign(config)
    figure = result.to_figure()
    print(figure.pretty())
    metrics = result.metrics()
    print()
    print(
        f"{metrics.recoveries_verified}/{metrics.crash_points_tested} "
        f"recoveries verified "
        f"({metrics.verification_rate:.0%}) in {stopwatch}"
    )
    if not result.ok:
        print("CRASH-CONSISTENCY FAILURE — see minimized plan above")
    if args.json:
        with open(args.json, "w", encoding="utf-8") as handle:
            handle.write(to_json([figure]))
        print(f"wrote {args.json}")
    if args.markdown:
        with open(args.markdown, "w", encoding="utf-8") as handle:
            handle.write(to_markdown([figure]))
        print(f"wrote {args.markdown}")
    return 0 if result.ok else 1
