"""Integration: orthogonal features composed end-to-end.

Each test combines two or more optional features (banked signatures,
oldest-wins resolution, bandwidth model, migration, trace capture) with a
real workload and checks both progress and correctness — guarding against
pairwise interactions that per-feature tests miss.
"""

from __future__ import annotations

import dataclasses

import pytest

from repro import HTMConfig, MachineConfig, SignatureConfig, System
from repro.htm.conflict import ResolutionPolicy
from repro.mem.address import MemoryKind
from repro.workloads import WORKLOADS, WorkloadParams


def small_params(**overrides):
    base = dict(
        threads=4, txs_per_thread=3, value_bytes=32 << 10,
        keys=64, initial_fill=16,
    )
    base.update(overrides)
    return WorkloadParams(**base)


def run(machine, config, workload="hashmap", seed=5, capture=False,
        migrate_every_ns=0.0, params=None):
    system = System(machine, config, seed=seed, capture_trace=capture)
    proc = system.process("w")
    w = WORKLOADS[workload](system, proc, params or small_params())
    w.setup()
    for index, body in enumerate(w.thread_bodies()):
        proc.thread(body, migrate_every_ns=migrate_every_ns)
    system.run()
    return system, w


class TestBankedSignaturesEndToEnd:
    @pytest.mark.parametrize("design", ["uhtm", "signature_only"])
    def test_banked_filters_run_and_verify(self, design):
        machine = MachineConfig.scaled(1 / 64, cores=4, cache_scale=1 / 512)
        config = HTMConfig(
            design=design,
            signature=SignatureConfig(bits=1024, banked=True),
        )
        system, workload = run(machine, config)
        assert workload.verify()
        assert system.stats.counter("ops.committed") > 0


class TestOldestWinsEndToEnd:
    def test_workload_under_timestamp_ordering(self):
        machine = MachineConfig.scaled(1 / 64, cores=4, cache_scale=1 / 512)
        config = HTMConfig(resolution=ResolutionPolicy.OLDEST_WINS)
        system, workload = run(machine, config, workload="btree")
        assert workload.verify()

    def test_oldest_wins_with_overflow_and_signatures(self):
        """Large footprints: off-chip conflicts resolved by age, not
        overflow priority — still serializable and live."""
        machine = MachineConfig.scaled(1 / 64, cores=4, cache_scale=1 / 4096)
        config = HTMConfig(
            resolution=ResolutionPolicy.OLDEST_WINS,
            signature=SignatureConfig(bits=4096),
        )
        system, workload = run(
            machine, config, params=small_params(value_bytes=256 << 10)
        )
        assert workload.verify()
        assert system.stats.counter("tx.overflows") > 0


class TestBandwidthPlusHTM:
    def test_transactional_run_under_finite_bandwidth(self):
        base = MachineConfig.scaled(1 / 64, cores=4, cache_scale=1 / 512)
        machine = dataclasses.replace(
            base,
            memory=dataclasses.replace(base.memory, model_bandwidth=True),
        )
        system, workload = run(machine, HTMConfig())
        assert workload.verify()
        # The persistent hash map's misses travel the NVM channel.
        assert system.controller.nvm_channel.stats.requests > 0

    def test_bandwidth_and_crash_recovery(self):
        base = MachineConfig.scaled(1 / 64, cores=4)
        machine = dataclasses.replace(
            base,
            memory=dataclasses.replace(base.memory, model_bandwidth=True),
        )
        config = HTMConfig()
        system = System(machine, config, seed=5)
        proc = system.process("p")
        addr = system.heap.alloc_words(1, MemoryKind.NVM)

        def body(api):
            for _ in range(10):
                def work(tx):
                    value = tx.read_word(addr)
                    yield
                    tx.write_word(addr, value + 1)

                yield from api.run_transaction(work)

        for _ in range(3):
            proc.thread(body)
        system.run()
        system.crash()
        system.recover()
        assert system.controller.nvm.load(addr) == 30


class TestMigrationPlusCapture:
    def test_captured_trace_spans_migrations(self):
        machine = MachineConfig.scaled(1 / 64, cores=4)
        system, workload = run(
            machine, HTMConfig(), capture=True, migrate_every_ns=2000.0
        )
        trace = system.captured_trace()
        assert trace.total_txs() == system.stats.counter("tx.commits")
        assert workload.verify()


class TestEverythingAtOnce:
    def test_kitchen_sink(self):
        """Banked sigs + oldest-wins + bandwidth + migration + capture."""
        base = MachineConfig.scaled(1 / 64, cores=4, cache_scale=1 / 512)
        machine = dataclasses.replace(
            base,
            memory=dataclasses.replace(base.memory, model_bandwidth=True),
        )
        config = HTMConfig(
            signature=SignatureConfig(bits=1024, banked=True),
            resolution=ResolutionPolicy.OLDEST_WINS,
        )
        system, workload = run(
            machine, config, workload="hybrid_index",
            capture=True, migrate_every_ns=3000.0,
        )
        assert workload.verify()
        assert system.stats.counter("ops.committed") > 0
        trace = system.captured_trace()
        assert trace is not None and trace.total_txs() > 0
