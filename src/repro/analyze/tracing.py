"""TRC009 — tracer emits: None-guarded, and adjacent to their counters.

The tracer (PR 4) is an optional hook like the fault injector: ``None``
outside an observed run, so every ``tracer.emit(...)`` must be None-guarded
or it crashes plain simulations.  And the forensics layer's headline
guarantee — events are *count-exact* against the stats counters — holds
only because each counted emit sits in the same function body as the sole
``stats.incr`` for its counter.  A refactor that moves one of them breaks
count-exactness silently; the drift only shows up when ``repro trace
--report`` exits 1 on a real run.

Checked here, statically:

* every emit on a tracer expression (``self.tracer.emit``, an alias
  assigned from a ``.tracer`` attribute, a ``tracer`` parameter) is guarded
  by the HOOK003 convention — enclosing ``if``/ternary test, earlier
  bailout, or assert;
* every emit whose kind is in
  :data:`repro.analyze.protocol.TRACE_COUNTER_KINDS` has a ``*.incr``
  of the matching counter in the same function body.
"""

from __future__ import annotations

import ast
from typing import Dict, Iterable, List, Optional, Set

from .core import Checker, Finding, Project, SourceFile, register
from .dataflow import iter_own_nodes
from .hooks import is_guarded
from .protocol import TRACE_COUNTER_KINDS


def _scopes(tree: ast.AST) -> Iterable[ast.AST]:
    yield tree
    for node in ast.walk(tree):
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
            yield node


def _tracer_aliases(nodes: Iterable[ast.AST]) -> Set[str]:
    """Local names assigned from a ``.tracer`` attribute."""
    aliases: Set[str] = set()
    for node in nodes:
        if (
            isinstance(node, ast.Assign)
            and len(node.targets) == 1
            and isinstance(node.targets[0], ast.Name)
            and isinstance(node.value, ast.Attribute)
            and node.value.attr == "tracer"
        ):
            aliases.add(node.targets[0].id)
    return aliases


def _emit_root(call: ast.Call, aliases: Set[str]) -> Optional[str]:
    """The tracer expression text behind an ``emit`` call, if it is one."""
    head = call.func
    if not (isinstance(head, ast.Attribute) and head.attr == "emit"):
        return None
    receiver = head.value
    if isinstance(receiver, ast.Attribute) and receiver.attr == "tracer":
        return ast.unparse(receiver)
    if isinstance(receiver, ast.Name) and (
        receiver.id == "tracer" or receiver.id in aliases
    ):
        return receiver.id
    return None


def _emit_kind(call: ast.Call) -> Optional[str]:
    if call.args and isinstance(call.args[0], ast.Constant):
        value = call.args[0].value
        if isinstance(value, str):
            return value
    return None


def _counter_increments(nodes: Iterable[ast.AST]) -> Set[str]:
    """Constant counter names passed to ``*.incr(...)`` in this scope."""
    counters: Set[str] = set()
    for node in nodes:
        if not isinstance(node, ast.Call):
            continue
        head = node.func
        if not (isinstance(head, ast.Attribute) and head.attr == "incr"):
            continue
        if node.args and isinstance(node.args[0], ast.Constant):
            value = node.args[0].value
            if isinstance(value, str):
                counters.add(value)
    return counters


@register
class TracerEmitChecker(Checker):
    rule = "TRC009"
    description = (
        "every tracer.emit is None-guarded and, for counted kinds, "
        "adjacent (same function body) to its stats counter increment"
    )

    def check(self, source: SourceFile, project: Project) -> Iterable[Finding]:
        findings: List[Finding] = []
        for scope in _scopes(source.tree):
            # iter_own_nodes keeps each emit in exactly one scope — its own
            # function body — so "adjacent" means what the docstring says.
            nodes = list(iter_own_nodes(scope))
            aliases = _tracer_aliases(nodes)
            counters: Optional[Set[str]] = None  # built lazily per scope
            for node in nodes:
                if not isinstance(node, ast.Call):
                    continue
                root = _emit_root(node, aliases)
                if root is None:
                    continue
                if not is_guarded(node, scope, root):
                    findings.append(
                        self.finding(
                            source,
                            node,
                            f"'{root}.emit(...)' is not None-guarded; the "
                            "tracer is None outside observed runs — test "
                            f"'if {root} is not None' first",
                        )
                    )
                kind = _emit_kind(node)
                counter = TRACE_COUNTER_KINDS.get(kind or "")
                if counter is None:
                    continue
                if counters is None:
                    counters = _counter_increments(nodes)
                if counter not in counters:
                    findings.append(
                        self.finding(
                            source,
                            node,
                            f"emit({kind!r}) has no adjacent "
                            f"incr({counter!r}) in the same function body; "
                            "count-exactness (trace events == stats "
                            "counters) requires the emit and its counter "
                            "to move together",
                        )
                    )
        return findings
