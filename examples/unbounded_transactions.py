#!/usr/bin/env python3
"""Unboundedness demo: one transaction far larger than every cache level.

Writes a multi-megabyte persistent region in a single transaction.  Under
the LLC-bounded baseline this capacity-aborts and serialises behind the
fallback lock (Algorithm 1's slow path); under UHTM it commits speculatively
— overflowed lines spill to signatures, undo/redo logs, and the DRAM cache
exactly as Section IV describes.  The demo prints what each design did and
proves the data landed either way.

Run with:  python examples/unbounded_transactions.py
"""

from repro import HTMConfig, LINE_SIZE, MachineConfig, MemoryKind, System

TX_LINES = 4096  # 256 KB at line granularity — LLC here is 64 KB


def run(design: str) -> None:
    system = System(
        MachineConfig.scaled(1 / 16, cores=2, cache_scale=1 / 256),
        HTMConfig(design=design),
        seed=3,
    )
    app = system.process("bigtx")
    base = system.heap.alloc(TX_LINES * LINE_SIZE, MemoryKind.NVM)

    def body(api):
        def work(tx):
            for i in range(TX_LINES):
                tx.write_word(base + i * LINE_SIZE, i + 1)
                if i % 256 == 0:
                    yield

        yield from api.run_transaction(work)

    app.thread(body)
    system.run()

    print(f"--- {design} ---")
    print(f"  LLC capacity          : {system.machine.llc.num_lines} lines")
    print(f"  transaction footprint : {TX_LINES} lines")
    print(f"  capacity aborts       : "
          f"{system.stats.counter('tx.aborts.capacity')}")
    print(f"  slow-path executions  : "
          f"{system.stats.counter('tx.slow_path_executions')}")
    print(f"  speculative commits   : {system.stats.counter('tx.commits')}")
    print(f"  lines spilled off-chip: "
          f"{system.stats.counter('nvm.early_evictions')}")
    print(f"  simulated time        : {system.elapsed_ns / 1e6:.3f} ms")
    # Either path must have landed every line durably:
    system.crash()
    system.recover()
    missing = sum(
        1
        for i in range(TX_LINES)
        if system.controller.nvm.load(base + i * LINE_SIZE) != i + 1
    )
    print(f"  lines durable         : {TX_LINES - missing}/{TX_LINES}")
    assert missing == 0


def main() -> None:
    for design in ("llc_bounded", "uhtm", "ideal"):
        run(design)
    print("\nunbounded-transaction demo OK: the bounded design fell back to "
          "the serial slow path; the unbounded designs committed "
          "speculatively with off-chip conflict tracking.")


if __name__ == "__main__":
    main()
