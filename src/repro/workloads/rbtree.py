"""A transactional red-black tree (PMDK ``rbtree_map`` equivalent).

Classic CLRS insert with recolouring and rotations.  Rotations dirty a chain
of parent pointers, which is what makes RB-tree transactions conflict-heavy
near the root — the behaviour behind its 2.7x capacity-overflow slowdown in
the paper's Figure 6.
"""

from __future__ import annotations

from typing import Callable, Generator, List, Optional, TYPE_CHECKING

from ..mem.address import MemoryKind
from ..runtime.txapi import MemoryContext
from .base import PayloadPool, Workload, WorkloadParams, write_payload

if TYPE_CHECKING:  # pragma: no cover
    from ..runtime.heap import TxHeap

_RED = 0
_BLACK = 1

# Node layout (words): key, value, color, left, right, parent.
_N_KEY = 0
_N_VALUE = 1
_N_COLOR = 2
_N_LEFT = 3
_N_RIGHT = 4
_N_PARENT = 5
_NODE_WORDS = 6

# Header layout: root pointer, element count.
_H_ROOT = 0
_H_SIZE = 1


class TxRBTree:
    """A red-black tree over the transactional heap."""

    def __init__(self, heap: "TxHeap", base: int, kind: MemoryKind) -> None:
        self.heap = heap
        self.base = base
        self.kind = kind

    @classmethod
    def create(
        cls, heap: "TxHeap", ctx: MemoryContext, kind: MemoryKind
    ) -> "TxRBTree":
        base = heap.alloc_words(2, kind)
        ctx.write_word(heap.field(base, _H_ROOT), 0)
        ctx.write_word(heap.field(base, _H_SIZE), 0)
        return cls(heap, base, kind)

    # -- field helpers --------------------------------------------------------

    def _get(self, ctx, node, f) -> int:
        return ctx.read_word(self.heap.field(node, f))

    def _set(self, ctx, node, f, v) -> None:
        ctx.write_word(self.heap.field(node, f), v)

    def _root(self, ctx) -> int:
        return ctx.read_word(self.heap.field(self.base, _H_ROOT))

    def _set_root(self, ctx, node) -> None:
        ctx.write_word(self.heap.field(self.base, _H_ROOT), node)

    # -- operations ---------------------------------------------------------------

    def get(self, ctx: MemoryContext, key: int) -> Optional[int]:
        node = self._root(ctx)
        while node != 0:
            node_key = self._get(ctx, node, _N_KEY)
            if key == node_key:
                return self._get(ctx, node, _N_VALUE)
            node = self._get(ctx, node, _N_LEFT if key < node_key else _N_RIGHT)
        return None

    def insert(self, ctx: MemoryContext, key: int, value: int) -> bool:
        parent = 0
        node = self._root(ctx)
        while node != 0:
            node_key = self._get(ctx, node, _N_KEY)
            if key == node_key:
                self._set(ctx, node, _N_VALUE, value)
                return False
            parent = node
            node = self._get(ctx, node, _N_LEFT if key < node_key else _N_RIGHT)
        fresh = self.heap.alloc_words(_NODE_WORDS, self.kind)
        self._set(ctx, fresh, _N_KEY, key)
        self._set(ctx, fresh, _N_VALUE, value)
        self._set(ctx, fresh, _N_COLOR, _RED)
        self._set(ctx, fresh, _N_LEFT, 0)
        self._set(ctx, fresh, _N_RIGHT, 0)
        self._set(ctx, fresh, _N_PARENT, parent)
        if parent == 0:
            self._set_root(ctx, fresh)
        elif key < self._get(ctx, parent, _N_KEY):
            self._set(ctx, parent, _N_LEFT, fresh)
        else:
            self._set(ctx, parent, _N_RIGHT, fresh)
        self._fixup(ctx, fresh)
        return True

    def _rotate(self, ctx, node, left: bool) -> None:
        """Rotate ``node`` down to the ``left`` (or right)."""
        up_f, down_f = (_N_RIGHT, _N_LEFT) if left else (_N_LEFT, _N_RIGHT)
        pivot = self._get(ctx, node, up_f)
        inner = self._get(ctx, pivot, down_f)
        self._set(ctx, node, up_f, inner)
        if inner != 0:
            self._set(ctx, inner, _N_PARENT, node)
        parent = self._get(ctx, node, _N_PARENT)
        self._set(ctx, pivot, _N_PARENT, parent)
        if parent == 0:
            self._set_root(ctx, pivot)
        elif node == self._get(ctx, parent, _N_LEFT):
            self._set(ctx, parent, _N_LEFT, pivot)
        else:
            self._set(ctx, parent, _N_RIGHT, pivot)
        self._set(ctx, pivot, down_f, node)
        self._set(ctx, node, _N_PARENT, pivot)

    def _fixup(self, ctx, node) -> None:
        while True:
            parent = self._get(ctx, node, _N_PARENT)
            if parent == 0 or self._get(ctx, parent, _N_COLOR) == _BLACK:
                break
            grand = self._get(ctx, parent, _N_PARENT)
            parent_is_left = parent == self._get(ctx, grand, _N_LEFT)
            uncle = self._get(ctx, grand, _N_RIGHT if parent_is_left else _N_LEFT)
            if uncle != 0 and self._get(ctx, uncle, _N_COLOR) == _RED:
                self._set(ctx, parent, _N_COLOR, _BLACK)
                self._set(ctx, uncle, _N_COLOR, _BLACK)
                self._set(ctx, grand, _N_COLOR, _RED)
                node = grand
                continue
            inner_f = _N_RIGHT if parent_is_left else _N_LEFT
            if node == self._get(ctx, parent, inner_f):
                node = parent
                self._rotate(ctx, node, left=parent_is_left)
                parent = self._get(ctx, node, _N_PARENT)
                grand = self._get(ctx, parent, _N_PARENT)
            self._set(ctx, parent, _N_COLOR, _BLACK)
            self._set(ctx, grand, _N_COLOR, _RED)
            self._rotate(ctx, grand, left=not parent_is_left)
        root = self._root(ctx)
        self._set(ctx, root, _N_COLOR, _BLACK)

    # -- delete ---------------------------------------------------------------------

    def delete(self, ctx: MemoryContext, key: int) -> bool:
        """CLRS red-black deletion with double-black fixup.

        The classic algorithm uses a nil sentinel; here children are 0, so
        the fixup tracks (node, parent) pairs and treats 0 as black.
        """
        victim = self._root(ctx)
        while victim != 0:
            victim_key = self._get(ctx, victim, _N_KEY)
            if key == victim_key:
                break
            victim = self._get(
                ctx, victim, _N_LEFT if key < victim_key else _N_RIGHT
            )
        if victim == 0:
            return False

        removed_color = self._get(ctx, victim, _N_COLOR)
        if self._get(ctx, victim, _N_LEFT) == 0:
            fix_node = self._get(ctx, victim, _N_RIGHT)
            fix_parent = self._get(ctx, victim, _N_PARENT)
            self._transplant(ctx, victim, fix_node)
        elif self._get(ctx, victim, _N_RIGHT) == 0:
            fix_node = self._get(ctx, victim, _N_LEFT)
            fix_parent = self._get(ctx, victim, _N_PARENT)
            self._transplant(ctx, victim, fix_node)
        else:
            successor = self._get(ctx, victim, _N_RIGHT)
            while self._get(ctx, successor, _N_LEFT) != 0:
                successor = self._get(ctx, successor, _N_LEFT)
            removed_color = self._get(ctx, successor, _N_COLOR)
            fix_node = self._get(ctx, successor, _N_RIGHT)
            if self._get(ctx, successor, _N_PARENT) == victim:
                fix_parent = successor
            else:
                fix_parent = self._get(ctx, successor, _N_PARENT)
                self._transplant(ctx, successor, fix_node)
                right = self._get(ctx, victim, _N_RIGHT)
                self._set(ctx, successor, _N_RIGHT, right)
                self._set(ctx, right, _N_PARENT, successor)
            self._transplant(ctx, victim, successor)
            left = self._get(ctx, victim, _N_LEFT)
            self._set(ctx, successor, _N_LEFT, left)
            self._set(ctx, left, _N_PARENT, successor)
            self._set(
                ctx, successor, _N_COLOR, self._get(ctx, victim, _N_COLOR)
            )
        if removed_color == _BLACK:
            self._delete_fixup(ctx, fix_node, fix_parent)
        self.heap.free_words(victim, _NODE_WORDS, self.kind)
        return True

    def _transplant(self, ctx, old, new) -> None:
        parent = self._get(ctx, old, _N_PARENT)
        if parent == 0:
            self._set_root(ctx, new)
        elif old == self._get(ctx, parent, _N_LEFT):
            self._set(ctx, parent, _N_LEFT, new)
        else:
            self._set(ctx, parent, _N_RIGHT, new)
        if new != 0:
            self._set(ctx, new, _N_PARENT, parent)

    def _color_of(self, ctx, node) -> int:
        return _BLACK if node == 0 else self._get(ctx, node, _N_COLOR)

    def _delete_fixup(self, ctx, node, parent) -> None:
        while node != self._root(ctx) and self._color_of(ctx, node) == _BLACK:
            if parent == 0:
                break
            node_is_left = node == self._get(ctx, parent, _N_LEFT)
            sib_field = _N_RIGHT if node_is_left else _N_LEFT
            sibling = self._get(ctx, parent, sib_field)
            if self._color_of(ctx, sibling) == _RED:
                self._set(ctx, sibling, _N_COLOR, _BLACK)
                self._set(ctx, parent, _N_COLOR, _RED)
                self._rotate(ctx, parent, left=node_is_left)
                sibling = self._get(ctx, parent, sib_field)
            inner = self._get(
                ctx, sibling, _N_LEFT if node_is_left else _N_RIGHT
            )
            outer = self._get(
                ctx, sibling, _N_RIGHT if node_is_left else _N_LEFT
            )
            if (
                self._color_of(ctx, inner) == _BLACK
                and self._color_of(ctx, outer) == _BLACK
            ):
                self._set(ctx, sibling, _N_COLOR, _RED)
                node = parent
                parent = self._get(ctx, node, _N_PARENT)
                continue
            if self._color_of(ctx, outer) == _BLACK:
                if inner != 0:
                    self._set(ctx, inner, _N_COLOR, _BLACK)
                self._set(ctx, sibling, _N_COLOR, _RED)
                self._rotate(ctx, sibling, left=not node_is_left)
                sibling = self._get(ctx, parent, sib_field)
                outer = self._get(
                    ctx, sibling, _N_RIGHT if node_is_left else _N_LEFT
                )
            self._set(
                ctx, sibling, _N_COLOR, self._get(ctx, parent, _N_COLOR)
            )
            self._set(ctx, parent, _N_COLOR, _BLACK)
            if outer != 0:
                self._set(ctx, outer, _N_COLOR, _BLACK)
            self._rotate(ctx, parent, left=node_is_left)
            node = self._root(ctx)
            parent = 0
        if node != 0:
            self._set(ctx, node, _N_COLOR, _BLACK)

    # -- verification --------------------------------------------------------------

    def size(self, ctx: MemoryContext) -> int:
        """Element count, by walking (no transactional hot counter)."""
        return len(self.keys(ctx))

    def keys(self, ctx: MemoryContext) -> List[int]:
        out: List[int] = []
        stack = []
        node = self._root(ctx)
        while stack or node != 0:
            while node != 0:
                stack.append(node)
                node = self._get(ctx, node, _N_LEFT)
            node = stack.pop()
            out.append(self._get(ctx, node, _N_KEY))
            node = self._get(ctx, node, _N_RIGHT)
        return out

    def check_integrity(self, ctx: MemoryContext) -> bool:
        """BST order, red-black invariants, and size consistency."""
        keys = self.keys(ctx)
        if keys != sorted(keys) or len(keys) != len(set(keys)):
            return False
        root = self._root(ctx)
        if root == 0:
            return True
        if self._get(ctx, root, _N_COLOR) != _BLACK:
            return False
        # No red node has a red child; black-height is uniform.
        black_heights = set()
        stack = [(root, 0)]
        while stack:
            node, blacks = stack.pop()
            if node == 0:
                black_heights.add(blacks)
                continue
            color = self._get(ctx, node, _N_COLOR)
            if color == _RED:
                for f in (_N_LEFT, _N_RIGHT):
                    child = self._get(ctx, node, f)
                    if child != 0 and self._get(ctx, child, _N_COLOR) == _RED:
                        return False
            blacks += 1 if color == _BLACK else 0
            stack.append((self._get(ctx, node, _N_LEFT), blacks))
            stack.append((self._get(ctx, node, _N_RIGHT), blacks))
        return len(black_heights) == 1


class RBTreeWorkload(Workload):
    """Insert/update nodes in a red-black tree (Table IV, RB-Tree [25])."""

    name = "rbtree"

    def __init__(self, system, process, params: WorkloadParams) -> None:
        super().__init__(system, process, params)
        self.tree: Optional[TxRBTree] = None
        self.pool: Optional[PayloadPool] = None

    def setup(self) -> None:
        self.tree = TxRBTree.create(self.system.heap, self.raw, self.params.kind)
        self.pool = PayloadPool(
            self.system, self.params.keys, self.value_bytes, self.params.kind
        )
        for key in range(self.params.initial_fill):
            self.tree.insert(self.raw, key, self.pool.block_for(key))

    def thread_bodies(self) -> List[Callable]:
        return [self._make_body(i) for i in range(self.params.threads)]

    def _make_body(self, thread_index: int) -> Callable:
        def body(api) -> Generator[None, None, None]:
            keys = self.key_stream(thread_index)
            for tx_index in range(self.params.txs_per_thread):
                batch = [next(keys) for _ in range(self.params.ops_per_tx)]

                def work(tx, batch=batch, tag=tx_index + 1):
                    for key in batch:
                        payload = self.pool.block_for(key)
                        yield from write_payload(
                            tx, payload, self.value_bytes, tag
                        )
                        self.tree.insert(tx, key, payload)
                        yield

                yield from api.run_transaction(work, ops=len(batch))

        return body

    def verify(self) -> bool:
        return self.tree.check_integrity(self.raw)
