"""The paper's benchmark suite (Table IV), built from scratch.

Four PMDK-style transactional data structures — HashMap, B-Tree, RB-Tree,
SkipList — each available in a volatile (DRAM) and persistent (NVM) version;
two hybrid DRAM+NVM key-value stores — Hybrid-Index (HiKV-style: B-Tree
index in DRAM, HashMap index in NVM) and Dual (cross-referencing-log style:
mirrored stores in DRAM and NVM); the Echo store from WHISPER (a master
thread applying client batches to a persistent hash table); and a
memory-intensive streaming co-runner used to create LLC contention.

Every structure is implemented over the transactional heap and accessed
exclusively through a :class:`~repro.runtime.txapi.MemoryContext`, so the
same code runs speculatively, serialised under the fallback lock, or
non-transactionally — and its reads and writes are what the simulator
actually measures.
"""

from .base import WorkloadParams, Workload, write_payload, read_payload
from .btree import BTreeWorkload, TxBTree
from .dual_kv import DualKVWorkload
from .echo import EchoWorkload
from .graphhog import GraphHogWorkload
from .hashmap import HashMapWorkload, TxHashMap
from .hybrid_index import HybridIndexWorkload
from .membound import MemBoundWorkload
from .open_loop import OpenLoopWorkload
from .rbtree import RBTreeWorkload, TxRBTree
from .skiplist import SkipListWorkload, TxSkipList
from .trace_replay import TraceReplayWorkload

WORKLOADS = {
    w.name: w
    for w in (
        HashMapWorkload,
        BTreeWorkload,
        RBTreeWorkload,
        SkipListWorkload,
        HybridIndexWorkload,
        DualKVWorkload,
        EchoWorkload,
        MemBoundWorkload,
        GraphHogWorkload,
        OpenLoopWorkload,
    )
}

__all__ = [
    "WorkloadParams",
    "Workload",
    "write_payload",
    "read_payload",
    "TxHashMap",
    "TxBTree",
    "TxRBTree",
    "TxSkipList",
    "HashMapWorkload",
    "BTreeWorkload",
    "RBTreeWorkload",
    "SkipListWorkload",
    "HybridIndexWorkload",
    "DualKVWorkload",
    "EchoWorkload",
    "MemBoundWorkload",
    "GraphHogWorkload",
    "OpenLoopWorkload",
    "TraceReplayWorkload",
    "WORKLOADS",
]
