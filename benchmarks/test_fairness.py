"""Consolidation fairness: unboundedness also equalises progress.

Not a paper figure, but a direct consequence of its motivation (Section
III-C): under LLC contention, the bounded design's capacity fallbacks
serialise some consolidated applications far more than others, while UHTM
lets all of them progress.  Jain's fairness index over per-process
committed operations quantifies it.
"""

from __future__ import annotations

from repro.harness.config import ExperimentSpec, mixed_pmdk
from repro.harness.report import FigureResult
from repro.harness.runner import run_experiment
from repro.params import HTMConfig, HTMDesign, SignatureConfig
from repro.workloads import WorkloadParams

KB = 1 << 10


def run_fairness(quick: bool) -> FigureResult:
    result = FigureResult(
        "Fairness",
        "Jain index over consolidated benchmarks' committed operations",
        ["design", "fairness", "throughput"],
    )
    params = WorkloadParams(
        threads=4,
        txs_per_thread=4 if quick else 8,
        value_bytes=100 * KB,
        keys=256,
        initial_fill=64,
    )
    configs = [
        HTMConfig(design=HTMDesign.LLC_BOUNDED),
        HTMConfig(design=HTMDesign.UHTM,
                  signature=SignatureConfig(bits=4096), isolation=True),
        HTMConfig(design=HTMDesign.IDEAL),
    ]
    for config in configs:
        spec = ExperimentSpec(
            name=f"fairness:{config.label}",
            htm=config,
            benchmarks=mixed_pmdk(params),
            scale=1 / 16,
            cores=16,
            membound_instances=2,
        )
        run = run_experiment(spec)
        result.add_row(config.label, run.fairness(), run.throughput)
    return result


def test_fairness(benchmark, quick, show):
    result = benchmark.pedantic(
        lambda: run_fairness(quick), rounds=1, iterations=1
    )
    show(result)
    rows = result.row_map()
    # Every design completes the same fixed work, so fairness is high for
    # all; the unbounded designs must not be less fair than the baseline.
    assert rows["4k_opt"][1] >= rows["LLC-Bounded"][1] - 0.1
    assert rows["Ideal"][1] >= 0.8
