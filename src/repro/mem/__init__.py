"""The hybrid DRAM/NVM memory substrate.

This package models everything below the LLC: the physical address-space
layout (DRAM and NVM regions plus their reserved log areas), word-addressed
backing stores with Table III latencies, a bump/free-list allocator, the
hardware undo/redo logs appended by the memory controllers, and the DRAM
cache that sits between the LLC and NVM (Jeong et al., MICRO'18).
"""

from .address import AddressSpace, MemoryKind, line_of, line_index, word_of
from .allocator import RegionAllocator
from .backend import BackingStore
from .controller import MemoryController
from .dram_cache import DramCache
from .log import HardwareLog, LogRecord, RecordKind

__all__ = [
    "AddressSpace",
    "MemoryKind",
    "line_of",
    "line_index",
    "word_of",
    "RegionAllocator",
    "BackingStore",
    "MemoryController",
    "DramCache",
    "HardwareLog",
    "LogRecord",
    "RecordKind",
]
