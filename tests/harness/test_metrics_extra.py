"""Tests for per-process metrics and the fairness index."""

from __future__ import annotations

import pytest

from repro.harness.config import ExperimentSpec, consolidated
from repro.harness.metrics import RunResult
from repro.harness.runner import run_experiment
from repro.params import HTMConfig
from repro.workloads import WorkloadParams


class TestFairnessIndex:
    def test_perfectly_fair(self):
        result = RunResult("x", 1.0, 40, 0, 0, 0,
                           ops_by_process={1: 10, 2: 10, 3: 10, 4: 10})
        assert result.fairness() == pytest.approx(1.0)

    def test_totally_unfair(self):
        result = RunResult("x", 1.0, 40, 0, 0, 0,
                           ops_by_process={1: 40, 2: 0, 3: 0, 4: 0})
        assert result.fairness() == pytest.approx(0.25)

    def test_empty_defaults_to_one(self):
        assert RunResult("x", 1.0, 0, 0, 0, 0).fairness() == 1.0

    def test_intermediate(self):
        result = RunResult("x", 1.0, 30, 0, 0, 0,
                           ops_by_process={1: 20, 2: 10})
        assert 0.5 < result.fairness() < 1.0


class TestPerProcessCollection:
    def test_ops_by_process_populated(self):
        spec = ExperimentSpec(
            name="f",
            htm=HTMConfig(),
            benchmarks=consolidated(
                "hashmap", 3,
                WorkloadParams(threads=2, txs_per_thread=2,
                               value_bytes=16 << 10, keys=64,
                               initial_fill=16),
            ),
            scale=1 / 16,
            cores=4,
        )
        result = run_experiment(spec)
        assert len(result.ops_by_process) == 3
        assert sum(result.ops_by_process.values()) == result.committed_ops
        assert 0.0 < result.fairness() <= 1.0
