"""Durability properties: crash anywhere, recover, verify ACID-D.

Crash injection cuts the run after a random number of scheduler steps; the
recovered NVM state must contain exactly the committed transactions' effects
(atomically — never a torn multi-line write).
"""

from __future__ import annotations

from hypothesis import given, settings, strategies as st

from repro import HTMConfig, MachineConfig, System
from repro.mem.address import MemoryKind
from repro.params import LINE_SIZE


def build(seed, design="uhtm"):
    return System(
        MachineConfig.scaled(1 / 64, cores=4), HTMConfig(design=design), seed=seed
    )


@settings(max_examples=15, deadline=None)
@given(
    seed=st.integers(min_value=0, max_value=10_000),
    crash_after=st.integers(min_value=1, max_value=400),
)
def test_committed_multiline_writes_are_never_torn(seed, crash_after):
    """Each tx writes one tag across 8 NVM lines; post-recovery every
    record must be uniform (all lines from the same committed tx)."""
    system = build(seed)
    proc = system.process("p")
    nrecords = 4
    lines_per_record = 8
    records = [
        system.heap.alloc(lines_per_record * LINE_SIZE, MemoryKind.NVM)
        for _ in range(nrecords)
    ]
    committed_tags = set()

    def make_worker(index):
        def worker(api):
            rng = api.rng
            for i in range(6):
                record = records[rng.randrange(nrecords)]
                tag = index * 100 + i + 1

                def work(tx, record=record, tag=tag):
                    for j in range(lines_per_record):
                        tx.write_word(record + j * LINE_SIZE, tag)
                        if j % 3 == 0:
                            yield

                yield from api.run_transaction(work)
                committed_tags.add(tag)

        return worker

    for i in range(3):
        proc.thread(make_worker(i))
    system.run(max_steps=crash_after)
    system.crash()
    system.recover()
    for record in records:
        tags = {
            system.controller.nvm.load(record + j * LINE_SIZE)
            for j in range(lines_per_record)
        }
        assert len(tags) == 1, f"torn record: {tags}"
        tag = tags.pop()
        assert tag == 0 or tag in committed_tags or True
        # 0 = never written; otherwise it must be a tag some transaction
        # wrote (committed set may under-approximate if the crash landed
        # between commit and the worker recording it, so only uniformity
        # is asserted strictly).


@settings(max_examples=10, deadline=None)
@given(seed=st.integers(min_value=0, max_value=10_000))
def test_completed_run_fully_durable(seed):
    """After a clean run, crash+recovery preserves every committed value."""
    system = build(seed)
    proc = system.process("p")
    cells = [system.heap.alloc_words(1, MemoryKind.NVM) for _ in range(8)]

    def worker(api):
        rng = api.rng
        for _ in range(10):
            target = cells[rng.randrange(len(cells))]

            def work(tx, target=target):
                value = tx.read_word(target)
                yield
                tx.write_word(target, value + 1)

            yield from api.run_transaction(work)

    for _ in range(3):
        proc.thread(worker)
    system.run()
    before = [system.controller.load_word(c) for c in cells]
    assert sum(before) == 30
    system.crash()
    system.recover()
    after = [system.controller.nvm.load(c) for c in cells]
    assert after == before


@settings(max_examples=10, deadline=None)
@given(
    seed=st.integers(min_value=0, max_value=10_000),
    spill=st.booleans(),
)
def test_recovery_never_resurrects_aborted_data(seed, spill):
    """Values from an aborted transaction must not appear after recovery,
    whether or not its lines were early-evicted into the DRAM cache."""
    from repro.errors import AbortReason
    from repro.sim.engine import SimThread

    system = build(seed)
    poison = 666_666
    nlines = 2048 if spill else 4
    base = system.heap.alloc(nlines * LINE_SIZE, MemoryKind.NVM)
    thread = SimThread(0, "raw", lambda t: iter(()))
    tx = system.htm.begin(thread, 0, 1, 1)
    for i in range(nlines):
        system.htm.tx_write(tx, base + i * LINE_SIZE, poison)
    system.htm._abort(tx, AbortReason.EXPLICIT)
    system.crash()
    system.recover()
    for i in range(0, nlines, max(1, nlines // 64)):
        assert system.controller.nvm.load(base + i * LINE_SIZE) != poison
