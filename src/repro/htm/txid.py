"""Transaction identifiers.

"Transaction ID, a monotonically increasing global counter, is stored in a
register on each core and uniquely identifies a transaction" (Section IV-C).
IDs are never reused within a run, which is what lets the directory and
signatures name transactions instead of cores (context-switch safety).
"""

from __future__ import annotations


class TxIdAllocator:
    """A monotonically increasing global transaction-ID counter."""

    def __init__(self, start: int = 1) -> None:
        if start < 1:
            raise ValueError("transaction IDs start at 1 (0 means 'none')")
        self._next = start

    def allocate(self) -> int:
        tx_id = self._next
        self._next += 1
        return tx_id

    @property
    def last_allocated(self) -> int:
        return self._next - 1
