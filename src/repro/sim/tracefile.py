"""Memory-trace capture format: record once, replay anywhere.

A :class:`MemoryTrace` is a per-thread list of committed transactions, each
a list of (is_write, kind, offset) operations with addresses normalised to
offsets within their memory kind — so a trace captured on one machine
configuration replays on any other (the replay workload allocates fresh
arenas of the right size).

The on-disk format is line-oriented text::

    # uhtm-trace v1
    THREAD 0
    TX
    R d 128
    W n 4096
    END
    TX
    ...

``d`` = DRAM, ``n`` = NVM; offsets are byte offsets into the kind's arena.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, TextIO, Tuple

from ..errors import ReproError
from ..mem.address import MemoryKind

_MAGIC = "# uhtm-trace v1"

_KIND_CODE = {MemoryKind.DRAM: "d", MemoryKind.NVM: "n"}
_CODE_KIND = {"d": MemoryKind.DRAM, "n": MemoryKind.NVM}


@dataclass(frozen=True)
class TracedOp:
    is_write: bool
    kind: MemoryKind
    offset: int


@dataclass
class TracedTx:
    ops: List[TracedOp] = field(default_factory=list)


@dataclass
class ThreadTrace:
    thread_id: int
    txs: List[TracedTx] = field(default_factory=list)


class MemoryTrace:
    """A complete captured workload: one op stream per thread."""

    def __init__(self) -> None:
        self._threads: Dict[int, ThreadTrace] = {}

    def thread(self, thread_id: int) -> ThreadTrace:
        trace = self._threads.get(thread_id)
        if trace is None:
            trace = ThreadTrace(thread_id)
            self._threads[thread_id] = trace
        return trace

    @property
    def threads(self) -> List[ThreadTrace]:
        return [self._threads[k] for k in sorted(self._threads)]

    def total_txs(self) -> int:
        return sum(len(t.txs) for t in self.threads)

    def total_ops(self) -> int:
        return sum(len(tx.ops) for t in self.threads for tx in t.txs)

    def arena_bytes(self, kind: MemoryKind) -> int:
        """Bytes of arena needed to replay all offsets of ``kind``."""
        top = 0
        for thread in self.threads:
            for tx in thread.txs:
                for op in tx.ops:
                    if op.kind is kind:
                        top = max(top, op.offset + 8)
        return top

    # -- serialisation -------------------------------------------------------

    def dump(self, handle: TextIO) -> None:
        handle.write(_MAGIC + "\n")
        for thread in self.threads:
            handle.write(f"THREAD {thread.thread_id}\n")
            for tx in thread.txs:
                handle.write("TX\n")
                for op in tx.ops:
                    tag = "W" if op.is_write else "R"
                    handle.write(f"{tag} {_KIND_CODE[op.kind]} {op.offset}\n")
                handle.write("END\n")

    def dumps(self) -> str:
        import io

        buffer = io.StringIO()
        self.dump(buffer)
        return buffer.getvalue()

    @classmethod
    def load(cls, handle: TextIO) -> "MemoryTrace":
        trace = cls()
        first = handle.readline().rstrip("\n")
        if first != _MAGIC:
            raise ReproError(f"not a uhtm trace (header {first!r})")
        current_thread: ThreadTrace = None
        current_tx: TracedTx = None
        for line_no, raw in enumerate(handle, start=2):
            line = raw.strip()
            if not line or line.startswith("#"):
                continue
            parts = line.split()
            if parts[0] == "THREAD":
                current_thread = trace.thread(int(parts[1]))
                current_tx = None
            elif parts[0] == "TX":
                if current_thread is None:
                    raise ReproError(f"line {line_no}: TX before THREAD")
                current_tx = TracedTx()
                current_thread.txs.append(current_tx)
            elif parts[0] == "END":
                current_tx = None
            elif parts[0] in ("R", "W"):
                if current_tx is None:
                    raise ReproError(f"line {line_no}: op outside TX")
                current_tx.ops.append(
                    TracedOp(
                        is_write=parts[0] == "W",
                        kind=_CODE_KIND[parts[1]],
                        offset=int(parts[2]),
                    )
                )
            else:
                raise ReproError(f"line {line_no}: bad record {line!r}")
        return trace

    @classmethod
    def loads(cls, text: str) -> "MemoryTrace":
        import io

        return cls.load(io.StringIO(text))


class TraceCapture:
    """Attached to an HTM system to record committed transactions.

    Speculative operations buffer per transaction; only commits publish to
    the trace (an aborted attempt's ops are retried anyway).
    """

    def __init__(self, dram_base: int, nvm_base: int) -> None:
        self._dram_base = dram_base
        self._nvm_base = nvm_base
        self._pending: Dict[int, Tuple[int, List[TracedOp]]] = {}
        self.trace = MemoryTrace()

    def begin(self, tx_id: int, thread_id: int) -> None:
        self._pending[tx_id] = (thread_id, [])

    def op(self, tx_id: int, is_write: bool, addr: int) -> None:
        entry = self._pending.get(tx_id)
        if entry is None:
            return
        if addr >= self._nvm_base:
            kind, offset = MemoryKind.NVM, addr - self._nvm_base
        else:
            kind, offset = MemoryKind.DRAM, addr - self._dram_base
        entry[1].append(TracedOp(is_write, kind, offset))

    def commit(self, tx_id: int) -> None:
        entry = self._pending.pop(tx_id, None)
        if entry is None:
            return
        thread_id, ops = entry
        tx = TracedTx(ops)
        self.trace.thread(thread_id).txs.append(tx)

    def abort(self, tx_id: int) -> None:
        self._pending.pop(tx_id, None)
