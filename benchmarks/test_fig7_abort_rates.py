"""Figure 7: abort-rate decomposition vs footprint and signature size.

Paper shape: abort rates rise with transaction footprint, fall with
signature size, and are dominated by false positives; isolation (_opt)
lowers the rate at every point.
"""

from __future__ import annotations

from collections import defaultdict

import pytest

from repro.harness.figures import fig7, fig7_grid


def test_fig7(benchmark, quick, jobs, show):
    result = benchmark.pedantic(
        lambda: fig7(quick=quick, jobs=jobs), rounds=1, iterations=1
    )
    show(result)
    by_config = defaultdict(dict)
    for footprint, config, rate, true, false, capacity in result.rows:
        by_config[config][footprint] = rate

    footprints = sorted({row[0] for row in result.rows})
    small, large = footprints[0], footprints[-1]

    # Shape 1: larger footprints abort more for every configuration.
    for config, rates in by_config.items():
        assert rates[large] >= rates[small] - 0.05, config

    # Shape 2: at the smallest footprint, bigger signatures abort less.
    sig_sizes = sorted(
        {c.rsplit("_", 1)[0] for c in by_config}, key=_sig_bits
    )
    smallest_sig = f"{sig_sizes[0]}_sig"
    largest_sig = f"{sig_sizes[-1]}_sig"
    assert by_config[largest_sig][small] <= by_config[smallest_sig][small]

    # Shape 3: isolation lowers (or matches) the abort rate everywhere.
    for size in sig_sizes:
        for footprint in footprints:
            assert (
                by_config[f"{size}_opt"][footprint]
                <= by_config[f"{size}_sig"][footprint] + 0.05
            )


def _sig_bits(label: str) -> int:
    if label.endswith("k"):
        return int(label[:-1]) * 1024
    return int(label)


@pytest.mark.smoke
def test_fig7_smoke(smoke_point):
    """One tiny Fig. 7 point must still build and simulate end-to-end."""
    result = smoke_point(fig7_grid)
    assert result.begins > 0
    assert result.verified
