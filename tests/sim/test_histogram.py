"""Tests for the log2 histogram and its registry integration."""

from __future__ import annotations

import pytest
from hypothesis import given, strategies as st

from repro.sim.stats import Histogram, ReservoirHistogram, StatsRegistry


class TestHistogram:
    def test_basic_stats(self):
        histogram = Histogram()
        for value in (1.0, 2.0, 3.0, 100.0):
            histogram.record(value)
        assert histogram.count == 4
        assert histogram.mean == pytest.approx(26.5)
        assert histogram.max == 100.0

    def test_bucketing(self):
        histogram = Histogram()
        histogram.record(0.5)   # bucket 0
        histogram.record(1.0)   # bucket 0
        histogram.record(2.0)   # bucket 1
        histogram.record(5.0)   # bucket 2
        buckets = dict(histogram.nonzero_buckets())
        assert buckets[0] == 2
        assert buckets[1] == 1
        assert buckets[2] == 1

    def test_percentile_bounds_sample(self):
        histogram = Histogram()
        for i in range(100):
            histogram.record(float(i + 1))
        p50 = histogram.percentile(0.5)
        assert 32 <= p50 <= 64
        assert histogram.percentile(1.0) >= 100

    def test_percentile_of_empty(self):
        assert Histogram().percentile(0.5) == 0.0

    def test_percentile_of_all_zero_samples_is_zero(self):
        """Regression: bucket 0 holds [0, 2), so an all-zero histogram used
        to report 2.0 ns for every percentile."""
        histogram = Histogram()
        for _ in range(10):
            histogram.record(0.0)
        assert histogram.percentile(0.5) == 0.0
        assert histogram.percentile(1.0) == 0.0
        assert histogram.max == 0.0

    def test_bucket_zero_covers_zero_to_two(self):
        histogram = Histogram()
        histogram.record(0.0)
        histogram.record(1.999)
        assert dict(histogram.nonzero_buckets()) == {0: 2}
        # Nonzero samples in bucket 0 still report the bucket's upper bound.
        assert histogram.percentile(1.0) == 2.0

    def test_validation(self):
        with pytest.raises(ValueError):
            Histogram().record(-1.0)
        with pytest.raises(ValueError):
            Histogram().percentile(0.0)

    @given(values=st.lists(st.floats(min_value=0, max_value=1e12),
                           min_size=1, max_size=200))
    def test_count_and_mean_consistent(self, values):
        histogram = Histogram()
        for value in values:
            histogram.record(value)
        assert histogram.count == len(values)
        assert histogram.mean == pytest.approx(sum(values) / len(values))
        assert histogram.max == max(values)

    def test_huge_value_clamps_to_last_bucket(self):
        histogram = Histogram(buckets=4)
        histogram.record(1e18)
        assert histogram.nonzero_buckets() == [(3, 1)]


class TestInterpolatedPercentile:
    def test_default_method_is_still_the_coarse_upper_bound(self):
        # Figure parity: every pre-traffic figure was generated with the
        # bucket-upper-bound estimate, so the default must not move.
        histogram = Histogram()
        for i in range(1000):
            histogram.record(1000.0 + i)
        assert histogram.percentile(0.99) == histogram.percentile(0.999)
        assert histogram.percentile(0.99) == 2048.0

    def test_interpolation_distinguishes_tail_percentiles(self):
        # Regression for the tail-coarseness bug: every one of these
        # samples lands in the [1024, 2048) bucket, collapsing p99 and
        # p999 to 2048.0 under the default method; sub-bucket
        # interpolation keeps them apart.
        histogram = Histogram()
        for value in range(1024, 2048):
            histogram.record(float(value))
        assert histogram.percentile(0.99) == histogram.percentile(0.999)
        p99 = histogram.percentile(0.99, method="interpolated")
        p999 = histogram.percentile(0.999, method="interpolated")
        assert p99 < p999 <= 2047.0
        assert p99 == pytest.approx(2037.7, abs=0.5)

    def test_interpolated_clamps_to_observed_max(self):
        histogram = Histogram()
        histogram.record(5.0)
        assert histogram.percentile(1.0, method="interpolated") == 5.0

    def test_unknown_method_rejected(self):
        with pytest.raises(ValueError):
            Histogram().percentile(0.5, method="approximate")

    @given(values=st.lists(st.floats(min_value=0, max_value=1e12),
                           min_size=1, max_size=200))
    def test_interpolated_is_monotone_and_bounded(self, values):
        histogram = Histogram()
        for value in values:
            histogram.record(value)
        fractions = (0.1, 0.5, 0.9, 0.99, 0.999, 1.0)
        estimates = [
            histogram.percentile(f, method="interpolated") for f in fractions
        ]
        assert estimates == sorted(estimates)
        assert estimates[-1] <= max(values)


class TestReservoirHistogram:
    def test_exact_tail_percentiles(self):
        histogram = ReservoirHistogram()
        for i in range(1000):
            histogram.record(float(i + 1))
        assert histogram.exact
        assert histogram.percentile(0.5) == 500.0
        assert histogram.percentile(0.99) == 990.0
        assert histogram.percentile(0.999) == 999.0

    def test_bucket_methods_remain_available(self):
        histogram = ReservoirHistogram()
        for i in range(100):
            histogram.record(float(i + 1))
        assert histogram.percentile(0.5, method="upper") == 64.0
        assert histogram.percentile(0.5, method="interpolated") <= 64.0

    def test_capacity_overflow_degrades_to_interpolated(self):
        histogram = ReservoirHistogram(capacity=10)
        for i in range(11):
            histogram.record(float(i + 1))
        assert not histogram.exact
        # Never a wrong answer, just a coarser one.
        assert 0.0 < histogram.percentile(0.5) <= 11.0
        assert histogram.percentile(1.0) == 11.0

    def test_empty_reservoir_percentile_is_zero(self):
        assert ReservoirHistogram().percentile(0.5) == 0.0

    def test_merge_keeps_exactness(self):
        a = ReservoirHistogram()
        b = ReservoirHistogram()
        a.record(1.0)
        b.record(3.0)
        a.merge(b)
        assert a.exact
        assert a.percentile(1.0) == 3.0
        assert a.count == 2

    def test_merge_with_dropped_side_drops(self):
        a = ReservoirHistogram()
        b = ReservoirHistogram(capacity=1)
        b.record(1.0)
        b.record(2.0)
        assert not b.exact
        a.record(3.0)
        a.merge(b)
        assert not a.exact
        assert a.count == 3

    def test_registry_factory_creates_and_caches(self):
        stats = StatsRegistry()
        histogram = stats.histogram("lat", factory=ReservoirHistogram)
        assert isinstance(histogram, ReservoirHistogram)
        # The factory only matters at creation; later lookups return the
        # same object whatever they pass.
        assert stats.histogram("lat") is histogram

    @given(values=st.lists(st.floats(min_value=0, max_value=1e9),
                           min_size=1, max_size=300))
    def test_exact_matches_sorted_rank(self, values):
        histogram = ReservoirHistogram()
        for value in values:
            histogram.record(value)
        ordered = sorted(values)
        for fraction in (0.5, 0.99, 0.999, 1.0):
            import math
            rank = max(0, math.ceil(fraction * len(ordered)) - 1)
            assert histogram.percentile(fraction) == ordered[rank]


class TestRegistryIntegration:
    def test_lazily_created_and_cached(self):
        stats = StatsRegistry()
        assert stats.histogram("lat") is stats.histogram("lat")

    def test_listing(self):
        stats = StatsRegistry()
        stats.histogram("a").record(1)
        assert "a" in stats.histograms()

    def test_tx_latency_recorded_by_htm(self):
        from repro import HTMConfig, MachineConfig, System
        from repro.mem.address import MemoryKind

        system = System(MachineConfig.scaled(1 / 64, cores=2), HTMConfig())
        proc = system.process("p")
        addr = system.heap.alloc_words(1, MemoryKind.NVM)

        def body(api):
            for _ in range(5):
                yield from api.run_transaction(
                    lambda tx: tx.write_word(addr, 1)
                )

        proc.thread(body)
        system.run()
        histogram = system.stats.histogram("tx.latency_ns")
        assert histogram.count == 5
        assert histogram.mean > 0
