"""Run metrics extracted from a finished simulation."""

from __future__ import annotations

import dataclasses
from dataclasses import dataclass, field
from typing import Any, Dict, Optional, TYPE_CHECKING

from ..sim.stats import ratio

if TYPE_CHECKING:  # pragma: no cover
    from ..runtime.system import System


@dataclass
class RunResult:
    """Everything the figures need from one experiment run."""

    label: str
    elapsed_ns: float
    committed_ops: int
    commits: int
    begins: int
    aborts: int
    aborts_by_reason: Dict[str, int] = field(default_factory=dict)
    overflows: int = 0
    capacity_fallbacks: int = 0
    slow_path_executions: int = 0
    sig_checks: int = 0
    sig_false_hits: int = 0
    sig_true_hits: int = 0
    verified: bool = True
    #: Committed operations per simulated process (consolidation fairness).
    ops_by_process: Dict[int, int] = field(default_factory=dict)
    #: Open-loop traffic latency summary (empty for closed-loop workloads):
    #: overall and per-tenant percentiles of arrival-to-completion latency,
    #: in nanoseconds, plus request/backlog counts — see
    #: :func:`latency_summary`.
    latency: Dict[str, float] = field(default_factory=dict)

    @property
    def throughput(self) -> float:
        """Committed operations per simulated millisecond."""
        return ratio(self.committed_ops, self.elapsed_ns / 1e6)

    @property
    def abort_rate(self) -> float:
        """Aborted transaction attempts over all attempts."""
        return ratio(self.aborts, self.begins)

    @property
    def false_positive_share(self) -> float:
        """Fraction of aborts caused by Bloom-filter aliasing."""
        return ratio(self.aborts_by_reason.get("false_positive", 0), self.aborts)

    def abort_decomposition(self) -> Dict[str, float]:
        """Abort causes as fractions of transaction attempts (Figure 7)."""
        groups = {
            "true_conflict": ("conflict_coherence", "conflict_true",
                              "non_tx_conflict", "lock_preempted"),
            "false_positive": ("false_positive",),
            "capacity": ("capacity",),
        }
        out = {}
        for group, reasons in groups.items():
            total = sum(self.aborts_by_reason.get(r, 0) for r in reasons)
            out[group] = ratio(total, self.begins)
        return out

    def speedup_over(self, baseline: "RunResult") -> float:
        return ratio(self.throughput, baseline.throughput)

    def fairness(self) -> float:
        """Jain's fairness index over per-process committed operations."""
        values = [v for v in self.ops_by_process.values() if v >= 0]
        if not values:
            return 1.0
        total = sum(values)
        squares = sum(v * v for v in values)
        if squares == 0:
            return 1.0
        return (total * total) / (len(values) * squares)


@dataclass
class CampaignMetrics:
    """Summary of one fault-injection campaign (see :mod:`repro.faults`).

    Produced by :meth:`repro.faults.campaign.CampaignResult.metrics` and
    consumed by the same report/export path as :class:`RunResult`-derived
    figures; kept here so dashboards aggregate simulation and robustness
    metrics from one module.
    """

    workload: str
    crash_points_tested: int
    recoveries_verified: int
    failures: int
    replayed_lines: int
    discarded_records: int
    #: Steps in the minimized reproducing plan (None when nothing failed).
    minimized_plan_steps: Optional[int] = None

    @property
    def verification_rate(self) -> float:
        """Verified recoveries over crash points tested."""
        return ratio(self.recoveries_verified, self.crash_points_tested)

    @property
    def ok(self) -> bool:
        return self.failures == 0


def run_result_to_dict(result: RunResult) -> Dict[str, Any]:
    """A JSON-safe dict that round-trips through :func:`run_result_from_dict`.

    JSON object keys are strings, so ``ops_by_process`` (keyed by process id)
    is stringified here and parsed back on load.  Floats survive the trip
    exactly (``json`` serialises them via ``repr``), which is what lets the
    result cache and the parallel executor promise bit-identical results.
    """
    payload = dataclasses.asdict(result)
    payload["ops_by_process"] = {
        str(pid): ops for pid, ops in result.ops_by_process.items()
    }
    return payload


def run_result_from_dict(payload: Dict[str, Any]) -> RunResult:
    """Rebuild a :class:`RunResult` written by :func:`run_result_to_dict`."""
    data = dict(payload)
    data["aborts_by_reason"] = dict(data.get("aborts_by_reason", {}))
    data["latency"] = dict(data.get("latency", {}))
    data["ops_by_process"] = {
        int(pid): ops for pid, ops in data.get("ops_by_process", {}).items()
    }
    field_names = {f.name for f in dataclasses.fields(RunResult)}
    unknown = set(data) - field_names
    if unknown:
        raise ValueError(f"unknown RunResult fields: {sorted(unknown)}")
    return RunResult(**data)


#: Stats histogram prefix the open-loop traffic workload records into.
LATENCY_HISTOGRAM = "traffic.latency_ns"

#: The tail percentiles every traffic report leads with.
TAIL_FRACTIONS = (("p50", 0.50), ("p99", 0.99), ("p999", 0.999))


def latency_summary(stats) -> Dict[str, float]:
    """Fold the traffic latency histograms into a flat JSON-safe dict.

    Empty when the run recorded no request latency (every closed-loop
    workload).  Keys: ``count``/``mean``/``max``/``p50``/``p99``/``p999``
    for the all-tenants histogram, ``<tenant>.p50``-style entries per
    tenant histogram, and ``backlogged`` (arrivals that found their thread
    still busy).  Values are floats so the dict round-trips through JSON
    bit-exactly.
    """
    histograms = stats.histograms()
    base = histograms.get(LATENCY_HISTOGRAM)
    if base is None or base.count == 0:
        return {}
    summary: Dict[str, float] = {
        "count": float(base.count),
        "mean": base.mean,
        "max": base.max,
    }
    for name, fraction in TAIL_FRACTIONS:
        summary[name] = base.percentile(fraction)
    prefix = LATENCY_HISTOGRAM + "."
    for name in sorted(histograms):
        if not name.startswith(prefix):
            continue
        histogram = histograms[name]
        if histogram.count == 0:
            continue
        tenant = name[len(prefix):]
        for tail, fraction in TAIL_FRACTIONS:
            summary[f"{tenant}.{tail}"] = histogram.percentile(fraction)
    summary["backlogged"] = float(stats.counter("traffic.backlogged"))
    return summary


def collect_metrics(system: "System", label: str, verified: bool) -> RunResult:
    stats = system.stats
    prefix = "tx.aborts."
    by_reason = {
        name[len(prefix):]: value
        for name, value in stats.counters_with_prefix(prefix).items()
    }
    process_prefix = "ops.by_process."
    ops_by_process = {
        int(name[len(process_prefix):]): value
        for name, value in stats.counters_with_prefix(process_prefix).items()
    }
    return RunResult(
        label=label,
        elapsed_ns=system.elapsed_ns,
        committed_ops=stats.counter("ops.committed"),
        commits=stats.counter("tx.commits"),
        begins=stats.counter("tx.begins"),
        aborts=stats.counter("tx.aborts"),
        aborts_by_reason=by_reason,
        overflows=stats.counter("tx.overflows"),
        capacity_fallbacks=stats.counter("tx.capacity_fallbacks"),
        slow_path_executions=stats.counter("tx.slow_path_executions"),
        sig_checks=stats.counter("sig.checks"),
        sig_false_hits=stats.counter("sig.hits.false"),
        sig_true_hits=stats.counter("sig.hits.true"),
        verified=verified,
        ops_by_process=ops_by_process,
        latency=latency_summary(stats),
    )
