#!/usr/bin/env python3
"""Compare the four HTM designs on one overflowing workload.

Runs the same consolidated B-tree benchmark (transactions far larger than
the LLC) under LLC-Bounded, Signature-Only, UHTM, and Ideal, and prints a
side-by-side of throughput, abort causes, and fallback serialisations —
a miniature of the paper's Figure 6 story.

The five design points are independent simulations, so they fan out over a
process pool; results are bit-identical for any ``--jobs`` (the harness's
parallelism contract, see docs/HARNESS.md).

Run with:  python examples/design_comparison.py [--jobs N]
"""

import argparse

from repro.harness.config import BenchmarkSpec, ExperimentSpec
from repro.harness.parallel import GridPoint, run_grid
from repro.harness.report import format_table
from repro.params import HTMConfig, HTMDesign, SignatureConfig
from repro.workloads import WorkloadParams


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--jobs", type=int, default=2,
        help="worker processes for the design grid (default 2)",
    )
    args = parser.parse_args()

    params = WorkloadParams(
        threads=4,
        txs_per_thread=4,
        value_bytes=100 << 10,  # 100 KB transactions (the paper's Fig. 6 point)
        keys=256,
        initial_fill=64,
    )
    benchmarks = tuple(
        BenchmarkSpec("btree", params) for _ in range(4)
    )
    configs = [
        HTMConfig(design=HTMDesign.LLC_BOUNDED),
        HTMConfig(design=HTMDesign.SIGNATURE_ONLY,
                  signature=SignatureConfig(bits=4096)),
        HTMConfig(design=HTMDesign.UHTM, isolation=False,
                  signature=SignatureConfig(bits=4096)),
        HTMConfig(design=HTMDesign.UHTM, isolation=True,
                  signature=SignatureConfig(bits=4096)),
        HTMConfig(design=HTMDesign.IDEAL),
    ]
    points = [
        GridPoint(
            spec=ExperimentSpec(
                name=f"compare:{config.label}",
                htm=config,
                benchmarks=benchmarks,
                scale=1 / 16,
                cores=16,
                membound_instances=2,
            ),
            key=config.label,
        )
        for config in configs
    ]
    results = run_grid(points, jobs=args.jobs)
    rows = []
    baseline = results[0]
    for config, result in zip(configs, results):
        rows.append([
            config.label,
            round(result.throughput, 1),
            round(result.speedup_over(baseline), 2),
            f"{result.abort_rate:.0%}",
            f"{result.false_positive_share:.0%}",
            result.capacity_fallbacks,
            result.slow_path_executions,
        ])
    print(format_table(
        ["design", "ops/ms", "vs LLC-Bounded", "abort rate",
         "FP share", "capacity fallbacks", "slow paths"],
        rows,
        title="100 KB B-tree transactions, 4 consolidated instances + 2 hogs",
    ))
    print(
        "\nReading the table: the bounded design serialises on every\n"
        "overflow; signature-only aborts almost everything; UHTM's staged\n"
        "detection recovers most of the Ideal design's concurrency, and\n"
        "isolation (_opt) removes cross-process false conflicts."
    )


if __name__ == "__main__":
    main()
