"""The Transaction Status Structure (TSS).

Section IV-E: "UHTM maintains the transaction status structure (TSS) to
track the status of all running transactions, whose entry consists of the
transaction ID, abortion flag, and the overflow bit."

The abort flag is how a conflict winner kills a (possibly suspended) victim:
the victim's thread observes the flag at its next transactional operation
and unwinds to its retry loop.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Dict, List, Optional

from ..errors import AbortReason, TransactionStateError


class TxStatus(enum.Enum):
    ACTIVE = "active"
    ABORTED = "aborted"
    COMMITTED = "committed"


@dataclass
class TssEntry:
    tx_id: int
    status: TxStatus = TxStatus.ACTIVE
    abort_reason: Optional[AbortReason] = None
    overflowed: bool = False
    #: Conflict domain the transaction runs in (process group ID).
    domain_id: int = 0


class TransactionStatusStructure:
    """Status of all transactions that have ever run (sparse, reclaimed)."""

    def __init__(self) -> None:
        self._entries: Dict[int, TssEntry] = {}

    def register(self, tx_id: int, domain_id: int) -> TssEntry:
        if tx_id in self._entries:
            raise TransactionStateError(f"transaction {tx_id} already registered")
        entry = TssEntry(tx_id, domain_id=domain_id)
        self._entries[tx_id] = entry
        return entry

    def entry(self, tx_id: int) -> TssEntry:
        entry = self._entries.get(tx_id)
        if entry is None:
            raise TransactionStateError(f"unknown transaction {tx_id}")
        return entry

    def is_active(self, tx_id: int) -> bool:
        entry = self._entries.get(tx_id)
        return entry is not None and entry.status is TxStatus.ACTIVE

    def mark_aborted(self, tx_id: int, reason: AbortReason) -> None:
        entry = self.entry(tx_id)
        if entry.status is TxStatus.COMMITTED:
            raise TransactionStateError(f"transaction {tx_id} already committed")
        if entry.status is TxStatus.ABORTED:
            return  # double abort is a no-op; first reason wins
        entry.status = TxStatus.ABORTED
        entry.abort_reason = reason

    def mark_committed(self, tx_id: int) -> None:
        entry = self.entry(tx_id)
        if entry.status is not TxStatus.ACTIVE:
            raise TransactionStateError(
                f"cannot commit transaction {tx_id} in state {entry.status.value}"
            )
        entry.status = TxStatus.COMMITTED

    def set_overflowed(self, tx_id: int) -> None:
        self.entry(tx_id).overflowed = True

    def is_overflowed(self, tx_id: int) -> bool:
        entry = self._entries.get(tx_id)
        return entry is not None and entry.overflowed

    def active_in_domain(self, domain_id: int) -> List[int]:
        return [
            e.tx_id
            for e in self._entries.values()
            if e.status is TxStatus.ACTIVE and e.domain_id == domain_id
        ]

    def reclaim(self, tx_id: int) -> None:
        """Drop a completed transaction's entry (bounded hardware table)."""
        entry = self._entries.get(tx_id)
        if entry is not None and entry.status is not TxStatus.ACTIVE:
            del self._entries[tx_id]

    def __len__(self) -> int:
        return len(self._entries)
