"""Experiment specifications.

An :class:`ExperimentSpec` is everything needed to reproduce one data point:
the machine (scale, cores), the HTM design under test, the consolidated
benchmark instances (the paper runs four instances with four threads each),
and how many memory-intensive co-runners to add.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Dict, Optional, Tuple

from ..errors import ConfigError
from ..kernels import ENGINE_CHOICES
from ..params import HTMConfig, MachineConfig
from ..workloads import WORKLOADS, WorkloadParams

#: Default machine scale for harness runs (1/16 of Table III sizes).
DEFAULT_SCALE = 1 / 16


@dataclass(frozen=True)
class BenchmarkSpec:
    """One benchmark instance: a workload bound to its own process."""

    workload: str
    params: WorkloadParams
    #: Extra constructor kwargs (e.g. Echo's ``long_tx_ratio``).
    kwargs: Tuple[Tuple[str, Any], ...] = ()

    def __post_init__(self) -> None:
        if self.workload not in WORKLOADS:
            raise ConfigError(f"unknown workload {self.workload!r}")

    def kwargs_dict(self) -> Dict[str, Any]:
        return dict(self.kwargs)


@dataclass(frozen=True)
class ExperimentSpec:
    """One simulator run."""

    name: str
    htm: HTMConfig
    benchmarks: Tuple[BenchmarkSpec, ...]
    scale: float = DEFAULT_SCALE
    cores: int = 16
    #: Memory-intensive co-runner instances (one thread each).
    membound_instances: int = 0
    membound_llc_multiple: float = 2.0
    #: Which co-runner: "membound" (streaming) or "graphhog" (random walk).
    corunner: str = "membound"
    seed: int = 2020
    #: Safety cap on scheduler steps (0 = unlimited).
    max_steps: int = 0
    #: Extra cache shrink relative to footprints (contention compensation;
    #: see :meth:`repro.params.MachineConfig.scaled`).  0 means "scale / 16".
    cache_scale: float = 0.0
    #: Sim-kernel engine: "scalar", "vectorized", "auto", or None for the
    #: process default (see :mod:`repro.kernels`).  Engines are bit-identical,
    #: so this knob never changes results — it is excluded from the result
    #: cache fingerprint for exactly that reason.
    engine: Optional[str] = None

    def __post_init__(self) -> None:
        if not self.benchmarks:
            raise ConfigError("an experiment needs at least one benchmark")
        if self.membound_instances < 0:
            raise ConfigError("membound_instances must be >= 0")
        if self.corunner not in ("membound", "graphhog"):
            raise ConfigError(f"unknown co-runner {self.corunner!r}")
        if self.engine is not None and self.engine not in ENGINE_CHOICES:
            raise ConfigError(
                f"unknown engine {self.engine!r}; choose one of "
                + ", ".join(ENGINE_CHOICES)
            )

    def machine(self) -> MachineConfig:
        cache_scale = self.cache_scale or self.scale / 16
        return MachineConfig.scaled(
            self.scale, cores=self.cores, cache_scale=cache_scale
        )


def consolidated(
    workload: str,
    instances: int,
    params: WorkloadParams,
    **kwargs: Any,
) -> Tuple[BenchmarkSpec, ...]:
    """The paper's setup: N instances of one benchmark, one process each."""
    return tuple(
        BenchmarkSpec(workload, params, tuple(sorted(kwargs.items())))
        for _ in range(instances)
    )


def mixed_pmdk(params: WorkloadParams) -> Tuple[BenchmarkSpec, ...]:
    """One instance of each PMDK micro-benchmark, consolidated."""
    return tuple(
        BenchmarkSpec(name, params)
        for name in ("hashmap", "btree", "rbtree", "skiplist")
    )
