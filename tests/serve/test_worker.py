"""Tests for the fleet worker: drain, sharding, resume, failure handling."""

from __future__ import annotations

import dataclasses
import json

import pytest

from serve_grids import tiny_grid, tiny_spec

from repro.harness.metrics import run_result_to_dict
from repro.harness.parallel import GridPoint, run_grid
from repro.serve.jobstore import ServeError
from repro.serve.queue import JobQueue
from repro.serve.worker import Worker


def as_json(results):
    return json.dumps(
        [run_result_to_dict(r) for r in results], sort_keys=True
    )


class TestDrain:
    def test_drain_matches_run_grid_byte_identically(self, spool):
        grid = tiny_grid(4)
        queue = JobQueue(spool)
        meta = queue.submit(grid, title="t")
        worker = Worker(spool)
        stats = worker.drain(timeout_s=30)
        assert stats.executed == 4
        assert queue.status(meta.campaign_id).complete

        served = [
            queue.cache.get_fingerprint(record.fingerprint)
            for record in queue.records(meta.campaign_id)
        ]
        direct = run_grid(grid)
        assert as_json(served) == as_json(direct)

    def test_empty_spool_drains_immediately(self, spool):
        stats = Worker(spool).drain(timeout_s=5)
        assert stats.executed == 0

    def test_drain_covers_every_campaign(self, spool):
        queue = JobQueue(spool)
        queue.submit(tiny_grid(2), title="a")
        queue.submit(tiny_grid(3), title="b")
        stats = Worker(spool).drain(timeout_s=30)
        # tiny_grid(2) is a prefix of tiny_grid(3): the shared cache dedups
        # the two overlapping points across campaigns, so only 3 distinct
        # specs are ever simulated — yet both campaigns complete.
        assert stats.executed == 3
        assert all(
            queue.status(meta.campaign_id).complete
            for meta in queue.campaigns()
        )

    def test_cancelled_campaign_is_not_run(self, spool):
        queue = JobQueue(spool)
        meta = queue.submit(tiny_grid(3), title="t")
        queue.cancel(meta.campaign_id)
        stats = Worker(spool).drain(timeout_s=5)
        assert stats.executed == 0


class TestSharding:
    def test_two_shards_split_the_work(self, spool):
        queue = JobQueue(spool)
        meta = queue.submit(tiny_grid(5), title="t")
        w0 = Worker(spool, shard=(0, 2))
        w1 = Worker(spool, shard=(1, 2))
        s0 = w0.drain(timeout_s=30)
        s1 = w1.drain(timeout_s=30)
        assert s0.executed == 3 and s1.executed == 2
        done0 = {index for _, index, _ in s0.published}
        done1 = {index for _, index, _ in s1.published}
        assert done0 == {0, 2, 4} and done1 == {1, 3}
        assert queue.status(meta.campaign_id).complete

    def test_shard_drain_ignores_other_shards_points(self, spool):
        queue = JobQueue(spool)
        meta = queue.submit(tiny_grid(4), title="t")
        Worker(spool, shard=(0, 2)).drain(timeout_s=30)
        status = queue.status(meta.campaign_id)
        assert status.done == 2 and status.pending == 2


class TestResume:
    def test_restart_only_recomputes_the_remainder(self, spool):
        """The checkpoint/resume contract, in-process: pre-published points
        are cache-served and the simulations counter moves by exactly the
        unfinished remainder."""
        grid = tiny_grid(5)
        queue = JobQueue(spool)
        meta = queue.submit(grid, title="t")

        # "First life": a worker publishes two points, then dies.
        records = queue.records(meta.campaign_id)
        from repro.harness.parallel import execute_point

        for record in records[:2]:
            result, _ = execute_point(record.point())
            queue.cache.put(record.spec, result, record.label)

        # "Second life": a fresh worker drains the spool.
        worker = Worker(spool)
        stats = worker.drain(timeout_s=30)
        # Exactly the unfinished remainder is simulated; the two points the
        # first life published are served from the cache untouched.
        assert stats.executed == 3
        assert worker.cache.stats.simulations == 3
        assert queue.status(meta.campaign_id).complete

        served = [
            queue.cache.get_fingerprint(record.fingerprint)
            for record in queue.records(meta.campaign_id)
        ]
        assert as_json(served) == as_json(run_grid(grid))

    def test_stale_lease_from_dead_run_does_not_block(self, spool):
        queue = JobQueue(spool, lease_ttl_s=-1.0)
        meta = queue.submit(tiny_grid(1), title="t")
        assert queue.try_claim(meta.campaign_id, 0, "casualty") is not None
        stats = Worker(spool).drain(timeout_s=30)
        assert stats.executed == 1


class TestFailures:
    def test_experiment_failure_is_recorded_not_fatal(self, spool):
        queue = JobQueue(spool)
        doomed = GridPoint(spec=tiny_spec(max_steps=1))
        meta = queue.submit([doomed] + tiny_grid(2), title="t")
        worker = Worker(spool)
        stats = worker.drain(timeout_s=30)
        assert stats.failed == 1 and stats.executed == 2
        status = queue.status(meta.campaign_id)
        assert status.failed == 1 and status.settled
        assert "step cap" in queue.failure(meta.campaign_id, 0)

    def test_fingerprint_skew_fails_loudly_without_publishing(self, spool):
        queue = JobQueue(spool)
        meta = queue.submit(tiny_grid(1), title="t")
        record = queue.records(meta.campaign_id)[0]
        tampered = dataclasses.replace(record, fingerprint="0" * 64)
        worker = Worker(spool)
        ran = worker._run_point(meta.campaign_id, tampered)
        assert ran is False
        assert worker.stats.failed == 1
        assert "mismatch" in queue.failure(meta.campaign_id, 0)
        # Nothing was published under either key.
        assert not queue.cache.has_fingerprint(record.fingerprint)
        assert not queue.cache.has_fingerprint(tampered.fingerprint)

    def test_drain_timeout_raises(self, spool):
        queue = JobQueue(spool)
        meta = queue.submit(tiny_grid(1), title="t")
        # Another (live) worker holds the lease, so ours can never settle.
        assert queue.try_claim(meta.campaign_id, 0, "other") is not None
        with pytest.raises(ServeError):
            Worker(spool).drain(poll_s=0.01, timeout_s=0.05)
