"""Tests for the hardware log areas."""

from __future__ import annotations

import pytest

from repro.errors import LogOverflowError
from repro.mem.address import MemoryKind, Region
from repro.mem.log import HEADER_BYTES, HardwareLog, LogRecord, PAYLOAD_BYTES, RecordKind


def make_log(size=1 << 16):
    return HardwareLog(Region(MemoryKind.DRAM, 0x1000, size), "test")


class TestAppend:
    def test_append_data_record(self):
        log = make_log()
        record = log.append_data(RecordKind.UNDO, 1, 0x40, {0x40: 7, 0x48: 8})
        assert record.kind is RecordKind.UNDO
        assert record.tx_id == 1
        assert dict(record.words) == {0x40: 7, 0x48: 8}
        assert len(log) == 1

    def test_append_mark(self):
        log = make_log()
        mark = log.append_mark(RecordKind.COMMIT, 3)
        assert mark.size_bytes == HEADER_BYTES
        assert log.committed_tx_ids() == [3]

    def test_data_record_size(self):
        log = make_log()
        record = log.append_data(RecordKind.REDO, 1, 0x40, {0x40: 1})
        assert record.size_bytes == HEADER_BYTES + PAYLOAD_BYTES

    def test_wrong_kind_rejected(self):
        log = make_log()
        with pytest.raises(ValueError):
            log.append_data(RecordKind.COMMIT, 1, 0x40, {})
        with pytest.raises(ValueError):
            log.append_mark(RecordKind.UNDO, 1)

    def test_sequence_monotonic(self):
        log = make_log()
        first = log.append_data(RecordKind.UNDO, 1, 0x40, {0x40: 1})
        second = log.append_data(RecordKind.UNDO, 1, 0x80, {0x80: 2})
        assert second.sequence > first.sequence

    def test_used_bytes_accounting(self):
        log = make_log()
        log.append_data(RecordKind.UNDO, 1, 0x40, {0x40: 1})
        log.append_mark(RecordKind.COMMIT, 1)
        assert log.used_bytes == HEADER_BYTES + PAYLOAD_BYTES + HEADER_BYTES


class TestQueries:
    def test_records_of_transaction(self):
        log = make_log()
        log.append_data(RecordKind.UNDO, 1, 0x40, {0x40: 1})
        log.append_data(RecordKind.UNDO, 2, 0x80, {0x80: 2})
        log.append_data(RecordKind.UNDO, 1, 0xC0, {0xC0: 3})
        records = log.records_of(1)
        assert [r.line_addr for r in records] == [0x40, 0xC0]

    def test_find_latest_mark(self):
        log = make_log()
        assert log.find_latest_mark(1) is None
        log.append_mark(RecordKind.ABORT, 1)
        log.append_mark(RecordKind.COMMIT, 1)
        mark = log.find_latest_mark(1)
        assert mark is not None and mark.kind is RecordKind.COMMIT

    def test_tail(self):
        log = make_log()
        for i in range(5):
            log.append_data(RecordKind.REDO, 1, i * 64, {i * 64: i})
        assert [r.line_addr for r in log.tail(2)] == [192, 256]


class TestReclamation:
    def test_reclaim_frees_bytes(self):
        log = make_log()
        log.append_data(RecordKind.UNDO, 1, 0x40, {0x40: 1})
        used = log.used_bytes
        freed = log.reclaim(1)
        assert freed == used
        assert log.used_bytes == 0
        assert log.records_of(1) == []

    def test_reclaim_preserves_other_transactions(self):
        log = make_log()
        log.append_data(RecordKind.UNDO, 1, 0x40, {0x40: 1})
        log.append_data(RecordKind.UNDO, 2, 0x80, {0x80: 2})
        log.reclaim(1)
        assert [r.tx_id for r in log.records_of(2)] == [2]

    def test_reclaim_unknown_tx_is_noop(self):
        log = make_log()
        assert log.reclaim(99) == 0

    def test_compaction_on_pressure(self):
        """A full log reclaims completed transactions instead of failing."""
        record_bytes = HEADER_BYTES + PAYLOAD_BYTES
        log = make_log(size=record_bytes * 4)
        for i in range(3):
            log.append_data(RecordKind.REDO, 1, i * 64, {i * 64: i})
        log.append_mark(RecordKind.COMMIT, 1)
        # The log is nearly full, but tx 1 is committed and reclaimable.
        log.append_data(RecordKind.REDO, 2, 0x400, {0x400: 9})
        assert [r.tx_id for r in log.records_of(2)] == [2]

    def test_overflow_of_live_data_expands_via_os_trap(self):
        """Section IV-E: the OS is trapped to grow the area."""
        record_bytes = HEADER_BYTES + PAYLOAD_BYTES
        log = make_log(size=record_bytes * 2)
        log.append_data(RecordKind.REDO, 1, 0, {0: 0})
        log.append_data(RecordKind.REDO, 1, 64, {64: 1})
        log.append_data(RecordKind.REDO, 1, 128, {128: 2})
        assert log.expansions == 1
        assert log.capacity_bytes == record_bytes * 4

    def test_overflow_raises_when_expansion_disabled(self):
        from repro.mem.address import MemoryKind, Region

        record_bytes = HEADER_BYTES + PAYLOAD_BYTES
        log = HardwareLog(
            Region(MemoryKind.DRAM, 0x1000, record_bytes * 2),
            "fixed",
            allow_expansion=False,
        )
        log.append_data(RecordKind.REDO, 1, 0, {0: 0})
        log.append_data(RecordKind.REDO, 1, 64, {64: 1})
        with pytest.raises(LogOverflowError):
            log.append_data(RecordKind.REDO, 1, 128, {128: 2})


class TestWipe:
    def test_wipe_clears_everything(self):
        log = make_log()
        log.append_data(RecordKind.UNDO, 1, 0x40, {0x40: 1})
        log.append_mark(RecordKind.COMMIT, 1)
        log.wipe()
        assert len(log) == 0
        assert log.used_bytes == 0
        assert log.committed_tx_ids() == []
