"""``python -m repro profile`` — where does the host wall-clock go?

Runs a figure's quick grid (or one workload under UHTM) with the manual
phase timers attached and cProfile recording, then prints a hot-spot
report::

    python -m repro profile fig7 --json
    python -m repro profile hashmap --sort tottime --top 10
    python -m repro profile fig2 --points 2

The report has two sections: the five simulator phases (exclusive time —
see :mod:`repro.perf.phases`) and the top functions by cumulative or
total time.  ``--json`` emits the same data machine-readably on stdout.

Profiled runs are slower than plain runs (tracing overhead); use
``python -m repro bench`` for honest wall-clock numbers.
"""

from __future__ import annotations

import argparse
import dataclasses
import json
import sys
from typing import List, Optional, Tuple

from ..harness.config import ExperimentSpec, consolidated
from ..harness.figures import FIGURE_GRIDS
from ..harness.report import format_table
from ..harness.runner import epoch_summary, run_experiment
from ..harness.timer import Stopwatch
from ..kernels import ENGINE_CHOICES, resolve_engine
from ..params import HTMConfig
from ..workloads import WORKLOADS, WorkloadParams
from .phases import PHASES, PhaseTimers
from .profiler import SORT_KEYS, profile_callable

#: Co-runners only make sense next to a benchmark; not standalone targets.
_CORUNNERS = frozenset({"membound", "graphhog"})

#: Default machine scale for profiling runs: the smoke tier's, so a profile
#: finishes in seconds even under tracing overhead.
PROFILE_SCALE = 1 / 64


def _workload_runs(
    name: str, scale: float, seed: int
) -> List[Tuple[ExperimentSpec, str]]:
    """One consolidated UHTM run of ``name``, sized like the PMDK figures."""
    params = WorkloadParams(
        threads=4,
        txs_per_thread=4,
        value_bytes=300 << 10,
        ops_per_tx=1,
        keys=256,
        initial_fill=64,
    )
    spec = ExperimentSpec(
        name=f"profile:{name}",
        htm=HTMConfig(),
        benchmarks=consolidated(name, 4, params),
        scale=scale,
        seed=seed,
    )
    return [(spec, f"profile:{name}")]


def _figure_runs(
    name: str, scale: float, seed: int, points: int
) -> List[Tuple[ExperimentSpec, Optional[str]]]:
    grid = FIGURE_GRIDS[name](quick=True, scale=scale, seed=seed)
    if points:
        grid = grid[:points]
    return [(point.spec, point.label) for point in grid]


def build_report(
    target: str,
    sort: str = "cumtime",
    top: int = 15,
    scale: float = PROFILE_SCALE,
    seed: int = 2020,
    points: int = 0,
    engine: Optional[str] = None,
) -> dict:
    """Profile ``target`` and return the hot-spot report as plain data."""
    if target in FIGURE_GRIDS:
        kind = "figure"
        runs = _figure_runs(target, scale, seed, points)
    elif target in WORKLOADS and target not in _CORUNNERS:
        kind = "workload"
        runs = _workload_runs(target, scale, seed)
    else:
        choices = sorted(FIGURE_GRIDS) + sorted(set(WORKLOADS) - _CORUNNERS)
        raise ValueError(
            f"unknown profile target {target!r}; choose from: "
            + ", ".join(choices)
        )
    # Resolve once (like bench does) so the report names the engine actually
    # profiled, and pin every point's spec to it.
    resolved = resolve_engine(engine)
    runs = [
        (dataclasses.replace(spec, engine=resolved), label)
        for spec, label in runs
    ]

    # Under the batched engine the run also reports its epoch counters:
    # how many blocks flushed fused, how wide, and why the rest fenced.
    systems: List[object] = []

    def run_one(spec: ExperimentSpec, label: Optional[str]):
        return run_experiment(spec, label, instrument=systems.append)

    timers = PhaseTimers()
    stopwatch = Stopwatch()
    with timers:
        _, hotspots = profile_callable(
            lambda: [run_one(spec, label) for spec, label in runs],
            sort=sort,
            top=top,
        )
    epochs = [s for s in (epoch_summary(system) for system in systems) if s]
    return {
        "target": target,
        "kind": kind,
        "points": len(runs),
        "scale": scale,
        "seed": seed,
        "engine": resolved,
        "sort": sort,
        "top": top,
        "wall_s": round(stopwatch.elapsed_s, 3),
        "phases": timers.report(),
        "epoch_stats": _merge_epochs(epochs),
        "hotspots": [spot.to_dict() for spot in hotspots],
    }


def _merge_epochs(summaries: List[dict]) -> Optional[dict]:
    """Fold per-point epoch counters into one figure-level summary."""
    if not summaries:
        return None
    epochs = sum(s["epochs"] for s in summaries)
    batched = sum(s["batched_ops"] for s in summaries)
    scalar = sum(s["scalar_ops"] for s in summaries)
    fences: dict = {}
    for summary in summaries:
        for reason, count in summary["fences"].items():
            fences[reason] = fences.get(reason, 0) + count
    total = batched + scalar
    return {
        "epochs": epochs,
        "batched_ops": batched,
        "scalar_ops": scalar,
        "mean_batch_width": round(batched / epochs, 2) if epochs else 0.0,
        "scalar_fallback_ratio": round(scalar / total, 4) if total else 0.0,
        "fences": dict(sorted(fences.items())),
    }


def _print_report(report: dict) -> None:
    phase_rows = [
        [
            phase,
            f"{report['phases'][phase]['seconds']:.3f}s",
            report["phases"][phase]["calls"],
            f"{report['phases'][phase]['share'] * 100:.1f}%",
        ]
        for phase in PHASES
    ]
    print(
        format_table(
            ["phase", "exclusive", "calls", "share"],
            phase_rows,
            title=f"phases: {report['target']} "
            f"({report['points']} points, {report['wall_s']:.1f}s wall)",
        )
    )
    print()
    spot_rows = [
        [
            spot["function"],
            f"{spot['file']}:{spot['line']}",
            spot["ncalls"],
            f"{spot['tottime_s']:.3f}s",
            f"{spot['cumtime_s']:.3f}s",
        ]
        for spot in report["hotspots"]
    ]
    print(
        format_table(
            ["function", "where", "ncalls", "tottime", "cumtime"],
            spot_rows,
            title=f"top {report['top']} by {report['sort']}",
        )
    )
    epoch = report.get("epoch_stats")
    if epoch is not None:
        print()
        print(
            f"epoch dispatch ({report['engine']}): {epoch['epochs']} epochs, "
            f"mean width {epoch['mean_batch_width']:.1f}, "
            f"{epoch['scalar_fallback_ratio']:.1%} scalar fallback"
            + (f", fences {epoch['fences']}" if epoch["fences"] else "")
        )


def main(argv: Optional[List[str]] = None) -> int:
    if argv is None:
        argv = sys.argv[1:]
    parser = argparse.ArgumentParser(
        prog="python -m repro profile",
        description="Profile a figure grid or workload: simulator phases "
        "plus a cProfile hot-spot report.",
    )
    parser.add_argument(
        "target",
        metavar="TARGET",
        help="a dynamic figure ("
        + ", ".join(sorted(FIGURE_GRIDS))
        + ") or a benchmark workload ("
        + ", ".join(sorted(set(WORKLOADS) - _CORUNNERS))
        + ")",
    )
    parser.add_argument(
        "--sort",
        choices=SORT_KEYS,
        default="cumtime",
        help="hot-spot ordering (default: cumtime)",
    )
    parser.add_argument(
        "--top",
        type=int,
        default=15,
        metavar="N",
        help="how many hot spots to report (default: 15)",
    )
    parser.add_argument(
        "--json",
        action="store_true",
        help="emit the report as JSON on stdout",
    )
    parser.add_argument(
        "--scale",
        type=float,
        default=PROFILE_SCALE,
        help=f"machine scale factor (default {PROFILE_SCALE:g}, the smoke "
        "tier)",
    )
    parser.add_argument("--seed", type=int, default=2020)
    parser.add_argument(
        "--points",
        type=int,
        default=0,
        metavar="N",
        help="profile only the first N grid points (0 = whole grid)",
    )
    parser.add_argument(
        "--engine",
        choices=ENGINE_CHOICES,
        help="sim-kernel engine to profile under (default: the process "
        "default — $REPRO_ENGINE or scalar); batched runs also report "
        "their epoch-dispatch counters",
    )
    args = parser.parse_args(argv)

    try:
        report = build_report(
            args.target,
            sort=args.sort,
            top=args.top,
            scale=args.scale,
            seed=args.seed,
            points=args.points,
            engine=args.engine,
        )
    except ValueError as exc:
        parser.error(str(exc))
    if args.json:
        print(json.dumps(report, indent=2, sort_keys=True))
    else:
        _print_report(report)
    return 0
