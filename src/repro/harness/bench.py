"""``python -m repro bench`` — grid runs with per-point timing and caching.

Runs the experiment grid behind one or more figures through the parallel
executor, measures every point with :class:`~repro.harness.timer.Stopwatch`,
and writes one ``BENCH_<figure>.json`` perf-trajectory artifact per figure::

    python -m repro bench fig6 --jobs 4 --cache-dir .repro-cache
    python -m repro bench --jobs 8 --verify          # all dynamic figures

The artifact records, for each point: its key, label, spec fingerprint,
whether it was served from the cache, and the simulation wall time.  A
warm-cache re-run reports ``simulated: 0`` — nothing is recomputed unless a
spec (or the cache version stamp) changed.

``--verify`` re-runs one pooled point serially and asserts the bit-identical
parallelism contract before any result is published to the cache.

``-m smoke`` is the perf-gate tier: the quick grids at scale 1/64, small
enough to run on every change.  ``--compare`` turns the run into a
regression gate — each simulated point is checked against the matching
point of a baseline ``BENCH_<figure>.json`` (the committed baselines by
default) and the run exits non-zero if any point got more than 15%
slower::

    python -m repro bench -m smoke --compare          # gate vs committed
    python -m repro bench fig7 --compare old/          # gate vs a directory

Baselines are machine-specific: reseed them (``-m smoke --out-dir .``) on
the machine that will run the gate.

``--engine`` selects the sim-kernel engine (scalar/vectorized/auto) for
every point and stamps it into the artifact.  The per-point gate only
applies when the baseline was measured under the same engine; comparing
across engines, ``--speedup-floor R`` gates the *aggregate* wall time of
matched simulated points instead (e.g. "the vectorized run must be at
least R times faster than the scalar baseline").  Both gates work on any
tier, smoke or ``--full``.
"""

from __future__ import annotations

import argparse
import dataclasses
import json
import sys
from pathlib import Path
from typing import List, Optional, Tuple

from ..kernels import ENGINE_CHOICES, resolve_engine
from .cache import ResultCache
from .config import DEFAULT_SCALE
from .figures import FIGURE_GRIDS
from .parallel import GridOutcome, run_grid_detailed
from .report import format_table
from .timer import Stopwatch

#: The smoke tier's machine scale: quick grids shrunk far enough that the
#: whole dynamic-figure sweep runs in well under a minute.
SMOKE_SCALE = 1 / 64

#: Default allowed per-point slowdown before the ``--compare`` gate fails.
DEFAULT_TOLERANCE = 0.15

#: Baseline points faster than this are below the host timing noise floor
#: and never gate.
MIN_COMPARABLE_S = 0.05

#: Absolute slack added on top of the relative tolerance: host noise on a
#: 0.15 s point routinely exceeds 15%, so small points only gate on
#: slowdowns that are large in absolute terms too.
ABS_SLACK_S = 0.1


def comparable_points(
    artifact: dict, baseline: dict
) -> List[Tuple[dict, dict]]:
    """``(current, baseline)`` point pairs the gates may consider.

    A pair forms when the points match by ``(label, key)`` and both were
    simulated (not cache-served).  Every gate draws from this one pairing,
    and the CLI counts the pairs so a run where the gate compared *nothing*
    — a stale or mismatched baseline — fails loudly instead of passing
    vacuously.
    """

    def point_id(point: dict) -> tuple:
        return (point.get("label"), json.dumps(point.get("key")))

    base_points = {point_id(p): p for p in baseline.get("points", ())}
    pairs = []
    for point in artifact.get("points", ()):
        base = base_points.get(point_id(point))
        if base is None:
            continue
        if point.get("cached") or base.get("cached"):
            continue
        pairs.append((point, base))
    return pairs


def compare_to_baseline(
    artifact: dict, baseline: dict, tolerance: float = DEFAULT_TOLERANCE
) -> List[str]:
    """Per-point perf gate: current vs baseline elapsed seconds.

    Returns human-readable violation lines (empty means the gate passes).
    A point participates only when it pairs up under
    :func:`comparable_points` and the baseline time is above
    :data:`MIN_COMPARABLE_S`; it fails when it exceeds
    ``baseline * (1 + tolerance) + ABS_SLACK_S``.
    """
    violations = []
    for point, base in comparable_points(artifact, baseline):
        base_s = base.get("elapsed_s", 0.0)
        if base_s < MIN_COMPARABLE_S:
            continue
        elapsed_s = point["elapsed_s"]
        if elapsed_s > base_s * (1.0 + tolerance) + ABS_SLACK_S:
            violations.append(
                f"{artifact.get('figure', '?')}: {point['label']} "
                f"{point.get('key')} took {elapsed_s:.3f}s vs baseline "
                f"{base_s:.3f}s (more than {tolerance:.0%} slower)"
            )
    return violations


def artifact_engine(artifact: dict) -> str:
    """The engine an artifact was measured under (pre-engine files: scalar)."""
    return artifact.get("engine", "scalar")


def aggregate_speedup(
    artifact: dict, baseline: dict
) -> Tuple[float, float, int]:
    """Aggregate wall time of matched simulated points: (base_s, cur_s, n).

    The cross-engine gate: per-point tolerances compare like with like, so
    when the current engine differs from the baseline's the useful question
    is the *aggregate* ratio.  Points pair under :func:`comparable_points`.
    """
    base_total = current_total = 0.0
    matched = 0
    for point, base in comparable_points(artifact, baseline):
        base_total += base.get("elapsed_s", 0.0)
        current_total += point["elapsed_s"]
        matched += 1
    return base_total, current_total, matched


def _load_baseline(compare_arg: str, figure: str):
    """Resolve and load the baseline artifact for ``figure``.

    ``compare_arg`` may be a directory holding ``BENCH_<figure>.json``
    files or one artifact file; returns ``(artifact_or_None, path)``.
    """
    path = Path(compare_arg)
    if path.is_dir():
        path = path / f"BENCH_{figure}.json"
    if not path.is_file():
        return None, path
    data = json.loads(path.read_text(encoding="utf-8"))
    if data.get("figure") != figure:
        return None, path
    return data, path


def _artifact(
    figure: str,
    outcome: GridOutcome,
    args: argparse.Namespace,
    total_s: float,
    engine: str,
) -> dict:
    return {
        "figure": figure,
        "quick": not args.full,
        "scale": args.scale,
        "seed": args.seed,
        "jobs": args.jobs,
        "engine": engine,
        "total_s": round(total_s, 3),
        "points_total": len(outcome.runs),
        "simulated": outcome.simulated,
        "cache_hits": outcome.cache_hits,
        "points": [
            {
                "key": list(run.key) if isinstance(run.key, tuple) else run.key,
                "label": run.label,
                "fingerprint": run.fingerprint,
                "cached": run.cached,
                "elapsed_s": round(run.elapsed_s, 4),
            }
            for run in outcome.runs
        ],
    }


def _kernel_points(engine: str, full: bool) -> List[dict]:
    """Time the four batched kernel workloads under ``engine``.

    The ``kernels`` bench name measures the kernels *as kernels* — batched
    Bloom insert/probe, batched tag probes, histogram flush, latency
    accumulation — rather than end-to-end grids, because the event-driven
    access path issues one op at a time and cannot exercise batching.  The
    scalar engine runs its best per-op loop; the vectorized engine runs its
    batch entry points.  Point dicts are artifact-shaped so --compare and
    --speedup-floor gate them exactly like figure points.
    """
    from ..kernels import kit_for
    from ..kernels.latency import LEVELS
    from ..params import CacheGeometry, LatencyConfig, LINE_SIZE
    from ..sim.rng import RngStreams

    kit = kit_for(engine)
    scale = 8 if full else 1
    rng = RngStreams(0xBE7C).stream("bench.kernels")
    points: List[dict] = []

    def timed(label: str, body) -> None:
        stopwatch = Stopwatch()
        body()
        points.append(
            {
                "key": ["kernel", label],
                "label": label,
                "fingerprint": None,
                "cached": False,
                "elapsed_s": round(stopwatch.elapsed_s, 4),
            }
        )

    bloom_n = 300_000 * scale
    values = [rng.getrandbits(40) for _ in range(bloom_n)]
    signature = kit.bloom_cls(4096, 4)

    def bloom_insert() -> None:
        batch = getattr(signature, "insert_batch", None)
        if batch is not None:
            batch(values)
        else:
            signature.insert_all(values)

    def bloom_probe() -> None:
        batch = getattr(signature, "contains_batch", None)
        if batch is not None:
            batch(values)
        else:
            contains = signature.maybe_contains
            for value in values:
                contains(value)

    timed("bloom.insert", bloom_insert)
    timed("bloom.probe", bloom_probe)

    probe_n = 1_000_000 * scale
    geometry = CacheGeometry(size_bytes=4096 * 8 * LINE_SIZE, ways=8)
    array = kit.setassoc_cls(geometry, "bench")
    for line in range(0, 16_384, 2):
        array.fill(line * LINE_SIZE)
    addrs = [rng.randrange(32_768) * LINE_SIZE for _ in range(probe_n)]

    def tag_probe() -> None:
        batch = getattr(array, "probe_batch", None)
        if batch is not None:
            batch(addrs)
        else:
            peek = array.peek
            for addr in addrs:
                peek(addr)

    timed("setassoc.probe", tag_probe)

    hist_n = 2_000_000 * scale
    histogram = kit.histogram_cls()
    record = histogram.record
    for _ in range(hist_n):
        record(rng.random() * 4096.0)
    timed("histogram.flush", lambda: histogram.count)

    lat_n = 1_000_000 * scale
    table = kit.latency_cls(LatencyConfig())
    levels = [LEVELS[rng.randrange(3)] for _ in range(lat_n)]
    mems = [rng.random() * 100.0 for _ in range(lat_n)]
    timed("latency.accumulate", lambda: table.accumulate(levels, mems))
    # The epoch dispatch family rides along for the engines whose block
    # dispatch actually differs (scalar loop vs fused epoch flush).  The
    # vectorized kit has no epoch dispatcher — its blocks run the scalar
    # per-op walk — so the points would only re-measure scalar dispatch
    # while diluting the vectorized kernel-speedup gate's aggregate.
    if engine in ("scalar", "batched"):
        points.extend(_epoch_points(engine, full))
    return points


#: Epoch widths benched by the ``epoch.w*`` family — the block sizes the
#: dispatcher sees, from fence-to-scalar narrow blocks up to full sweeps.
EPOCH_WIDTHS = (1, 4, 16, 64)


def _epoch_points(engine: str, full: bool) -> List[dict]:
    """Time block dispatch end-to-end through a real System per width.

    Each point issues the same number of *blocks* (epochs), so wider
    points carry proportionally more simulated work — the natural shape
    of a width sweep, and the one that weighs the aggregate toward the
    widths where epoch dispatch actually runs.  The swept array cycles
    four resident lines, so every access is an L1 hit and the point times
    the dispatch path itself rather than shared fill/eviction work.  At
    width 1 the dispatcher's fence drops every block to the scalar walk,
    pinning the fallback overhead; the wide points time the fused loops.
    """
    from ..mem.address import MemoryKind
    from ..params import HTMConfig, LINE_SIZE, MachineConfig
    from ..runtime.system import System

    blocks = 2_500 * (8 if full else 1)
    points: List[dict] = []
    for width in EPOCH_WIDTHS:
        system = System(
            MachineConfig.scaled(SMOKE_SCALE),
            HTMConfig(),
            seed=0xE90C,
            engine=engine,
        )
        app = system.process("epoch")

        def worker(api, width=width):
            base = api.heap.alloc(64 * LINE_SIZE, MemoryKind.DRAM)
            chunk = [base + (i % 4) * LINE_SIZE for i in range(width)]
            for _ in range(blocks):
                api.nontx.rmw_add_block(chunk, 1)
                yield

        app.thread(worker)
        stopwatch = Stopwatch()
        system.run()
        points.append(
            {
                "key": ["kernel", f"epoch.w{width}"],
                "label": f"epoch.w{width}",
                "fingerprint": None,
                "cached": False,
                "elapsed_s": round(stopwatch.elapsed_s, 4),
            }
        )
    return points


def _epoch_artifact(
    args: argparse.Namespace, engine: str
) -> Tuple[dict, float]:
    """The ``epochs`` bench figure: the epoch dispatch family on its own.

    This is the figure the batched-engine CI gate runs ``--speedup-floor``
    against: it contains exactly the points that measure epoch dispatch,
    so the aggregate certifies the dispatcher itself rather than being
    diluted by kernel points both engines run identically.
    """
    stopwatch = Stopwatch()
    points = _epoch_points(engine, args.full)
    total_s = stopwatch.elapsed_s
    return {
        "figure": "epochs",
        "quick": not args.full,
        "scale": args.scale,
        "seed": args.seed,
        "jobs": args.jobs,
        "engine": engine,
        "total_s": round(total_s, 3),
        "points_total": len(points),
        "simulated": len(points),
        "cache_hits": 0,
        "points": points,
    }, total_s


def _kernel_artifact(
    args: argparse.Namespace, engine: str
) -> Tuple[dict, float]:
    stopwatch = Stopwatch()
    points = _kernel_points(engine, args.full)
    total_s = stopwatch.elapsed_s
    return {
        "figure": "kernels",
        "quick": not args.full,
        "scale": args.scale,
        "seed": args.seed,
        "jobs": args.jobs,
        "engine": engine,
        "total_s": round(total_s, 3),
        "points_total": len(points),
        "simulated": len(points),
        "cache_hits": 0,
        "points": points,
    }, total_s


def main(argv: Optional[List[str]] = None) -> int:
    if argv is None:
        argv = sys.argv[1:]
    parser = argparse.ArgumentParser(
        prog="python -m repro bench",
        description="Time figure grids point-by-point, optionally in "
        "parallel and against a result cache.",
    )
    parser.add_argument(
        "figures",
        nargs="*",
        metavar="FIGURE",
        help="dynamic figures to bench (default: all of "
        + ", ".join(sorted(FIGURE_GRIDS))
        + "); the special name 'kernels' benches the batched sim kernels "
        "themselves, and 'epochs' the epoch dispatch family alone",
    )
    parser.add_argument(
        "--full",
        action="store_true",
        help="bench the paper's full sweep matrix instead of the quick one",
    )
    parser.add_argument(
        "--scale",
        type=float,
        default=DEFAULT_SCALE,
        help=f"machine scale factor (default {DEFAULT_SCALE:g})",
    )
    parser.add_argument("--seed", type=int, default=2020)
    parser.add_argument(
        "--jobs",
        type=int,
        default=1,
        help="worker processes for the grid (results are bit-identical "
        "for any value)",
    )
    parser.add_argument(
        "--cache-dir",
        metavar="PATH",
        help="result-cache directory; unchanged points are not re-simulated",
    )
    parser.add_argument(
        "--out-dir",
        metavar="PATH",
        default=".",
        help="where to write the BENCH_<figure>.json artifacts (default: .)",
    )
    parser.add_argument(
        "--verify",
        action="store_true",
        help="re-run one pooled point serially and assert the bit-identical "
        "parallelism contract",
    )
    parser.add_argument(
        "-m",
        "--tier",
        choices=("smoke",),
        help="preset tier: 'smoke' benches the quick grids at scale "
        f"{SMOKE_SCALE:g} (overrides --full/--scale)",
    )
    parser.add_argument(
        "--compare",
        nargs="?",
        const=".",
        metavar="PATH",
        help="perf-regression gate: exit non-zero if any simulated point is "
        "slower than the matching point of a baseline BENCH_<figure>.json "
        "by more than the tolerance; PATH is a baseline file or a directory "
        "of them (default: the committed baselines in the current directory)",
    )
    parser.add_argument(
        "--tolerance",
        type=float,
        default=DEFAULT_TOLERANCE,
        metavar="FRACTION",
        help="allowed per-point slowdown for --compare "
        f"(default {DEFAULT_TOLERANCE:g})",
    )
    parser.add_argument(
        "--engine",
        choices=ENGINE_CHOICES,
        help="sim-kernel engine for every point (default: the process "
        "default — $REPRO_ENGINE or scalar); recorded in the artifact",
    )
    parser.add_argument(
        "--speedup-floor",
        type=float,
        metavar="RATIO",
        help="with --compare: additionally require the aggregate wall time "
        "of matched simulated points to be at least RATIO times faster "
        "than the baseline's (the cross-engine gate; per-point tolerances "
        "only apply when the engines match)",
    )
    args = parser.parse_args(argv)
    if args.tier == "smoke":
        args.full = False
        args.scale = SMOKE_SCALE

    names = args.figures or sorted(FIGURE_GRIDS)
    unknown = [
        name for name in names
        if name not in FIGURE_GRIDS and name not in ("kernels", "epochs")
    ]
    if unknown:
        parser.error(
            f"unknown figure(s) {', '.join(unknown)}; benchable figures: "
            + ", ".join(sorted(FIGURE_GRIDS))
            + ", kernels, epochs"
        )
    cache = ResultCache(args.cache_dir) if args.cache_dir else None
    out_dir = Path(args.out_dir)
    out_dir.mkdir(parents=True, exist_ok=True)
    # Resolve once so the artifact records the engine actually measured
    # ("auto" resolves here) and every point runs under it explicitly.
    engine = resolve_engine(args.engine)

    summary_rows = []
    violations: List[str] = []
    compared_total = 0
    baselines_loaded = 0
    for name in names:
        if name == "kernels":
            artifact, total_s = _kernel_artifact(args, engine)
            outcome = None
        elif name == "epochs":
            artifact, total_s = _epoch_artifact(args, engine)
            outcome = None
        else:
            points = [
                dataclasses.replace(
                    point, spec=dataclasses.replace(point.spec, engine=engine)
                )
                for point in FIGURE_GRIDS[name](
                    quick=not args.full, scale=args.scale, seed=args.seed
                )
            ]
            stopwatch = Stopwatch()
            outcome = run_grid_detailed(
                points, jobs=args.jobs, cache=cache, verify_sample=args.verify
            )
            total_s = stopwatch.elapsed_s
            artifact = _artifact(name, outcome, args, total_s, engine)
        if args.compare is not None:
            baseline, baseline_path = _load_baseline(args.compare, name)
            if baseline is None:
                print(f"[{name}] no baseline at {baseline_path}; not gated")
            else:
                baselines_loaded += 1
                base_engine = artifact_engine(baseline)
                if "engine" not in baseline:
                    # Pre-engine artifacts were all scalar measurements;
                    # assume that rather than refusing, but say so.
                    print(
                        f"[{name}] warning: baseline {baseline_path} has no "
                        f"engine field; assuming {base_engine!r}"
                    )
                compared_total += len(comparable_points(artifact, baseline))
                if base_engine == engine:
                    found = compare_to_baseline(
                        artifact, baseline, args.tolerance
                    )
                    violations.extend(found)
                    verdict = (
                        "ok" if not found else f"{len(found)} regression(s)"
                    )
                    print(
                        f"[{name}] compared against {baseline_path}: {verdict}"
                    )
                else:
                    # Cross-engine runs never gate point-by-point: the
                    # engines have different constant factors by design.
                    # --speedup-floor below gates the aggregate instead.
                    print(
                        f"[{name}] baseline {baseline_path} measured the "
                        f"{base_engine} engine (this run: {engine}); "
                        "per-point tolerance not applied"
                    )
                if args.speedup_floor is not None:
                    base_s, current_s, matched = aggregate_speedup(
                        artifact, baseline
                    )
                    if matched == 0 or current_s <= 0:
                        print(
                            f"[{name}] speedup floor not applicable "
                            f"({matched} matched simulated points)"
                        )
                    else:
                        ratio = base_s / current_s
                        print(
                            f"[{name}] aggregate speedup vs {base_engine} "
                            f"baseline: {ratio:.2f}x over {matched} points "
                            f"({base_s:.2f}s -> {current_s:.2f}s)"
                        )
                        if ratio < args.speedup_floor:
                            violations.append(
                                f"{name}: aggregate speedup {ratio:.2f}x is "
                                f"below the required floor "
                                f"{args.speedup_floor:g}x"
                            )
        artifact_path = out_dir / f"BENCH_{name}.json"
        artifact_path.write_text(
            json.dumps(artifact, indent=2) + "\n", encoding="utf-8"
        )
        slowest_s = max(
            (p["elapsed_s"] for p in artifact["points"]), default=None
        )
        summary_rows.append(
            [
                name,
                artifact["points_total"],
                artifact["simulated"],
                artifact["cache_hits"],
                f"{total_s:.1f}s",
                f"{slowest_s:.1f}s" if slowest_s is not None else "-",
            ]
        )
        print(f"[{name}] {artifact['points_total']} points in {total_s:.1f}s "
              f"({artifact['simulated']} simulated, "
              f"{artifact['cache_hits']} cached) "
              f"-> {artifact_path}")
    print()
    print(
        format_table(
            ["figure", "points", "simulated", "cached", "wall", "slowest point"],
            summary_rows,
            title=f"bench: jobs={args.jobs}, engine={engine}"
            + (f", cache={args.cache_dir}" if args.cache_dir else ""),
        )
    )
    if cache is not None:
        stats = cache.stats
        print(
            f"\ncache: {stats.hits} hits, {stats.misses} misses, "
            f"{stats.stores} stores, {stats.simulations} simulations"
            + (f", {stats.corrupt} corrupt entries skipped" if stats.corrupt else "")
        )
    if (
        args.compare is not None
        and baselines_loaded > 0
        and compared_total == 0
    ):
        # Baselines were found, yet the gate paired zero points: a stale
        # baseline, renamed labels, or an all-cached run.  That must fail
        # loudly rather than report a vacuous pass.  (No baseline at all
        # stays non-fatal — that is the bootstrap path that seeds one.)
        violations.append(
            "--compare matched zero simulated points across "
            f"{baselines_loaded} baseline(s); the perf gate compared nothing"
        )
    if violations:
        print(f"\nperf gate FAILED ({len(violations)} regression(s)):")
        for line in violations:
            print(f"  {line}")
        return 1
    if args.compare is not None:
        print(f"\nperf gate passed ({compared_total} points compared)")
    return 0
