"""Tests for the trace recorder."""

from __future__ import annotations

from repro.sim.trace import TraceRecorder


class TestTraceRecorder:
    def test_disabled_by_default(self):
        recorder = TraceRecorder()
        recorder.emit(1.0, "commit", 0)
        assert len(recorder) == 0

    def test_enabled_records(self):
        recorder = TraceRecorder(enabled=True)
        recorder.emit(1.0, "commit", 0, tx=7)
        recorder.emit(2.0, "abort", 1, tx=8)
        assert len(recorder) == 2
        assert recorder.events[0].detail == {"tx": 7}

    def test_by_category(self):
        recorder = TraceRecorder(enabled=True)
        recorder.emit(1.0, "commit", 0)
        recorder.emit(2.0, "abort", 0)
        recorder.emit(3.0, "commit", 1)
        commits = recorder.by_category("commit")
        assert [e.time_ns for e in commits] == [1.0, 3.0]

    def test_capacity_drops_and_counts(self):
        recorder = TraceRecorder(enabled=True, capacity=2)
        for i in range(5):
            recorder.emit(float(i), "x", 0)
        assert len(recorder) == 2
        assert recorder.dropped == 3

    def test_clear(self):
        recorder = TraceRecorder(enabled=True, capacity=1)
        recorder.emit(1.0, "x", 0)
        recorder.emit(2.0, "x", 0)
        recorder.clear()
        assert len(recorder) == 0
        assert recorder.dropped == 0

    def test_iteration(self):
        recorder = TraceRecorder(enabled=True)
        recorder.emit(1.0, "a", 0)
        assert [e.category for e in recorder] == ["a"]
