"""NVM write-endurance accounting.

Phase-change and related NVM technologies wear out per-cell; systems work
on persistent memory routinely reports write amplification and hot-line
distributions.  :class:`WearTracker` counts in-place NVM line writes (the
drains out of the DRAM cache plus direct stores) and log-area appends
separately, giving the three quantities PM papers report:

* total in-place line writes,
* write amplification (log bytes written per payload byte),
* the hot-line tail (max and percentile write counts per line).

Attach with ``WearTracker.attach(controller)``; detach restores the
original methods.
"""

from __future__ import annotations

from collections import Counter
from typing import Dict, List, Optional, Tuple

from .address import line_of
from .controller import MemoryController


class WearTracker:
    """Counts physical NVM writes at line granularity."""

    def __init__(self) -> None:
        self.line_writes: Counter = Counter()
        self.log_bytes = 0
        self.payload_bytes = 0
        self._controller: Optional[MemoryController] = None
        self._originals: Dict[str, object] = {}

    # -- attachment ----------------------------------------------------------

    def attach(self, controller: MemoryController) -> "WearTracker":
        if self._controller is not None:
            raise RuntimeError("tracker already attached")
        self._controller = controller
        nvm_store = controller.nvm.store
        nvm_store_line = controller.nvm.store_line
        log_append = controller.nvm_log.append_data

        def tracked_store(addr: int, value: int) -> None:
            self.line_writes[line_of(addr)] += 1
            self.payload_bytes += 8
            nvm_store(addr, value)

        def tracked_store_line(words) -> None:
            # The DRAM-cache drain path writes whole line images through
            # this bulk entry point; count each word like tracked_store.
            line_writes = self.line_writes
            for addr in words:
                line_writes[line_of(addr)] += 1
            self.payload_bytes += 8 * len(words)
            nvm_store_line(words)

        def tracked_append(kind, tx_id, line_addr, words):
            record = log_append(kind, tx_id, line_addr, words)
            self.log_bytes += record.size_bytes
            return record

        self._originals = {
            "store": nvm_store,
            "store_line": nvm_store_line,
            "append": log_append,
        }
        controller.nvm.store = tracked_store
        controller.nvm.store_line = tracked_store_line
        controller.nvm_log.append_data = tracked_append
        return self

    def detach(self) -> None:
        if self._controller is None:
            return
        self._controller.nvm.store = self._originals["store"]
        self._controller.nvm.store_line = self._originals["store_line"]
        self._controller.nvm_log.append_data = self._originals["append"]
        self._controller = None
        self._originals = {}

    # -- reporting -------------------------------------------------------------

    @property
    def total_line_writes(self) -> int:
        return sum(self.line_writes.values())

    @property
    def distinct_lines(self) -> int:
        return len(self.line_writes)

    @property
    def max_line_writes(self) -> int:
        if not self.line_writes:
            return 0
        return max(self.line_writes.values())

    def write_amplification(self) -> float:
        """Log bytes per payload byte durably written (>= 0)."""
        if self.payload_bytes == 0:
            return 0.0
        return self.log_bytes / self.payload_bytes

    def hottest_lines(self, count: int = 10) -> List[Tuple[int, int]]:
        return self.line_writes.most_common(count)

    def percentile_line_writes(self, fraction: float) -> int:
        """Write count at the given percentile over written lines."""
        if not 0 < fraction <= 1:
            raise ValueError("fraction must be in (0, 1]")
        if not self.line_writes:
            return 0
        ordered = sorted(self.line_writes.values())
        index = min(len(ordered) - 1, int(fraction * len(ordered)))
        return ordered[index]
