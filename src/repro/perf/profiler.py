"""A thin cProfile wrapper producing machine-readable hot-spot rows.

``pstats`` prints for humans; the bench gate and the ``--json`` report want
plain data.  :func:`profile_callable` runs a callable under
:class:`cProfile.Profile` and returns the top functions as
:class:`HotSpot` records, sorted by cumulative or total time.

cProfile's tracing hook inflates call overhead (a few hundred
nanoseconds per call, which is comparable to the simulator's hottest
functions), so *ratios between Python-level functions* are trustworthy
while absolute times are not; the bench gate therefore times uninstrumented
runs and this module is only for locating hot spots.
"""

from __future__ import annotations

import cProfile
import pstats
from dataclasses import dataclass
from typing import Any, Callable, Dict, List, Tuple

#: Accepted ``sort`` values (mirroring the pstats names).
SORT_KEYS = ("cumtime", "tottime")


@dataclass(frozen=True)
class HotSpot:
    """One function's profile totals."""

    function: str
    file: str
    line: int
    ncalls: int
    tottime_s: float
    cumtime_s: float

    def to_dict(self) -> Dict[str, Any]:
        return {
            "function": self.function,
            "file": self.file,
            "line": self.line,
            "ncalls": self.ncalls,
            "tottime_s": self.tottime_s,
            "cumtime_s": self.cumtime_s,
        }


def _short_path(path: str) -> str:
    """Trim an absolute source path down to its ``repro/``-relative tail."""
    marker = "/repro/"
    index = path.rfind(marker)
    if index >= 0:
        return "repro/" + path[index + len(marker):]
    return path


def hotspots_from(
    profiler: cProfile.Profile, sort: str = "cumtime", top: int = 20
) -> List[HotSpot]:
    """Extract the ``top`` functions from a finished profiler run."""
    if sort not in SORT_KEYS:
        raise ValueError(f"sort must be one of {SORT_KEYS}, got {sort!r}")
    rows: List[HotSpot] = []
    stats = pstats.Stats(profiler)
    for (file, line, func), row in stats.stats.items():  # type: ignore[attr-defined]
        _cc, ncalls, tottime, cumtime, _callers = row
        rows.append(
            HotSpot(
                function=func,
                file=_short_path(file),
                line=line,
                ncalls=ncalls,
                tottime_s=round(tottime, 6),
                cumtime_s=round(cumtime, 6),
            )
        )
    if sort == "cumtime":
        rows.sort(key=lambda h: (-h.cumtime_s, -h.tottime_s, h.function))
    else:
        rows.sort(key=lambda h: (-h.tottime_s, -h.cumtime_s, h.function))
    return rows[:top]


def profile_callable(
    fn: Callable[[], Any], sort: str = "cumtime", top: int = 20
) -> Tuple[Any, List[HotSpot]]:
    """Run ``fn`` under cProfile; return its result and the hot spots."""
    if sort not in SORT_KEYS:
        raise ValueError(f"sort must be one of {SORT_KEYS}, got {sort!r}")
    profiler = cProfile.Profile()
    profiler.enable()
    try:
        result = fn()
    finally:
        profiler.disable()
    return result, hotspots_from(profiler, sort=sort, top=top)
