"""Statistics collection for simulation runs.

A :class:`StatsRegistry` is a flat namespace of counters and scalar samples.
Components increment counters through it rather than keeping private tallies
so the harness can snapshot everything a run produced in one place.
"""

from __future__ import annotations

import math
from collections import defaultdict
from typing import Dict, Iterable, List, Mapping, Optional, Tuple


class StatsRegistry:
    """Named counters plus simple scalar sample series.

    ``incr`` is the single hottest call in the simulator after cache probes;
    hot loops should hoist the bound method (``incr = stats.incr``) so each
    bump is one dict add with no attribute traversal.
    """

    __slots__ = ("_counters", "_samples", "_histograms", "_histogram_cls")

    def __init__(self, histogram_cls: type = None) -> None:
        self._counters: Dict[str, int] = defaultdict(int)
        self._samples: Dict[str, List[float]] = defaultdict(list)
        self._histograms: Dict[str, "Histogram"] = {}
        # Injected histogram implementation (the engine kit's class when a
        # vectorized run builds the registry); defaults to Histogram.
        self._histogram_cls = histogram_cls or Histogram

    # -- counters ----------------------------------------------------------

    def incr(self, name: str, amount: int = 1) -> None:
        self._counters[name] += amount

    def counter(self, name: str) -> int:
        return self._counters.get(name, 0)

    def counters_with_prefix(self, prefix: str) -> Dict[str, int]:
        return {
            name: value
            for name, value in self._counters.items()
            if name.startswith(prefix)
        }

    # -- samples -----------------------------------------------------------

    def record(self, name: str, value: float) -> None:
        self._samples[name].append(value)

    def samples(self, name: str) -> List[float]:
        return list(self._samples.get(name, ()))

    def mean(self, name: str) -> float:
        values = self._samples.get(name)
        if not values:
            return 0.0
        return sum(values) / len(values)

    # -- histograms ----------------------------------------------------------

    def histogram(self, name: str, factory: type = None) -> "Histogram":
        """The histogram for ``name``, creating it on first use.

        ``factory`` overrides the registry's injected histogram class for
        this one histogram (e.g. :class:`ReservoirHistogram` for the
        traffic latency series, whose tail percentiles must be exact).  It
        only matters at creation time; later lookups return whatever was
        created first.
        """
        histogram = self._histograms.get(name)
        if histogram is None:
            histogram = (factory or self._histogram_cls)()
            self._histograms[name] = histogram
        return histogram

    def histograms(self) -> Dict[str, "Histogram"]:
        return dict(self._histograms)

    # -- aggregation -------------------------------------------------------

    def snapshot(self) -> Dict[str, int]:
        return dict(self._counters)

    def merge(self, other: "StatsRegistry") -> None:
        for name, value in other._counters.items():
            self._counters[name] += value
        for name, values in other._samples.items():
            self._samples[name].extend(values)
        for name, histogram in other._histograms.items():
            self.histogram(name).merge(histogram)

    def items(self) -> Iterable[Tuple[str, int]]:
        return self._counters.items()

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        body = ", ".join(f"{k}={v}" for k, v in sorted(self._counters.items()))
        return f"StatsRegistry({body})"


class Histogram:
    """A fixed-bucket latency histogram (log2 buckets by default).

    Bucket 0 counts samples in ``[0, 2)``; bucket ``i >= 1`` counts samples
    in ``[2^i, 2^(i+1))`` (ns).

    Bucketing is *deferred*: :meth:`record` — which sits on the commit and
    abort paths — only appends the raw value to a pending list, and the
    bit-length/min/accumulate work happens in one batch the first time any
    aggregate is read.  Record-heavy runs that never inspect the histogram
    until the end pay a single flush.
    """

    __slots__ = ("_counts", "_pending", "_total", "_sum", "_max")

    def __init__(self, buckets: int = 40) -> None:
        self._counts = [0] * buckets
        self._pending: List[float] = []
        self._total = 0
        self._sum = 0.0
        self._max = 0.0

    def record(self, value: float) -> None:
        if value < 0:
            raise ValueError("histogram samples must be >= 0")
        self._pending.append(value)

    def _flush(self) -> None:
        pending = self._pending
        if not pending:
            return
        counts = self._counts
        top = len(counts) - 1
        total_sum = 0.0
        maximum = self._max
        for value in pending:
            index = 0 if value < 1 else min(top, int(value).bit_length() - 1)
            counts[index] += 1
            total_sum += value
            if value > maximum:
                maximum = value
        self._total += len(pending)
        self._sum += total_sum
        self._max = maximum
        pending.clear()

    @property
    def count(self) -> int:
        self._flush()
        return self._total

    @property
    def mean(self) -> float:
        self._flush()
        return self._sum / self._total if self._total else 0.0

    @property
    def max(self) -> float:
        self._flush()
        return self._max

    def merge(self, other: "Histogram") -> None:
        """Fold ``other`` into this histogram (bucket-wise add).

        Counts add bucket by bucket (growing this histogram if ``other``
        has more buckets), totals and sums add, and the max is the max of
        the two maxes — so a merged registry reports the same aggregate
        statistics a single-registry run would have.
        """
        self._flush()
        other._flush()
        if len(other._counts) > len(self._counts):
            self._counts.extend([0] * (len(other._counts) - len(self._counts)))
        for index, count in enumerate(other._counts):
            self._counts[index] += count
        self._total += other._total
        self._sum += other._sum
        if other._max > self._max:
            self._max = other._max

    def percentile(self, fraction: float, method: str = "upper") -> float:
        """The given percentile, estimated from the log2 buckets.

        ``method="upper"`` (the historical default, kept for figure parity)
        reports the *upper bound* of the bucket containing the percentile —
        coarse enough that p99 and p999 usually collapse to the same
        power of two.  ``method="interpolated"`` linearly interpolates the
        percentile's rank within its bucket (clamped to the observed max),
        which keeps nearby tail percentiles distinct.

        An empty histogram — and one whose samples are all zero, where the
        bucket upper bound of 2.0 would overstate every percentile — reports
        0.0.
        """
        if not 0 < fraction <= 1:
            raise ValueError("fraction must be in (0, 1]")
        if method not in ("upper", "interpolated"):
            raise ValueError(f"unknown percentile method {method!r}")
        self._flush()
        if self._total == 0 or self._max == 0:
            return 0.0
        threshold = fraction * self._total
        seen = 0
        for index, count in enumerate(self._counts):
            seen += count
            if seen >= threshold:
                if method == "upper":
                    return float(2 ** (index + 1))
                low = 0.0 if index == 0 else float(2 ** index)
                high = float(2 ** (index + 1))
                within = (threshold - (seen - count)) / count
                return min(low + (high - low) * within, self._max)
        if method == "upper":
            return float(2 ** len(self._counts))
        return self._max

    def nonzero_buckets(self) -> List[Tuple[int, int]]:
        self._flush()
        return [(i, c) for i, c in enumerate(self._counts) if c]


class ReservoirHistogram(Histogram):
    """A histogram that also keeps the raw samples, up to a capacity.

    Log2 buckets are fine for bandwidth-style distributions but too coarse
    for tail latency: p99 and p999 of an open-loop run usually land in the
    same bucket.  This subclass keeps every sample (the *reservoir*) until
    ``capacity`` is exceeded, at which point the reservoir is dropped and
    percentiles degrade to the interpolated bucket estimate — never a wrong
    answer, just a coarser one, and :attr:`exact` says which you got.

    Merging preserves exactness only while both sides still hold their
    reservoirs and the union fits the capacity.
    """

    __slots__ = ("_reservoir", "_capacity")

    DEFAULT_CAPACITY = 1 << 17

    def __init__(
        self, buckets: int = 40, capacity: int = DEFAULT_CAPACITY
    ) -> None:
        super().__init__(buckets)
        self._capacity = capacity
        self._reservoir: Optional[List[float]] = []

    @property
    def exact(self) -> bool:
        return self._reservoir is not None

    def record(self, value: float) -> None:
        super().record(value)
        reservoir = self._reservoir
        if reservoir is not None:
            reservoir.append(value)
            if len(reservoir) > self._capacity:
                self._reservoir = None

    def merge(self, other: "Histogram") -> None:
        super().merge(other)
        other_reservoir = getattr(other, "_reservoir", None)
        if self._reservoir is not None and other_reservoir is not None:
            self._reservoir.extend(other_reservoir)
            if len(self._reservoir) > self._capacity:
                self._reservoir = None
        else:
            self._reservoir = None

    def percentile(self, fraction: float, method: str = "exact") -> float:
        """Nearest-rank percentile over the exact samples.

        Falls back to the interpolated bucket estimate once the reservoir
        has been dropped.  The bucket methods remain available by name.
        """
        if method != "exact":
            return super().percentile(fraction, method)
        if not 0 < fraction <= 1:
            raise ValueError("fraction must be in (0, 1]")
        if self._reservoir is None:
            return super().percentile(fraction, method="interpolated")
        self._flush()
        if not self._reservoir:
            return 0.0
        ordered = sorted(self._reservoir)
        rank = max(0, math.ceil(fraction * len(ordered)) - 1)
        return ordered[rank]


def ratio(numerator: float, denominator: float) -> float:
    """A division that treats 0/0 as 0 rather than raising."""
    if denominator == 0:
        return 0.0
    return numerator / denominator


def decompose(counts: Mapping[str, int], total: int) -> Dict[str, float]:
    """Express ``counts`` as fractions of ``total`` (0 if total is 0)."""
    return {name: ratio(value, total) for name, value in counts.items()}
