"""``python -m repro serve`` — drive the job service from the shell.

The sub-subcommands mirror a campaign's life cycle::

    # queue the fig2 smoke grid (idempotent: same content -> same id)
    python -m repro serve submit fig2 --smoke --seed 3 --spool spool/

    # attach a fleet: a daemon of 2 sharded workers (or run workers by
    # hand, on any number of hosts sharing the spool)
    python -m repro serve daemon --spool spool/ --workers 2 --drain &
    python -m repro serve worker --spool spool/ --shard 1/4

    # follow progress, then assemble results
    python -m repro serve status --spool spool/
    python -m repro serve watch  <campaign-id> --spool spool/
    python -m repro serve results <campaign-id> --figure --json out.json

``results`` emits the campaign's raw per-point results by default;
``--figure`` re-runs the originating figure driver against the warm
shared cache, making the export byte-identical to a direct
``python -m repro <figure> --json`` run with the same parameters.
"""

from __future__ import annotations

import argparse
import json
import os
import sys
from pathlib import Path
from typing import List, Optional

from ..harness.export import to_json
from ..harness.metrics import run_result_to_dict
from ..harness.report import format_table
from .client import ServeClient
from .daemon import Daemon
from .jobstore import ServeError, write_text_atomic
from .queue import DEFAULT_LEASE_TTL_S, JobQueue, parse_shard
from .worker import DEFAULT_POLL_S, Worker

#: Spool directory used when neither ``--spool`` nor ``REPRO_SPOOL`` says
#: otherwise.
DEFAULT_SPOOL = ".repro-spool"


def _spool_default() -> str:
    return os.environ.get("REPRO_SPOOL", DEFAULT_SPOOL)


def _add_spool(parser: argparse.ArgumentParser) -> None:
    parser.add_argument(
        "--spool",
        metavar="PATH",
        default=_spool_default(),
        help="spool directory holding the queue and the shared result "
        "cache (default: $REPRO_SPOOL or ./" + DEFAULT_SPOOL + ")",
    )


def _cmd_submit(args: argparse.Namespace) -> int:
    from ..harness.bench import SMOKE_SCALE
    from ..harness.config import DEFAULT_SCALE

    client = ServeClient(args.spool)
    quick = not args.full
    scale = args.scale if args.scale is not None else DEFAULT_SCALE
    if args.smoke:
        quick, scale = True, SMOKE_SCALE
    for figure in args.figures:
        meta = client.submit_figure(
            figure,
            quick=quick,
            scale=scale,
            seed=args.seed,
            campaign_id=args.id if len(args.figures) == 1 else None,
        )
        status = client.status(meta.campaign_id)
        print(
            f"{meta.campaign_id}: {figure} "
            f"({meta.total_points} points, {status.done} already cached)"
        )
    return 0


def _cmd_status(args: argparse.Namespace) -> int:
    client = ServeClient(args.spool)
    statuses = (
        [client.status(args.campaign)] if args.campaign else client.statuses()
    )
    if args.json:
        print(
            json.dumps(
                [
                    {
                        "campaign_id": s.campaign_id,
                        "title": s.title,
                        "total": s.total,
                        "done": s.done,
                        "failed": s.failed,
                        "leased": s.leased,
                        "pending": s.pending,
                        "cancelled": s.cancelled,
                    }
                    for s in statuses
                ],
                indent=2,
            )
        )
        return 0
    if not statuses:
        print(f"no campaigns in spool {args.spool}")
        return 0
    rows = [
        [
            s.campaign_id,
            s.title,
            s.total,
            s.done,
            s.failed,
            s.leased,
            s.pending,
            "cancelled" if s.cancelled
            else ("complete" if s.complete else "running"),
        ]
        for s in statuses
    ]
    print(
        format_table(
            ["campaign", "title", "points", "done", "failed", "leased",
             "pending", "state"],
            rows,
            title=f"spool: {args.spool}",
        )
    )
    return 0


def _cmd_watch(args: argparse.Namespace) -> int:
    client = ServeClient(args.spool)
    campaign_ids = args.campaigns
    if not campaign_ids:
        campaign_ids = [
            meta.campaign_id for meta in client.queue.campaigns()
        ]
        if not campaign_ids:
            print(f"no campaigns in spool {args.spool}")
            return 1
    for campaign_id in campaign_ids:

        def stream(status, newly, campaign_id=campaign_id):
            for index, label in newly:
                print(f"[{campaign_id}] point {index} done ({label})")
            print(
                f"[{campaign_id}] {status.done}/{status.total} done, "
                f"{status.leased} running, {status.pending} pending"
            )

        status = client.watch(
            campaign_id,
            timeout_s=args.timeout,
            poll_s=args.poll,
            progress=stream,
        )
        print(f"[{campaign_id}] complete ({status.total} points)")
    return 0


def _cmd_results(args: argparse.Namespace) -> int:
    client = ServeClient(args.spool)
    if args.figure:
        text = to_json(client.figure_results(args.campaign))
    else:
        payload = [
            {
                "index": index,
                "label": run.label,
                "fingerprint": run.fingerprint,
                "result": run_result_to_dict(run.result),
            }
            for index, run in enumerate(client.point_runs(args.campaign))
        ]
        text = json.dumps(payload, indent=2, sort_keys=False)
    if args.json:
        # Results files are read by downstream tooling while we write;
        # publish them atomically like every other spool artifact.
        write_text_atomic(Path(args.json), text)
        print(f"wrote {args.json}")
    else:
        print(text)
    return 0


def _cmd_worker(args: argparse.Namespace) -> int:
    worker = Worker(
        args.spool,
        shard=parse_shard(args.shard),
        name=args.name,
        lease_ttl_s=args.lease_ttl,
        progress=print,
    )
    try:
        if args.drain:
            worker.drain(poll_s=args.poll, timeout_s=args.timeout)
        else:
            worker.run_forever(poll_s=args.poll)
    except KeyboardInterrupt:
        pass
    finally:
        print(worker.summary())
    return 0


def _cmd_daemon(args: argparse.Namespace) -> int:
    daemon = Daemon(
        args.spool,
        workers=args.workers,
        drain=args.drain,
        poll_s=args.poll,
        lease_ttl_s=args.lease_ttl,
        restart_limit=args.restart_limit,
    )
    try:
        return daemon.run()
    except KeyboardInterrupt:
        return 0


def _cmd_cancel(args: argparse.Namespace) -> int:
    JobQueue(args.spool).cancel(args.campaign)
    print(f"cancelled {args.campaign}")
    return 0


def _cmd_retry(args: argparse.Namespace) -> int:
    cleared = JobQueue(args.spool).clear_failures(args.campaign)
    print(f"cleared {cleared} failure marker(s) on {args.campaign}")
    return 0


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro serve",
        description="Run experiment grids as submit-and-watch jobs on a "
        "sharded worker fleet with checkpoint/resume.",
    )
    commands = parser.add_subparsers(dest="command", required=True)

    submit = commands.add_parser(
        "submit", help="queue one or more figure grids as campaigns"
    )
    submit.add_argument("figures", nargs="+", metavar="FIGURE")
    submit.add_argument("--full", action="store_true",
                        help="the paper's full sweep matrix")
    submit.add_argument("--smoke", action="store_true",
                        help="quick grids at the bench smoke scale (1/64)")
    submit.add_argument("--scale", type=float, default=None)
    submit.add_argument("--seed", type=int, default=2020)
    submit.add_argument("--id", metavar="CAMPAIGN_ID", default=None,
                        help="explicit campaign id (single figure only; "
                        "default: content-derived)")
    _add_spool(submit)
    submit.set_defaults(func=_cmd_submit)

    status = commands.add_parser("status", help="campaign progress table")
    status.add_argument("campaign", nargs="?", default=None)
    status.add_argument("--json", action="store_true",
                        help="machine-readable output")
    _add_spool(status)
    status.set_defaults(func=_cmd_status)

    watch = commands.add_parser(
        "watch", help="stream per-point progress until campaigns complete"
    )
    watch.add_argument("campaigns", nargs="*", metavar="CAMPAIGN",
                       help="default: every campaign in the spool")
    watch.add_argument("--timeout", type=float, default=None, metavar="S")
    watch.add_argument("--poll", type=float, default=0.5, metavar="S")
    _add_spool(watch)
    watch.set_defaults(func=_cmd_watch)

    results = commands.add_parser(
        "results", help="assemble a finished campaign's results as JSON"
    )
    results.add_argument("campaign", metavar="CAMPAIGN")
    results.add_argument("--figure", action="store_true",
                         help="re-assemble the originating figure (export "
                         "byte-identical to a direct run)")
    results.add_argument("--json", metavar="PATH",
                         help="write to a file instead of stdout")
    _add_spool(results)
    results.set_defaults(func=_cmd_results)

    worker = commands.add_parser(
        "worker", help="run one fleet worker against the spool"
    )
    worker.add_argument("--shard", default="0/1", metavar="i/N",
                        help="this worker's static shard (default 0/1)")
    worker.add_argument("--name", default=None)
    worker.add_argument("--drain", action="store_true",
                        help="exit once this shard is settled instead of "
                        "serving forever")
    worker.add_argument("--poll", type=float, default=DEFAULT_POLL_S,
                        metavar="S")
    worker.add_argument("--timeout", type=float, default=None, metavar="S",
                        help="give up draining after S idle seconds")
    worker.add_argument("--lease-ttl", type=float,
                        default=DEFAULT_LEASE_TTL_S, metavar="S")
    _add_spool(worker)
    worker.set_defaults(func=_cmd_worker)

    daemon = commands.add_parser(
        "daemon", help="supervise a local fleet of sharded workers"
    )
    daemon.add_argument("--workers", type=int, default=2, metavar="N")
    daemon.add_argument("--drain", action="store_true",
                        help="exit when the queue is drained (batch/CI mode)")
    daemon.add_argument("--poll", type=float, default=DEFAULT_POLL_S,
                        metavar="S")
    daemon.add_argument("--lease-ttl", type=float,
                        default=DEFAULT_LEASE_TTL_S, metavar="S")
    daemon.add_argument("--restart-limit", type=int, default=3)
    _add_spool(daemon)
    daemon.set_defaults(func=_cmd_daemon)

    cancel = commands.add_parser("cancel", help="stop a campaign")
    cancel.add_argument("campaign", metavar="CAMPAIGN")
    _add_spool(cancel)
    cancel.set_defaults(func=_cmd_cancel)

    retry = commands.add_parser(
        "retry", help="clear a campaign's failure markers so workers retry"
    )
    retry.add_argument("campaign", metavar="CAMPAIGN")
    _add_spool(retry)
    retry.set_defaults(func=_cmd_retry)

    return parser


def main(argv: Optional[List[str]] = None) -> int:
    if argv is None:
        argv = sys.argv[1:]
    parser = build_parser()
    args = parser.parse_args(argv)
    try:
        return args.func(args)
    except ServeError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 1
