"""End-to-end bit-identity: whole figure exports across all engines.

The acceptance bar for the vectorized and batched engines is byte-identical
fig2 and fig7 exports against scalar at the smoke scale, for two seeds.
The engine is selected the same way ``python -m repro --engine`` does it:
through the process-default environment variable, so this also covers the
CLI plumbing.
"""

import pytest

np = pytest.importorskip("numpy")

from repro.harness.bench import SMOKE_SCALE
from repro.harness.export import to_json
from repro.harness.figures import fig2, fig7
from repro.kernels import ENGINE_ENV_VAR

FIGURES = {"fig2": fig2, "fig7": fig7}


def export(monkeypatch, figure, engine, seed):
    monkeypatch.setenv(ENGINE_ENV_VAR, engine)
    return to_json([FIGURES[figure](quick=True, scale=SMOKE_SCALE, seed=seed)])


@pytest.mark.parametrize("engine", ("vectorized", "batched"))
@pytest.mark.parametrize("figure", sorted(FIGURES))
@pytest.mark.parametrize("seed", (2020, 7))
def test_exports_byte_identical_across_engines(
    monkeypatch, figure, seed, engine
):
    scalar = export(monkeypatch, figure, "scalar", seed)
    candidate = export(monkeypatch, figure, engine, seed)
    assert scalar == candidate
