"""Crash injection and post-failure recovery (Section IV-C).

"UHTM restores the program state from a power failure with NVM data only.
UHTM replays the committed redo entries in the NVM log area and disregards
the uncommitted one, as same as the recovery of redo-logging in the
conventional database logging."

:class:`CrashController` wipes every volatile structure — CPU caches, the
DRAM backing store, the DRAM log, and the DRAM cache — then replays the NVM
log.  Durability tests build data structures transactionally, crash at
arbitrary points, recover, and verify that exactly the committed state is
visible.

Recovery is verified to be *idempotent* on every invocation: after the
replay, a second replay pass must be a no-op (nothing left to replay, NVM
contents unchanged).  A violation raises :class:`~repro.errors.RecoveryError`
— it would mean the log survived reclamation or replay mutated the log, both
of which would make multi-crash recovery (a failure during recovery itself)
unsound.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..cache.hierarchy import CacheHierarchy
from ..errors import RecoveryError
from ..mem.controller import MemoryController


@dataclass
class CrashReport:
    """What a power failure destroyed (captured before the wipe)."""

    #: Globally visible DRAM words lost.
    lost_dram_words: int
    #: DRAM log records lost (undo/redo records for volatile data).
    lost_dram_log_records: int
    #: DRAM-cache lines lost (committed-but-undrained or uncommitted).
    lost_dram_cache_lines: int


@dataclass
class RecoveryReport:
    """What a recovery pass did."""

    replayed_lines: int
    surviving_nvm_words: int
    #: Data records discarded because their transaction never committed
    #: (in-flight at the crash, or aborted with deferred log deletion).
    discarded_records: int = 0
    #: Commit/abort-marked transactions whose records were reclaimed.
    reclaimed_txs: int = 0
    #: The post-replay idempotence audit passed (always True when the
    #: report is returned; a failure raises instead).
    idempotent: bool = True


class CrashController:
    """Injects power failures and runs recovery over a simulated machine."""

    def __init__(self, controller: MemoryController, hierarchy: CacheHierarchy) -> None:
        self._controller = controller
        self._hierarchy = hierarchy
        self.crashes = 0

    def crash(self) -> CrashReport:
        """Power failure: all volatile state is lost instantly.

        Pending writes in the controller's write-pending queue are durable
        under ADR, which in this model means everything already appended to
        the NVM log or stored to the NVM backing store survives.
        """
        self.crashes += 1
        dram_words, dram_log_records, dram_cache_lines = (
            self._controller.volatile_loss_counts()
        )
        report = CrashReport(
            lost_dram_words=dram_words,
            lost_dram_log_records=dram_log_records,
            lost_dram_cache_lines=dram_cache_lines,
        )
        self._hierarchy.wipe()
        self._controller.crash()
        return report

    def recover(self) -> RecoveryReport:
        """Replay committed NVM redo records into the NVM backing store.

        Besides the replay itself this (1) discards the records of
        transactions that never committed — their owners died with the
        machine — and (2) audits that a second replay pass would be a
        no-op, so a crash *during* recovery is always survivable by simply
        recovering again.
        """
        marked = self._controller.marked_nvm_tx_ids()
        replayed = self._controller.recover()
        discarded = self._controller.discard_uncommitted_nvm_records()
        self._audit_idempotence()
        return RecoveryReport(
            replayed_lines=replayed,
            surviving_nvm_words=self._controller.nvm_word_count(),
            discarded_records=discarded,
            reclaimed_txs=len(marked),
        )

    def _audit_idempotence(self) -> None:
        """A second recovery pass must change nothing."""
        leftover = self._controller.nvm_redo_record_count()
        if leftover:
            raise RecoveryError(
                f"recovery left {leftover} redo records in the NVM log"
            )
        before = self._controller.nvm_snapshot()
        if self._controller.recover() != 0:
            raise RecoveryError("second recovery pass replayed records")
        if self._controller.nvm_snapshot() != before:
            raise RecoveryError("second recovery pass mutated NVM contents")
