"""Hypothesis property suites: random op streams through both engines.

The recorded-sequence tests pin specific seeds; these search the op space.
Strategies generate (name, args) streams directly so shrunk failures are
replayable op lists.
"""

import pytest

np = pytest.importorskip("numpy")
pytest.importorskip("hypothesis")

from hypothesis import given, settings
from hypothesis import strategies as st

from kernel_harness import (
    DifferentialHarness,
    GuardedArray,
    bloom_state,
    histogram_state,
    setassoc_state,
)

from repro.cache.setassoc import SetAssociativeArray
from repro.kernels.setassoc import VectorSetAssociativeArray
from repro.kernels.signatures import VectorBankedBloomFilter, VectorBloomFilter
from repro.params import LINE_SIZE, CacheGeometry
from repro.signatures.bloom import BankedBloomFilter, BloomFilter
from repro.signatures.hashing import shared_multiplicative

COMMON = dict(max_examples=60, deadline=None)

values = st.integers(min_value=0, max_value=(1 << 40) - 1)

bloom_op = st.one_of(
    st.tuples(st.just("insert"), values),
    st.tuples(st.just("maybe_contains"), values),
    st.tuples(st.just("popcount")),
    st.tuples(st.just("saturation")),
    st.tuples(st.just("is_empty")),
    st.tuples(st.just("clear")),
)


@settings(**COMMON)
@given(ops=st.lists(bloom_op, max_size=120))
def test_flat_bloom_property(ops):
    family = shared_multiplicative(4, 512, seed=1)
    harness = DifferentialHarness(
        BloomFilter(512, 4, family),
        VectorBloomFilter(512, 4, family),
        state_fn=bloom_state,
    )
    harness.replay(ops)


@settings(**COMMON)
@given(ops=st.lists(bloom_op, max_size=120))
def test_banked_bloom_property(ops):
    family = shared_multiplicative(4, 128, seed=2)
    harness = DifferentialHarness(
        BankedBloomFilter(512, 4, family),
        VectorBankedBloomFilter(512, 4, family),
        state_fn=bloom_state,
    )
    harness.replay(ops)


@settings(**COMMON)
@given(batch=st.lists(values, max_size=300))
def test_insert_batch_property(batch):
    family = shared_multiplicative(4, 512, seed=3)
    scalar = BloomFilter(512, 4, family)
    vector = VectorBloomFilter(512, 4, family)
    scalar.insert_all(batch)
    vector.insert_batch(batch)
    assert bloom_state(scalar) == bloom_state(vector)
    assert list(vector.contains_batch(batch)) == [True] * len(batch)


line_addrs = st.integers(min_value=0, max_value=63).map(
    lambda line: line * LINE_SIZE
)

setassoc_op = st.one_of(
    st.tuples(st.just("lookup"), line_addrs),
    st.tuples(st.just("peek"), line_addrs),
    st.tuples(st.just("fill_if_absent"), line_addrs),
    st.tuples(st.just("remove"), line_addrs),
    st.tuples(st.just("resident_lines")),
    st.tuples(st.just("clear")),
)


@settings(**COMMON)
@given(
    ops=st.lists(setassoc_op, max_size=200),
    geometry=st.sampled_from([(4, 2), (3, 2), (5, 1), (8, 4)]),
)
def test_setassoc_property(ops, geometry):
    num_sets, ways = geometry
    geom = CacheGeometry(size_bytes=num_sets * ways * LINE_SIZE, ways=ways)
    harness = DifferentialHarness(
        GuardedArray(SetAssociativeArray(geom, name="ref")),
        GuardedArray(VectorSetAssociativeArray(geom, name="cand")),
        state_fn=setassoc_state,
    )
    harness.replay(ops)


sample_values = st.floats(
    min_value=0.0, max_value=1e12, allow_nan=False, allow_infinity=False
)

histogram_op = st.one_of(
    st.tuples(st.just("record"), sample_values),
    st.tuples(st.just("count")),
    st.tuples(st.just("mean")),
    st.tuples(st.just("max")),
    st.tuples(
        st.just("percentile"), st.floats(min_value=0.01, max_value=1.0)
    ),
)


@settings(**COMMON)
@given(ops=st.lists(histogram_op, max_size=200))
def test_histogram_property(ops):
    from repro.kernels.stats import VectorHistogram
    from repro.sim.stats import Histogram

    harness = DifferentialHarness(
        Histogram(), VectorHistogram(), state_fn=histogram_state
    )
    harness.replay(ops)
