"""Unit tests for retry-chain assembly and tail-amplification analysis."""

from __future__ import annotations

import pytest

from repro.errors import SimulationError
from repro.obs.events import (
    MEM_COMMIT_NVM,
    SLOWPATH_BEGIN,
    SLOWPATH_COMMIT,
    TX_ABORT,
    TX_BEGIN,
    TX_COMMIT,
    TraceEvent,
)
from repro.traffic.report import (
    analyze_chains,
    build_chains,
    chain_percentile,
)

_IDS = iter(range(1, 10_000)).__next__


def _attempt(thread_id, begin, end, outcome="committed", reason=None):
    tx_id = _IDS()
    if outcome == "slowpath":
        return [
            TraceEvent(SLOWPATH_BEGIN, begin, tx_id=tx_id, thread_id=thread_id),
            TraceEvent(SLOWPATH_COMMIT, end, tx_id=tx_id, thread_id=thread_id),
        ]
    events = [TraceEvent(TX_BEGIN, begin, tx_id=tx_id, thread_id=thread_id)]
    if outcome == "committed":
        events.append(
            TraceEvent(TX_COMMIT, end, tx_id=tx_id, thread_id=thread_id)
        )
    else:
        events.append(
            TraceEvent(
                TX_ABORT, end, tx_id=tx_id, thread_id=thread_id,
                data=(("reason", reason or "conflict_true"),),
            )
        )
    return events


class TestBuildChains:
    def test_clean_chain(self):
        chains = build_chains(_attempt(0, 10.0, 25.0))
        assert len(chains) == 1
        chain = chains[0]
        assert chain.clean
        assert (chain.begin_ns, chain.end_ns) == (10.0, 25.0)
        assert chain.final_attempt_ns == 15.0
        assert chain.excess_ns == 0.0

    def test_retry_chain_groups_aborts_in_order(self):
        events = (
            _attempt(0, 0.0, 10.0, "aborted", "false_positive")
            + _attempt(0, 10.0, 20.0, "aborted", "capacity")
            + _attempt(0, 20.0, 30.0, "committed")
        )
        chains = build_chains(events)
        assert len(chains) == 1
        chain = chains[0]
        assert chain.abort_groups == ("signature_alias", "capacity")
        assert (chain.begin_ns, chain.end_ns) == (0.0, 30.0)
        assert chain.final_attempt_ns == 10.0
        assert chain.excess_ns == 20.0
        assert not chain.clean

    def test_slowpath_terminates_a_chain(self):
        events = (
            _attempt(1, 0.0, 10.0, "aborted", "explicit")
            + _attempt(1, 10.0, 40.0, "slowpath")
        )
        chains = build_chains(events)
        assert len(chains) == 1
        assert chains[0].outcome == "slowpath"
        assert not chains[0].clean

    def test_async_writeback_does_not_stretch_the_chain(self):
        # Post-commit log writeback events carry the committed tx's id but
        # land while the thread is already in its next transaction; the
        # chain must end at the commit, not at the last attributed event.
        events = _attempt(0, 0.0, 10.0)
        tx_id = events[0].tx_id
        events.append(
            TraceEvent(MEM_COMMIT_NVM, 95.0, tx_id=tx_id, thread_id=0)
        )
        chains = build_chains(events)
        assert chains[0].end_ns == 10.0
        assert chains[0].final_attempt_ns == 10.0

    def test_trailing_unterminated_attempts_are_dropped(self):
        events = (
            _attempt(0, 0.0, 10.0, "committed")
            + _attempt(0, 10.0, 20.0, "aborted")
        )
        chains = build_chains(events)
        assert len(chains) == 1
        assert chains[0].end_ns == 10.0

    def test_threads_are_independent(self):
        events = _attempt(0, 0.0, 10.0) + _attempt(1, 5.0, 15.0)
        chains = build_chains(events)
        assert sorted(c.thread_id for c in chains) == [0, 1]


class TestChainPercentile:
    def test_empty_is_zero(self):
        assert chain_percentile([], 0.99) == 0.0

    def test_nearest_rank(self):
        values = [float(v) for v in range(1, 101)]
        assert chain_percentile(values, 0.50) == 50.0
        assert chain_percentile(values, 0.99) == 99.0
        assert chain_percentile(values, 1.0) == 100.0


class TestAnalyzeChains:
    def test_clean_unqueued_traffic_has_amplification_one(self):
        events = _attempt(0, 0.0, 10.0) + _attempt(0, 100.0, 110.0)
        report = analyze_chains(
            build_chains(events), [[0.0, 100.0]], label="calm"
        )
        assert report.label == "calm"
        assert (report.chains, report.clean_chains) == (2, 2)
        assert report.p999_ns == 10.0
        assert report.amplification_p50 == 1.0
        assert report.amplification_p999 == 1.0

    def test_retry_excess_amplifies_through_the_queue(self):
        # One chain burns 40 ns on retries; the request behind it queues.
        # The abort-free replay removes both the retries and the queueing
        # they caused, so amplification charges aborts for the full damage.
        events = (
            _attempt(0, 0.0, 10.0, "aborted", "false_positive")
            + _attempt(0, 10.0, 20.0, "aborted", "false_positive")
            + _attempt(0, 20.0, 30.0, "aborted", "false_positive")
            + _attempt(0, 30.0, 40.0, "aborted", "false_positive")
            + _attempt(0, 40.0, 50.0, "committed")
            + _attempt(0, 50.0, 60.0, "committed")
        )
        report = analyze_chains(build_chains(events), [[0.0, 10.0]])
        # Actual: 50 and 50; replay: 10 and 10 (second starts at its
        # arrival once the first no longer blocks it).
        assert report.p999_ns == 50.0
        assert report.ideal_p999_ns == 10.0
        assert report.amplification_p999 == 5.0
        assert report.dirty_chains == 1

    def test_excess_is_attributed_to_forensic_groups(self):
        events = (
            _attempt(0, 0.0, 10.0, "aborted", "false_positive")
            + _attempt(0, 10.0, 20.0, "aborted", "capacity")
            + _attempt(0, 20.0, 30.0, "committed")
        )
        report = analyze_chains(build_chains(events), [[0.0]])
        assert report.excess_ns_by_group == {
            "signature_alias": 10.0,
            "capacity": 10.0,
        }

    def test_more_chains_than_arrivals_raises(self):
        events = _attempt(0, 0.0, 10.0) + _attempt(0, 10.0, 20.0)
        with pytest.raises(SimulationError):
            analyze_chains(build_chains(events), [[0.0]])

    def test_thread_beyond_schedules_raises(self):
        with pytest.raises(SimulationError):
            analyze_chains(build_chains(_attempt(3, 0.0, 10.0)), [[0.0]])

    def test_trailing_dropped_chains_are_tolerated(self):
        # The trace may end mid-request: fewer chains than arrivals is
        # normal, the unpaired tail is simply not scored.
        events = _attempt(0, 0.0, 10.0)
        report = analyze_chains(build_chains(events), [[0.0, 50.0, 90.0]])
        assert report.chains == 1