"""Tests for the Table II conflict-resolution policy."""

from __future__ import annotations

from hypothesis import given, strategies as st

from repro.htm.conflict import ConflictLocation, resolve_conflict


class TestOverflowPriority:
    """If only one side overflowed, abort the non-overflowed transaction."""

    def test_overflowed_requester_beats_victim_onchip(self):
        resolution = resolve_conflict(
            ConflictLocation.ON_CHIP, True, [2], {2: False}
        )
        assert not resolution.requester_aborts
        assert resolution.victims_to_abort == frozenset({2})

    def test_overflowed_victim_beats_requester_onchip(self):
        resolution = resolve_conflict(
            ConflictLocation.ON_CHIP, False, [2], {2: True}
        )
        assert resolution.requester_aborts

    def test_overflowed_requester_beats_victim_offchip(self):
        resolution = resolve_conflict(
            ConflictLocation.OFF_CHIP, True, [2], {2: False}
        )
        assert resolution.victims_to_abort == frozenset({2})

    def test_overflowed_victim_beats_requester_offchip(self):
        resolution = resolve_conflict(
            ConflictLocation.OFF_CHIP, False, [2], {2: True}
        )
        assert resolution.requester_aborts


class TestTieBreaks:
    """Neither or both overflowed: requester wins on-chip, loses off-chip."""

    def test_onchip_requester_wins(self):
        for overflowed in (False, True):
            resolution = resolve_conflict(
                ConflictLocation.ON_CHIP,
                overflowed,
                [2],
                {2: overflowed},
            )
            assert not resolution.requester_aborts
            assert resolution.victims_to_abort == frozenset({2})

    def test_offchip_requester_aborts(self):
        for overflowed in (False, True):
            resolution = resolve_conflict(
                ConflictLocation.OFF_CHIP,
                overflowed,
                [2],
                {2: overflowed},
            )
            assert resolution.requester_aborts


class TestMultiVictim:
    def test_requester_survives_only_if_it_beats_all(self):
        resolution = resolve_conflict(
            ConflictLocation.ON_CHIP, True, [2, 3], {2: False, 3: False}
        )
        assert resolution.victims_to_abort == frozenset({2, 3})

    def test_one_overflowed_victim_kills_requester(self):
        resolution = resolve_conflict(
            ConflictLocation.ON_CHIP, False, [2, 3], {2: False, 3: True}
        )
        assert resolution.requester_aborts
        assert resolution.victims_to_abort == frozenset()


@given(
    location=st.sampled_from(list(ConflictLocation)),
    requester_overflowed=st.booleans(),
    victims=st.lists(st.integers(min_value=1, max_value=50), min_size=1,
                     max_size=8, unique=True),
    overflow_bits=st.booleans(),
)
def test_resolution_is_exclusive(location, requester_overflowed, victims,
                                 overflow_bits):
    """Exactly one side aborts: never both, never neither."""
    resolution = resolve_conflict(
        location,
        requester_overflowed,
        victims,
        {v: overflow_bits for v in victims},
    )
    if resolution.requester_aborts:
        assert resolution.victims_to_abort == frozenset()
    else:
        assert resolution.victims_to_abort


@given(
    location=st.sampled_from(list(ConflictLocation)),
    victims=st.lists(st.integers(min_value=1, max_value=50), min_size=1,
                     max_size=8, unique=True),
)
def test_overflowed_requester_never_aborts_to_non_overflowed(location, victims):
    resolution = resolve_conflict(
        location, True, victims, {v: False for v in victims}
    )
    assert not resolution.requester_aborts
