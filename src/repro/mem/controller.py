"""The memory controller: backing stores, hardware logs, and the DRAM cache.

The controller is the only component allowed to touch the reserved log areas
(Section IV-B).  Its methods return the latency in nanoseconds that the
*calling thread* must be charged; operations the paper places off the
critical path (undo-log writes on eviction, background drains, deferred log
deletion) return zero and are accounted in counters instead.
"""

from __future__ import annotations

from typing import Callable, Dict, List, Optional, Set, Tuple

from ..params import LINE_SIZE, LatencyConfig, MemoryConfig
from .address import AddressSpace, DRAM_BASE, MemoryKind, NVM_BASE, line_of

#: Inlined :func:`line_of` for the per-access controller entry points.
_LINE_MASK = ~(LINE_SIZE - 1)
from .backend import BackingStore
from .channel import MemoryChannel
from .dram_cache import DramCache
from .log import HardwareLog, RecordKind


class MemoryController:
    """Serialises log appends and mediates all off-chip data movement."""

    def __init__(self, config: MemoryConfig, latency: LatencyConfig) -> None:
        self.address_space = AddressSpace(config)
        self.latency = latency
        self.dram = BackingStore(MemoryKind.DRAM, latency)
        self.nvm = BackingStore(MemoryKind.NVM, latency)
        self.dram_log = HardwareLog(self.address_space.dram_log, "dram")
        self.nvm_log = HardwareLog(self.address_space.nvm_log, "nvm")
        self.dram_cache = DramCache(config, self.nvm)
        # Hot-path hoists: the address-space bounds are immutable after
        # construction (the range compares are inlined below instead of
        # calling is_dram/is_nvm per access), and the DRAM-cache probes are
        # invariant bound methods (wipe() mutates the cache in place, never
        # replaces it).  Every LLC miss goes through them.
        self._dram_end = self.address_space.dram_end
        self._nvm_end = self.address_space.nvm_end
        self._dc_contains = self.dram_cache.contains
        self._dc_lookup = self.dram_cache.lookup
        if config.model_bandwidth:
            self.dram_channel: Optional[MemoryChannel] = MemoryChannel(
                "dram", latency.dram_line_transfer_ns
            )
            self.nvm_channel: Optional[MemoryChannel] = MemoryChannel(
                "nvm", latency.nvm_line_transfer_ns
            )
        else:
            self.dram_channel = None
            self.nvm_channel = None
        #: NVM writes performed by background drains (bandwidth accounting).
        self.background_nvm_writes = 0
        #: DRAM writes performed by asynchronous undo logging.
        self.background_dram_writes = 0
        #: Fault-injection hook points (see :mod:`repro.faults`).  ``None``
        #: means no campaign is running and every hook is a no-op.
        self.fault_injector = None
        #: Optional event tracer (see :mod:`repro.obs`).  The controller has
        #: no clock of its own, so it emits with ``ts_ns=None`` and the
        #: tracer stamps the caller's last-known simulated time.
        self.tracer = None
        #: Invoked at the architectural NVM commit point — right after the
        #: durable commit mark lands (or would have landed, under an
        #: injected durability bug) — with ``(tx_id, lines)``.  The crash
        #: oracle shadows committed state through this.
        self.on_nvm_commit: Optional[
            Callable[[int, Dict[int, Dict[int, int]]], None]
        ] = None
        #: Invoked with the address of every non-transactional NVM store;
        #: such writes carry no durability guarantee, so the oracle excludes
        #: them from verification.
        self.on_nontx_nvm_store: Optional[Callable[[int], None]] = None
        # A committed transaction's new values live only in the (volatile)
        # DRAM cache plus its redo records until the lines drain to NVM in
        # place.  Compaction reclaims committed transactions' records, so it
        # must drain the cache first or a crash after compaction would lose
        # the commit.
        self.nvm_log.pre_compact = self._drain_before_nvm_reclaim

    def _drain_before_nvm_reclaim(self) -> None:
        self.background_nvm_writes += self.dram_cache.drain_all()

    # -- data-path helpers ---------------------------------------------------

    def backend_for(self, addr: int) -> BackingStore:
        if self.address_space.is_dram(addr):
            return self.dram
        return self.nvm

    def read_latency(self, addr: int) -> float:
        """Latency of a demand read that reached this controller.

        A persistent line resident in the DRAM cache is served at DRAM-cache
        speed instead of NVM speed.  Classified once — every LLC miss lands
        here, so the DRAM case pays a single range compare.
        """
        if DRAM_BASE <= addr < self._dram_end:
            return self.dram.read_ns
        if self._dc_contains(addr & _LINE_MASK):
            return self.latency.dram_cache_ns
        return self.nvm.read_ns

    def demand_access_latency(self, addr: int, now_ns: float) -> float:
        """Device latency plus channel queueing (if bandwidth is modelled)."""
        if DRAM_BASE <= addr < self._dram_end:
            base = self.dram.read_ns
            channel = self.dram_channel
        elif self._dc_contains(addr & _LINE_MASK):
            # Served from the DRAM cache, so over the DRAM channel.
            base = self.latency.dram_cache_ns
            channel = self.dram_channel
        else:
            base = self.nvm.read_ns
            channel = self.nvm_channel
        if channel is None:
            return base
        return base + channel.request(now_ns)

    def load_word(self, addr: int) -> int:
        """Architecturally visible value of a word, honouring the DRAM cache."""
        if NVM_BASE <= addr < self._nvm_end:
            entry = self._dc_lookup(addr & _LINE_MASK)
            if entry is not None and addr in entry.words:
                return entry.words[addr]
            return self.nvm.load(addr)
        if DRAM_BASE <= addr < self._dram_end:
            return self.dram.load(addr)
        return self.nvm.load(addr)

    def store_word(self, addr: int, value: int) -> None:
        """Non-transactional in-place store.

        An NVM store must update a resident DRAM-cache line rather than the
        backing NVM, or the stale cached copy would shadow the new value
        until it drained.
        """
        if NVM_BASE <= addr < self._nvm_end:
            if self.on_nontx_nvm_store is not None:
                self.on_nontx_nvm_store(addr)
            entry = self._dc_lookup(addr & _LINE_MASK)
            if entry is not None:
                entry.words[addr] = value
                return
            self.nvm.store(addr, value)
            return
        if self.address_space.is_dram(addr):
            self.dram.store(addr, value)
            return
        self.nvm.store(addr, value)

    def rmw_word(self, addr: int, delta: int) -> None:
        """Fused ``store_word(addr, load_word(addr) + delta)``.

        One address classification instead of two.  Only legal when nothing
        can touch the word between the load and the store — the epoch
        dispatcher's read-modify-write sweep calls it when no transaction is
        active anywhere (so no conflict staging, and therefore no rollback,
        can interleave).  The NVM branch keeps the exact composed sequence
        because of the DRAM-cache lookup and store-hook ordering.
        """
        if DRAM_BASE <= addr < self._dram_end:
            self.dram.rmw(addr, delta)
            return
        self.store_word(addr, self.load_word(addr) + delta)

    # -- undo logging (LLC-overflowed DRAM lines) ----------------------------

    def log_undo_and_update(
        self, tx_id: int, line_addr: int, new_words: Dict[int, int]
    ) -> float:
        """Undo-log a DRAM line's old image, then update it in place.

        Happens on LLC eviction, which "is not in the critical path, [so]
        the undo logging can happen asynchronously without stalling the
        transaction" — hence the returned thread charge is zero.
        """
        old_words = {
            word_addr: self.dram.load(word_addr) for word_addr in new_words
        }
        self.dram_log.append_data(RecordKind.UNDO, tx_id, line_addr, old_words)
        for word_addr, value in new_words.items():
            self.dram.store(word_addr, value)
        self.background_dram_writes += 1 + len(new_words)
        return 0.0

    def rollback_undo(self, tx_id: int) -> float:
        """Restore in-place DRAM data from the transaction's undo records.

        Runs on abort, *on* the critical path: "the abort process is
        expensive in exchange for fast commits".  Charges one DRAM write per
        logged line plus one DRAM read to fetch each record.
        """
        records = self.dram_log.records_of(tx_id)
        for record in reversed(records):
            for word_addr, old_value in record.words:
                self.dram.store(word_addr, old_value)
        elapsed = len(records) * (self.latency.dram_ns * 2)
        self.dram_log.append_mark(RecordKind.ABORT, tx_id)
        self.dram_log.reclaim(tx_id)
        if self.tracer is not None:
            self.tracer.emit(
                "mem.rollback.dram",
                tx_id=tx_id,
                records=len(records),
                latency_ns=elapsed,
            )
        return elapsed

    def commit_undo(self, tx_id: int) -> float:
        """Commit DRAM overflow data: a single commit-mark write.

        "undo logging can finalize the commit protocol immediately by
        placing the commit mark on the log because all changes are already
        applied."
        """
        self.dram_log.append_mark(RecordKind.COMMIT, tx_id)
        self.dram_log.reclaim(tx_id)  # background reclamation
        if self.tracer is not None:
            self.tracer.emit("mem.commit.dram", tx_id=tx_id, policy="undo")
        return self.latency.dram_ns

    # -- redo logging for DRAM (Figure 10 ablation) --------------------------

    def log_redo_dram(
        self, tx_id: int, line_addr: int, new_words: Dict[int, int]
    ) -> float:
        """Redo-log a DRAM line's new image, leaving in-place data unmodified."""
        self.dram_log.append_data(RecordKind.REDO, tx_id, line_addr, new_words)
        self.background_dram_writes += 1
        return 0.0

    def redo_dram_lookup(self, tx_id: int, addr: int) -> Optional[int]:
        """Search the DRAM redo log for a transactional read (indirection)."""
        for record in self.dram_log.records_of(tx_id):
            if record.line_addr == line_of(addr):
                for word_addr, value in record.words:
                    if word_addr == addr:
                        return value
        return None

    def redo_dram_indirection_latency(self) -> float:
        """Extra DRAM accesses to index the log area on an overflowed read.

        "Indexing the log area often necessitates multiple DRAM accesses" —
        modelled as two extra DRAM reads (index + record).
        """
        return 2 * self.latency.dram_ns

    def commit_redo_dram(self, tx_id: int) -> float:
        """Commit under the redo-DRAM ablation: copy new values in place.

        "the redo log needs to copy new values to in-place locations,
        making the transaction commit slow."  Charges a read+write per line.
        """
        records = self.dram_log.records_of(tx_id)
        for record in records:
            for word_addr, value in record.words:
                self.dram.store(word_addr, value)
        elapsed = len(records) * (self.latency.dram_ns * 2) + self.latency.dram_ns
        self.dram_log.append_mark(RecordKind.COMMIT, tx_id)
        self.dram_log.reclaim(tx_id)
        if self.tracer is not None:
            self.tracer.emit(
                "mem.commit.dram",
                tx_id=tx_id,
                policy="redo",
                records=len(records),
                latency_ns=elapsed,
            )
        return elapsed

    def discard_redo_dram(self, tx_id: int) -> float:
        """Abort under the redo-DRAM ablation: drop the log (fast)."""
        self.dram_log.append_mark(RecordKind.ABORT, tx_id)
        self.dram_log.reclaim(tx_id)
        return self.latency.dram_ns

    # -- redo logging for NVM -------------------------------------------------

    def log_redo_nvm(
        self, tx_id: int, line_addr: int, new_words: Dict[int, int]
    ) -> float:
        """Append a durable redo record for a persistent line.

        Log writes stream out during execution; the write-pending-queue/ADR
        guarantee means the record is durable once accepted, so the charge
        is a single NVM write.
        """
        self.nvm_log.append_data(RecordKind.REDO, tx_id, line_addr, new_words)
        return self.latency.nvm_write_ns

    def commit_nvm_transaction(
        self, tx_id: int, lines: Dict[int, Dict[int, int]]
    ) -> float:
        """Commit-path entry point: stream the write-set's remaining redo
        records into the NVM log, then run the commit protocol.

        The controller owns the log areas (Section IV-B), so the HTM hands
        over the buffered lines rather than appending records itself.
        """
        for line_addr, words in lines.items():
            self.nvm_log.append_data(RecordKind.REDO, tx_id, line_addr, words)
        return self.commit_nvm(tx_id, lines)

    def publish_dram_words(self, words: Dict[int, int]) -> None:
        """Commit-path publish: buffered volatile words become globally
        visible (in hardware a coherence-state flip; here an in-place store)."""
        for word_addr, value in words.items():
            self.dram.store(word_addr, value)

    def commit_nvm(
        self, tx_id: int, lines: Dict[int, Dict[int, int]]
    ) -> float:
        """Commit persistent data: durable commit mark + DRAM-cache flushes.

        ``lines`` maps line address → word updates of the write-set.  New
        values go to the DRAM cache (fast), not to NVM in place; in-place
        updates happen later via background drains.
        """
        elapsed = self.latency.nvm_write_ns  # durable commit mark
        injector = self.fault_injector
        write_mark = True
        if injector is not None:
            # May crash (the window between the redo records and the mark),
            # or veto the mark entirely (the seeded durability bug).
            write_mark = injector.before_commit_mark(tx_id)
        if write_mark:
            self.nvm_log.append_mark(RecordKind.COMMIT, tx_id)
        if self.on_nvm_commit is not None:
            # Architectural commit point: the transaction is now (supposed
            # to be) durable, whatever happens to the volatile machine.
            self.on_nvm_commit(tx_id, lines)
        if injector is not None:
            injector.after_commit_mark(tx_id)
        for line_addr, words in lines.items():
            drained = self.dram_cache.fill(line_addr, words, tx_id, committed=True)
            self.background_nvm_writes += drained
            elapsed += self.latency.dram_cache_ns
        if self.tracer is not None:
            self.tracer.emit(
                "mem.commit.nvm",
                tx_id=tx_id,
                lines=len(lines),
                marked=write_mark,
                latency_ns=elapsed,
            )
        return elapsed

    def buffer_early_evicted_nvm(
        self, tx_id: int, line_addr: int, words: Dict[int, int]
    ) -> float:
        """Place an LLC-evicted, uncommitted persistent line in the DRAM cache."""
        drained = self.dram_cache.fill(line_addr, words, tx_id, committed=False)
        self.background_nvm_writes += drained
        return 0.0  # eviction path, off the critical path

    def abort_nvm(self, tx_id: int, overflow_lines: List[int]) -> float:
        """Abort persistent data: invalidate DRAM-cache entries, defer log
        deletion behind an abort flag (Section IV-C)."""
        for line_addr in overflow_lines:
            self.dram_cache.invalidate(line_addr, tx_id)
        self.nvm_log.append_mark(RecordKind.ABORT, tx_id)
        # Setting invalidate bits is cheap; log deletion is deferred to the
        # background reclaimer, so the thread pays only the abort mark.
        self.nvm_log.reclaim(tx_id)
        if self.tracer is not None:
            self.tracer.emit(
                "mem.abort.nvm", tx_id=tx_id, lines=len(overflow_lines)
            )
        return self.latency.nvm_write_ns

    # -- crash & recovery ------------------------------------------------------

    def volatile_loss_counts(self) -> Tuple[int, int, int]:
        """What a power failure would destroy right now: globally visible
        DRAM words, DRAM log records, and DRAM-cache lines."""
        return (
            self.dram.word_count(),
            len(self.dram_log),
            len(self.dram_cache),
        )

    def marked_nvm_tx_ids(self) -> Set[int]:
        """Transactions with a durable commit or abort mark in the NVM log."""
        return set(self.nvm_log.committed_tx_ids()) | set(
            self.nvm_log.aborted_tx_ids()
        )

    def nvm_word_count(self) -> int:
        """Words currently stored in the NVM backing store."""
        return self.nvm.word_count()

    def nvm_snapshot(self) -> Dict[int, int]:
        """A copy of the NVM backing store's contents (recovery audits)."""
        return self.nvm.clone_contents()

    def nvm_redo_record_count(self) -> int:
        """Redo data records still sitting in the NVM log."""
        return sum(1 for record in self.nvm_log if record.kind is RecordKind.REDO)

    def crash(self) -> None:
        """Power failure: volatile state is lost; NVM and its log survive."""
        self.dram.wipe()
        self.dram_log.wipe()
        self.dram_cache.wipe()

    def recover(self) -> int:
        """Replay committed NVM redo records; returns lines recovered.

        "UHTM replays the committed redo entries in the NVM log area and
        disregards the uncommitted one."
        """
        committed = set(self.nvm_log.committed_tx_ids())
        aborted = set(self.nvm_log.aborted_tx_ids())
        replayed = 0
        for record in list(self.nvm_log):
            if record.kind is not RecordKind.REDO:
                continue
            if record.tx_id in committed and record.tx_id not in aborted:
                for word_addr, value in record.words:
                    self.nvm.store(word_addr, value)
                replayed += 1
                if self.fault_injector is not None:
                    # A power failure can strike recovery itself; replay is
                    # idempotent, so a later attempt simply starts over.
                    self.fault_injector.on_recovery_replay(replayed)
        for tx_id in sorted(committed | aborted):
            self.nvm_log.reclaim(tx_id)
        return replayed

    def discard_uncommitted_nvm_records(self) -> int:
        """Drop NVM redo records whose transaction never committed.

        Post-crash, an in-flight transaction can never complete — its owner
        thread died with the machine — so recovery disregards its records.
        Returns how many data records were discarded.  Kept separate from
        :meth:`recover` because only a post-crash recovery may assume that
        every unmarked transaction is dead.
        """
        committed = set(self.nvm_log.committed_tx_ids())
        discarded = 0
        for tx_id in self.nvm_log.data_tx_ids():
            if tx_id in committed:
                continue
            discarded += len(self.nvm_log.records_of(tx_id))
            self.nvm_log.reclaim(tx_id)
        return discarded
