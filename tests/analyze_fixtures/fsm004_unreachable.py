"""BAD fixture: a total table with a state no transition ever produces."""

import enum


class MesiState(enum.Enum):
    INVALID = 0
    SHARED = 1
    EXCLUSIVE = 2
    MODIFIED = 3


class CoherenceRequest(enum.Enum):
    GET_S = "GetS"
    GET_M = "GetM"


def next_state_for_requester(request, other_copies):
    if request is CoherenceRequest.GET_S:
        return MesiState.SHARED
    return MesiState.MODIFIED


def next_state_for_holder(request, current):
    if current is MesiState.INVALID:
        return MesiState.INVALID
    if request is CoherenceRequest.GET_M:
        return MesiState.INVALID
    return MesiState.SHARED
