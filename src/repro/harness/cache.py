"""On-disk result cache for experiment runs.

Every :class:`~repro.harness.config.ExperimentSpec` is a pure value: frozen
dataclasses all the way down, and the simulation draws only from seeded
:mod:`repro.sim.rng` streams.  A run's output is therefore a deterministic
function of (spec, label, simulator code), which makes results cacheable by
content hash:

* **Key** — SHA-256 over a canonical JSON encoding of the full spec (the
  seed is a spec field, so different seeds are different keys), the result
  label, and :data:`CACHE_VERSION`.
* **Code version** — :data:`CACHE_VERSION` stands in for "code-relevant
  params": bump it whenever a change to the simulator can alter any metric,
  and every existing entry silently misses (the key changes; stale files
  are just never read again).
* **Layout** — ``<root>/<hh>/<fingerprint>.json`` where ``hh`` is the first
  two hex digits (fan-out so no directory grows unboundedly).  Each entry
  stores the fingerprint, version, spec name, label, and the serialised
  :class:`~repro.harness.metrics.RunResult`.

A corrupted or unreadable entry is treated as a miss (counted in
``stats.corrupt``) and recomputed — the cache can always be deleted safely.
``CacheStats.simulations`` is maintained by the grid executor so callers can
prove a warm re-run performed zero simulations.

The cache is **multi-writer safe**: any number of processes (pool workers,
``repro serve`` fleet members on a shared filesystem) may ``put`` the same
fingerprint concurrently.  Each writer stages into its own uniquely named
temporary file and publishes with one atomic rename, so readers only ever
see either no entry or one complete entry — and because results are a pure
function of the spec, every racing writer publishes identical content, so
"last rename wins" is indistinguishable from "first writer wins".
"""

from __future__ import annotations

import dataclasses
import enum
import hashlib
import itertools
import json
import os
from dataclasses import dataclass
from pathlib import Path
from typing import Any, Optional, Union

from .config import ExperimentSpec
from .metrics import RunResult, run_result_from_dict, run_result_to_dict

#: Stamp covering everything that can change a result besides the spec —
#: i.e. the simulator code itself.  Bump on any behaviour-changing change.
#: v2: RunResult grew the ``latency`` traffic summary.
CACHE_VERSION = 2

#: Process-local staging-file sequence: makes concurrent ``put`` calls from
#: threads of one process stage under distinct names too.
_put_sequence = itertools.count()


def _canonical(value: Any) -> Any:
    """A JSON-encodable form with one representation per logical value."""
    if dataclasses.is_dataclass(value) and not isinstance(value, type):
        return {
            "__dataclass__": type(value).__name__,
            "fields": {
                f.name: _canonical(getattr(value, f.name))
                for f in dataclasses.fields(value)
            },
        }
    if isinstance(value, enum.Enum):
        return {"__enum__": type(value).__name__, "value": _canonical(value.value)}
    if isinstance(value, (list, tuple)):
        return [_canonical(item) for item in value]
    if isinstance(value, dict):
        return {
            str(key): _canonical(val)
            for key, val in sorted(value.items(), key=lambda kv: str(kv[0]))
        }
    if value is None or isinstance(value, (bool, int, float, str)):
        return value
    raise TypeError(f"cannot canonicalise {type(value).__name__} for hashing")


def spec_fingerprint(
    spec: ExperimentSpec,
    label: Optional[str] = None,
    version: int = CACHE_VERSION,
) -> str:
    """Content hash identifying one experiment point (64 hex chars).

    The spec's ``engine`` knob is excluded: the scalar and vectorized
    kernels are proven bit-identical (``tests/kernels/``), so runs under
    either engine produce — and may share — the same cached result, just as
    instrumented and plain runs share one fingerprint.
    """
    payload = {
        "cache_version": version,
        "label": label,
        "spec": _canonical(spec),
    }
    payload["spec"].get("fields", {}).pop("engine", None)
    blob = json.dumps(payload, sort_keys=True, separators=(",", ":"))
    return hashlib.sha256(blob.encode("utf-8")).hexdigest()


@dataclass
class CacheStats:
    """Counters exposed so tests and the bench CLI can audit cache use."""

    hits: int = 0
    misses: int = 0
    stores: int = 0
    corrupt: int = 0
    #: Points actually simulated by the grid executor on this cache's watch
    #: (a warm re-run of an identical grid must leave this at zero).
    simulations: int = 0


class ResultCache:
    """Content-addressed store of :class:`RunResult`s under one directory."""

    def __init__(
        self, root: Union[str, Path], version: int = CACHE_VERSION
    ) -> None:
        self.root = Path(root)
        self.version = version
        self.stats = CacheStats()

    def fingerprint(
        self, spec: ExperimentSpec, label: Optional[str] = None
    ) -> str:
        return spec_fingerprint(spec, label=label, version=self.version)

    def path_for(self, fingerprint: str) -> Path:
        return self.root / fingerprint[:2] / f"{fingerprint}.json"

    def get(
        self, spec: ExperimentSpec, label: Optional[str] = None
    ) -> Optional[RunResult]:
        """The cached result for this point, or ``None`` (never raises)."""
        return self.get_fingerprint(self.fingerprint(spec, label))

    def get_fingerprint(self, fingerprint: str) -> Optional[RunResult]:
        """The cached result for a known fingerprint, or ``None``.

        Same corrupt→miss semantics as :meth:`get`.  The ``repro serve``
        client assembles campaign results through this: job records carry
        the fingerprint, so completed points load without re-hashing (or
        even unpickling) their specs.
        """
        path = self.path_for(fingerprint)
        try:
            payload = json.loads(path.read_text(encoding="utf-8"))
            result = run_result_from_dict(payload["result"])
        except FileNotFoundError:
            self.stats.misses += 1
            return None
        except (OSError, ValueError, KeyError, TypeError):
            # Unreadable, truncated, or schema-drifted entry: recompute.
            self.stats.corrupt += 1
            self.stats.misses += 1
            return None
        self.stats.hits += 1
        return result

    def has_fingerprint(self, fingerprint: str) -> bool:
        """Whether an entry exists for ``fingerprint`` (no stats, no parse).

        A cheap doneness probe for progress polling; a torn entry can never
        be observed (publication is one atomic rename), though a corrupt one
        would only be caught by :meth:`get_fingerprint`.
        """
        return self.path_for(fingerprint).is_file()

    def put(
        self,
        spec: ExperimentSpec,
        result: RunResult,
        label: Optional[str] = None,
    ) -> Path:
        fingerprint = self.fingerprint(spec, label)
        path = self.path_for(fingerprint)
        path.parent.mkdir(parents=True, exist_ok=True)
        payload = {
            "fingerprint": fingerprint,
            "cache_version": self.version,
            "spec_name": spec.name,
            "label": label,
            "result": run_result_to_dict(result),
        }
        # Stage under a name no other writer can collide on (pid + a
        # process-local sequence number), then publish with one atomic
        # rename.  Concurrent writers of the same fingerprint each stage
        # privately and the last rename wins with a complete entry — a
        # shared ".tmp" suffix would let two writers interleave into the
        # same staging file and publish a torn hybrid.
        tmp = path.with_name(
            f"{path.name}.{os.getpid()}.{next(_put_sequence)}.tmp"
        )
        tmp.write_text(
            json.dumps(payload, indent=2, sort_keys=True), encoding="utf-8"
        )
        tmp.replace(path)  # atomic publish: readers never see a torn entry
        self.stats.stores += 1
        return path

    def count_simulations(self, n: int) -> None:
        self.stats.simulations += n
