"""A transactional B-Tree (PMDK ``btree_map`` equivalent).

CLRS-style B-tree with minimum degree ``t = 4`` (up to 7 keys per node) and
proactive splitting on descent, so an insert is a single root-to-leaf pass —
the access pattern that makes B-tree transactions footprint-heavy (every
split dirties three nodes).
"""

from __future__ import annotations

from typing import Callable, Generator, List, Optional, Tuple, TYPE_CHECKING

from ..mem.address import MemoryKind
from ..runtime.txapi import MemoryContext
from .base import PayloadPool, Workload, WorkloadParams, write_payload

if TYPE_CHECKING:  # pragma: no cover
    from ..runtime.heap import TxHeap

#: Minimum degree: nodes hold t-1 .. 2t-1 keys.
_T = 4
_MAX_KEYS = 2 * _T - 1
_MAX_CHILDREN = 2 * _T

# Node layout (words).
_N_LEAF = 0
_N_NKEYS = 1
_N_KEYS = 2                       # keys: [2, 2+_MAX_KEYS)
_N_VALUES = _N_KEYS + _MAX_KEYS   # values: parallel to keys
_N_CHILDREN = _N_VALUES + _MAX_KEYS
_NODE_WORDS = _N_CHILDREN + _MAX_CHILDREN

# Header layout (words): root pointer, element count.
_H_ROOT = 0
_H_SIZE = 1


class TxBTree:
    """A B-tree over the transactional heap; keys and values are words."""

    def __init__(self, heap: "TxHeap", base: int, kind: MemoryKind) -> None:
        self.heap = heap
        self.base = base
        self.kind = kind

    @classmethod
    def create(
        cls, heap: "TxHeap", ctx: MemoryContext, kind: MemoryKind
    ) -> "TxBTree":
        base = heap.alloc_words(2, kind)
        tree = cls(heap, base, kind)
        root = tree._new_node(ctx, leaf=True)
        ctx.write_word(heap.field(base, _H_ROOT), root)
        ctx.write_word(heap.field(base, _H_SIZE), 0)
        return tree

    # -- node helpers ------------------------------------------------------------

    def _new_node(self, ctx: MemoryContext, leaf: bool) -> int:
        node = self.heap.alloc_words(_NODE_WORDS, self.kind)
        ctx.write_word(self.heap.field(node, _N_LEAF), 1 if leaf else 0)
        ctx.write_word(self.heap.field(node, _N_NKEYS), 0)
        return node

    def _key(self, ctx, node, i) -> int:
        return ctx.read_word(self.heap.field(node, _N_KEYS + i))

    def _value(self, ctx, node, i) -> int:
        return ctx.read_word(self.heap.field(node, _N_VALUES + i))

    def _child(self, ctx, node, i) -> int:
        return ctx.read_word(self.heap.field(node, _N_CHILDREN + i))

    def _set_key(self, ctx, node, i, v) -> None:
        ctx.write_word(self.heap.field(node, _N_KEYS + i), v)

    def _set_value(self, ctx, node, i, v) -> None:
        ctx.write_word(self.heap.field(node, _N_VALUES + i), v)

    def _set_child(self, ctx, node, i, v) -> None:
        ctx.write_word(self.heap.field(node, _N_CHILDREN + i), v)

    def _nkeys(self, ctx, node) -> int:
        return ctx.read_word(self.heap.field(node, _N_NKEYS))

    def _set_nkeys(self, ctx, node, n) -> None:
        ctx.write_word(self.heap.field(node, _N_NKEYS), n)

    def _is_leaf(self, ctx, node) -> bool:
        return ctx.read_word(self.heap.field(node, _N_LEAF)) == 1

    # -- search ---------------------------------------------------------------------

    def get(self, ctx: MemoryContext, key: int) -> Optional[int]:
        node = ctx.read_word(self.heap.field(self.base, _H_ROOT))
        while True:
            n = self._nkeys(ctx, node)
            i = 0
            while i < n and key > self._key(ctx, node, i):
                i += 1
            if i < n and key == self._key(ctx, node, i):
                return self._value(ctx, node, i)
            if self._is_leaf(ctx, node):
                return None
            node = self._child(ctx, node, i)

    def scan(
        self, ctx: MemoryContext, lo: int, hi: int
    ) -> List[Tuple[int, int]]:
        """In-order (key, value) pairs with lo <= key <= hi.

        Descends only subtrees whose key range can intersect [lo, hi], so a
        narrow scan touches O(depth + matches) nodes — both a performance
        and a *footprint* property: an unpruned walk would put the entire
        tree in the transaction's read set.
        """
        out: List[Tuple[int, int]] = []
        root = ctx.read_word(self.heap.field(self.base, _H_ROOT))
        stack = [root]
        while stack:
            node = stack.pop()
            n = self._nkeys(ctx, node)
            keys = [self._key(ctx, node, i) for i in range(n)]
            for i, key in enumerate(keys):
                if lo <= key <= hi:
                    out.append((key, self._value(ctx, node, i)))
            if self._is_leaf(ctx, node):
                continue
            for i in range(n + 1):
                # Child i holds keys in (keys[i-1], keys[i]).
                child_lo = keys[i - 1] if i > 0 else None
                child_hi = keys[i] if i < n else None
                if child_lo is not None and child_lo > hi:
                    continue
                if child_hi is not None and child_hi < lo:
                    continue
                stack.append(self._child(ctx, node, i))
        return sorted(out)

    # -- insert -----------------------------------------------------------------------

    def insert(self, ctx: MemoryContext, key: int, value: int) -> bool:
        """Insert or update; returns True if the key was new."""
        header_root = self.heap.field(self.base, _H_ROOT)
        root = ctx.read_word(header_root)
        if self._nkeys(ctx, root) == _MAX_KEYS:
            new_root = self._new_node(ctx, leaf=False)
            self._set_child(ctx, new_root, 0, root)
            self._split_child(ctx, new_root, 0)
            ctx.write_word(header_root, new_root)
            root = new_root
        return self._insert_nonfull(ctx, root, key, value)

    def _insert_nonfull(self, ctx, node, key, value) -> bool:
        while True:
            n = self._nkeys(ctx, node)
            i = 0
            while i < n and key > self._key(ctx, node, i):
                i += 1
            if i < n and key == self._key(ctx, node, i):
                self._set_value(ctx, node, i, value)
                return False
            if self._is_leaf(ctx, node):
                for j in range(n, i, -1):
                    self._set_key(ctx, node, j, self._key(ctx, node, j - 1))
                    self._set_value(ctx, node, j, self._value(ctx, node, j - 1))
                self._set_key(ctx, node, i, key)
                self._set_value(ctx, node, i, value)
                self._set_nkeys(ctx, node, n + 1)
                return True
            child = self._child(ctx, node, i)
            if self._nkeys(ctx, child) == _MAX_KEYS:
                self._split_child(ctx, node, i)
                pivot = self._key(ctx, node, i)
                if key == pivot:
                    self._set_value(ctx, node, i, value)
                    return False
                if key > pivot:
                    i += 1
            node = self._child(ctx, node, i)

    def _split_child(self, ctx, parent, index) -> None:
        child = self._child(ctx, parent, index)
        sibling = self._new_node(ctx, leaf=self._is_leaf(ctx, child))
        # Move the top t-1 keys (and children) of `child` into `sibling`.
        for j in range(_T - 1):
            self._set_key(ctx, sibling, j, self._key(ctx, child, j + _T))
            self._set_value(ctx, sibling, j, self._value(ctx, child, j + _T))
        if not self._is_leaf(ctx, child):
            for j in range(_T):
                self._set_child(ctx, sibling, j, self._child(ctx, child, j + _T))
        self._set_nkeys(ctx, sibling, _T - 1)
        self._set_nkeys(ctx, child, _T - 1)
        # Shift the parent to make room for the median.
        n = self._nkeys(ctx, parent)
        for j in range(n, index, -1):
            self._set_key(ctx, parent, j, self._key(ctx, parent, j - 1))
            self._set_value(ctx, parent, j, self._value(ctx, parent, j - 1))
            self._set_child(ctx, parent, j + 1, self._child(ctx, parent, j))
        self._set_key(ctx, parent, index, self._key(ctx, child, _T - 1))
        self._set_value(ctx, parent, index, self._value(ctx, child, _T - 1))
        self._set_child(ctx, parent, index + 1, sibling)
        self._set_nkeys(ctx, parent, n + 1)

    # -- delete -----------------------------------------------------------------------

    def delete(self, ctx: MemoryContext, key: int) -> bool:
        """CLRS B-tree deletion with proactive borrow/merge on descent."""
        header_root = self.heap.field(self.base, _H_ROOT)
        root = ctx.read_word(header_root)
        if self.get(ctx, key) is None:
            return False
        self._delete_from(ctx, root, key)
        # Shrink the tree if the root emptied out.
        root = ctx.read_word(header_root)
        if not self._is_leaf(ctx, root) and self._nkeys(ctx, root) == 0:
            ctx.write_word(header_root, self._child(ctx, root, 0))
            self.heap.free_words(root, _NODE_WORDS, self.kind)
        return True

    def _delete_from(self, ctx, node, key) -> None:
        while True:
            n = self._nkeys(ctx, node)
            i = 0
            while i < n and key > self._key(ctx, node, i):
                i += 1
            if self._is_leaf(ctx, node):
                # Present by precondition; shift left over it.
                for j in range(i, n - 1):
                    self._set_key(ctx, node, j, self._key(ctx, node, j + 1))
                    self._set_value(ctx, node, j, self._value(ctx, node, j + 1))
                self._set_nkeys(ctx, node, n - 1)
                return
            if i < n and key == self._key(ctx, node, i):
                self._delete_internal(ctx, node, i, key)
                return
            child = self._ensure_child_min(ctx, node, i, key)
            node = child

    def _delete_internal(self, ctx, node, i, key) -> None:
        """Delete key at internal position i via predecessor/successor."""
        left = self._child(ctx, node, i)
        right = self._child(ctx, node, i + 1)
        if self._nkeys(ctx, left) >= _T:
            pred_key, pred_value = self._max_entry(ctx, left)
            self._set_key(ctx, node, i, pred_key)
            self._set_value(ctx, node, i, pred_value)
            self._delete_from(ctx, self._ensure_child_min(ctx, node, i, pred_key), pred_key)
        elif self._nkeys(ctx, right) >= _T:
            succ_key, succ_value = self._min_entry(ctx, right)
            self._set_key(ctx, node, i, succ_key)
            self._set_value(ctx, node, i, succ_value)
            self._delete_from(
                ctx, self._ensure_child_min(ctx, node, i + 1, succ_key), succ_key
            )
        else:
            self._merge_children(ctx, node, i)
            self._delete_from(ctx, self._child(ctx, node, i), key)

    def _ensure_child_min(self, ctx, parent, i, key) -> int:
        """Guarantee child i has >= _T keys before descending (borrow/merge).

        Returns the child to descend into (indices can shift on merge).
        """
        child = self._child(ctx, parent, i)
        if self._nkeys(ctx, child) >= _T:
            return child
        n = self._nkeys(ctx, parent)
        if i > 0 and self._nkeys(ctx, self._child(ctx, parent, i - 1)) >= _T:
            self._borrow_from_left(ctx, parent, i)
            return self._child(ctx, parent, i)
        if i < n and self._nkeys(ctx, self._child(ctx, parent, i + 1)) >= _T:
            self._borrow_from_right(ctx, parent, i)
            return self._child(ctx, parent, i)
        if i == n:
            i -= 1
        self._merge_children(ctx, parent, i)
        return self._child(ctx, parent, i)

    def _borrow_from_left(self, ctx, parent, i) -> None:
        child = self._child(ctx, parent, i)
        left = self._child(ctx, parent, i - 1)
        n = self._nkeys(ctx, child)
        ln = self._nkeys(ctx, left)
        for j in range(n, 0, -1):
            self._set_key(ctx, child, j, self._key(ctx, child, j - 1))
            self._set_value(ctx, child, j, self._value(ctx, child, j - 1))
        if not self._is_leaf(ctx, child):
            for j in range(n + 1, 0, -1):
                self._set_child(ctx, child, j, self._child(ctx, child, j - 1))
            self._set_child(ctx, child, 0, self._child(ctx, left, ln))
        self._set_key(ctx, child, 0, self._key(ctx, parent, i - 1))
        self._set_value(ctx, child, 0, self._value(ctx, parent, i - 1))
        self._set_key(ctx, parent, i - 1, self._key(ctx, left, ln - 1))
        self._set_value(ctx, parent, i - 1, self._value(ctx, left, ln - 1))
        self._set_nkeys(ctx, child, n + 1)
        self._set_nkeys(ctx, left, ln - 1)

    def _borrow_from_right(self, ctx, parent, i) -> None:
        child = self._child(ctx, parent, i)
        right = self._child(ctx, parent, i + 1)
        n = self._nkeys(ctx, child)
        rn = self._nkeys(ctx, right)
        self._set_key(ctx, child, n, self._key(ctx, parent, i))
        self._set_value(ctx, child, n, self._value(ctx, parent, i))
        if not self._is_leaf(ctx, child):
            self._set_child(ctx, child, n + 1, self._child(ctx, right, 0))
        self._set_key(ctx, parent, i, self._key(ctx, right, 0))
        self._set_value(ctx, parent, i, self._value(ctx, right, 0))
        for j in range(rn - 1):
            self._set_key(ctx, right, j, self._key(ctx, right, j + 1))
            self._set_value(ctx, right, j, self._value(ctx, right, j + 1))
        if not self._is_leaf(ctx, right):
            for j in range(rn):
                self._set_child(ctx, right, j, self._child(ctx, right, j + 1))
        self._set_nkeys(ctx, child, n + 1)
        self._set_nkeys(ctx, right, rn - 1)

    def _merge_children(self, ctx, parent, i) -> None:
        """Fold parent's key i and child i+1 into child i; free the sibling."""
        child = self._child(ctx, parent, i)
        sibling = self._child(ctx, parent, i + 1)
        n = self._nkeys(ctx, child)
        sn = self._nkeys(ctx, sibling)
        self._set_key(ctx, child, n, self._key(ctx, parent, i))
        self._set_value(ctx, child, n, self._value(ctx, parent, i))
        for j in range(sn):
            self._set_key(ctx, child, n + 1 + j, self._key(ctx, sibling, j))
            self._set_value(ctx, child, n + 1 + j, self._value(ctx, sibling, j))
        if not self._is_leaf(ctx, child):
            for j in range(sn + 1):
                self._set_child(
                    ctx, child, n + 1 + j, self._child(ctx, sibling, j)
                )
        self._set_nkeys(ctx, child, n + 1 + sn)
        pn = self._nkeys(ctx, parent)
        for j in range(i, pn - 1):
            self._set_key(ctx, parent, j, self._key(ctx, parent, j + 1))
            self._set_value(ctx, parent, j, self._value(ctx, parent, j + 1))
            self._set_child(ctx, parent, j + 1, self._child(ctx, parent, j + 2))
        self._set_nkeys(ctx, parent, pn - 1)
        self.heap.free_words(sibling, _NODE_WORDS, self.kind)

    def _max_entry(self, ctx, node):
        while not self._is_leaf(ctx, node):
            node = self._child(ctx, node, self._nkeys(ctx, node))
        n = self._nkeys(ctx, node)
        return self._key(ctx, node, n - 1), self._value(ctx, node, n - 1)

    def _min_entry(self, ctx, node):
        while not self._is_leaf(ctx, node):
            node = self._child(ctx, node, 0)
        return self._key(ctx, node, 0), self._value(ctx, node, 0)

    # -- verification --------------------------------------------------------------------

    def size(self, ctx: MemoryContext) -> int:
        """Element count, by walking (no transactional hot counter)."""
        return len(self.keys(ctx))

    def keys(self, ctx: MemoryContext) -> List[int]:
        return [k for k, _ in self.scan(ctx, -(2**62), 2**62)]

    def check_integrity(self, ctx: MemoryContext) -> bool:
        """Keys in order and unique; uniform leaf depth; size consistent."""
        keys = self.keys(ctx)
        if keys != sorted(keys) or len(keys) != len(set(keys)):
            return False
        root = ctx.read_word(self.heap.field(self.base, _H_ROOT))
        depths = set()
        stack = [(root, 0)]
        while stack:
            node, depth = stack.pop()
            if self._is_leaf(ctx, node):
                depths.add(depth)
                continue
            n = self._nkeys(ctx, node)
            for i in range(n + 1):
                stack.append((self._child(ctx, node, i), depth + 1))
        return len(depths) <= 1


class BTreeWorkload(Workload):
    """Insert/update nodes in a B-tree (Table IV, B-Tree [25])."""

    name = "btree"

    def __init__(self, system, process, params: WorkloadParams) -> None:
        super().__init__(system, process, params)
        self.tree: Optional[TxBTree] = None
        self.pool: Optional[PayloadPool] = None

    def setup(self) -> None:
        self.tree = TxBTree.create(self.system.heap, self.raw, self.params.kind)
        self.pool = PayloadPool(
            self.system, self.params.keys, self.value_bytes, self.params.kind
        )
        for key in range(self.params.initial_fill):
            self.tree.insert(self.raw, key, self.pool.block_for(key))

    def thread_bodies(self) -> List[Callable]:
        return [self._make_body(i) for i in range(self.params.threads)]

    def _make_body(self, thread_index: int) -> Callable:
        def body(api) -> Generator[None, None, None]:
            keys = self.key_stream(thread_index)
            for tx_index in range(self.params.txs_per_thread):
                batch = [next(keys) for _ in range(self.params.ops_per_tx)]

                def work(tx, batch=batch, tag=tx_index + 1):
                    for key in batch:
                        payload = self.pool.block_for(key)
                        yield from write_payload(
                            tx, payload, self.value_bytes, tag
                        )
                        self.tree.insert(tx, key, payload)
                        yield

                yield from api.run_transaction(work, ops=len(batch))

        return body

    def verify(self) -> bool:
        return self.tree.check_integrity(self.raw)
