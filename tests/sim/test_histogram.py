"""Tests for the log2 histogram and its registry integration."""

from __future__ import annotations

import pytest
from hypothesis import given, strategies as st

from repro.sim.stats import Histogram, StatsRegistry


class TestHistogram:
    def test_basic_stats(self):
        histogram = Histogram()
        for value in (1.0, 2.0, 3.0, 100.0):
            histogram.record(value)
        assert histogram.count == 4
        assert histogram.mean == pytest.approx(26.5)
        assert histogram.max == 100.0

    def test_bucketing(self):
        histogram = Histogram()
        histogram.record(0.5)   # bucket 0
        histogram.record(1.0)   # bucket 0
        histogram.record(2.0)   # bucket 1
        histogram.record(5.0)   # bucket 2
        buckets = dict(histogram.nonzero_buckets())
        assert buckets[0] == 2
        assert buckets[1] == 1
        assert buckets[2] == 1

    def test_percentile_bounds_sample(self):
        histogram = Histogram()
        for i in range(100):
            histogram.record(float(i + 1))
        p50 = histogram.percentile(0.5)
        assert 32 <= p50 <= 64
        assert histogram.percentile(1.0) >= 100

    def test_percentile_of_empty(self):
        assert Histogram().percentile(0.5) == 0.0

    def test_percentile_of_all_zero_samples_is_zero(self):
        """Regression: bucket 0 holds [0, 2), so an all-zero histogram used
        to report 2.0 ns for every percentile."""
        histogram = Histogram()
        for _ in range(10):
            histogram.record(0.0)
        assert histogram.percentile(0.5) == 0.0
        assert histogram.percentile(1.0) == 0.0
        assert histogram.max == 0.0

    def test_bucket_zero_covers_zero_to_two(self):
        histogram = Histogram()
        histogram.record(0.0)
        histogram.record(1.999)
        assert dict(histogram.nonzero_buckets()) == {0: 2}
        # Nonzero samples in bucket 0 still report the bucket's upper bound.
        assert histogram.percentile(1.0) == 2.0

    def test_validation(self):
        with pytest.raises(ValueError):
            Histogram().record(-1.0)
        with pytest.raises(ValueError):
            Histogram().percentile(0.0)

    @given(values=st.lists(st.floats(min_value=0, max_value=1e12),
                           min_size=1, max_size=200))
    def test_count_and_mean_consistent(self, values):
        histogram = Histogram()
        for value in values:
            histogram.record(value)
        assert histogram.count == len(values)
        assert histogram.mean == pytest.approx(sum(values) / len(values))
        assert histogram.max == max(values)

    def test_huge_value_clamps_to_last_bucket(self):
        histogram = Histogram(buckets=4)
        histogram.record(1e18)
        assert histogram.nonzero_buckets() == [(3, 1)]


class TestRegistryIntegration:
    def test_lazily_created_and_cached(self):
        stats = StatsRegistry()
        assert stats.histogram("lat") is stats.histogram("lat")

    def test_listing(self):
        stats = StatsRegistry()
        stats.histogram("a").record(1)
        assert "a" in stats.histograms()

    def test_tx_latency_recorded_by_htm(self):
        from repro import HTMConfig, MachineConfig, System
        from repro.mem.address import MemoryKind

        system = System(MachineConfig.scaled(1 / 64, cores=2), HTMConfig())
        proc = system.process("p")
        addr = system.heap.alloc_words(1, MemoryKind.NVM)

        def body(api):
            for _ in range(5):
                yield from api.run_transaction(
                    lambda tx: tx.write_word(addr, 1)
                )

        proc.thread(body)
        system.run()
        histogram = system.stats.histogram("tx.latency_ns")
        assert histogram.count == 5
        assert histogram.mean > 0
