"""Shared fixtures for the UHTM reproduction test suite."""

from __future__ import annotations

from typing import Optional

import pytest

from repro import HTMConfig, MachineConfig, SignatureConfig, System
from repro.mem.address import MemoryKind


@pytest.fixture
def tiny_machine() -> MachineConfig:
    """A 4-core machine scaled to 1/64: L1 512 B, LLC 256 KB."""
    return MachineConfig.scaled(1 / 64, cores=4)


@pytest.fixture
def small_machine() -> MachineConfig:
    """An 8-core machine scaled to 1/16: L1 2 KB, LLC 1 MB."""
    return MachineConfig.scaled(1 / 16, cores=8)


def make_system(
    design: str = "uhtm",
    machine: Optional[MachineConfig] = None,
    isolation: bool = True,
    signature_bits: int = 1024,
    seed: int = 2020,
    **htm_kwargs,
) -> System:
    """Build a ready-to-use system with sensible test defaults."""
    machine = machine or MachineConfig.scaled(1 / 64, cores=4)
    config = HTMConfig(
        design=design,
        isolation=isolation,
        signature=SignatureConfig(bits=signature_bits),
        **htm_kwargs,
    )
    return System(machine, config, seed=seed)


@pytest.fixture
def uhtm_system(tiny_machine) -> System:
    return make_system("uhtm", tiny_machine)


@pytest.fixture
def dram_word(uhtm_system) -> int:
    return uhtm_system.heap.alloc_words(1, MemoryKind.DRAM)


@pytest.fixture
def nvm_word(uhtm_system) -> int:
    return uhtm_system.heap.alloc_words(1, MemoryKind.NVM)
