"""Export figure results as JSON and Markdown.

``python -m repro all --json results.json --markdown results.md`` persists
every regenerated table for archival / EXPERIMENTS.md updates.
"""

from __future__ import annotations

import json
from typing import Any, Dict, Iterable, List

from .report import FigureResult


def figure_to_dict(result: FigureResult) -> Dict[str, Any]:
    return {
        "figure": result.figure,
        "title": result.title,
        "columns": list(result.columns),
        "rows": [list(row) for row in result.rows],
        "notes": list(result.notes),
    }


def figure_from_dict(payload: Dict[str, Any]) -> FigureResult:
    result = FigureResult(
        payload["figure"],
        payload["title"],
        list(payload["columns"]),
        [list(row) for row in payload["rows"]],
        list(payload.get("notes", ())),
    )
    return result


def to_json(results: Iterable[FigureResult]) -> str:
    return json.dumps(
        [figure_to_dict(r) for r in results], indent=2, sort_keys=False
    )


def from_json(text: str) -> List[FigureResult]:
    return [figure_from_dict(p) for p in json.loads(text)]


def to_markdown(results: Iterable[FigureResult]) -> str:
    """Render results as GitHub-flavoured Markdown tables."""
    blocks: List[str] = []
    for result in results:
        lines = [f"### {result.figure} — {result.title}", ""]
        lines.append("| " + " | ".join(result.columns) + " |")
        lines.append("|" + "|".join("---" for _ in result.columns) + "|")
        for row in result.rows:
            cells = [
                f"{cell:.3f}" if isinstance(cell, float) else str(cell)
                for cell in row
            ]
            lines.append("| " + " | ".join(cells) + " |")
        for note in result.notes:
            lines.append("")
            lines.append(f"> {note}")
        blocks.append("\n".join(lines))
    return "\n\n".join(blocks) + "\n"


def render_bars(
    labels: List[str], values: List[float], width: int = 40
) -> str:
    """A quick ASCII bar chart (one bar per label, scaled to max)."""
    if not values:
        return ""
    peak = max(values) or 1.0
    label_width = max(len(label) for label in labels)
    lines = []
    for label, value in zip(labels, values):
        bar = "#" * max(1, int(round(value / peak * width)))
        lines.append(f"{label.ljust(label_width)} | {bar} {value:.3f}")
    return "\n".join(lines)
