"""The coherence directory, extended with transactional fields.

Section IV-D: "UHTM introduces new fields in the directory entry: Tx-bit,
Tx-Owner, and Tx-Sharer. ... These fields store the transaction IDs, instead
of core IDs to handle a context switch."

The directory holds an entry per line that has transactional readers or a
transactional writer while the line is on-chip.  Conflict checks implement
the paper's three cases: an exclusive request (GetM) against an existing
``Tx-Owner`` is write-after-write; against ``Tx-Sharer`` entries it is
read-after-write [the requester writes what others read]; a shared request
(GetS) against a ``Tx-Owner`` is write-after-read.  Entries are cleared when
their transaction commits or aborts, and are migrated out (to signatures or
exact overflow sets, per design) when the line leaves the LLC.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional, Set


@dataclass(slots=True)
class DirectoryEntry:
    """Transactional tracking for one on-chip line.

    Slotted: one entry lives per transactionally touched on-chip line, and
    entries churn on every commit/abort/eviction, so skipping the
    per-instance ``__dict__`` cuts allocation cost.
    """

    line_addr: int
    tx_owner: Optional[int] = None
    tx_sharers: Set[int] = field(default_factory=set)

    @property
    def tx_bit(self) -> bool:
        return self.tx_owner is not None or bool(self.tx_sharers)


@dataclass(frozen=True)
class DirectoryConflict:
    """A precise on-chip conflict: the requester collided with ``victims``."""

    line_addr: int
    #: Transactions the requested access collides with.
    victims: frozenset
    #: "raw", "waw", or "war" — for statistics only.
    kind: str


class Directory:
    """Sparse map from line address to transactional directory entry."""

    def __init__(self) -> None:
        self._entries: Dict[int, DirectoryEntry] = {}
        #: Reverse index: tx id -> lines it is registered on, so commit and
        #: abort clear a transaction's fields without scanning the directory.
        self._lines_of_tx: Dict[int, Set[int]] = {}
        self.conflict_checks = 0
        self.conflicts_found = 0

    def __len__(self) -> int:
        return len(self._entries)

    def entry(self, line_addr: int) -> Optional[DirectoryEntry]:
        return self._entries.get(line_addr)

    # -- conflict checks ------------------------------------------------------

    def check_access(
        self, line_addr: int, tx_id: Optional[int], is_write: bool
    ) -> Optional[DirectoryConflict]:
        """Check an incoming access against the entry's Tx fields.

        ``tx_id`` is ``None`` for non-transactional accesses.  Returns a
        conflict naming every transaction the access collides with, or
        ``None``.  The access is *not* recorded; call :meth:`record_access`
        after resolution decides it may proceed.
        """
        self.conflict_checks += 1
        entry = self._entries.get(line_addr)
        # `tx_bit` inlined: this runs once per coherence request.
        if entry is None or (entry.tx_owner is None and not entry.tx_sharers):
            return None
        victims: Set[int] = set()
        kind = ""
        if is_write:
            if entry.tx_owner is not None and entry.tx_owner != tx_id:
                victims.add(entry.tx_owner)
                kind = "waw"
            readers = {t for t in entry.tx_sharers if t != tx_id}
            if readers:
                victims.update(readers)
                kind = kind or "raw"
        else:
            if entry.tx_owner is not None and entry.tx_owner != tx_id:
                victims.add(entry.tx_owner)
                kind = "war"
        if not victims:
            return None
        self.conflicts_found += 1
        return DirectoryConflict(line_addr, frozenset(victims), kind)

    # -- recording ------------------------------------------------------------

    def record_access(self, line_addr: int, tx_id: int, is_write: bool) -> None:
        """Set Tx-Owner / add to Tx-Sharer for a permitted access."""
        entry = self._entries.get(line_addr)
        if entry is None:
            entry = DirectoryEntry(line_addr)
            self._entries[line_addr] = entry
        if is_write:
            entry.tx_owner = tx_id
        else:
            entry.tx_sharers.add(tx_id)
        lines = self._lines_of_tx.get(tx_id)
        if lines is None:
            self._lines_of_tx[tx_id] = {line_addr}
        else:
            lines.add(line_addr)

    # -- clearing ---------------------------------------------------------------

    def clear_transaction(self, tx_id: int) -> int:
        """Drop all of a transaction's fields (commit or abort); returns
        the number of lines touched."""
        lines = self._lines_of_tx.pop(tx_id, None)
        if not lines:
            return 0
        for line_addr in lines:
            entry = self._entries.get(line_addr)
            if entry is None:
                continue
            if entry.tx_owner == tx_id:
                entry.tx_owner = None
            entry.tx_sharers.discard(tx_id)
            if not entry.tx_bit:
                del self._entries[line_addr]
        return len(lines)

    def evict_line(self, line_addr: int) -> Optional[DirectoryEntry]:
        """Remove and return a line's entry when it leaves the LLC.

        The caller migrates the returned owner/sharers into the design's
        overflow tracking (signatures, exact sets, or a capacity abort).
        """
        entry = self._entries.pop(line_addr, None)
        if entry is None:
            return None
        if entry.tx_owner is not None:
            self._discard_line_of(entry.tx_owner, line_addr)
        for tx_id in sorted(entry.tx_sharers):
            self._discard_line_of(tx_id, line_addr)
        return entry

    def _discard_line_of(self, tx_id: int, line_addr: int) -> None:
        lines = self._lines_of_tx.get(tx_id)
        if lines is not None:
            lines.discard(line_addr)
            if not lines:
                del self._lines_of_tx[tx_id]

    # -- queries ----------------------------------------------------------------

    def lines_of(self, tx_id: int) -> Set[int]:
        return set(self._lines_of_tx.get(tx_id, ()))

    def transactions_on(self, line_addr: int) -> Iterable[int]:
        entry = self._entries.get(line_addr)
        if entry is None:
            return ()
        present: List[int] = []
        if entry.tx_owner is not None:
            present.append(entry.tx_owner)
        present.extend(entry.tx_sharers)
        return present
