"""Property-based tests of the Bloom-filter signatures (hypothesis)."""

from __future__ import annotations

from hypothesis import given, settings, strategies as st

from repro.params import SignatureConfig
from repro.signatures.addresssig import SignaturePair
from repro.signatures.bloom import BloomFilter
from repro.signatures.hashing import MultiplicativeHashFamily

lines = st.integers(min_value=0, max_value=2**40).map(lambda v: v * 64)


@given(values=st.lists(lines, min_size=1, max_size=200))
def test_bloom_no_false_negatives(values):
    """Anything inserted is always reported present — the safety property
    unbounded conflict detection rests on."""
    bloom = BloomFilter(256, 4, MultiplicativeHashFamily(4, 256, seed=3))
    bloom.insert_all(values)
    assert all(bloom.maybe_contains(v) for v in values)


@given(values=st.lists(lines, min_size=0, max_size=100))
def test_popcount_monotone_and_bounded(values):
    bloom = BloomFilter(128, 2, MultiplicativeHashFamily(2, 128, seed=5))
    previous = 0
    for value in values:
        bloom.insert(value)
        assert previous <= bloom.popcount <= 128
        previous = bloom.popcount


@given(values=st.lists(lines, min_size=1, max_size=50))
def test_clear_resets_completely(values):
    bloom = BloomFilter(128, 2, MultiplicativeHashFamily(2, 128, seed=7))
    bloom.insert_all(values)
    bloom.clear()
    assert bloom.is_empty()
    assert bloom.popcount == 0


@given(
    reads=st.lists(lines, max_size=60),
    writes=st.lists(lines, max_size=60),
    probe=lines,
)
def test_signature_answer_is_superset_of_truth(reads, writes, probe):
    """Bloom answer must imply-contain the exact answer (never miss)."""
    signature = SignaturePair(SignatureConfig(bits=512))
    for line in reads:
        signature.add_read(line)
    for line in writes:
        signature.add_write(line)
    for is_write in (False, True):
        if signature.truly_conflicts_with_access(probe, is_write):
            assert signature.conflicts_with_access(probe, is_write)


@given(writes=st.lists(lines, min_size=1, max_size=60))
def test_read_probe_hits_write_set(writes):
    signature = SignaturePair(SignatureConfig(bits=1024))
    for line in writes:
        signature.add_write(line)
    for line in writes:
        assert signature.conflicts_with_access(line, is_write=False)
        assert signature.conflicts_with_access(line, is_write=True)


@given(reads=st.lists(lines, min_size=1, max_size=60))
def test_write_probe_hits_read_set_but_read_probe_does_not_conflict(reads):
    signature = SignaturePair(SignatureConfig(bits=1024))
    for line in reads:
        signature.add_read(line)
    for line in reads:
        assert signature.conflicts_with_access(line, is_write=True)
    # read-read sharing is never a conflict through the *write* filter —
    # but the bloom read filter may alias into the write filter only if the
    # write filter had insertions, which it did not:
    for line in reads:
        assert not signature.write_may_contain(line) or False  # may alias
    assert signature.exact_write == set()
