"""A generic set-associative tag array with LRU replacement."""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Set, Tuple

from ..params import CacheGeometry, LINE_SIZE
from .coherence import MesiState

#: Set-index shift for the fixed simulator line size (64 B -> 6).
_LINE_SHIFT = LINE_SIZE.bit_length() - 1


@dataclass(slots=True)
class CacheLineMeta:
    """Metadata for one resident line.

    Slotted: hundreds of thousands of these are allocated per run (one per
    fill), so skipping the per-instance ``__dict__`` measurably cuts both
    allocation time and memory traffic.
    """

    line_addr: int
    dirty: bool = False
    #: MESI state of this copy (meaningful for L1 copies; LLC copies of
    #: lines with L1 holders defer to the L1 states).
    mesi: MesiState = MesiState.SHARED
    #: Transaction that speculatively wrote this line (None if none).
    tx_writer: Optional[int] = None
    #: Transactions that transactionally read this line while resident.
    #: Lazily allocated: ``None`` means the empty set — most lines are never
    #: transactionally read, and skipping the per-fill ``set()`` allocation
    #: is measurable on the fill path.
    tx_readers: Optional[Set[int]] = None

    @property
    def transactional(self) -> bool:
        return self.tx_writer is not None or bool(self.tx_readers)

    def add_reader(self, tx_id: int) -> None:
        readers = self.tx_readers
        if readers is None:
            self.tx_readers = {tx_id}
        else:
            readers.add(tx_id)

    def clear_tx(self, tx_id: int) -> None:
        if self.tx_writer == tx_id:
            self.tx_writer = None
        readers = self.tx_readers
        if readers is not None:
            readers.discard(tx_id)


class SetAssociativeArray:
    """Tag storage for one cache level (or one core's slice of it).

    Buckets are plain insertion-ordered dicts used as LRU queues: the first
    key is the LRU line, a touch is delete + reinsert (skipped when the line
    is already most-recent), and eviction pops the first key.  Set indexing
    is a shift-and-mask when the set count is a power of two (the common
    geometry), falling back to divide/modulo otherwise.
    """

    def __init__(self, geometry: CacheGeometry, name: str) -> None:
        self.geometry = geometry
        self.name = name
        num_sets = geometry.num_sets
        self._sets: List[Dict[int, CacheLineMeta]] = [
            {} for _ in range(num_sets)
        ]
        self._num_sets = num_sets
        #: ``num_sets - 1`` when the geometry allows true bitmask indexing,
        #: else ``None`` (modulo fallback).  Earlier revisions stored the raw
        #: set *count* here, which only worked because it was used as a
        #: modulus — it was never a mask.
        self._set_mask: Optional[int] = (
            num_sets - 1 if num_sets & (num_sets - 1) == 0 else None
        )
        self._ways = geometry.ways
        self.hits = 0
        self.misses = 0
        self.evictions = 0

    def _set_of(self, line_addr: int) -> Dict[int, CacheLineMeta]:
        mask = self._set_mask
        if mask is not None:
            return self._sets[(line_addr >> _LINE_SHIFT) & mask]
        return self._sets[(line_addr // LINE_SIZE) % self._num_sets]

    def lookup(self, line_addr: int, touch: bool = True) -> Optional[CacheLineMeta]:
        """Probe for a line; refresh its LRU position on a hit."""
        mask = self._set_mask
        if mask is not None:
            bucket = self._sets[(line_addr >> _LINE_SHIFT) & mask]
        else:
            bucket = self._sets[(line_addr // LINE_SIZE) % self._num_sets]
        meta = bucket.get(line_addr)
        if meta is None:
            self.misses += 1
            return None
        if touch and next(reversed(bucket)) != line_addr:
            del bucket[line_addr]
            bucket[line_addr] = meta
        self.hits += 1
        return meta

    def peek(self, line_addr: int) -> Optional[CacheLineMeta]:
        """Probe without touching LRU state or hit/miss counters."""
        mask = self._set_mask
        if mask is not None:
            return self._sets[(line_addr >> _LINE_SHIFT) & mask].get(line_addr)
        return self._sets[(line_addr // LINE_SIZE) % self._num_sets].get(
            line_addr
        )

    def fill(
        self, line_addr: int
    ) -> Tuple[CacheLineMeta, Sequence[CacheLineMeta]]:
        """Insert a line (must not be resident); returns (meta, victims).

        The fused form of :meth:`install` + a follow-up probe: fill paths
        need the fresh metadata immediately, and re-probing the set for a
        line just installed was pure overhead.  Callers fill only after a
        probe missed, so residency is not re-checked here; :meth:`install`
        keeps the guard for direct users.  The no-eviction common case
        returns a shared empty tuple instead of allocating a list.
        """
        mask = self._set_mask
        if mask is not None:
            bucket = self._sets[(line_addr >> _LINE_SHIFT) & mask]
        else:
            bucket = self._sets[(line_addr // LINE_SIZE) % self._num_sets]
        ways = self._ways
        if len(bucket) < ways:
            meta = CacheLineMeta(line_addr)
            bucket[line_addr] = meta
            return meta, ()
        evicted: List[CacheLineMeta] = []
        while len(bucket) >= ways:
            victim_addr = next(iter(bucket))  # LRU end
            evicted.append(bucket.pop(victim_addr))
            self.evictions += 1
        meta = CacheLineMeta(line_addr)
        bucket[line_addr] = meta
        return meta, evicted

    def install(self, line_addr: int) -> List[CacheLineMeta]:
        """Insert a line (must not be resident); returns evicted victims."""
        assert (
            self.peek(line_addr) is None
        ), f"{self.name}: double install {line_addr:#x}"
        return list(self.fill(line_addr)[1])

    def remove(self, line_addr: int) -> Optional[CacheLineMeta]:
        """Invalidate a line, returning its metadata if present."""
        return self._set_of(line_addr).pop(line_addr, None)

    def resident_count(self) -> int:
        return sum(len(bucket) for bucket in self._sets)

    def resident_lines(self) -> List[int]:
        lines: List[int] = []
        for bucket in self._sets:
            lines.extend(bucket.keys())
        return lines

    def clear(self) -> None:
        for bucket in self._sets:
            bucket.clear()

    def occupancy_by_predicate(self, predicate) -> int:
        return sum(
            1
            for bucket in self._sets
            for meta in bucket.values()
            if predicate(meta)
        )
