"""Tests for the open-loop multi-tenant traffic workload."""

from __future__ import annotations

import pytest

from repro import HTMConfig, MachineConfig, System
from repro.errors import ConfigError
from repro.sim.stats import ReservoirHistogram
from repro.workloads import WORKLOADS, WorkloadParams
from repro.workloads.open_loop import INNER_STORES, OpenLoopWorkload


def run_open_loop(seed=2020, tenants=1, **kwargs):
    system = System(
        MachineConfig.scaled(1 / 64, cores=4), HTMConfig(design="uhtm"),
        seed=seed,
    )
    params = WorkloadParams(
        threads=2, value_bytes=4096, keys=64, initial_fill=64, ops_per_tx=2
    )
    defaults = dict(mean_gap_ns=50_000.0, horizon_ns=500_000.0)
    defaults.update(kwargs)
    workloads = []
    for tenant in range(tenants):
        proc = system.process(f"open_loop#{tenant}")
        workload = OpenLoopWorkload(
            system, proc, params, tenant=tenant, **defaults
        )
        workload.spawn()
        workloads.append(workload)
    system.run()
    return system, workloads


class TestOpenLoop:
    def test_registered(self):
        assert WORKLOADS["open_loop"] is OpenLoopWorkload

    @pytest.mark.parametrize("inner", INNER_STORES)
    def test_every_inner_store_runs_and_verifies(self, inner):
        system, workloads = run_open_loop(inner=inner)
        assert all(w.verify() for w in workloads)
        assert system.stats.counter("traffic.requests") > 0

    @pytest.mark.parametrize("arrival", ["poisson", "bursty"])
    def test_latency_lands_in_exact_histograms(self, arrival):
        system, _ = run_open_loop(arrival=arrival, tenants=2)
        histogram = system.stats.histogram("traffic.latency_ns")
        assert isinstance(histogram, ReservoirHistogram)
        assert histogram.exact
        assert histogram.count == system.stats.counter("traffic.requests")
        per_tenant = sum(
            system.stats.histogram(f"traffic.latency_ns.t{tenant}").count
            for tenant in range(2)
        )
        assert per_tenant == histogram.count

    def test_requests_match_the_arrival_schedule(self):
        from repro.sim.rng import RngStreams
        from repro.workloads.open_loop import (
            ARRIVALS_STREAM,
            arrival_times,
            thread_fork,
        )

        system, workloads = run_open_loop()
        expected = 0
        for thread_index in range(2):
            rng = thread_fork(
                RngStreams(2020), workloads[0].process.pid, thread_index
            ).stream(ARRIVALS_STREAM)
            expected += len(
                list(arrival_times(rng, mean_gap_ns=50_000.0,
                                   horizon_ns=500_000.0))
            )
        assert system.stats.counter("traffic.requests") == expected

    def test_deterministic_across_runs(self):
        first, _ = run_open_loop(seed=7, arrival="bursty")
        second, _ = run_open_loop(seed=7, arrival="bursty")
        assert first.stats.snapshot() == second.stats.snapshot()
        assert first.elapsed_ns == second.elapsed_ns

    def test_open_loop_latency_includes_queueing(self):
        # Saturate: arrivals far faster than service, so the backlog grows
        # and recorded latency dwarfs any single transaction.
        system, _ = run_open_loop(mean_gap_ns=500.0, horizon_ns=100_000.0)
        assert system.stats.counter("traffic.backlogged") > 0
        histogram = system.stats.histogram("traffic.latency_ns")
        tx = system.stats.histogram("tx.latency_ns")
        assert histogram.percentile(0.99) > tx.percentile(0.99, "interpolated")

    def test_validation(self):
        with pytest.raises(ConfigError):
            run_open_loop(inner="nope")
        with pytest.raises(ConfigError):
            run_open_loop(arrival="nope")
        with pytest.raises(ConfigError):
            run_open_loop(horizon_ns=0.0)