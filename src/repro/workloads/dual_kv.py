"""The Dual key-value store (cross-referencing-log style, Table IV).

"[It] maintains two identical data structures (e.g., HashMap) and stores one
in DRAM and another in NVM.  The foreground threads handle user requests and
deal with the DRAM data structure.  The foreground and background threads
communicate through cross-referencing logs that operate similar to a
producer-consumer model.  The backend threads keep data structures in DRAM
and NVM consistent."

Foreground transactions touch only DRAM; background transactions only NVM;
the cross-referencing log itself is out-of-transactions (modelled as a
Python deque whose traffic is charged a nominal per-record cost), which is
why the paper observes low *aggregate* transactional footprints and low
overflow rates for this benchmark.
"""

from __future__ import annotations

from collections import deque
from typing import Callable, Deque, Generator, List, Optional, Tuple

from ..mem.address import MemoryKind
from .base import PayloadPool, Workload, WorkloadParams, write_payload
from .hashmap import TxHashMap

#: Nominal cost of one cross-referencing-log append/pop (a couple of
#: uncontended DRAM accesses, out of any transaction).
_CRL_RECORD_NS = 200.0


class DualKVWorkload(Workload):
    """Insert/update in a KV-store with mirrored DRAM and NVM stores [23]."""

    name = "dual_kv"

    def __init__(self, system, process, params: WorkloadParams) -> None:
        super().__init__(system, process, params)
        self.dram_map: Optional[TxHashMap] = None
        self.nvm_map: Optional[TxHashMap] = None
        self.dram_pool: Optional[PayloadPool] = None
        self.nvm_pool: Optional[PayloadPool] = None
        #: The cross-referencing log: (key, tag) records awaiting replay.
        self.crl: Deque[Tuple[int, int]] = deque()
        self._foreground_done = 0
        self._foreground_total = 0

    def setup(self) -> None:
        heap = self.system.heap
        nbuckets = max(64, self.params.keys // 4)
        self.dram_map = TxHashMap.create(
            heap, self.raw, MemoryKind.DRAM, nbuckets=nbuckets
        )
        self.nvm_map = TxHashMap.create(
            heap, self.raw, MemoryKind.NVM, nbuckets=nbuckets
        )
        self.dram_pool = PayloadPool(
            self.system, self.params.keys, self.value_bytes, MemoryKind.DRAM
        )
        self.nvm_pool = PayloadPool(
            self.system, self.params.keys, self.value_bytes, MemoryKind.NVM
        )
        for key in range(self.params.initial_fill):
            self.dram_map.insert(self.raw, key, self.dram_pool.block_for(key))
            self.nvm_map.insert(self.raw, key, self.nvm_pool.block_for(key))

    def thread_bodies(self) -> List[Callable]:
        """Half the threads are foreground, half background (min one each)."""
        foreground = max(1, self.params.threads // 2)
        background = max(1, self.params.threads - foreground)
        self._foreground_total = foreground
        bodies = [
            self._make_foreground(i) for i in range(foreground)
        ]
        bodies.extend(self._make_background(i) for i in range(background))
        return bodies

    def _make_foreground(self, thread_index: int) -> Callable:
        def body(api) -> Generator[None, None, None]:
            keys = self.key_stream(thread_index)
            for tx_index in range(self.params.txs_per_thread):
                # Foreground transactions are individual user requests
                # (one put each); only the background replay batches.  This
                # is why the paper sees "low aggregated footprints of
                # active transactions" for this store.
                batch = [next(keys) for _ in range(self.params.ops_per_tx)]
                for key in batch:
                    def work(tx, key=key, tag=tx_index + 1):
                        payload = self.dram_pool.block_for(key)
                        yield from write_payload(
                            tx, payload, self.value_bytes, tag
                        )
                        self.dram_map.insert(tx, key, payload)

                    yield from api.run_transaction(work, ops=1)
                    # Publish to the cross-referencing log, out-of-tx.
                    self.crl.append((key, tx_index + 1))
                    api.charge(_CRL_RECORD_NS)
            self._foreground_done += 1

        return body

    def _make_background(self, thread_index: int) -> Callable:
        def body(api) -> Generator[None, None, None]:
            idle_spins = 0
            while True:
                if not self.crl:
                    if self._foreground_done >= self._foreground_total:
                        return
                    idle_spins += 1
                    api.charge(_CRL_RECORD_NS)
                    yield
                    continue
                idle_spins = 0
                batch: List[Tuple[int, int]] = []
                while self.crl and len(batch) < self.params.ops_per_tx:
                    batch.append(self.crl.popleft())
                    api.charge(_CRL_RECORD_NS)

                def work(tx, batch=batch):
                    for key, tag in batch:
                        payload = self.nvm_pool.block_for(key)
                        yield from write_payload(
                            tx, payload, self.value_bytes, tag
                        )
                        self.nvm_map.insert(tx, key, payload)
                        yield

                yield from api.run_transaction(work, ops=len(batch))

        return body

    def verify(self) -> bool:
        """Both maps intact, the NVM map caught up with the DRAM map."""
        if not self.dram_map.check_integrity(self.raw):
            return False
        if not self.nvm_map.check_integrity(self.raw):
            return False
        if self.crl:
            return False  # background threads must drain the log
        return sorted(self.dram_map.keys(self.raw)) == sorted(
            self.nvm_map.keys(self.raw)
        )
