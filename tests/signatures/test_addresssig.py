"""Tests for per-transaction read/write signature pairs."""

from __future__ import annotations

import pytest

from repro.params import SignatureConfig
from repro.signatures.addresssig import SignaturePair


@pytest.fixture
def signature():
    return SignaturePair(SignatureConfig(bits=1024))


class TestConflictSemantics:
    def test_write_conflicts_with_read_probe(self, signature):
        signature.add_write(0x40)
        assert signature.conflicts_with_access(0x40, is_write=False)

    def test_write_conflicts_with_write_probe(self, signature):
        signature.add_write(0x40)
        assert signature.conflicts_with_access(0x40, is_write=True)

    def test_read_conflicts_only_with_write_probe(self, signature):
        signature.add_read(0x40)
        assert not signature.conflicts_with_access(0x40, is_write=False)
        assert signature.conflicts_with_access(0x40, is_write=True)

    def test_empty_signature_never_conflicts(self, signature):
        assert not signature.conflicts_with_access(0x40, True)
        assert signature.is_empty()

    def test_ground_truth_matches_exact_sets(self, signature):
        signature.add_write(0x40)
        signature.add_read(0x80)
        assert signature.truly_conflicts_with_access(0x40, False)
        assert signature.truly_conflicts_with_access(0x40, True)
        assert not signature.truly_conflicts_with_access(0x80, False)
        assert signature.truly_conflicts_with_access(0x80, True)
        assert not signature.truly_conflicts_with_access(0xC0, True)

    def test_bloom_answer_superset_of_truth(self, signature):
        """No false negatives: every true conflict is also reported."""
        for i in range(100):
            signature.add_write(0x1000 + i * 64)
            signature.add_read(0x9000 + i * 64)
        for i in range(100):
            assert signature.conflicts_with_access(0x1000 + i * 64, False)
            assert signature.conflicts_with_access(0x9000 + i * 64, True)


class TestScalingAndState:
    def test_scale_shrinks_filters(self):
        full = SignaturePair(SignatureConfig(bits=1024), scale=1.0)
        scaled = SignaturePair(SignatureConfig(bits=1024), scale=1 / 16)
        assert full.read_filter.bits == 1024
        assert scaled.read_filter.bits == 64

    def test_footprint_lines(self, signature):
        signature.add_read(0x40)
        signature.add_write(0x40)
        signature.add_write(0x80)
        assert signature.footprint_lines == 2

    def test_clear(self, signature):
        signature.add_write(0x40)
        signature.clear()
        assert signature.is_empty()
        assert not signature.conflicts_with_access(0x40, False)

    def test_read_and_write_filters_are_independent(self, signature):
        signature.add_read(0x40)
        assert not signature.write_may_contain(0x40) or True  # may alias
        # Exact sets are always precise:
        assert 0x40 in signature.exact_read
        assert 0x40 not in signature.exact_write
