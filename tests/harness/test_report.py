"""Tests for the ASCII report renderer."""

from __future__ import annotations

import pytest

from repro.harness.report import FigureResult, format_table


class TestFormatTable:
    def test_basic_rendering(self):
        out = format_table(["a", "bb"], [[1, 2.5], ["x", "y"]], title="T")
        lines = out.splitlines()
        assert lines[0] == "T"
        assert "a" in lines[1] and "bb" in lines[1]
        assert "2.500" in out
        assert "x" in out

    def test_column_widths_accommodate_data(self):
        out = format_table(["c"], [["wide-cell-value"]])
        header, rule, row = out.splitlines()
        assert len(header) == len(rule) == len(row)

    def test_empty_rows(self):
        out = format_table(["a"], [])
        assert "a" in out


class TestFigureResult:
    def make(self):
        result = FigureResult("Fig. X", "demo", ["name", "value"])
        result.add_row("alpha", 1.0)
        result.add_row("beta", 2.0)
        return result

    def test_pretty_contains_everything(self):
        result = self.make()
        result.note("a caveat")
        text = result.pretty()
        assert "[Fig. X] demo" in text
        assert "alpha" in text
        assert "a caveat" in text

    def test_column_extraction(self):
        assert self.make().column("value") == [1.0, 2.0]

    def test_column_missing_raises(self):
        with pytest.raises(ValueError):
            self.make().column("nope")

    def test_row_map(self):
        rows = self.make().row_map()
        assert rows["alpha"][1] == 1.0

    def test_row_map_by_named_column(self):
        rows = self.make().row_map("value")
        assert rows[2.0][0] == "beta"
