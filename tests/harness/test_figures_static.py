"""Fast tests of the static figure renderers (tables, registry)."""

from __future__ import annotations

from repro.harness.figures import ALL_FIGURES, table1, table2, table4


class TestTables:
    def test_table1_rows(self):
        result = table1()
        designs = result.column("design")
        assert "UHTM" in designs and "DHTM" in designs
        uhtm = result.row_map()["UHTM"]
        assert "signatures" in uhtm[4]
        assert uhtm[5].startswith("undo")
        assert uhtm[6] == "redo"

    def test_table2_matches_policy_code(self):
        """The renderer itself asserts against resolve_conflict; reaching
        here means no drift."""
        result = table2()
        assert len(result.rows) == 4

    def test_table4_covers_table_iv(self):
        result = table4()
        names = set(result.column("benchmark"))
        assert {
            "hashmap", "btree", "rbtree", "skiplist",
            "hybrid_index", "dual_kv", "echo", "membound", "graphhog",
            "open_loop",
        } == names

    def test_figure_registry_complete(self):
        assert set(ALL_FIGURES) == {
            "fig2", "fig6", "fig7", "fig8", "fig9", "fig10",
            "abort_claim", "table1", "table2", "table4", "traffic",
        }

    def test_pretty_renders(self):
        text = table1().pretty()
        assert "[Table I]" in text
        assert "UHTM" in text
