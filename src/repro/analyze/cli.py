"""``python -m repro lint`` — run the static-analysis pass.

Usage::

    python -m repro lint                       # whole repro tree
    python -m repro lint src/repro/htm         # a subtree
    python -m repro lint --rules DET001,LAY002 # a rule subset
    python -m repro lint --json                # machine-readable report
    python -m repro lint --fix-suppress        # append allow[...] comments

Exit codes: 0 clean, 1 findings, 2 usage or internal error.
"""

from __future__ import annotations

import argparse
import sys
from collections import defaultdict
from pathlib import Path
from typing import Dict, List, Optional, Sequence, Set

from .core import (
    AnalysisReport,
    registered_checkers,
    render_json,
    render_text,
    run_analysis,
)

def _default_paths() -> List[Path]:
    import repro

    return [Path(repro.__file__).parent]


def _apply_suppressions(report: AnalysisReport) -> int:
    """Append ``# repro: allow[RULE,...]`` to every finding's line.

    Returns the number of lines rewritten.  PARSE findings are skipped — a
    file that does not parse cannot be meaningfully annotated.
    """
    by_line: Dict[Path, Dict[int, Set[str]]] = defaultdict(lambda: defaultdict(set))
    for finding in report.findings:
        if finding.rule == "PARSE":
            continue
        by_line[Path(finding.path)][finding.line].add(finding.rule)
    rewritten = 0
    for path, line_rules in by_line.items():
        lines = path.read_text(encoding="utf-8").splitlines(keepends=True)
        for lineno, rules in line_rules.items():
            if lineno > len(lines):
                continue
            line = lines[lineno - 1]
            if "repro: allow" in line:
                continue
            newline = "\n" if line.endswith("\n") else ""
            body = line.rstrip("\n")
            lines[lineno - 1] = (
                f"{body}  # repro: allow[{','.join(sorted(rules))}]{newline}"
            )
            rewritten += 1
        path.write_text("".join(lines), encoding="utf-8")
    return rewritten


def main(argv: Optional[Sequence[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro lint",
        description="Static analysis: determinism, layering, hook guards, "
        "coherence-FSM completeness.",
    )
    parser.add_argument(
        "paths",
        nargs="*",
        type=Path,
        help="files or directories to lint (default: the installed repro tree)",
    )
    parser.add_argument(
        "--json", action="store_true", help="emit a JSON report on stdout"
    )
    parser.add_argument(
        "--rules",
        metavar="IDS",
        help="comma-separated rule ids to run (default: all registered)",
    )
    parser.add_argument(
        "--fix-suppress",
        action="store_true",
        help="append '# repro: allow[RULE]' to each finding's line "
        "(prefer fixing findings; suppressions are for sanctioned exceptions)",
    )
    parser.add_argument(
        "--list-rules", action="store_true", help="print the rule catalogue"
    )
    args = parser.parse_args(argv)

    if args.list_rules:
        for rule, checker in sorted(registered_checkers().items()):
            print(f"{rule}: {checker.description}")
        return 0

    paths = list(args.paths) or _default_paths()
    missing = [str(path) for path in paths if not path.exists()]
    if missing:
        print(f"error: no such path(s): {', '.join(missing)}", file=sys.stderr)
        return 2
    rules = None
    if args.rules:
        rules = [part.strip() for part in args.rules.split(",") if part.strip()]
    try:
        report = run_analysis(paths, rules=rules)
    except ValueError as error:
        print(f"error: {error}", file=sys.stderr)
        return 2

    if args.fix_suppress and report.findings:
        rewritten = _apply_suppressions(report)
        print(f"suppressed {rewritten} line(s); re-run to verify", file=sys.stderr)

    print(render_json(report) if args.json else render_text(report))
    return 0 if report.ok else 1


if __name__ == "__main__":
    sys.exit(main())
