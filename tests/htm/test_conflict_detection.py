"""Conflict detection between concurrent transactions, per design."""

from __future__ import annotations

import pytest

from repro import HTMConfig, MachineConfig, SignatureConfig, System, TransactionAborted
from repro.errors import AbortReason
from repro.htm.tss import TxStatus
from repro.mem.address import MemoryKind
from repro.params import LINE_SIZE
from repro.sim.engine import SimThread


def make_system(design="uhtm", scale=1 / 64, **kwargs):
    machine = MachineConfig.scaled(scale, cores=4)
    return System(machine, HTMConfig(design=design, **kwargs))


def make_thread(thread_id=0):
    return SimThread(thread_id, f"raw{thread_id}", lambda t: iter(()))


class TestOnChipConflicts:
    def test_waw_requester_wins(self):
        """On-chip, neither overflowed: the later requester wins."""
        system = make_system()
        addr = system.heap.alloc_words(1, MemoryKind.DRAM)
        t1, t2 = make_thread(0), make_thread(1)
        tx1 = system.htm.begin(t1, 0, 1, 1)
        tx2 = system.htm.begin(t2, 1, 1, 1)
        system.htm.tx_write(tx1, addr, 1)
        system.htm.tx_write(tx2, addr, 2)  # wins; tx1 dies
        assert system.htm.tss.entry(tx1.tx_id).status is TxStatus.ABORTED
        system.htm.commit(tx2)
        assert system.controller.dram.load(addr) == 2

    def test_war_requester_wins(self):
        system = make_system()
        addr = system.heap.alloc_words(1, MemoryKind.DRAM)
        t1, t2 = make_thread(0), make_thread(1)
        tx1 = system.htm.begin(t1, 0, 1, 1)
        tx2 = system.htm.begin(t2, 1, 1, 1)
        system.htm.tx_write(tx1, addr, 1)
        value = system.htm.tx_read(tx2, addr)  # GetS vs Tx-Owner
        assert system.htm.tss.entry(tx1.tx_id).status is TxStatus.ABORTED
        assert value == 0  # tx1's speculative value never leaked

    def test_raw_write_against_readers(self):
        system = make_system()
        addr = system.heap.alloc_words(1, MemoryKind.DRAM)
        threads = [make_thread(i) for i in range(3)]
        readers = [system.htm.begin(threads[i], i, 1, 1) for i in range(2)]
        for reader in readers:
            system.htm.tx_read(reader, addr)
        writer = system.htm.begin(threads[2], 2, 1, 1)
        system.htm.tx_write(writer, addr, 9)
        for reader in readers:
            assert system.htm.tss.entry(reader.tx_id).status is TxStatus.ABORTED
        system.htm.commit(writer)

    def test_read_read_no_conflict(self):
        system = make_system()
        addr = system.heap.alloc_words(1, MemoryKind.DRAM)
        t1, t2 = make_thread(0), make_thread(1)
        tx1 = system.htm.begin(t1, 0, 1, 1)
        tx2 = system.htm.begin(t2, 1, 1, 1)
        system.htm.tx_read(tx1, addr)
        system.htm.tx_read(tx2, addr)
        system.htm.commit(tx1)
        system.htm.commit(tx2)
        assert system.stats.counter("tx.aborts") == 0

    def test_disjoint_lines_no_conflict(self):
        system = make_system()
        a = system.heap.alloc_words(1, MemoryKind.DRAM)
        b = system.heap.alloc_words(1, MemoryKind.DRAM)
        t1, t2 = make_thread(0), make_thread(1)
        tx1 = system.htm.begin(t1, 0, 1, 1)
        tx2 = system.htm.begin(t2, 1, 1, 1)
        system.htm.tx_write(tx1, a, 1)
        system.htm.tx_write(tx2, b, 2)
        system.htm.commit(tx1)
        system.htm.commit(tx2)
        assert system.stats.counter("tx.aborts") == 0

    def test_overflowed_victim_survives_onchip_conflict(self):
        """Table II: abort the non-overflowed transaction."""
        system = make_system()
        addr = system.heap.alloc_words(1, MemoryKind.DRAM)
        t1, t2 = make_thread(0), make_thread(1)
        tx1 = system.htm.begin(t1, 0, 1, 1)
        tx2 = system.htm.begin(t2, 1, 1, 1)
        system.htm.tx_write(tx1, addr, 1)
        system.htm.tss.set_overflowed(tx1.tx_id)
        with pytest.raises(TransactionAborted):
            system.htm.tx_write(tx2, addr, 2)  # non-overflowed requester dies
        assert system.htm.tss.is_active(tx1.tx_id)
        system.htm.commit(tx1)
        assert system.controller.dram.load(addr) == 1


class TestOffChipConflicts:
    def _spill_writer(self, system, nlines=2048):
        """Begin a tx on thread 0 and write far past the LLC."""
        thread = make_thread(0)
        base = system.heap.alloc(nlines * LINE_SIZE, MemoryKind.DRAM)
        tx = system.htm.begin(thread, 0, 1, 1)
        for i in range(nlines):
            system.htm.tx_write(tx, base + i * LINE_SIZE, 1)
        assert tx.dram_overflowed_lines
        return tx, base

    def test_true_conflict_on_overflowed_line(self):
        system = make_system(scale=1 / 256)
        tx, base = self._spill_writer(system)
        victim_line = sorted(tx.dram_overflowed_lines)[0]
        # Make sure the line is not LLC-resident (it was evicted).
        assert not system.hierarchy.llc_resident(victim_line)
        t2 = make_thread(1)
        tx2 = system.htm.begin(t2, 1, 1, 1)
        # tx (overflowed) beats tx2 (not overflowed): requester aborts.
        with pytest.raises(TransactionAborted):
            system.htm.tx_read(tx2, victim_line)
        assert system.htm.tss.is_active(tx.tx_id)

    def test_nontx_reader_aborts_overflowed_writer(self):
        system = make_system(scale=1 / 256)
        tx, base = self._spill_writer(system)
        victim_line = sorted(tx.dram_overflowed_lines)[0]
        t2 = make_thread(1)
        system.htm.nontx_access(t2, 1, 1, victim_line, is_write=False)
        assert system.htm.tss.entry(tx.tx_id).status is TxStatus.ABORTED
        reason = system.htm.tss.entry(tx.tx_id).abort_reason
        assert reason in (AbortReason.NON_TX_CONFLICT, AbortReason.FALSE_POSITIVE)
        # The rollback already ran: pre-tx value (0) is restored in place.
        assert system.controller.dram.load(victim_line) == 0

    def test_isolation_skips_other_domains(self):
        system = make_system(scale=1 / 256, isolation=True)
        tx, base = self._spill_writer(system)
        victim_line = sorted(tx.dram_overflowed_lines)[0]
        t2 = make_thread(1)
        # Same address, but a different conflict domain (process 2).
        system.htm.nontx_access(t2, 1, 2, victim_line, is_write=False)
        assert system.htm.tss.is_active(tx.tx_id)

    def test_no_isolation_checks_all_domains(self):
        system = make_system(scale=1 / 256, isolation=False)
        tx, base = self._spill_writer(system)
        victim_line = sorted(tx.dram_overflowed_lines)[0]
        t2 = make_thread(1)
        system.htm.nontx_access(t2, 1, 2, victim_line, is_write=False)
        assert system.htm.tss.entry(tx.tx_id).status is TxStatus.ABORTED

    def test_llc_hit_skips_signature_check(self):
        """The staged filter: cache-resident lines never probe signatures."""
        system = make_system()
        addr = system.heap.alloc_words(1, MemoryKind.DRAM)
        thread = make_thread(0)
        tx = system.htm.begin(thread, 0, 1, 1)
        system.htm.tx_read(tx, addr)  # LLC miss: one round of checks
        checks_after_miss = system.stats.counter("sig.checks")
        t2 = make_thread(1)
        tx2 = system.htm.begin(t2, 1, 1, 1)
        system.htm.tx_read(tx2, addr)  # LLC hit now
        assert system.stats.counter("sig.checks") == checks_after_miss
        system.htm.commit(tx)
        system.htm.commit(tx2)


class TestFalsePositives:
    def test_false_positive_emerges_from_saturated_filter(self):
        """With a tiny signature, unrelated lines collide in the filter."""
        system = make_system(
            scale=1 / 256, signature=SignatureConfig(bits=2048), isolation=True
        )
        # Saturate tx1's signature with ~2048 spilled lines (8-bit filter
        # after scaling: fully saturated).
        thread = make_thread(0)
        nlines = 2048
        base = system.heap.alloc(nlines * LINE_SIZE, MemoryKind.DRAM)
        tx1 = system.htm.begin(thread, 0, 1, 1)
        for i in range(nlines):
            system.htm.tx_write(tx1, base + i * LINE_SIZE, 1)
        # Unrelated lines in the same domain now false-hit with high
        # probability; probing a batch makes at least one hit certain.
        unrelated_base = system.heap.alloc(64 * LINE_SIZE, MemoryKind.DRAM)
        t2 = make_thread(1)
        saw_false_positive = False
        for i in range(32):
            tx2 = system.htm.begin(t2, 1, 1, 1)
            try:
                system.htm.tx_read(tx2, unrelated_base + i * LINE_SIZE)
                system.htm.commit(tx2)
            except TransactionAborted as aborted:
                assert aborted.reason is AbortReason.FALSE_POSITIVE
                system.htm.acknowledge_abort(tx2)
                saw_false_positive = True
                break
        assert saw_false_positive
        assert system.stats.counter("sig.hits.false") >= 1

    def test_ideal_design_has_no_false_positives(self):
        system = make_system(design="ideal", scale=1 / 256)
        thread = make_thread(0)
        nlines = 2048
        base = system.heap.alloc(nlines * LINE_SIZE, MemoryKind.DRAM)
        tx1 = system.htm.begin(thread, 0, 1, 1)
        for i in range(nlines):
            system.htm.tx_write(tx1, base + i * LINE_SIZE, 1)
        unrelated = system.heap.alloc(LINE_SIZE, MemoryKind.DRAM)
        t2 = make_thread(1)
        tx2 = system.htm.begin(t2, 1, 1, 1)
        system.htm.tx_read(tx2, unrelated)  # must not abort
        assert system.htm.tss.is_active(tx2.tx_id)
        assert system.stats.counter("sig.hits.false") == 0


class TestCapacityAborts:
    def test_llc_bounded_capacity_abort(self):
        system = make_system(design="llc_bounded", scale=1 / 256)
        thread = make_thread(0)
        nlines = 2048
        base = system.heap.alloc(nlines * LINE_SIZE, MemoryKind.DRAM)
        tx = system.htm.begin(thread, 0, 1, 1)
        with pytest.raises(TransactionAborted) as excinfo:
            for i in range(nlines):
                system.htm.tx_write(tx, base + i * LINE_SIZE, 1)
        assert excinfo.value.reason is AbortReason.CAPACITY

    def test_uhtm_survives_the_same_footprint(self):
        system = make_system(design="uhtm", scale=1 / 256)
        thread = make_thread(0)
        nlines = 2048
        base = system.heap.alloc(nlines * LINE_SIZE, MemoryKind.DRAM)
        tx = system.htm.begin(thread, 0, 1, 1)
        for i in range(nlines):
            system.htm.tx_write(tx, base + i * LINE_SIZE, 1)
        system.htm.commit(tx)
        for i in range(nlines):
            assert system.controller.dram.load(base + i * LINE_SIZE) == 1
