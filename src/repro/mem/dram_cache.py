"""The DRAM cache between the LLC and NVM (Jeong et al., MICRO'18).

Under redo logging for persistent data, committed new values are flushed to
this DRAM cache instead of to slow NVM; in-place NVM updates happen later,
when lines drain out of the DRAM cache in the background.  Uncommitted
early-evicted lines also land here so a transactional read never has to
search the NVM log (the "read-indirection" problem undo logging avoids for
DRAM data).

Entries carry an owner transaction, a committed flag, and an invalidate bit;
aborting a transaction just sets invalidate bits via the overflow list
(Section IV-C).  Only committed, valid lines may drain to NVM.
"""

from __future__ import annotations

import heapq
from collections import OrderedDict
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from ..params import LINE_SIZE, MemoryConfig
from .backend import BackingStore


@dataclass(slots=True)
class DramCacheEntry:
    line_addr: int
    words: Dict[int, int] = field(default_factory=dict)
    tx_id: Optional[int] = None
    committed: bool = False
    invalid: bool = False
    #: LRU stamp: strictly increases on every insert or LRU refresh, so
    #: ascending ``lru_seq`` is exactly the cache's LRU order.
    lru_seq: int = 0


class DramCache:
    """An LRU-managed buffer of NVM-bound lines, with invalidate bits.

    Victim selection — the least-recently-used entry that is invalid or
    committed — used to be a front-to-back scan of the whole LRU list, which
    went quadratic whenever the front filled up with uncommitted lines.  It
    is now a lazy min-heap of ``(lru_seq, line)`` candidates: entries are
    pushed whenever they become (or are refreshed while) evictable, and
    stale items (removed lines, reordered lines, lines no longer evictable)
    are skipped by validity checks at pop time.  Since ascending ``lru_seq``
    equals LRU order, the heap minimum is the same victim the scan found.
    """

    def __init__(self, config: MemoryConfig, nvm: BackingStore) -> None:
        self._capacity_lines = max(1, config.dram_cache_bytes // LINE_SIZE)
        self._nvm = nvm
        self._entries: "OrderedDict[int, DramCacheEntry]" = OrderedDict()
        self._seq = 0
        self._evictable: List[Tuple[int, int]] = []
        self.fills = 0
        self.hits = 0
        self.drains = 0
        self.invalidations = 0
        #: Times the cache held more uncommitted lines than its capacity —
        #: hardware would stall the pipeline here; we count instead.
        self.overcommits = 0

    @property
    def capacity_lines(self) -> int:
        return self._capacity_lines

    def __len__(self) -> int:
        return len(self._entries)

    def _stamp(self, entry: DramCacheEntry) -> None:
        """Give ``entry`` the freshest LRU stamp; queue it if evictable."""
        self._seq += 1
        entry.lru_seq = self._seq
        if entry.invalid or entry.committed:
            heapq.heappush(self._evictable, (entry.lru_seq, entry.line_addr))

    # -- lookups -----------------------------------------------------------

    def lookup(self, line_addr: int) -> Optional[DramCacheEntry]:
        """Return the valid entry for ``line_addr`` and refresh its LRU slot."""
        entry = self._entries.get(line_addr)
        if entry is None or entry.invalid:
            return None
        self._entries.move_to_end(line_addr)
        self._stamp(entry)
        self.hits += 1
        return entry

    def contains(self, line_addr: int) -> bool:
        entry = self._entries.get(line_addr)
        return entry is not None and not entry.invalid

    # -- fills and commits ---------------------------------------------------

    def fill(
        self,
        line_addr: int,
        words: Dict[int, int],
        tx_id: Optional[int],
        committed: bool,
    ) -> int:
        """Insert or update a line; returns how many lines drained to NVM.

        Draining models the background in-place NVM update; the returned
        count lets callers account NVM write bandwidth if they care, but it
        is off any thread's critical path.
        """
        self.fills += 1
        entry = self._entries.get(line_addr)
        if entry is not None and not entry.invalid:
            entry.words.update(words)
            entry.tx_id = tx_id
            entry.committed = committed
            self._entries.move_to_end(line_addr)
            self._stamp(entry)
            return 0
        replacing_invalid = entry is not None
        entry = DramCacheEntry(line_addr, dict(words), tx_id, committed)
        self._entries[line_addr] = entry
        if replacing_invalid:
            # Assignment over an existing (invalid) key keeps its position
            # in the OrderedDict; a fresh key already lands at the MRU end.
            self._entries.move_to_end(line_addr)
        self._stamp(entry)
        return self._enforce_capacity()

    def mark_committed(self, line_addr: int, tx_id: int) -> bool:
        """Flip an uncommitted entry of ``tx_id`` to committed."""
        entry = self._entries.get(line_addr)
        if entry is None or entry.invalid or entry.tx_id != tx_id:
            return False
        entry.committed = True
        # Became evictable in place: keeps its LRU position, so queue it
        # under its *current* stamp.
        heapq.heappush(self._evictable, (entry.lru_seq, line_addr))
        return True

    def invalidate(self, line_addr: int, tx_id: int) -> bool:
        """Set the invalidate bit on an uncommitted entry (abort path)."""
        entry = self._entries.get(line_addr)
        if entry is None or entry.tx_id != tx_id or entry.committed:
            return False
        if not entry.invalid:
            entry.invalid = True
            self.invalidations += 1
            heapq.heappush(self._evictable, (entry.lru_seq, line_addr))
        return True

    # -- draining ------------------------------------------------------------

    def _enforce_capacity(self) -> int:
        drained = 0
        while len(self._entries) > self._capacity_lines:
            victim = self._pick_victim()
            if victim is None:
                # Everything resident is uncommitted; hardware would stall.
                self.overcommits += 1
                break
            drained += self._drain(victim)
        return drained

    def _pick_victim(self) -> Optional[int]:
        heap = self._evictable
        entries = self._entries
        while heap:
            seq, line_addr = heap[0]
            entry = entries.get(line_addr)
            if (
                entry is None
                or entry.lru_seq != seq
                or not (entry.invalid or entry.committed)
            ):
                heapq.heappop(heap)  # stale candidate
                continue
            return line_addr
        return None

    def _drain(self, line_addr: int) -> int:
        entry = self._entries.pop(line_addr)
        if entry.invalid:
            return 0
        self._nvm.store_line(entry.words)
        self.drains += 1
        return 1

    def drain_all(self) -> int:
        """Flush every committed line to NVM (quiesce, e.g. before checks)."""
        drained = 0
        for line_addr in list(self._entries):
            entry = self._entries[line_addr]
            if entry.invalid:
                del self._entries[line_addr]
            elif entry.committed:
                drained += self._drain(line_addr)
        return drained

    def wipe(self) -> None:
        """Lose all contents (the DRAM cache is volatile)."""
        self._entries.clear()
        self._evictable.clear()

    def resident_lines(self) -> List[Tuple[int, bool, bool]]:
        """(line, committed, invalid) triples, LRU order — for tests."""
        return [
            (e.line_addr, e.committed, e.invalid) for e in self._entries.values()
        ]
