"""Tests for the cProfile wrapper."""

from __future__ import annotations

import pytest

from repro.perf.profiler import (
    HotSpot,
    SORT_KEYS,
    _short_path,
    profile_callable,
)


def _busy_leaf():
    return sum(i * i for i in range(5000))


def _busy_caller():
    return [_busy_leaf() for _ in range(20)]


class TestProfileCallable:
    def test_returns_result_and_hotspots(self):
        result, spots = profile_callable(_busy_caller, top=50)
        assert len(result) == 20
        assert spots
        names = {spot.function for spot in spots}
        assert "_busy_leaf" in names
        assert "_busy_caller" in names

    def test_hotspot_fields(self):
        _, spots = profile_callable(_busy_caller, top=50)
        leaf = next(s for s in spots if s.function == "_busy_leaf")
        assert leaf.ncalls == 20
        assert leaf.file.endswith("test_profiler.py")
        assert leaf.line > 0
        assert 0.0 <= leaf.tottime_s <= leaf.cumtime_s
        as_dict = leaf.to_dict()
        assert as_dict["function"] == "_busy_leaf"
        assert as_dict["ncalls"] == 20

    def test_cumtime_sort_descends(self):
        _, spots = profile_callable(_busy_caller, sort="cumtime", top=10)
        times = [s.cumtime_s for s in spots]
        assert times == sorted(times, reverse=True)

    def test_tottime_sort_descends(self):
        _, spots = profile_callable(_busy_caller, sort="tottime", top=10)
        times = [s.tottime_s for s in spots]
        assert times == sorted(times, reverse=True)

    def test_top_limits_row_count(self):
        _, spots = profile_callable(_busy_caller, top=3)
        assert len(spots) == 3

    def test_unknown_sort_rejected(self):
        with pytest.raises(ValueError):
            profile_callable(_busy_caller, sort="ncalls")
        assert SORT_KEYS == ("cumtime", "tottime")

    def test_exception_propagates(self):
        def broken():
            raise RuntimeError("boom")

        with pytest.raises(RuntimeError):
            profile_callable(broken)


class TestShortPath:
    def test_trims_to_repro_tail(self):
        assert (
            _short_path("/x/y/src/repro/cache/setassoc.py")
            == "repro/cache/setassoc.py"
        )

    def test_leaves_foreign_paths_alone(self):
        assert _short_path("/usr/lib/python3/heapq.py") == "/usr/lib/python3/heapq.py"
        assert _short_path("~") == "~"


def test_hotspot_is_frozen():
    spot = HotSpot("f", "x.py", 1, 2, 0.1, 0.2)
    with pytest.raises(AttributeError):
        spot.ncalls = 3
