"""The typed event vocabulary of the tracing subsystem.

Every hook point emits one of the kinds below.  An event is a frozen record
of (kind, simulated time, transaction, thread, payload); the payload is a
sorted tuple of key/value pairs so events hash, pickle, and compare
deterministically — they must survive the process-pool boundary of
``trace_grid`` bit-for-bit.

Event taxonomy (see ``docs/OBSERVABILITY.md`` for the payload of each):

Transaction lifecycle (``htm/base.py``)
    ``tx.begin``, ``tx.commit``, ``tx.commit.phase``, ``tx.abort``

Conflict detection (``htm/conflict.py``, ``htm/designs.py``)
    ``conflict.resolve``, ``sig.check``, ``sig.hit``, ``sig.saturation``

Capacity (``cache/hierarchy.py``, ``htm/base.py``)
    ``llc.evict``, ``llc.overflow``

Version management (``mem/controller.py``, ``mem/log.py``)
    ``mem.commit.nvm``, ``mem.commit.dram``, ``mem.rollback.dram``,
    ``mem.abort.nvm``, ``log.append``

Runtime (``runtime/txapi.py``, ``sim/engine.py``)
    ``slowpath.begin``, ``slowpath.commit``,
    ``thread.block``, ``thread.wake``, ``thread.done``
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Dict, Optional, Tuple

# -- transaction lifecycle --------------------------------------------------
TX_BEGIN = "tx.begin"
TX_COMMIT = "tx.commit"
TX_COMMIT_PHASE = "tx.commit.phase"
TX_ABORT = "tx.abort"

# -- conflict detection -----------------------------------------------------
CONFLICT_RESOLVE = "conflict.resolve"
SIG_CHECK = "sig.check"
SIG_HIT = "sig.hit"
SIG_SATURATION = "sig.saturation"

# -- capacity ---------------------------------------------------------------
LLC_EVICT = "llc.evict"
LLC_OVERFLOW = "llc.overflow"

# -- version management -----------------------------------------------------
MEM_COMMIT_NVM = "mem.commit.nvm"
MEM_COMMIT_DRAM = "mem.commit.dram"
MEM_ROLLBACK_DRAM = "mem.rollback.dram"
MEM_ABORT_NVM = "mem.abort.nvm"
LOG_APPEND = "log.append"

# -- runtime ----------------------------------------------------------------
SLOWPATH_BEGIN = "slowpath.begin"
SLOWPATH_COMMIT = "slowpath.commit"
THREAD_BLOCK = "thread.block"
THREAD_WAKE = "thread.wake"
THREAD_DONE = "thread.done"

ALL_KINDS = frozenset(
    {
        TX_BEGIN,
        TX_COMMIT,
        TX_COMMIT_PHASE,
        TX_ABORT,
        CONFLICT_RESOLVE,
        SIG_CHECK,
        SIG_HIT,
        SIG_SATURATION,
        LLC_EVICT,
        LLC_OVERFLOW,
        MEM_COMMIT_NVM,
        MEM_COMMIT_DRAM,
        MEM_ROLLBACK_DRAM,
        MEM_ABORT_NVM,
        LOG_APPEND,
        SLOWPATH_BEGIN,
        SLOWPATH_COMMIT,
        THREAD_BLOCK,
        THREAD_WAKE,
        THREAD_DONE,
    }
)


@dataclass(frozen=True)
class TraceEvent:
    """One emitted event.

    ``ts_ns`` is simulated time; components that do not track time (the
    controller, the logs) emit with the tracer's last explicitly-stamped
    time, which is deterministic because the HTM-level event preceding them
    stamps the calling thread's clock.
    """

    kind: str
    ts_ns: float
    tx_id: Optional[int] = None
    thread_id: Optional[int] = None
    #: Sorted key/value pairs — tuple, not dict, for hash/pickle stability.
    data: Tuple[Tuple[str, Any], ...] = ()

    def get(self, key: str, default: Any = None) -> Any:
        for name, value in self.data:
            if name == key:
                return value
        return default

    def payload(self) -> Dict[str, Any]:
        return dict(self.data)

    def to_dict(self) -> Dict[str, Any]:
        """A flat JSON-safe dict (JSONL export format)."""
        out: Dict[str, Any] = {"kind": self.kind, "ts_ns": self.ts_ns}
        if self.tx_id is not None:
            out["tx_id"] = self.tx_id
        if self.thread_id is not None:
            out["thread_id"] = self.thread_id
        for name, value in self.data:
            if isinstance(value, tuple):
                value = list(value)
            out[name] = value
        return out
