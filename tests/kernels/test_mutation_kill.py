"""Mutation kill-tests: seeded kernel bugs must trip the harness.

Each mutant below plants one representative bug from a class the vectorized
kernels could realistically have (a dropped mask bit, an off-by-one set
index, a shifted histogram bucket, a wrong latency constant).  The harness
replays the *same* recorded sequences the real engines pass in the
differential tier — if a mutant survives, the tier is not actually capable
of detecting that divergence and the test fails.
"""

import pytest

np = pytest.importorskip("numpy")

from kernel_harness import (
    DifferentialHarness,
    Divergence,
    GuardedArray,
    bloom_ops,
    bloom_state,
    histogram_ops,
    histogram_state,
    setassoc_ops,
    setassoc_state,
    stateless,
)

from repro.cache.setassoc import SetAssociativeArray
from repro.kernels.latency import LatencyTable, VectorLatencyTable
from repro.kernels.setassoc import VectorSetAssociativeArray
from repro.kernels.signatures import VectorBloomFilter
from repro.kernels.stats import VectorHistogram
from repro.params import LINE_SIZE, CacheGeometry, LatencyConfig
from repro.signatures.bloom import BloomFilter
from repro.signatures.hashing import shared_multiplicative
from repro.sim.stats import Histogram


def kill(reference, mutant, state_fn, ops):
    """The mutant must diverge from the reference somewhere in ``ops``."""
    harness = DifferentialHarness(reference, mutant, state_fn=state_fn)
    with pytest.raises(Divergence):
        harness.replay(ops)


# -- Bloom mutants -----------------------------------------------------------


class DroppedBitBloom(VectorBloomFilter):
    """Sets k-1 of the k probe bits: a masked-out hash function."""

    def insert(self, value):
        key = self.probe_key(value)
        mutated = key.copy()
        mutated[-1] = 0
        self._words |= mutated
        self._inserted += 1


class FlippedMaskBloom(VectorBloomFilter):
    """ORs the complement of one probe word: a ~ where a copy belongs."""

    def insert(self, value):
        key = self.probe_key(value).copy()
        key[0] = ~key[0]
        self._words |= key
        self._inserted += 1


@pytest.mark.parametrize("mutant_cls", [DroppedBitBloom, FlippedMaskBloom])
def test_bloom_mutants_killed(mutant_cls):
    family = shared_multiplicative(4, 1024, seed=0x5EED)
    kill(
        BloomFilter(1024, 4, family),
        mutant_cls(1024, 4, family),
        bloom_state,
        bloom_ops(2020),
    )


def test_real_bloom_passes_same_sequence():
    family = shared_multiplicative(4, 1024, seed=0x5EED)
    harness = DifferentialHarness(
        BloomFilter(1024, 4, family),
        VectorBloomFilter(1024, 4, family),
        state_fn=bloom_state,
    )
    harness.replay(bloom_ops(2020))


# -- Set-associative mutants -------------------------------------------------


class OffByOneSetIndex(VectorSetAssociativeArray):
    """Maps every line one set over: the classic ``_set_mask`` bug."""

    def _set_index(self, line_addr):
        return (super()._set_index(line_addr) + 1) % self.geometry.num_sets


class MRUVictim(VectorSetAssociativeArray):
    """Evicts the most-recently-used way instead of the least."""

    def fill(self, line_addr):
        set_index = self._set_index(line_addr)
        row = self._tags[set_index]
        if not (row < 0).any():
            # Force the victim choice wrong by pre-aging the true LRU way.
            lru_way = int(self._np.argmin(self._stamps[set_index]))
            mru_way = int(self._np.argmax(self._stamps[set_index]))
            stamps = self._stamps[set_index]
            stamps[lru_way], stamps[mru_way] = (
                stamps[mru_way],
                stamps[lru_way],
            )
        return super().fill(line_addr)


def setassoc_pair(mutant_cls, num_sets=4, ways=2):
    geometry = CacheGeometry(size_bytes=num_sets * ways * LINE_SIZE, ways=ways)
    return (
        GuardedArray(SetAssociativeArray(geometry, name="ref")),
        GuardedArray(mutant_cls(geometry, name="mut")),
    )


@pytest.mark.parametrize("mutant_cls", [OffByOneSetIndex, MRUVictim])
def test_setassoc_mutants_killed(mutant_cls):
    reference, mutant = setassoc_pair(mutant_cls)
    kill(reference, mutant, setassoc_state, setassoc_ops(2020, lines=32))


def test_real_setassoc_passes_same_sequence():
    reference, candidate = setassoc_pair(VectorSetAssociativeArray)
    harness = DifferentialHarness(
        reference, candidate, state_fn=setassoc_state
    )
    harness.replay(setassoc_ops(2020, lines=32))


# -- Histogram mutant --------------------------------------------------------


class ShiftedBucketHistogram(VectorHistogram):
    """Buckets every value one power of two low."""

    def record(self, value):
        super().record(value / 2 if value >= 2 else value)


def test_histogram_mutant_killed():
    kill(
        Histogram(),
        ShiftedBucketHistogram(),
        histogram_state,
        histogram_ops(2020),
    )


def test_real_histogram_passes_same_sequence():
    harness = DifferentialHarness(
        Histogram(), VectorHistogram(), state_fn=histogram_state
    )
    harness.replay(histogram_ops(2020))


# -- Latency mutant ----------------------------------------------------------


class WrongLLCConstant(VectorLatencyTable):
    """Charges bare llc_ns for an LLC hit, forgetting the L1 traversal."""

    def __init__(self, latency):
        super().__init__(latency)
        self.llc_hit_ns = latency.llc_ns


def test_latency_mutant_killed():
    latency = LatencyConfig()
    levels = ["l1", "llc", "mem", "llc"] * 50
    mems = [0.0, 0.0, 82.0, 0.0] * 50
    harness = DifferentialHarness(
        LatencyTable(latency), WrongLLCConstant(latency), state_fn=stateless
    )
    with pytest.raises(Divergence):
        harness.apply("resolve_batch", levels, mems)
