"""Hardware log areas appended by the memory controllers.

Two instances exist: the DRAM log (undo records for LLC-overflowed volatile
lines, or redo records under the Figure 10 ablation) and the NVM log (redo
records for persistent lines).  The controller serialises concurrent appends
to the end of the area (Section IV-B), so the log is modelled as an ordered
list of records plus a byte cursor for space accounting.

Records carry real line contents so that abort rollback and post-crash
recovery genuinely restore data, making consistency a testable property.
"""

from __future__ import annotations

import enum
from typing import Callable, Dict, Iterator, List, NamedTuple, Optional, Tuple

from ..errors import LogOverflowError
from ..params import LINE_SIZE
from .address import Region

#: Bytes per record header: transaction id, address, kind, sequence.
HEADER_BYTES = 16
#: Bytes of payload in a data record (one cache line image).
PAYLOAD_BYTES = LINE_SIZE
#: Full size of a data record, precomputed for the append hot path.
_DATA_RECORD_BYTES = HEADER_BYTES + PAYLOAD_BYTES


class RecordKind(enum.Enum):
    UNDO = "undo"
    REDO = "redo"
    COMMIT = "commit"
    ABORT = "abort"


class LogRecord(NamedTuple):
    """One appended record.

    ``words`` maps word addresses inside the line to their logged values —
    old values for UNDO, new values for REDO; empty for marks.

    A named tuple rather than a frozen dataclass: one is allocated per log
    append, and frozen-dataclass init pays ``object.__setattr__`` per field.
    """

    kind: RecordKind
    tx_id: int
    line_addr: int
    words: Tuple[Tuple[int, int], ...]
    sequence: int

    @property
    def size_bytes(self) -> int:
        if self.kind is RecordKind.COMMIT or self.kind is RecordKind.ABORT:
            return HEADER_BYTES
        return HEADER_BYTES + PAYLOAD_BYTES


class HardwareLog:
    """An append-only log confined to one reserved region.

    When live data alone would overflow the reserved area, the controller
    "traps the operating system to expand the log area" (Section IV-E);
    that is modelled by doubling the capacity and counting the trap.  Set
    ``allow_expansion=False`` to get a hard :class:`LogOverflowError`
    instead (useful for sizing studies).
    """

    def __init__(
        self, region: Region, name: str, allow_expansion: bool = True
    ) -> None:
        self._region = region
        self._name = name
        self._capacity_bytes = region.size
        self._allow_expansion = allow_expansion
        self._records: List[LogRecord] = []
        self._cursor_bytes = 0
        self._sequence = 0
        #: OS traps taken to grow the area.
        self.expansions = 0
        #: Index from tx id to the positions of its data records, so abort
        #: rollback does not scan the whole log (the overflow list plays
        #: this role in hardware).
        self._by_tx: Dict[int, List[int]] = {}
        #: Observers notified after every append (fault injectors and crash
        #: oracles watch the NVM log through this).
        self._observers: List[Callable[[LogRecord], None]] = []
        #: Invoked before capacity-pressure compaction reclaims completed
        #: transactions.  The controller wires the NVM log's hook to drain
        #: the DRAM cache first: a committed transaction's only durable copy
        #: may be its redo records until its lines drain to NVM in place, so
        #: reclaiming those records before the drain would break recovery.
        self.pre_compact: Optional[Callable[[], None]] = None
        #: Optional event tracer (see :mod:`repro.obs`): every append is
        #: emitted as a ``log.append`` event when attached.
        self.tracer = None

    @property
    def name(self) -> str:
        return self._name

    @property
    def used_bytes(self) -> int:
        return self._cursor_bytes

    @property
    def capacity_bytes(self) -> int:
        return self._capacity_bytes

    def __len__(self) -> int:
        return len(self._records)

    def __iter__(self) -> Iterator[LogRecord]:
        return iter(self._records)

    # -- appends -----------------------------------------------------------

    def append_data(
        self,
        kind: RecordKind,
        tx_id: int,
        line_addr: int,
        words: Dict[int, int],
    ) -> LogRecord:
        if kind not in (RecordKind.UNDO, RecordKind.REDO):
            raise ValueError(f"append_data takes UNDO/REDO, got {kind}")
        return self._append(kind, tx_id, line_addr, tuple(sorted(words.items())))

    def append_mark(self, kind: RecordKind, tx_id: int) -> LogRecord:
        if kind not in (RecordKind.COMMIT, RecordKind.ABORT):
            raise ValueError(f"append_mark takes COMMIT/ABORT, got {kind}")
        return self._append(kind, tx_id, 0, ())

    def _append(
        self,
        kind: RecordKind,
        tx_id: int,
        line_addr: int,
        words: Tuple[Tuple[int, int], ...],
    ) -> LogRecord:
        self._sequence += 1
        record = LogRecord(kind, tx_id, line_addr, words, self._sequence)
        is_data = kind is RecordKind.UNDO or kind is RecordKind.REDO
        size = _DATA_RECORD_BYTES if is_data else HEADER_BYTES
        if self._cursor_bytes + size > self._capacity_bytes:
            # Reclaim completed transactions' records first; if live data
            # alone still exceeds the area, trap the OS for more space.
            if self.pre_compact is not None:
                self.pre_compact()
            self._compact()
            while self._cursor_bytes + size > self._capacity_bytes:
                if not self._allow_expansion:
                    raise LogOverflowError(
                        f"{self._name} log exhausted "
                        f"({self._cursor_bytes}/{self._capacity_bytes} bytes)"
                    )
                self._capacity_bytes *= 2
                self.expansions += 1
        self._records.append(record)
        self._cursor_bytes += size
        if is_data:
            # Index before notifying observers: an observer may model a
            # power failure by raising, and the record is already durable.
            positions = self._by_tx.get(tx_id)
            if positions is None:
                self._by_tx[tx_id] = [len(self._records) - 1]
            else:
                positions.append(len(self._records) - 1)
        if self.tracer is not None:
            self.tracer.emit(
                "log.append",
                tx_id=tx_id,
                log=self._name,
                record=kind.value,
                line_addr=line_addr,
                sequence=self._sequence,
            )
        for observer in self._observers:
            observer(record)
        return record

    def add_observer(self, observer: Callable[[LogRecord], None]) -> None:
        """Call ``observer`` with every record after it is appended.

        Observers may raise :class:`~repro.errors.PowerFailure` to model a
        crash immediately after the append — the record is already durable
        (for the NVM log) when they run.
        """
        self._observers.append(observer)

    # -- queries -----------------------------------------------------------

    def records_of(self, tx_id: int) -> List[LogRecord]:
        """Data records appended by ``tx_id``, in append order."""
        return [self._records[i] for i in self._by_tx.get(tx_id, ())]

    def committed_tx_ids(self) -> List[int]:
        return [
            r.tx_id for r in self._records if r.kind is RecordKind.COMMIT
        ]

    def aborted_tx_ids(self) -> List[int]:
        return [r.tx_id for r in self._records if r.kind is RecordKind.ABORT]

    def data_tx_ids(self) -> List[int]:
        """Transactions that still have live data records in the area."""
        return list(self._by_tx)

    # -- reclamation -------------------------------------------------------

    def reclaim(self, tx_id: int) -> int:
        """Drop a completed transaction's data records; returns bytes freed.

        Mirrors the deferred background log reclamation of Section IV-C.
        """
        positions = self._by_tx.pop(tx_id, None)
        if not positions:
            return 0
        doomed = set(positions)
        freed = sum(self._records[i].size_bytes for i in doomed)
        kept: List[LogRecord] = []
        remap: Dict[int, List[int]] = {}
        for index, record in enumerate(self._records):
            if index in doomed:
                continue
            if record.kind in (RecordKind.UNDO, RecordKind.REDO):
                remap.setdefault(record.tx_id, []).append(len(kept))
            kept.append(record)
        self._records = kept
        self._by_tx = remap
        self._cursor_bytes -= freed
        return freed

    def _compact(self) -> None:
        """Reclaim every transaction that has a commit or abort mark."""
        for tx_id in sorted(set(self.committed_tx_ids()) | set(self.aborted_tx_ids())):
            self.reclaim(tx_id)
        # Drop the marks themselves for transactions with no live data.
        live = set(self._by_tx)
        kept = [
            r
            for r in self._records
            if r.kind in (RecordKind.UNDO, RecordKind.REDO) or r.tx_id in live
        ]
        freed = sum(r.size_bytes for r in self._records) - sum(
            r.size_bytes for r in kept
        )
        if freed:
            remap: Dict[int, List[int]] = {}
            for index, record in enumerate(kept):
                if record.kind in (RecordKind.UNDO, RecordKind.REDO):
                    remap.setdefault(record.tx_id, []).append(index)
            self._records = kept
            self._by_tx = remap
            self._cursor_bytes -= freed

    def wipe(self) -> None:
        """Lose all contents (crash of a volatile log)."""
        self._records.clear()
        self._by_tx.clear()
        self._cursor_bytes = 0

    def tail(self, count: int) -> List[LogRecord]:
        return self._records[-count:]

    def find_latest_mark(self, tx_id: int) -> Optional[LogRecord]:
        for record in reversed(self._records):
            if record.tx_id == tx_id and record.kind in (
                RecordKind.COMMIT,
                RecordKind.ABORT,
            ):
                return record
        return None
