"""Design-specific behaviours: what distinguishes the four systems."""

from __future__ import annotations

import pytest

from repro import HTMConfig, MachineConfig, SignatureConfig, System, TransactionAborted
from repro.errors import AbortReason
from repro.htm.designs import IdealHTM, LLCBoundedHTM, SignatureOnlyHTM, UHTM, build_htm
from repro.htm.tss import TxStatus
from repro.mem.address import MemoryKind
from repro.params import LINE_SIZE
from repro.sim.engine import SimThread


def make_system(design, scale=1 / 64, **kwargs):
    return System(
        MachineConfig.scaled(scale, cores=4), HTMConfig(design=design, **kwargs)
    )


def make_thread(tid=0):
    return SimThread(tid, f"t{tid}", lambda t: iter(()))


class TestFactory:
    def test_build_htm_dispatch(self):
        for design, cls in (
            ("llc_bounded", LLCBoundedHTM),
            ("signature_only", SignatureOnlyHTM),
            ("uhtm", UHTM),
            ("ideal", IdealHTM),
        ):
            system = make_system(design)
            assert type(system.htm) is cls


class TestSignatureOnly:
    def test_no_directory_usage(self):
        system = make_system("signature_only")
        thread = make_thread()
        addr = system.heap.alloc_words(1, MemoryKind.DRAM)
        tx = system.htm.begin(thread, 0, 1, 1)
        system.htm.tx_write(tx, addr, 1)
        assert len(system.hierarchy.directory) == 0

    def test_signature_populated_at_access_time(self):
        system = make_system("signature_only")
        thread = make_thread()
        addr = system.heap.alloc_words(1, MemoryKind.DRAM)
        tx = system.htm.begin(thread, 0, 1, 1)
        system.htm.tx_read(tx, addr)
        assert not tx.signature.is_empty()
        assert tx.signature.read_may_contain(addr)

    def test_conflicts_detected_without_eviction(self):
        """Both lines are comfortably cache-resident; signature-only still
        sees the conflict (all coherence traffic is checked)."""
        system = make_system("signature_only", signature=SignatureConfig(bits=4096))
        addr = system.heap.alloc_words(1, MemoryKind.DRAM)
        t1, t2 = make_thread(0), make_thread(1)
        tx1 = system.htm.begin(t1, 0, 1, 1)
        system.htm.tx_write(tx1, addr, 1)
        tx2 = system.htm.begin(t2, 1, 1, 1)
        with pytest.raises(TransactionAborted):
            system.htm.tx_write(tx2, addr, 2)  # requester-aborts off-chip rule

    def test_flat_conflict_domain(self):
        """No isolation: different processes' signatures are checked."""
        system = make_system("signature_only", signature=SignatureConfig(bits=4096))
        addr = system.heap.alloc_words(1, MemoryKind.DRAM)
        t1, t2 = make_thread(0), make_thread(1)
        tx1 = system.htm.begin(t1, 0, 1, 1)
        system.htm.tx_write(tx1, addr, 1)
        tx2 = system.htm.begin(t2, 1, 2, 2)  # different process/domain
        with pytest.raises(TransactionAborted):
            system.htm.tx_write(tx2, addr, 2)


class TestLLCBounded:
    def test_read_set_eviction_also_capacity_aborts(self):
        system = make_system("llc_bounded", scale=1 / 256)
        thread = make_thread()
        nlines = 2048
        base = system.heap.alloc(nlines * LINE_SIZE, MemoryKind.DRAM)
        tx = system.htm.begin(thread, 0, 1, 1)
        with pytest.raises(TransactionAborted) as excinfo:
            for i in range(nlines):
                system.htm.tx_read(tx, base + i * LINE_SIZE)
        assert excinfo.value.reason is AbortReason.CAPACITY

    def test_small_transactions_unaffected(self):
        system = make_system("llc_bounded")
        thread = make_thread()
        addr = system.heap.alloc_words(1, MemoryKind.NVM)
        tx = system.htm.begin(thread, 0, 1, 1)
        system.htm.tx_write(tx, addr, 9)
        system.htm.commit(tx)
        assert system.controller.load_word(addr) == 9


class TestUHTMvsIdeal:
    def _overflow_and_probe(self, design, bits=512):
        system = make_system(design, scale=1 / 256,
                             signature=SignatureConfig(bits=bits))
        thread = make_thread(0)
        nlines = 4096
        base = system.heap.alloc(nlines * LINE_SIZE, MemoryKind.DRAM)
        tx1 = system.htm.begin(thread, 0, 1, 1)
        for i in range(nlines):
            system.htm.tx_write(tx1, base + i * LINE_SIZE, 1)
        probe_base = system.heap.alloc(64 * LINE_SIZE, MemoryKind.DRAM)
        t2 = make_thread(1)
        false_hits = 0
        for i in range(16):
            tx2 = system.htm.begin(t2, 1, 1, 1)
            try:
                system.htm.tx_read(tx2, probe_base + i * LINE_SIZE)
                system.htm.commit(tx2)
            except TransactionAborted:
                system.htm.acknowledge_abort(tx2)
                false_hits += 1
        return false_hits

    def test_uhtm_saturated_signature_false_positives(self):
        assert self._overflow_and_probe("uhtm") > 0

    def test_ideal_never_false_positives(self):
        assert self._overflow_and_probe("ideal") == 0


class TestSuspendedThreadProtocol:
    def test_victim_discovers_abort_flag_on_next_access(self):
        """Section IV-E: the abort flag in the TSS kills a suspended tx
        the next time its thread issues a transactional operation."""
        system = make_system("uhtm")
        addr = system.heap.alloc_words(1, MemoryKind.DRAM)
        other = system.heap.alloc_words(1, MemoryKind.DRAM)
        t1, t2 = make_thread(0), make_thread(1)
        victim = system.htm.begin(t1, 0, 1, 1)
        system.htm.tx_write(victim, addr, 1)
        attacker = system.htm.begin(t2, 1, 1, 1)
        system.htm.tx_write(attacker, addr, 2)  # requester-wins: victim dies
        assert system.htm.tss.entry(victim.tx_id).status is TxStatus.ABORTED
        # The victim thread is "suspended"; when it resumes and touches any
        # address — even an unrelated one — it must unwind.
        with pytest.raises(TransactionAborted):
            system.htm.tx_read(victim, other)
