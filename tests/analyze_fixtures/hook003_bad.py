"""BAD fixture: optional hooks invoked without a None guard."""


class Machine:
    def __init__(self):
        self.fault_injector = None
        self.pre_compact = None

    def step(self):
        self.fault_injector.on_step(1)

    def compact(self):
        self.pre_compact()

    def aliased(self, controller):
        injector = controller.fault_injector
        injector.observe(2)
