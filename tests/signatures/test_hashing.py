"""Tests for the signature hash families."""

from __future__ import annotations

import pytest

from repro.signatures.hashing import H3HashFamily, MultiplicativeHashFamily


@pytest.mark.parametrize("family_cls", [H3HashFamily, MultiplicativeHashFamily])
class TestHashFamilyContract:
    def test_indices_in_range(self, family_cls):
        family = family_cls(functions=4, buckets=128)
        for value in (0, 1, 64, 0x12345678, 2**40):
            for index in family.indices(value):
                assert 0 <= index < 128

    def test_right_number_of_functions(self, family_cls):
        family = family_cls(functions=3, buckets=64)
        assert len(list(family.indices(0xABC))) == 3

    def test_deterministic(self, family_cls):
        family = family_cls(functions=4, buckets=256)
        assert list(family.indices(1234)) == list(family.indices(1234))

    def test_same_seed_same_family(self, family_cls):
        a = family_cls(functions=4, buckets=256, seed=9)
        b = family_cls(functions=4, buckets=256, seed=9)
        assert list(a.indices(777)) == list(b.indices(777))

    def test_different_seeds_differ(self, family_cls):
        a = family_cls(functions=4, buckets=4096, seed=1)
        b = family_cls(functions=4, buckets=4096, seed=2)
        diffs = sum(
            list(a.indices(v)) != list(b.indices(v)) for v in range(0, 6400, 64)
        )
        assert diffs > 90  # nearly all inputs should map differently

    def test_validation(self, family_cls):
        with pytest.raises(ValueError):
            family_cls(functions=0, buckets=64)
        with pytest.raises(ValueError):
            family_cls(functions=2, buckets=0)


@pytest.mark.parametrize("family_cls", [H3HashFamily, MultiplicativeHashFamily])
class TestUniformity:
    def test_line_addresses_spread_over_buckets(self, family_cls):
        """Line-aligned addresses (the real input) must not cluster."""
        buckets = 64
        family = family_cls(functions=1, buckets=buckets)
        counts = [0] * buckets
        n = 4096
        base = 0x1000_0000
        for i in range(n):
            counts[list(family.indices(base + i * 64))[0]] += 1
        expected = n / buckets
        # Loose 3-sigma-ish bound on the max bucket.
        assert max(counts) < expected * 2
        assert min(counts) > expected / 3

    def test_functions_are_mutually_independent_ish(self, family_cls):
        """Two hash functions should rarely agree on an index."""
        buckets = 1024
        family = family_cls(functions=2, buckets=buckets)
        agreements = 0
        for i in range(2000):
            h1, h2 = family.indices(0x2000_0000 + i * 64)
            agreements += h1 == h2
        # Expected agreements ≈ 2000/1024 ≈ 2; allow generous slack.
        assert agreements < 30
