"""The one sanctioned wall-clock read.

Simulation results must never depend on real time — DET001 bans clock reads
everywhere else — but the CLIs still want a "regenerated in 12.3s" progress
line.  They get it from this stopwatch, which is monotonic
(``time.perf_counter``) and only ever feeds human-facing output.
"""

from __future__ import annotations

import time


class Stopwatch:
    """Measure elapsed wall time for progress reporting only."""

    def __init__(self) -> None:
        self._started = time.perf_counter()

    def restart(self) -> None:
        self._started = time.perf_counter()

    @property
    def elapsed_s(self) -> float:
        return time.perf_counter() - self._started

    def __str__(self) -> str:
        return f"{self.elapsed_s:.1f}s"
