"""Differential tier: histogram bucketing and latency accumulation kernels."""

import math

import pytest

np = pytest.importorskip("numpy")

from kernel_harness import (
    DifferentialHarness,
    histogram_ops,
    histogram_state,
    stateless,
)

from repro.kernels.latency import LEVELS, LatencyTable, VectorLatencyTable
from repro.kernels.stats import VectorHistogram
from repro.params import LatencyConfig
from repro.sim.stats import Histogram

SEEDS = (2020, 7, 41)


class TestHistogramDifferential:
    @pytest.mark.parametrize("seed", SEEDS)
    def test_recorded_sequences(self, seed):
        harness = DifferentialHarness(
            Histogram(), VectorHistogram(), state_fn=histogram_state
        )
        ops = histogram_ops(seed)
        assert harness.replay(ops) == len(ops)

    def test_bucket_edges(self):
        # Values straddling every power-of-two bucket edge, plus the
        # sub-1 floor bucket and the top-bucket clamp.
        edges = [0.0, 0.5, 0.999, 1.0, 1.5, 2.0, 3.9, 4.0]
        edges += [2.0**exp - 0.5 for exp in range(1, 40)]
        edges += [2.0**exp for exp in range(1, 40)]
        edges += [2.0**exp + 0.5 for exp in range(1, 40)]
        scalar, vector = Histogram(), VectorHistogram()
        for value in edges:
            scalar.record(value)
            vector.record(value)
        assert histogram_state(scalar) == histogram_state(vector)

    def test_sum_is_left_fold_identical(self):
        # Pathological float mix where pairwise summation would differ
        # from a left fold — the vector engine must keep the fold.  A left
        # fold loses every +1.0 against 1e16; numpy's pairwise sum would
        # gather them first and report 1e16 + 1000.
        values = [1e16] + [1.0] * 1000
        scalar, vector = Histogram(), VectorHistogram()
        for value in values:
            scalar.record(value)
            vector.record(value)
        assert scalar.mean == vector.mean
        assert scalar._sum == vector._sum == 1e16

    def test_percentiles_identical(self):
        scalar, vector = Histogram(), VectorHistogram()
        import random

        rng = random.Random(77)
        for _ in range(5000):
            value = rng.random() * 10 ** rng.randrange(8)
            scalar.record(value)
            vector.record(value)
        for q in (0.5, 0.9, 0.95, 0.99, 1.0):
            assert scalar.percentile(q) == vector.percentile(q)


class TestLatencyDifferential:
    def tables(self):
        latency = LatencyConfig()
        return LatencyTable(latency), VectorLatencyTable(latency)

    def test_hit_constants_match_hierarchy_order(self):
        latency = LatencyConfig()
        table = LatencyTable(latency)
        assert table.l1_hit_ns == latency.l1_ns
        assert table.llc_hit_ns == latency.l1_ns + latency.llc_ns

    @pytest.mark.parametrize("seed", SEEDS)
    def test_resolve_batch(self, seed):
        import random

        rng = random.Random(seed)
        records = [
            (rng.choice(LEVELS), rng.random() * 200.0) for _ in range(2000)
        ]
        levels = [level for level, _ in records]
        mems = [mem for _, mem in records]
        scalar, vector = self.tables()
        harness = DifferentialHarness(scalar, vector, state_fn=stateless)
        harness.apply("resolve_batch", levels, mems)
        harness.apply("accumulate", levels, mems)

    def test_accumulate_total_is_fsum_exact(self):
        scalar, vector = self.tables()
        levels = ["mem"] * 2000
        mems = [1e16, 1.0, -1e16, 1.0] * 500
        _, _, scalar_total = scalar.accumulate(levels, mems)
        _, _, vector_total = vector.accumulate(levels, mems)
        expected = math.fsum(scalar.resolve("mem", mem) for mem in mems)
        assert scalar_total == expected
        assert vector_total == expected

    def test_unknown_level_raises_in_both(self):
        scalar, vector = self.tables()
        with pytest.raises(ValueError):
            scalar.resolve_batch(["l1", "l4"], [0.0, 0.0])
        with pytest.raises(ValueError):
            vector.resolve_batch(["l1", "l4"], [0.0, 0.0])

    def test_empty_batch(self):
        scalar, vector = self.tables()
        assert list(scalar.resolve_batch([], [])) == []
        assert list(vector.resolve_batch([], [])) == []
        assert scalar.accumulate([], []) == vector.accumulate([], [])
