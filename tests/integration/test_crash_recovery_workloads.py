"""Integration: crash/recovery over real workload data structures."""

from __future__ import annotations

import pytest

from repro import HTMConfig, MachineConfig, System
from repro.mem.address import MemoryKind
from repro.runtime.txapi import RawContext
from repro.workloads import WORKLOADS, WorkloadParams
from repro.workloads.hashmap import TxHashMap


def run_and_crash(name, max_steps, seed=5, design="uhtm"):
    system = System(
        MachineConfig.scaled(1 / 64, cores=4), HTMConfig(design=design), seed=seed
    )
    proc = system.process(name)
    params = WorkloadParams(
        threads=4, txs_per_thread=4, value_bytes=50 << 10,
        keys=64, initial_fill=16, kind=MemoryKind.NVM,
    )
    workload = WORKLOADS[name](system, proc, params)
    workload.spawn()
    system.run(max_steps=max_steps)
    system.crash()
    system.recover()
    return system, workload


@pytest.mark.parametrize("name", ["hashmap", "btree", "rbtree", "skiplist"])
@pytest.mark.parametrize("max_steps", [50, 200, 10_000])
class TestStructuresSurviveCrash:
    def test_structure_is_intact_after_recovery(self, name, max_steps):
        """Whatever committed before the crash forms a valid structure."""
        system, workload = run_and_crash(name, max_steps)
        raw = RawContext(system.controller)
        structure = {
            "hashmap": lambda w: w.map,
            "btree": lambda w: w.tree,
            "rbtree": lambda w: w.tree,
            "skiplist": lambda w: w.list,
        }[name](workload)
        assert structure.check_integrity(raw)
        # The initial fill committed during setup... via RawContext, which
        # bypasses logging — so only transactionally committed data is
        # guaranteed.  Structural integrity is the invariant.


class TestHybridStoreRecovery:
    def test_nvm_side_recovers_dram_side_rebuildable(self):
        system = System(
            MachineConfig.scaled(1 / 64, cores=4), HTMConfig(), seed=9
        )
        proc = system.process("hybrid")
        params = WorkloadParams(
            threads=4, txs_per_thread=4, value_bytes=50 << 10,
            keys=64, initial_fill=16,
        )
        workload = WORKLOADS["hybrid_index"](system, proc, params)
        workload.spawn()
        system.run()
        raw = RawContext(system.controller)
        keys_before = sorted(workload.hash_index.keys(raw))
        system.crash()
        system.recover()
        # The NVM hash index must be fully recovered and intact:
        assert workload.hash_index.check_integrity(raw)
        assert sorted(workload.hash_index.keys(raw)) == keys_before
        # Every record pointer it holds must resolve to NVM space:
        space = system.controller.address_space
        for key in keys_before:
            record = workload.hash_index.get(raw, key)
            assert space.is_nvm(record)

    def test_setup_state_is_raw_and_volatile_warning_case(self):
        """RawContext writes NVM directly, so they happen to survive; this
        test documents that recovery replay does not *remove* them."""
        system = System(
            MachineConfig.scaled(1 / 64, cores=2), HTMConfig(), seed=1
        )
        raw = RawContext(system.controller)
        table = TxHashMap.create(
            system.heap, raw, MemoryKind.NVM, nbuckets=8
        )
        table.insert(raw, 1, 11)
        system.crash()
        system.recover()
        assert table.get(raw, 1) == 11


class TestCrashAtEveryPhase:
    @pytest.mark.parametrize("max_steps", [1, 10, 60, 150, 400, 1200])
    def test_no_torn_structures_at_any_cut(self, max_steps):
        system, workload = run_and_crash("hashmap", max_steps, seed=77)
        raw = RawContext(system.controller)
        assert workload.map.check_integrity(raw)

    def test_double_crash_recover(self):
        system, workload = run_and_crash("hashmap", 10_000)
        raw = RawContext(system.controller)
        first = sorted(workload.map.keys(raw))
        system.crash()
        system.recover()
        assert sorted(workload.map.keys(raw)) == first
