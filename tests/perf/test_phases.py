"""Tests for the manual phase timers."""

from __future__ import annotations

from repro.cache.directory import Directory
from repro.cache.hierarchy import CacheHierarchy
from repro.htm import designs
from repro.htm.base import HTMSystem
from repro.htm.batch import BatchDispatcher
from repro.perf.phases import PHASES, PhaseTimers
from repro.sim.stats import Histogram, StatsRegistry


def _phase_entry_points():
    return {
        (CacheHierarchy, "access"),
        (designs, "_signature_hits"),
        (Directory, "check_access"),
        (Directory, "record_access"),
        (HTMSystem, "commit"),
        (StatsRegistry, "incr"),
        (StatsRegistry, "record"),
        (Histogram, "record"),
        (BatchDispatcher, "tx_read_block"),
        (BatchDispatcher, "tx_write_block"),
        (BatchDispatcher, "nontx_rmw_block"),
    }


class TestAttachDetach:
    def test_detach_restores_every_entry_point(self):
        originals = {
            (owner, name): getattr(owner, name)
            for owner, name in _phase_entry_points()
        }
        timers = PhaseTimers()
        timers.attach()
        assert timers.attached
        for (owner, name), original in originals.items():
            assert getattr(owner, name) is not original
        timers.detach()
        assert not timers.attached
        for (owner, name), original in originals.items():
            assert getattr(owner, name) is original

    def test_attach_is_idempotent(self):
        timers = PhaseTimers()
        timers.attach()
        timers.attach()  # must not double-wrap
        wrapped = StatsRegistry.incr
        timers.attach()
        assert StatsRegistry.incr is wrapped
        timers.detach()

    def test_context_manager_detaches_on_error(self):
        original = StatsRegistry.incr
        try:
            with PhaseTimers():
                assert StatsRegistry.incr is not original
                raise RuntimeError("boom")
        except RuntimeError:
            pass
        assert StatsRegistry.incr is original

    def test_detach_twice_is_safe(self):
        timers = PhaseTimers()
        timers.attach()
        timers.detach()
        timers.detach()


class TestAccounting:
    def test_stats_calls_are_counted(self):
        timers = PhaseTimers()
        with timers:
            registry = StatsRegistry()
            for _ in range(10):
                registry.incr("x")
            registry.record("y", 1.0)
        assert timers.calls["stats"] == 11
        assert registry.counter("x") == 10
        assert timers.exclusive_s["stats"] >= 0.0

    def test_report_shares_sum_to_one(self):
        timers = PhaseTimers()
        with timers:
            registry = StatsRegistry()
            registry.incr("x")
        report = timers.report()
        assert set(report) == set(PHASES)
        assert abs(sum(r["share"] for r in report.values()) - 1.0) < 0.01

    def test_empty_report_has_zero_shares(self):
        report = PhaseTimers().report()
        assert all(r["share"] == 0.0 for r in report.values())
        assert all(r["calls"] == 0 for r in report.values())

    def test_all_phases_fire_in_a_real_run(self):
        from repro.harness.config import ExperimentSpec, consolidated
        from repro.harness.runner import run_experiment
        from repro.params import HTMConfig
        from repro.workloads import WorkloadParams

        spec = ExperimentSpec(
            name="phases-smoke",
            htm=HTMConfig(),
            benchmarks=consolidated(
                "hashmap",
                2,
                WorkloadParams(
                    threads=2,
                    txs_per_thread=2,
                    value_bytes=16 << 10,
                    keys=64,
                    initial_fill=16,
                ),
            ),
            scale=1 / 64,
            seed=2020,
        )
        timers = PhaseTimers()
        with timers:
            result = run_experiment(spec)
        assert result.commits > 0
        from repro.kernels import resolve_engine

        # The epoch phase only fires when blocks route through the batched
        # dispatcher — zero by design under the scalar/vectorized engines.
        expected = set(PHASES)
        if resolve_engine(None) != "batched":
            expected.discard("epoch")
        for phase in expected:
            assert timers.calls[phase] > 0, f"phase {phase!r} never fired"
        assert timers.total_s() > 0.0

    def test_epoch_phase_fires_under_batched(self):
        import pytest

        pytest.importorskip("numpy")
        import dataclasses

        from repro.harness.config import ExperimentSpec, consolidated
        from repro.harness.runner import run_experiment
        from repro.params import HTMConfig
        from repro.workloads import WorkloadParams

        spec = ExperimentSpec(
            name="phases-epoch",
            htm=HTMConfig(),
            benchmarks=consolidated(
                "hashmap",
                2,
                WorkloadParams(
                    threads=2,
                    txs_per_thread=2,
                    value_bytes=16 << 10,
                    keys=64,
                    initial_fill=16,
                ),
            ),
            scale=1 / 64,
            seed=2020,
        )
        timers = PhaseTimers()
        with timers:
            run_experiment(dataclasses.replace(spec, engine="batched"))
        assert timers.calls["epoch"] > 0
        assert timers.exclusive_s["epoch"] > 0.0
