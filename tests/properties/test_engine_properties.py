"""Property-based tests of the discrete-event engine."""

from __future__ import annotations

from hypothesis import given, settings, strategies as st

from repro.sim.engine import Engine, SimThread


@settings(max_examples=50, deadline=None)
@given(
    step_costs=st.lists(
        st.lists(st.floats(min_value=0.1, max_value=1000), min_size=1,
                 max_size=10),
        min_size=1,
        max_size=6,
    )
)
def test_all_threads_always_complete(step_costs):
    """Whatever the cost structure, every thread runs to completion."""
    completed = []

    def make_body(index, costs):
        def body(thread):
            for cost in costs:
                thread.advance(cost)
                yield
            completed.append(index)

        return body

    engine = Engine()
    for index, costs in enumerate(step_costs):
        engine.add_thread(SimThread(index, f"t{index}", make_body(index, costs)))
    engine.run()
    assert sorted(completed) == list(range(len(step_costs)))
    assert engine.all_done()


@settings(max_examples=50, deadline=None)
@given(
    step_costs=st.lists(
        st.lists(st.floats(min_value=0.1, max_value=1000), min_size=1,
                 max_size=10),
        min_size=1,
        max_size=6,
    )
)
def test_final_time_equals_max_thread_time(step_costs):
    engine = Engine()

    def make_body(costs):
        def body(thread):
            for cost in costs:
                thread.advance(cost)
                yield

        return body

    for index, costs in enumerate(step_costs):
        engine.add_thread(SimThread(index, f"t{index}", make_body(costs)))
    final = engine.run()
    expected = max(sum(costs) for costs in step_costs)
    assert final == max(t.clock_ns for t in engine.threads)
    assert abs(final - expected) < 1e-6


@settings(max_examples=30, deadline=None)
@given(
    costs_a=st.lists(st.floats(min_value=1, max_value=100), min_size=2,
                     max_size=8),
    costs_b=st.lists(st.floats(min_value=1, max_value=100), min_size=2,
                     max_size=8),
)
def test_steps_execute_in_nondecreasing_clock_order(costs_a, costs_b):
    """The engine is a min-clock scheduler: observed start times of steps
    never go backwards."""
    observed = []

    def make_body(costs):
        def body(thread):
            for cost in costs:
                observed.append(thread.clock_ns)
                thread.advance(cost)
                yield

        return body

    engine = Engine()
    engine.add_thread(SimThread(0, "a", make_body(costs_a)))
    engine.add_thread(SimThread(1, "b", make_body(costs_b)))
    engine.run()
    assert observed == sorted(observed)
