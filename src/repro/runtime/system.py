"""The top-level façade: one simulated machine ready to run workloads.

Typical use::

    from repro import System, MachineConfig, HTMConfig

    system = System(MachineConfig.scaled(1 / 16), HTMConfig(design="uhtm"))
    app = system.process("kvstore")

    def worker(api):
        table = ...  # build a data structure over api.heap
        for batch in batches:
            yield from api.run_transaction(lambda tx: table.insert(tx, ...))

    app.thread(worker)
    system.run()
    print(system.stats.counter("tx.commits"))
"""

from __future__ import annotations

from typing import List, Optional

from ..cache.hierarchy import CacheHierarchy
from ..htm.designs import build_htm
from ..htm.fallback import FallbackLockTable
from ..htm.recovery import CrashController, CrashReport, RecoveryReport
from ..kernels import kit_for
from ..mem.controller import MemoryController
from ..params import HTMConfig, MachineConfig
from ..sim.engine import Engine, EpochEngine
from ..sim.rng import RngStreams
from ..sim.stats import StatsRegistry
from ..sim.trace import TraceRecorder
from ..sim.tracefile import MemoryTrace, TraceCapture
from .heap import TxHeap
from .process import SimProcess


class System:
    """A fully assembled machine: cores, caches, memories, HTM, and runtime."""

    def __init__(
        self,
        machine: Optional[MachineConfig] = None,
        htm_config: Optional[HTMConfig] = None,
        seed: int = 2020,
        trace: bool = False,
        capture_trace: bool = False,
        engine: Optional[str] = None,
    ) -> None:
        self.machine = machine or MachineConfig.scaled(1 / 16)
        self.htm_config = htm_config or HTMConfig()
        # Sim-kernel engine ("scalar"/"vectorized"/"auto"/None=process
        # default): one kit of kernel classes injected everywhere, so the
        # layers below never import repro.kernels themselves.  Note
        # ``self.engine`` is the *event* engine; the kernel knob lives in
        # ``engine_name`` / ``kernel_kit``.
        self.kernel_kit = kit_for(engine)
        self.engine_name = self.kernel_kit.name
        self.stats = StatsRegistry(
            histogram_cls=self.kernel_kit.histogram_cls
        )
        self.rng = RngStreams(seed)
        self.trace = TraceRecorder(enabled=trace)
        # The batched kit swaps in the epoch-aware event engine; scheduling
        # is inherited unchanged, it only adds the EpochStats surface the
        # block dispatcher reports into.
        self.engine = EpochEngine() if self.kernel_kit.batched else Engine()
        self.controller = MemoryController(
            self.machine.memory, self.machine.latency
        )
        self.hierarchy = CacheHierarchy(
            self.machine, self.controller, kit=self.kernel_kit
        )
        self.htm = build_htm(
            self.machine, self.htm_config, self.controller, self.hierarchy,
            self.stats, kit=self.kernel_kit,
        )
        if self.kernel_kit.batched:
            from ..htm.batch import BatchDispatcher

            self.htm.batch = BatchDispatcher(self.htm, self.engine.epoch_stats)
        self.heap = TxHeap(self.controller)
        if capture_trace:
            space = self.controller.address_space
            self.htm.capture = TraceCapture(
                space.dram_heap.base, space.nvm_heap.base
            )
        self.locks = FallbackLockTable()
        self.crash_controller = CrashController(self.controller, self.hierarchy)
        self.processes: List[SimProcess] = []
        self._next_thread_id = 0

    # -- construction -----------------------------------------------------------

    def process(self, name: str = "") -> SimProcess:
        pid = len(self.processes) + 1
        proc = SimProcess(self, pid, name or f"proc{pid}")
        self.processes.append(proc)
        return proc

    def next_thread_id(self) -> int:
        thread_id = self._next_thread_id
        self._next_thread_id += 1
        return thread_id

    # -- running -----------------------------------------------------------------

    def run(
        self, until_ns: Optional[float] = None, max_steps: Optional[int] = None
    ) -> float:
        """Run the engine; returns the simulated end time in nanoseconds."""
        return self.engine.run(until_ns=until_ns, max_steps=max_steps)

    @property
    def elapsed_ns(self) -> float:
        return self.engine.now()

    @property
    def epoch_stats(self):
        """The :class:`~repro.sim.engine.EpochStats` surface, or ``None``.

        Populated only under ``engine="batched"``; diagnostic-only — epoch
        counters never enter :class:`~repro.harness.metrics.RunResult` or
        any export, which is part of the bit-identity contract.
        """
        return getattr(self.engine, "epoch_stats", None)

    def throughput_ops_per_ms(self) -> float:
        """Committed operations per simulated millisecond."""
        elapsed = self.elapsed_ns
        if elapsed <= 0:
            return 0.0
        return self.stats.counter("ops.committed") / (elapsed / 1e6)

    def captured_trace(self) -> Optional[MemoryTrace]:
        """The memory trace recorded so far (None unless capturing)."""
        if self.htm.capture is None:
            return None
        return self.htm.capture.trace

    # -- failure injection ---------------------------------------------------------

    def crash(self) -> CrashReport:
        return self.crash_controller.crash()

    def recover(self) -> RecoveryReport:
        return self.crash_controller.recover()

    def install_fault_injector(self, injector) -> None:
        """Arm every fault hook point with ``injector`` (see :mod:`repro.faults`).

        The injector observes NVM log appends, commit-mark writes, recovery
        replay, and engine steps; when its armed crash point fires it raises
        :class:`~repro.errors.PowerFailure`, which unwinds out of
        :meth:`run` (or :meth:`recover`) back to the campaign driver.
        """
        self.controller.fault_injector = injector
        self.engine.fault_injector = injector
        self.controller.nvm_log.add_observer(injector.observe_nvm_log)

    # -- reporting -------------------------------------------------------------------

    def abort_breakdown(self) -> dict:
        prefix = "tx.aborts."
        return {
            name[len(prefix):]: value
            for name, value in self.stats.counters_with_prefix(prefix).items()
        }

    def abort_rate(self) -> float:
        """Aborted transaction attempts / all attempts."""
        begins = self.stats.counter("tx.begins")
        aborts = self.stats.counter("tx.aborts")
        if begins == 0:
            return 0.0
        return aborts / begins
