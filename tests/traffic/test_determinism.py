"""End-to-end determinism contracts for the open-loop traffic scenario.

The replay counterfactual in ``repro.traffic.report`` only holds if the
arrival schedules reconstructed offline are byte-identical to the ones the
live run consumed, and if tracing the run does not perturb it.  These tests
pin both contracts on a miniature two-tenant traffic spec.
"""

from __future__ import annotations

import pytest

from repro.harness.config import BenchmarkSpec, ExperimentSpec
from repro.harness.metrics import run_result_to_dict
from repro.harness.parallel import GridPoint, run_grid
from repro.harness.runner import run_experiment
from repro.obs.capture import trace_experiment
from repro.params import HTMConfig, HTMDesign, SignatureConfig
from repro.traffic.report import (
    build_chains,
    reconstruct_arrivals,
    tail_report,
)
from repro.workloads import WorkloadParams

TENANTS = 2


def tiny_spec(seed=2020, arrival="poisson", isolation=True):
    params = WorkloadParams(
        threads=2, value_bytes=4096, ops_per_tx=2, keys=64, initial_fill=64,
        update_ratio=1.0,
    )
    benchmarks = []
    for tenant in range(TENANTS):
        kwargs = dict(
            inner="echo",
            tenant=tenant,
            arrival=arrival,
            mean_gap_ns=40_000.0,
            horizon_ns=400_000.0,
            zipf_theta=0.9,
            burst_on_ns=100_000.0,
            burst_off_ns=100_000.0,
            burst_factor=2.0,
        )
        benchmarks.append(
            BenchmarkSpec(
                "open_loop", params, tuple(sorted(kwargs.items()))
            )
        )
    return ExperimentSpec(
        name=f"tiny-traffic-{arrival}",
        htm=HTMConfig(
            design=HTMDesign.UHTM,
            signature=SignatureConfig(bits=256),
            isolation=isolation,
        ),
        benchmarks=tuple(benchmarks),
        scale=1 / 64,
        cores=4,
        seed=seed,
    )


class TestTrafficDeterminism:
    def test_serial_and_pooled_grids_are_byte_identical(self):
        points = [
            GridPoint(spec=tiny_spec(), label="poisson"),
            GridPoint(spec=tiny_spec(arrival="bursty"), label="bursty"),
        ]
        serial = run_grid(points, jobs=1)
        pooled = run_grid(points, jobs=2)
        assert [run_result_to_dict(r) for r in serial] == [
            run_result_to_dict(r) for r in pooled
        ]
        assert all(r.latency for r in serial)

    def test_tracing_does_not_perturb_the_run(self):
        spec = tiny_spec()
        plain = run_experiment(spec, "tiny")
        traced = trace_experiment(spec, "tiny")
        assert run_result_to_dict(traced.result) == run_result_to_dict(plain)

    @pytest.mark.parametrize("arrival", ["poisson", "bursty"])
    def test_reconstructed_arrivals_match_the_live_run(self, arrival):
        spec = tiny_spec(arrival=arrival)
        result = run_experiment(spec, "tiny")
        schedules = reconstruct_arrivals(spec)
        assert len(schedules) == TENANTS * 2
        assert sum(map(len, schedules)) == int(result.latency["count"])

    def test_tail_report_agrees_with_the_workload_histogram(self):
        # The chains assembled from the trace must describe the same
        # requests the workload's own exact histogram measured.
        spec = tiny_spec()
        result = run_experiment(spec, "tiny")
        report = tail_report(spec, "tiny")
        assert report.chains == int(result.latency["count"])
        assert report.p999_ns == pytest.approx(result.latency["p999"])
        assert report.p50_ns == pytest.approx(result.latency["p50"])
        assert 0 < report.p50_ns <= report.p99_ns <= report.p999_ns
        assert report.amplification_p999 >= 1.0

    def test_chains_cover_every_thread(self):
        spec = tiny_spec()
        traced = trace_experiment(spec, "tiny")
        chains = build_chains(traced.events)
        assert {c.thread_id for c in chains} == set(range(TENANTS * 2))
