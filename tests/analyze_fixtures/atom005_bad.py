"""Bad: published spool paths written without the staged-rename discipline."""

import json


def write_json_atomic(path, payload):
    tmp = path.with_name(path.name + ".tmp")
    tmp.write_text(json.dumps(payload))
    tmp.replace(path)


def direct_write(store, meta):
    path = store.points_path(meta.campaign_id)
    with open(path, "w") as handle:  # direct write to a published path
        handle.write("records")


def staged_never_published(store, meta):
    points = store.points_path(meta.campaign_id)
    tmp = points.with_name(points.name + ".tmp")
    tmp.write_text("records")  # staged but never renamed into place


def rename_before_flush(store, meta):
    points = store.points_path(meta.campaign_id)
    tmp = points.with_name(points.name + ".tmp")
    tmp.replace(points)  # published before the content lands
    tmp.write_text("records")


def steal_without_read_back(store, campaign_id, index, lease):
    path = store.lease_path(campaign_id, index)
    write_json_atomic(path, lease)  # steal-rename, token never re-checked
    return lease
