"""Process-pool execution of experiment grids, with a bit-identical contract.

The paper's evaluation is a wide grid — (design x workload x parameter)
points, each an independent simulation — and the simulator is a pure
function of its :class:`~repro.harness.config.ExperimentSpec` (PR 2 routed
every stochastic decision through named, seeded
:class:`~repro.sim.rng.RngStreams`).  Independence plus determinism means
the grid can fan out across a :class:`~concurrent.futures.ProcessPoolExecutor`
**without changing a single bit of output**:

* points are materialised up front in deterministic order (specs are
  pickled to the workers; no callables cross the process boundary),
* results come back in submission order regardless of completion order,
* each worker runs a fresh :class:`~repro.runtime.system.System` seeded
  from the spec, exactly as a serial run would.

``run_grid(points, jobs=N)`` therefore returns the same ``RunResult`` list
for every ``N`` — the differential test tier proves it byte-for-byte, and
``verify_sample=True`` spot-checks the contract in production runs by
re-running one pooled point serially.

A :class:`~repro.harness.cache.ResultCache` short-circuits points whose
content hash already has a stored result, so re-running a figure only
simulates changed points.

``run_grid_detailed`` also accepts a pluggable ``executor`` — anything
matching the :data:`GridExecutor` contract ``(points, cache) ->
GridOutcome`` — which replaces the local pool entirely.  That is how the
``repro serve`` job service slots in underneath every figure driver: the
same grids, submitted to a spool and executed by a sharded worker fleet,
assembled back in submission order with the same bit-identical contract.
:func:`execute_point` is the shared execution core both paths run.
"""

from __future__ import annotations

from concurrent.futures import ProcessPoolExecutor
from dataclasses import dataclass
from typing import Any, Callable, Dict, List, Optional, Sequence, Tuple

from ..errors import SimulationError
from .cache import ResultCache, spec_fingerprint
from .config import ExperimentSpec
from .metrics import RunResult, run_result_to_dict
from .runner import run_experiment
from .timer import Stopwatch


@dataclass(frozen=True)
class GridPoint:
    """One point of an experiment grid.

    ``key`` is an optional hashable handle (e.g. the tuple of swept axis
    values) that figure drivers use to look results back up after a grid
    returns; it never reaches the workers and never affects the result.
    """

    spec: ExperimentSpec
    label: Optional[str] = None
    key: Any = None


@dataclass
class PointRun:
    """One executed (or cache-served) grid point with its provenance."""

    key: Any
    label: str
    fingerprint: str
    cached: bool
    #: Wall-clock seconds spent simulating (0.0 for cache hits).  Progress
    #: reporting only — never feeds back into results.
    elapsed_s: float
    result: RunResult


@dataclass
class GridOutcome:
    """Everything ``run_grid_detailed`` learned about one grid execution."""

    runs: List[PointRun]
    #: Points actually simulated (i.e. not served from the cache).
    simulated: int
    cache_hits: int

    @property
    def results(self) -> List[RunResult]:
        return [run.result for run in self.runs]

    def by_key(self) -> Dict[Any, RunResult]:
        return {run.key: run.result for run in self.runs}


def execute_point(point: GridPoint) -> Tuple[RunResult, float]:
    """The shared execution core: one grid point to one timed result.

    Every execution backend funnels through here — the serial loop, the
    process pool (it must stay a module-level function: it is pickled to
    the workers), and each ``repro serve`` fleet worker.
    """
    stopwatch = Stopwatch()
    result = run_experiment(point.spec, point.label)
    return result, stopwatch.elapsed_s


#: Kept under the old private name too: external scripts picked it up.
_execute_point = execute_point

#: A pluggable grid backend: given the full point list and an optional
#: shared cache, return a complete :class:`GridOutcome` in submission order.
#: ``repro.serve.client.ServiceExecutor`` is the non-local implementation.
GridExecutor = Callable[
    [Sequence[GridPoint], Optional[ResultCache]], "GridOutcome"
]


def run_grid_detailed(
    points: Sequence[GridPoint],
    jobs: int = 1,
    cache: Optional[ResultCache] = None,
    verify_sample: bool = False,
    progress: Optional[Callable[[PointRun], None]] = None,
    executor: Optional[GridExecutor] = None,
) -> GridOutcome:
    """Run every point, in order, across ``jobs`` worker processes.

    Results are returned in ``points`` order no matter how many workers run
    or in which order they finish.  With a ``cache``, points whose
    fingerprint already has an entry are served from disk and **not**
    simulated; fresh results are stored back.  ``verify_sample=True``
    re-runs the first pooled point serially in the parent and raises
    :class:`SimulationError` if the pool produced a different result —
    a spot check of the bit-identical contract.

    An ``executor`` replaces the local pool entirely (``jobs`` and
    ``verify_sample`` then do not apply): the grid is handed to it whole
    and its :class:`GridOutcome` — same submission order, same cache
    semantics — is returned, after the ``progress`` callback has seen every
    run.  Pass ``repro.serve``'s ``ServiceExecutor`` to run the grid on a
    worker fleet instead of in-process.
    """
    if executor is not None:
        outcome = executor(points, cache)
        if progress is not None:
            for run in outcome.runs:
                progress(run)
        return outcome
    jobs = max(1, int(jobs))
    fingerprints = [
        cache.fingerprint(p.spec, p.label) if cache is not None
        else spec_fingerprint(p.spec, label=p.label)
        for p in points
    ]
    labels = [p.label or p.spec.htm.label for p in points]

    cached_results: List[Optional[RunResult]] = [None] * len(points)
    pending: List[int] = []
    for index, point in enumerate(points):
        hit = cache.get(point.spec, point.label) if cache is not None else None
        if hit is not None:
            cached_results[index] = hit
        else:
            pending.append(index)

    executed: Dict[int, Tuple[RunResult, float]] = {}
    pooled = jobs > 1 and len(pending) > 1
    if pooled:
        workers = min(jobs, len(pending))
        with ProcessPoolExecutor(max_workers=workers) as pool:
            outcomes = list(pool.map(execute_point, [points[i] for i in pending]))
        executed = dict(zip(pending, outcomes))
    else:
        for index in pending:
            executed[index] = execute_point(points[index])

    if verify_sample and pooled:
        # Check the contract before anything is published to the cache, so a
        # broken pooled result can never poison later runs.
        sample = pending[0]
        serial_result, _ = execute_point(points[sample])
        pooled_result = executed[sample][0]
        if run_result_to_dict(serial_result) != run_result_to_dict(pooled_result):
            raise SimulationError(
                "parallel execution broke the bit-identical contract for "
                f"point {points[sample].spec.name!r} "
                f"[label={labels[sample]} spec={fingerprints[sample][:12]}]: "
                "a serial re-run produced a different RunResult"
            )

    if cache is not None:
        cache.count_simulations(len(pending))
        for index in pending:
            result, _ = executed[index]
            cache.put(points[index].spec, result, points[index].label)

    runs: List[PointRun] = []
    for index, point in enumerate(points):
        if cached_results[index] is not None:
            run = PointRun(
                key=point.key,
                label=labels[index],
                fingerprint=fingerprints[index],
                cached=True,
                elapsed_s=0.0,
                result=cached_results[index],
            )
        else:
            result, elapsed_s = executed[index]
            run = PointRun(
                key=point.key,
                label=labels[index],
                fingerprint=fingerprints[index],
                cached=False,
                elapsed_s=elapsed_s,
                result=result,
            )
        if progress is not None:
            progress(run)
        runs.append(run)
    return GridOutcome(
        runs=runs, simulated=len(pending), cache_hits=len(points) - len(pending)
    )


def run_grid(
    points: Sequence[GridPoint],
    jobs: int = 1,
    cache: Optional[ResultCache] = None,
    verify_sample: bool = False,
    executor: Optional[GridExecutor] = None,
) -> List[RunResult]:
    """Like :func:`run_grid_detailed`, returning just the ordered results."""
    return run_grid_detailed(
        points,
        jobs=jobs,
        cache=cache,
        verify_sample=verify_sample,
        executor=executor,
    ).results


def run_keyed(
    points: Sequence[GridPoint],
    jobs: int = 1,
    cache: Optional[ResultCache] = None,
    executor: Optional[GridExecutor] = None,
) -> Dict[Any, RunResult]:
    """Run a grid and index the results by each point's ``key``.

    Figure drivers build their grid once (attaching a tuple key per point),
    fan it out here, then assemble rows by key lookup — the same code path
    whether ``jobs`` is 1 or 16, and whether execution is in-process or on
    a ``repro serve`` fleet (``executor``).
    """
    outcome = run_grid_detailed(points, jobs=jobs, cache=cache, executor=executor)
    return outcome.by_key()
