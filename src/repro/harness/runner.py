"""Builds a system from an :class:`ExperimentSpec`, runs it, collects metrics."""

from __future__ import annotations

import gc
from typing import Callable, List, Optional

from ..errors import SimulationError
from ..runtime.system import System
from ..sim.engine import ThreadState
from ..workloads import MemBoundWorkload, WORKLOADS, WorkloadParams
from .cache import spec_fingerprint
from .config import ExperimentSpec
from .metrics import RunResult, collect_metrics


class ExperimentFailure(SimulationError):
    """One experiment point died mid-run.

    Carries the point's label, its spec fingerprint, and the metrics
    collected up to the failure, so that a failure inside a parallel grid —
    where the traceback alone no longer says which point was running — is
    attributable and the partial work is not lost.
    """

    def __init__(
        self,
        message: str,
        label: str,
        spec_hash: str,
        partial: Optional[RunResult] = None,
    ) -> None:
        super().__init__(f"{message} [label={label} spec={spec_hash[:12]}]")
        self.label = label
        self.spec_hash = spec_hash
        self.partial = partial

    def __reduce__(self):
        # Exceptions with extra constructor arguments do not unpickle via the
        # default path; spell the reconstruction out so a failure raised in a
        # pool worker reaches the parent intact.
        return (
            _rebuild_failure,
            (self.args[0], self.label, self.spec_hash, self.partial),
        )


def _rebuild_failure(
    message: str, label: str, spec_hash: str, partial: Optional[RunResult]
) -> ExperimentFailure:
    failure = ExperimentFailure.__new__(ExperimentFailure)
    SimulationError.__init__(failure, message)
    failure.label = label
    failure.spec_hash = spec_hash
    failure.partial = partial
    return failure


def build_system(spec: ExperimentSpec) -> System:
    return System(
        spec.machine(), spec.htm, seed=spec.seed, engine=spec.engine
    )


def epoch_summary(system: System) -> Optional[dict]:
    """Diagnostic epoch-dispatch counters of a (finished) run, or ``None``.

    Populated only under ``spec.engine="batched"``: epochs flushed, mean
    batch width, scalar-fallback ratio, and fence reasons.  Deliberately a
    side channel — epoch counters never enter :class:`RunResult` or any
    export, so artifacts stay byte-identical across engines (the
    bit-identity contract the differential suites enforce).
    """
    stats = system.epoch_stats
    return None if stats is None else stats.as_dict()


def run_experiment(
    spec: ExperimentSpec,
    label: Optional[str] = None,
    instrument: Optional[Callable[[System], None]] = None,
) -> RunResult:
    """Run one experiment to completion and return its metrics.

    Benchmarks get one simulated process each (their own conflict domain and
    fallback lock); co-runners get processes of their own and run until
    every benchmark thread finishes.

    ``instrument`` is called with the freshly built :class:`System` before
    any workload is spawned — observers (e.g. ``repro.obs.attach_tracer``)
    hook in here.  The spec itself stays observation-free, so instrumented
    and plain runs share one cache fingerprint.

    A :class:`SimulationError` raised mid-run (a co-runner thread dying, the
    step cap firing) is re-raised as :class:`ExperimentFailure` carrying the
    point's label, spec fingerprint, and the partial metrics collected so
    far.
    """
    label = label or spec.htm.label
    system = build_system(spec)
    if instrument is not None:
        instrument(system)
    workloads = []
    benchmark_threads = []
    for index, bench in enumerate(spec.benchmarks):
        process = system.process(f"{bench.workload}#{index}")
        workload_cls = WORKLOADS[bench.workload]
        workload = workload_cls(
            system, process, bench.params, **bench.kwargs_dict()
        )
        workload.spawn()
        workloads.append(workload)
        benchmark_threads.extend(process.threads)

    done = ThreadState.DONE

    def benchmarks_done() -> bool:
        # Plain loop, not all(genexpr): co-runner threads poll this every
        # step, and the generator frame per call showed up in profiles.
        for t in benchmark_threads:
            if t.state is not done:
                return False
        return True

    def fail(message: str) -> ExperimentFailure:
        partial = collect_metrics(system, label, verified=False)
        return ExperimentFailure(
            message, label=label, spec_hash=spec_fingerprint(spec), partial=partial
        )

    hog_cls = WORKLOADS[spec.corunner]
    for index in range(spec.membound_instances):
        process = system.process(f"{spec.corunner}#{index}")
        hog = hog_cls(
            system,
            process,
            WorkloadParams(threads=1, value_bytes=64, initial_fill=0),
            llc_multiple=spec.membound_llc_multiple,
            stop_when=benchmarks_done,
        )
        hog.spawn()

    # The simulator allocates no reference cycles on its hot paths, so the
    # cyclic collector only adds pauses mid-run; pause it for the duration
    # (measured ~5% of run time) and restore whatever state the caller had.
    gc_was_enabled = gc.isenabled()
    if gc_was_enabled:
        gc.disable()
    try:
        system.run(max_steps=spec.max_steps or None)
    except ExperimentFailure:
        raise
    except SimulationError as exc:
        raise fail(f"experiment {spec.name!r} failed mid-run: {exc}") from exc
    finally:
        if gc_was_enabled:
            gc.enable()
    if not benchmarks_done():
        raise fail(f"experiment {spec.name!r} hit its step cap before finishing")
    verified = all(w.verify() for w in workloads)
    return collect_metrics(system, label, verified)


def run_series(
    specs: List[ExperimentSpec],
    labels: Optional[List[str]] = None,
    jobs: int = 1,
) -> List[RunResult]:
    """Run several specs, optionally across a process pool (``jobs > 1``)."""
    if labels is None:
        labels = [spec.htm.label for spec in specs]
    if jobs > 1:
        from .parallel import GridPoint, run_grid

        points = [
            GridPoint(spec=spec, label=label)
            for spec, label in zip(specs, labels)
        ]
        return run_grid(points, jobs=jobs)
    return [run_experiment(spec, label) for spec, label in zip(specs, labels)]
