#!/usr/bin/env python3
"""Fault-injection campaign demo: sweep crash points, verify every recovery.

Runs a seeded campaign over the persistent hash map: a probe run measures
the event space (NVM log appends, commit marks, engine steps, replayable
lines), then sampled crash points cut the power mid-run — including inside
the torn-commit window and during recovery itself — and the crash oracle
checks that exactly the committed prefix survives each time.

The second half seeds a deliberate durability bug (the machine "forgets"
to write durable commit marks) and shows the oracle catching it and the
minimizer shrinking the failure to its smallest reproducing plan.

Run with:  python examples/fault_campaign.py
"""

from repro.faults import CampaignConfig, run_campaign


def main() -> None:
    print("=== Sound machine: every recovery must verify ===")
    result = run_campaign(
        CampaignConfig(workload="hashmap", crashes=30, seed=1)
    )
    print(result.to_figure().pretty())
    assert result.ok, "a sound machine failed crash-consistency!"

    print()
    print("=== Seeded bug: durable commit marks dropped ===")
    buggy = run_campaign(
        CampaignConfig(
            workload="hashmap",
            crashes=10,
            seed=1,
            inject_bug="skip_commit_mark",
        )
    )
    print(buggy.to_figure().pretty())
    assert not buggy.ok, "the oracle missed a seeded durability bug!"
    print()
    print(
        f"oracle caught the bug; minimized reproducer "
        f"({len(buggy.minimized)} step(s)): [{buggy.minimized.describe()}]"
    )


if __name__ == "__main__":
    main()
