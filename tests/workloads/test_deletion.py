"""Deletion tests for every structure that supports it (model-based)."""

from __future__ import annotations

import random

import pytest
from hypothesis import given, settings, strategies as st

from repro import HTMConfig, MachineConfig, System
from repro.mem.address import MemoryKind
from repro.runtime.txapi import RawContext
from repro.workloads.btree import TxBTree
from repro.workloads.hashmap import TxHashMap
from repro.workloads.rbtree import TxRBTree
from repro.workloads.skiplist import TxSkipList


def make_env():
    system = System(MachineConfig.scaled(1 / 64, cores=2), HTMConfig())
    return system.heap, RawContext(system.controller)


def fuzz(structure_factory, steps, key_space, seed, check_every=250):
    heap, ctx = make_env()
    structure = structure_factory(heap, ctx)
    model = {}
    rng = random.Random(seed)
    for step in range(steps):
        op = rng.random()
        key = rng.randrange(key_space)
        if op < 0.45:
            value = rng.randrange(10_000)
            assert structure.insert(ctx, key, value) == (key not in model)
            model[key] = value
        elif op < 0.9:
            assert structure.delete(ctx, key) == (key in model)
            model.pop(key, None)
        else:
            assert structure.get(ctx, key) == model.get(key)
        if step % check_every == 0:
            assert sorted(structure.keys(ctx)) == sorted(model)
            assert structure.check_integrity(ctx)
    assert sorted(structure.keys(ctx)) == sorted(model)
    assert structure.check_integrity(ctx)


class TestBTreeDeletion:
    @pytest.mark.parametrize("seed", [1, 2, 3])
    def test_fuzz_small_space_heavy_merges(self, seed):
        fuzz(
            lambda heap, ctx: TxBTree.create(heap, ctx, MemoryKind.DRAM),
            steps=1500, key_space=40, seed=seed,
        )

    def test_delete_missing_returns_false(self):
        heap, ctx = make_env()
        tree = TxBTree.create(heap, ctx, MemoryKind.DRAM)
        assert not tree.delete(ctx, 5)
        tree.insert(ctx, 5, 1)
        assert tree.delete(ctx, 5)
        assert not tree.delete(ctx, 5)

    def test_delete_everything_then_reuse(self):
        heap, ctx = make_env()
        tree = TxBTree.create(heap, ctx, MemoryKind.DRAM)
        for k in range(100):
            tree.insert(ctx, k, k)
        for k in range(100):
            assert tree.delete(ctx, k)
        assert tree.keys(ctx) == []
        for k in range(50):
            tree.insert(ctx, k, k * 2)
        assert tree.keys(ctx) == list(range(50))
        assert tree.check_integrity(ctx)

    def test_root_shrinks_on_drain(self):
        heap, ctx = make_env()
        tree = TxBTree.create(heap, ctx, MemoryKind.DRAM)
        for k in range(200):
            tree.insert(ctx, k, k)
        for k in range(199):
            tree.delete(ctx, k)
        assert tree.keys(ctx) == [199]
        assert tree.check_integrity(ctx)

    @settings(max_examples=15, deadline=None)
    @given(
        keys=st.lists(st.integers(min_value=0, max_value=200),
                      min_size=1, max_size=80),
        doomed=st.lists(st.integers(min_value=0, max_value=200),
                        max_size=40),
    )
    def test_hypothesis_insert_then_delete(self, keys, doomed):
        heap, ctx = make_env()
        tree = TxBTree.create(heap, ctx, MemoryKind.DRAM)
        model = {}
        for key in keys:
            tree.insert(ctx, key, key)
            model[key] = key
        for key in doomed:
            assert tree.delete(ctx, key) == (key in model)
            model.pop(key, None)
        assert tree.keys(ctx) == sorted(model)
        assert tree.check_integrity(ctx)


class TestRBTreeDeletion:
    @pytest.mark.parametrize("seed", [1, 2, 3])
    def test_fuzz(self, seed):
        fuzz(
            lambda heap, ctx: TxRBTree.create(heap, ctx, MemoryKind.DRAM),
            steps=1500, key_space=50, seed=seed,
        )

    def test_delete_root_repeatedly(self):
        heap, ctx = make_env()
        tree = TxRBTree.create(heap, ctx, MemoryKind.DRAM)
        for k in range(31):
            tree.insert(ctx, k, k)
        while tree.keys(ctx):
            root = tree._root(ctx)
            root_key = tree._get(ctx, root, 0)
            assert tree.delete(ctx, root_key)
            assert tree.check_integrity(ctx)

    def test_delete_missing(self):
        heap, ctx = make_env()
        tree = TxRBTree.create(heap, ctx, MemoryKind.DRAM)
        assert not tree.delete(ctx, 1)

    def test_ascending_then_descending_drain(self):
        heap, ctx = make_env()
        tree = TxRBTree.create(heap, ctx, MemoryKind.DRAM)
        for k in range(64):
            tree.insert(ctx, k, k)
        for k in reversed(range(64)):
            assert tree.delete(ctx, k)
            assert tree.check_integrity(ctx)
        assert tree.keys(ctx) == []


class TestSkipListDeletion:
    @pytest.mark.parametrize("seed", [1, 2])
    def test_fuzz(self, seed):
        fuzz(
            lambda heap, ctx: TxSkipList.create(
                heap, ctx, MemoryKind.NVM, seed=seed
            ),
            steps=1500, key_space=50, seed=seed,
        )

    def test_delete_unlinks_all_levels(self):
        heap, ctx = make_env()
        slist = TxSkipList.create(heap, ctx, MemoryKind.NVM, seed=4)
        for k in range(64):
            slist.insert(ctx, k, k)
        for k in range(0, 64, 2):
            assert slist.delete(ctx, k)
        assert slist.keys(ctx) == list(range(1, 64, 2))
        assert slist.check_integrity(ctx)

    def test_delete_missing(self):
        heap, ctx = make_env()
        slist = TxSkipList.create(heap, ctx, MemoryKind.NVM)
        slist.insert(ctx, 2, 2)
        assert not slist.delete(ctx, 1)
        assert not slist.delete(ctx, 3)
        assert slist.delete(ctx, 2)


class TestHashMapDeletionMore:
    def test_delete_head_middle_tail_of_chain(self):
        heap, ctx = make_env()
        table = TxHashMap.create(heap, ctx, MemoryKind.NVM, nbuckets=1)
        for k in range(5):
            table.insert(ctx, k, k)
        assert table.delete(ctx, 4)  # head (insert-at-head order)
        assert table.delete(ctx, 2)  # middle
        assert table.delete(ctx, 0)  # tail
        assert sorted(table.keys(ctx)) == [1, 3]
        assert table.check_integrity(ctx)
