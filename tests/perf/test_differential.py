"""Differential equivalence suite for the optimized hot-path modules.

Every module that was rewritten for speed is checked here against a
straightforward reference implementation on seeded random operation
streams: the optimized code must produce *exactly* the same observable
behaviour.  Two seeds per stream guard against a lucky sequence.
"""

from __future__ import annotations

import random
from collections import OrderedDict
from dataclasses import asdict

import pytest

from repro.cache.setassoc import SetAssociativeArray
from repro.mem.dram_cache import DramCache
from repro.params import CacheGeometry, LINE_SIZE, MemoryConfig
from repro.signatures.bloom import BankedBloomFilter, BloomFilter
from repro.signatures.hashing import MultiplicativeHashFamily
from repro.sim.stats import Histogram

SEEDS = (2020, 7)


# ---------------------------------------------------------------- signatures


class ReferenceBloom:
    """A Bloom filter as a plain set of bit indices (no big-int tricks)."""

    def __init__(self, family: MultiplicativeHashFamily) -> None:
        self._family = family
        self._bits: set = set()

    def insert(self, value: int) -> None:
        self._bits.update(self._family.indices_for(value))

    def maybe_contains(self, value: int) -> bool:
        return all(i in self._bits for i in self._family.indices_for(value))

    @property
    def popcount(self) -> int:
        return len(self._bits)


@pytest.mark.parametrize("seed", SEEDS)
def test_bloom_filter_matches_reference(seed):
    rng = random.Random(seed)
    family = MultiplicativeHashFamily(4, 256)
    optimized = BloomFilter(256, 4, family=family)
    reference = ReferenceBloom(family)
    values = [rng.randrange(1 << 32) for _ in range(300)]
    for value in values[:150]:
        optimized.insert(value)
        reference.insert(value)
    assert optimized.popcount == reference.popcount
    for value in values:
        assert optimized.maybe_contains(value) == reference.maybe_contains(
            value
        ), f"membership diverged for {value:#x}"
        key = optimized.probe_key(value)
        assert optimized.contains_key(key) == reference.maybe_contains(value)


@pytest.mark.parametrize("seed", SEEDS)
def test_banked_bloom_matches_per_bank_reference(seed):
    rng = random.Random(seed)
    optimized = BankedBloomFilter(256, 4)
    family = optimized.family
    banks = [set() for _ in range(4)]
    values = [rng.randrange(1 << 32) for _ in range(300)]
    for value in values[:150]:
        optimized.insert(value)
        for bank, index in enumerate(family.indices_for(value)):
            banks[bank].add(index)
    assert optimized.popcount == sum(len(b) for b in banks)
    for value in values:
        expected = all(
            index in banks[bank]
            for bank, index in enumerate(family.indices_for(value))
        )
        assert optimized.maybe_contains(value) == expected


# ---------------------------------------------------------------- setassoc


class ReferenceArray:
    """LRU set-associative tags on OrderedDicts, written for clarity."""

    def __init__(self, sets: int, ways: int) -> None:
        self._sets = [OrderedDict() for _ in range(sets)]
        self._num_sets = sets
        self._ways = ways
        self.hits = 0
        self.misses = 0
        self.evictions = 0

    def _bucket(self, line_addr: int) -> OrderedDict:
        return self._sets[(line_addr // LINE_SIZE) % self._num_sets]

    def lookup(self, line_addr: int):
        bucket = self._bucket(line_addr)
        if line_addr not in bucket:
            self.misses += 1
            return None
        bucket.move_to_end(line_addr)
        self.hits += 1
        return bucket[line_addr]

    def peek(self, line_addr: int):
        return self._bucket(line_addr).get(line_addr)

    def install(self, line_addr: int):
        bucket = self._bucket(line_addr)
        victims = []
        while len(bucket) >= self._ways:
            victim_addr, victim = bucket.popitem(last=False)
            victims.append(victim_addr)
            self.evictions += 1
        bucket[line_addr] = line_addr
        return victims

    def remove(self, line_addr: int):
        return self._bucket(line_addr).pop(line_addr, None)

    def resident_lines(self):
        lines = []
        for bucket in self._sets:
            lines.extend(bucket.keys())
        return lines


@pytest.mark.parametrize("seed", SEEDS)
@pytest.mark.parametrize("sets,ways", [(4, 2), (3, 2), (8, 1)])
def test_setassoc_matches_reference(seed, sets, ways):
    """Power-of-two (mask path) and non-power-of-two (modulo path) sets."""
    rng = random.Random(seed)
    geometry = CacheGeometry(size_bytes=sets * ways * LINE_SIZE, ways=ways)
    assert geometry.num_sets == sets
    optimized = SetAssociativeArray(geometry, "diff")
    reference = ReferenceArray(sets, ways)
    lines = [i * LINE_SIZE for i in range(4 * sets * ways)]
    for _ in range(600):
        line = rng.choice(lines)
        op = rng.randrange(4)
        if op == 0:
            assert (optimized.lookup(line) is None) == (
                reference.lookup(line) is None
            )
        elif op == 1:
            assert (optimized.peek(line) is None) == (
                reference.peek(line) is None
            )
        elif op == 2:
            if optimized.peek(line) is None:
                victims = [v.line_addr for v in optimized.install(line)]
                assert victims == reference.install(line)
        else:
            removed = optimized.remove(line)
            assert (removed is None) == (reference.remove(line) is None)
        assert optimized.hits == reference.hits
        assert optimized.misses == reference.misses
        assert optimized.evictions == reference.evictions
    assert optimized.resident_lines() == reference.resident_lines()


# ---------------------------------------------------------------- histogram


@pytest.mark.parametrize("seed", SEEDS)
def test_histogram_matches_eager_reference(seed):
    """The deferred-flush histogram must equal an eagerly computed one."""
    rng = random.Random(seed)
    histogram = Histogram()
    recorded = []
    for step in range(500):
        value = rng.choice(
            [0.0, 0.5, 1.0, float(rng.randrange(1, 1 << 20)), 3.25e6]
        )
        histogram.record(value)
        recorded.append(value)
        if step % 97 == 0:  # interleave reads to exercise partial flushes
            assert histogram.count == len(recorded)
    assert histogram.count == len(recorded)
    assert histogram.mean == pytest.approx(sum(recorded) / len(recorded))
    assert histogram.max == max(recorded)

    top = 39
    expected_counts = [0] * 40
    for value in recorded:
        index = 0 if value < 1 else min(top, int(value).bit_length() - 1)
        expected_counts[index] += 1
    assert histogram.nonzero_buckets() == [
        (i, c) for i, c in enumerate(expected_counts) if c
    ]


# ---------------------------------------------------------------- dram cache


class _RecordingNvm:
    """Stands in for the NVM backing store; records bulk line stores."""

    def __init__(self) -> None:
        self.stored = []

    def store_line(self, words) -> None:
        self.stored.append(dict(sorted(words.items())))


class ReferenceDramCache:
    """The DRAM cache with the original front-to-back victim scan."""

    def __init__(self, capacity_lines: int, nvm: _RecordingNvm) -> None:
        self._capacity = capacity_lines
        self._nvm = nvm
        self._entries: "OrderedDict[int, list]" = OrderedDict()
        # entry layout: [words, tx_id, committed, invalid]
        self.drains = 0
        self.overcommits = 0

    def lookup(self, line_addr: int):
        entry = self._entries.get(line_addr)
        if entry is None or entry[3]:
            return None
        self._entries.move_to_end(line_addr)
        return entry

    def fill(self, line_addr, words, tx_id, committed):
        entry = self._entries.get(line_addr)
        if entry is not None and not entry[3]:
            entry[0].update(words)
            entry[1] = tx_id
            entry[2] = committed
            self._entries.move_to_end(line_addr)
            return
        self._entries[line_addr] = [dict(words), tx_id, committed, False]
        self._entries.move_to_end(line_addr)
        while len(self._entries) > self._capacity:
            victim = self._pick_victim()
            if victim is None:
                self.overcommits += 1
                break
            self._drain(victim)

    def mark_committed(self, line_addr, tx_id):
        entry = self._entries.get(line_addr)
        if entry is None or entry[3] or entry[1] != tx_id:
            return False
        entry[2] = True
        return True

    def invalidate(self, line_addr, tx_id):
        entry = self._entries.get(line_addr)
        if entry is None or entry[1] != tx_id or entry[2]:
            return False
        entry[3] = True
        return True

    def _pick_victim(self):
        for line_addr, entry in self._entries.items():  # LRU order
            if entry[3] or entry[2]:
                return line_addr
        return None

    def _drain(self, line_addr):
        entry = self._entries.pop(line_addr)
        if entry[3]:
            return
        self._nvm.store_line(entry[0])
        self.drains += 1

    def resident_lines(self):
        return [
            (addr, entry[2], entry[3])
            for addr, entry in self._entries.items()
        ]


@pytest.mark.parametrize("seed", SEEDS)
def test_dram_cache_heap_victim_matches_scan_reference(seed):
    """The lazy-heap victim picker must evict exactly what the scan did."""
    rng = random.Random(seed)
    capacity = 8
    config = MemoryConfig(dram_cache_bytes=capacity * LINE_SIZE)
    real_nvm = _RecordingNvm()
    ref_nvm = _RecordingNvm()
    optimized = DramCache(config, real_nvm)
    assert optimized.capacity_lines == capacity
    reference = ReferenceDramCache(capacity, ref_nvm)

    lines = [i * LINE_SIZE for i in range(32)]
    tx_ids = [1, 2, 3]
    for _ in range(800):
        line = rng.choice(lines)
        tx = rng.choice(tx_ids)
        op = rng.randrange(4)
        if op == 0:
            words = {line + 8 * k: rng.randrange(1 << 16) for k in range(2)}
            committed = rng.random() < 0.5
            optimized.fill(line, words, tx, committed)
            reference.fill(line, words, tx, committed)
        elif op == 1:
            assert optimized.mark_committed(line, tx) == reference.mark_committed(
                line, tx
            )
        elif op == 2:
            assert optimized.invalidate(line, tx) == reference.invalidate(
                line, tx
            )
        else:
            assert (optimized.lookup(line) is None) == (
                reference.lookup(line) is None
            )
        assert optimized.resident_lines() == reference.resident_lines()
        assert optimized.drains == reference.drains
        assert optimized.overcommits == reference.overcommits
        assert real_nvm.stored == ref_nvm.stored


# ---------------------------------------------------------------- end to end


@pytest.mark.parametrize("seed", SEEDS)
def test_end_to_end_metrics_are_deterministic(seed):
    """Two identical runs produce bit-identical metric dicts (per seed)."""
    from repro.harness.config import ExperimentSpec, consolidated
    from repro.harness.runner import run_experiment
    from repro.params import HTMConfig
    from repro.workloads import WorkloadParams

    spec = ExperimentSpec(
        name="diff-e2e",
        htm=HTMConfig(),
        benchmarks=consolidated(
            "hashmap",
            2,
            WorkloadParams(
                threads=2,
                txs_per_thread=2,
                value_bytes=16 << 10,
                keys=64,
                initial_fill=16,
            ),
        ),
        scale=1 / 64,
        seed=seed,
    )
    first = asdict(run_experiment(spec))
    second = asdict(run_experiment(spec))
    assert first == second
    assert first["commits"] > 0
