"""Tests for the set-associative tag array."""

from __future__ import annotations

import pytest

from repro.cache.setassoc import CacheLineMeta, SetAssociativeArray
from repro.params import CacheGeometry, LINE_SIZE


def make_array(sets=4, ways=2):
    geometry = CacheGeometry(size_bytes=sets * ways * LINE_SIZE, ways=ways)
    return SetAssociativeArray(geometry, "test")


class TestLookupInstall:
    def test_miss_then_hit(self):
        array = make_array()
        assert array.lookup(0x1000) is None
        array.install(0x1000)
        assert array.lookup(0x1000) is not None
        assert array.hits == 1
        assert array.misses == 1

    def test_peek_does_not_count(self):
        array = make_array()
        array.install(0x1000)
        array.peek(0x1000)
        array.peek(0x2000)
        assert array.hits == 0
        assert array.misses == 0

    def test_double_install_asserts(self):
        array = make_array()
        array.install(0x1000)
        with pytest.raises(AssertionError):
            array.install(0x1000)

    def test_remove(self):
        array = make_array()
        array.install(0x1000)
        meta = array.remove(0x1000)
        assert meta is not None
        assert array.peek(0x1000) is None
        assert array.remove(0x1000) is None


class TestReplacement:
    def test_lru_eviction_order(self):
        array = make_array(sets=1, ways=2)
        array.install(0 * LINE_SIZE)
        array.install(1 * LINE_SIZE)
        victims = array.install(2 * LINE_SIZE)
        assert [v.line_addr for v in victims] == [0]

    def test_lookup_refreshes_lru(self):
        array = make_array(sets=1, ways=2)
        array.install(0 * LINE_SIZE)
        array.install(1 * LINE_SIZE)
        array.lookup(0)  # 0 becomes MRU
        victims = array.install(2 * LINE_SIZE)
        assert [v.line_addr for v in victims] == [LINE_SIZE]

    def test_set_indexing_isolates_sets(self):
        array = make_array(sets=4, ways=1)
        # These addresses map to different sets: no evictions.
        for i in range(4):
            assert array.install(i * LINE_SIZE) == []
        # Same set as line 0 (stride = sets * line):
        victims = array.install(4 * LINE_SIZE)
        assert [v.line_addr for v in victims] == [0]

    def test_eviction_counter(self):
        array = make_array(sets=1, ways=1)
        array.install(0)
        array.install(LINE_SIZE)
        assert array.evictions == 1


class TestMeta:
    def test_meta_transactional_flag(self):
        meta = CacheLineMeta(0)
        assert not meta.transactional
        assert meta.tx_readers is None  # lazily allocated
        meta.add_reader(4)
        assert meta.transactional
        meta.tx_readers.clear()
        meta.tx_writer = 9
        assert meta.transactional

    def test_clear_tx(self):
        meta = CacheLineMeta(0, tx_writer=3)
        meta.add_reader(3)
        meta.add_reader(4)
        meta.clear_tx(3)
        assert meta.tx_writer is None
        assert meta.tx_readers == {4}

    def test_clear_tx_without_readers(self):
        meta = CacheLineMeta(0, tx_writer=3)
        meta.clear_tx(3)
        assert meta.tx_writer is None
        assert not meta.transactional

    def test_resident_introspection(self):
        array = make_array()
        array.install(0)
        array.install(LINE_SIZE)
        assert array.resident_count() == 2
        assert sorted(array.resident_lines()) == [0, LINE_SIZE]

    def test_occupancy_by_predicate(self):
        array = make_array()
        array.install(0)
        array.peek(0).dirty = True
        array.install(LINE_SIZE)
        assert array.occupancy_by_predicate(lambda m: m.dirty) == 1

    def test_clear(self):
        array = make_array()
        array.install(0)
        array.clear()
        assert array.resident_count() == 0


def _set_index(array, line_addr):
    """Engine-agnostic set index (the scalar array inlines the computation)."""
    if hasattr(array, "_set_index"):
        return array._set_index(line_addr)
    bucket = array._set_of(line_addr)
    return next(i for i, s in enumerate(array._sets) if s is bucket)


def _engine_arrays():
    """Array classes under test: scalar always, vectorized when available."""
    classes = [SetAssociativeArray]
    try:
        from repro.kernels.setassoc import VectorSetAssociativeArray
    except Exception:
        return classes
    from repro.kernels._np import numpy_available

    if numpy_available():
        classes.append(VectorSetAssociativeArray)
    return classes


class TestSetIndexGeometry:
    """Regression pin for the ``_set_mask`` bug class.

    For non-power-of-two set counts a mask of ``num_sets - 1`` is wrong:
    with 6 sets, line 6 maps to set 0 by modulo but ``6 & 5 == 4``.  Both
    engines must use the mask only when ``num_sets`` is a power of two and
    fall back to true modulo otherwise.
    """

    @pytest.mark.parametrize("array_cls", _engine_arrays())
    @pytest.mark.parametrize("num_sets", [3, 5, 6, 7, 12])
    def test_non_power_of_two_uses_modulo(self, array_cls, num_sets):
        geometry = CacheGeometry(
            size_bytes=num_sets * 2 * LINE_SIZE, ways=2
        )
        array = array_cls(geometry, "geom")
        assert array._set_mask is None
        for line in range(4 * num_sets):
            assert _set_index(array, line * LINE_SIZE) == line % num_sets

    @pytest.mark.parametrize("array_cls", _engine_arrays())
    @pytest.mark.parametrize("num_sets", [1, 2, 4, 8, 64])
    def test_power_of_two_mask_equals_modulo(self, array_cls, num_sets):
        geometry = CacheGeometry(
            size_bytes=num_sets * 2 * LINE_SIZE, ways=2
        )
        array = array_cls(geometry, "geom")
        assert array._set_mask == num_sets - 1
        for line in range(4 * num_sets + 3):
            assert _set_index(array, line * LINE_SIZE) == line % num_sets

    @pytest.mark.parametrize("array_cls", _engine_arrays())
    def test_mask_bug_would_alias_lines(self, array_cls):
        # The exact collision the mask bug would produce: with 6 sets,
        # lines 6 and 4 share set 4 under ``& 5`` but not under ``% 6``.
        geometry = CacheGeometry(size_bytes=6 * 1 * LINE_SIZE, ways=1)
        array = array_cls(geometry, "geom")
        assert _set_index(array, 6 * LINE_SIZE) == 0
        assert _set_index(array, 4 * LINE_SIZE) == 4
        # Direct-mapped, different sets: filling one must not evict the
        # other (it would under the aliased index).
        array.fill(6 * LINE_SIZE)
        _, victims = array.fill(4 * LINE_SIZE)
        assert not list(victims)
        assert array.resident_count() == 2
