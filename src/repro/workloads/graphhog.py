"""A graph500-style co-runner: random pointer chasing over a large graph.

The paper's LLC-contention experiments co-schedule graph analytics ("even a
single memory-intensive application (e.g., graph500) could consume all of
the shared LLC").  Where :class:`MemBoundWorkload` streams sequentially —
maximum bandwidth, perfectly predictable set pressure — this co-runner
builds a random graph in DRAM and walks it: every hop is a dependent random
access, so its LLC pressure is spread uniformly over the sets exactly like
BFS over an adjacency list.

It is non-transactional and runs until ``stop_when()``, like the streaming
hog; the co-runner ablation compares their impact on transactional abort
rates.
"""

from __future__ import annotations

from typing import Callable, Generator, List, Optional

from ..mem.address import MemoryKind
from ..params import LINE_SIZE, WORD_SIZE
from .base import Workload, WorkloadParams

#: Hops between scheduling yields.
_HOP_CHUNK = 32

#: Out-degree of each node.
_DEGREE = 4


class GraphHogWorkload(Workload):
    """Random graph walker sized at ``llc_multiple`` times the LLC."""

    name = "graphhog"

    def __init__(
        self,
        system,
        process,
        params: WorkloadParams,
        llc_multiple: float = 2.0,
        stop_when: Optional[Callable[[], bool]] = None,
        max_hops: int = 50_000_000,
    ) -> None:
        super().__init__(system, process, params)
        self.node_count = max(
            _HOP_CHUNK, int(system.machine.llc.num_lines * llc_multiple)
        )
        self.stop_when = stop_when or (lambda: False)
        self.max_hops = max_hops
        self.base: Optional[int] = None
        self.hops_completed = 0

    def setup(self) -> None:
        """Build the adjacency lists: one line per node, _DEGREE edges."""
        self.base = self.system.heap.alloc(
            self.node_count * LINE_SIZE, MemoryKind.DRAM
        )
        rng = self.system.rng.fork(self.process.pid).stream("graph_edges")
        for node in range(self.node_count):
            node_addr = self.base + node * LINE_SIZE
            for slot in range(_DEGREE):
                target = rng.randrange(self.node_count)
                self.raw.write_word(node_addr + slot * WORD_SIZE, target)

    def thread_bodies(self) -> List[Callable]:
        return [self._make_body(i) for i in range(self.params.threads)]

    def _make_body(self, thread_index: int) -> Callable:
        rng = self.system.rng.fork(
            self.process.pid * 131 + thread_index
        ).stream("graph_walk")

        def body(api) -> Generator[None, None, None]:
            node = rng.randrange(self.node_count)
            hops = 0
            while hops < self.max_hops:
                if self.stop_when():
                    return
                for _ in range(_HOP_CHUNK):
                    node_addr = self.base + node * LINE_SIZE
                    slot = rng.randrange(_DEGREE)
                    node = api.nontx.read_word(node_addr + slot * WORD_SIZE)
                    # Mark the visit (graph analytics writes frontiers too).
                    api.nontx.write_word(
                        node_addr + _DEGREE * WORD_SIZE, hops
                    )
                    hops += 1
                self.hops_completed = max(self.hops_completed, hops)
                yield

        return body
