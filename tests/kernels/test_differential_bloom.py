"""Differential tier: vectorized Bloom filters vs the scalar reference.

Every op in a recorded sequence must produce the same output *and* leave the
same bit-array state (compared as big ints) as the scalar filter.
"""

import pytest

np = pytest.importorskip("numpy")

from kernel_harness import DifferentialHarness, bloom_ops, bloom_state

from repro.kernels.signatures import (
    VectorBankedBloomFilter,
    VectorBloomFilter,
    batch_indices,
)
from repro.signatures.bloom import BankedBloomFilter, BloomFilter
from repro.signatures.hashing import (
    H3HashFamily,
    MultiplicativeHashFamily,
    shared_multiplicative,
)

SEEDS = (2020, 7, 13)


def flat_pair(bits=1024, k=4, family=None):
    family = family or shared_multiplicative(k, bits, seed=0x5EED)
    return BloomFilter(bits, k, family), VectorBloomFilter(bits, k, family)


def banked_pair(bits=1024, k=4):
    family = shared_multiplicative(k, bits // k, seed=0xC0FFEE)
    return (
        BankedBloomFilter(bits, k, family),
        VectorBankedBloomFilter(bits, k, family),
    )


class TestFlatDifferential:
    @pytest.mark.parametrize("seed", SEEDS)
    def test_recorded_sequences(self, seed):
        scalar, vector = flat_pair()
        harness = DifferentialHarness(scalar, vector, state_fn=bloom_state)
        assert harness.replay(bloom_ops(seed)) == len(bloom_ops(seed))

    def test_non_word_aligned_width(self):
        # 100 bits: the packed array's top word is only partially used.
        scalar, vector = flat_pair(bits=100, k=3,
                                   family=MultiplicativeHashFamily(3, 100))
        harness = DifferentialHarness(scalar, vector, state_fn=bloom_state)
        harness.replay(bloom_ops(99, length=300, span=1 << 20))

    def test_h3_family(self):
        family = H3HashFamily(2, 128)
        scalar, vector = flat_pair(bits=128, k=2, family=family)
        harness = DifferentialHarness(scalar, vector, state_fn=bloom_state)
        harness.replay(bloom_ops(5, length=200))

    def test_false_positive_rates_exact(self):
        scalar, vector = flat_pair()
        for value in range(0, 4000, 7):
            scalar.insert(value)
            vector.insert(value)
        assert (
            scalar.expected_false_positive_rate()
            == vector.expected_false_positive_rate()
        )
        assert (
            scalar.observed_false_positive_rate()
            == vector.observed_false_positive_rate()
        )
        assert scalar.saturation == vector.saturation

    def test_probe_keys_interchange_within_engine(self):
        scalar, vector = flat_pair()
        scalar.insert(42)
        vector.insert(42)
        assert vector.contains_key(vector.probe_key(42))
        assert scalar.contains_key(scalar.probe_key(42))

    def test_validation_parity(self):
        with pytest.raises(ValueError):
            VectorBloomFilter(0, 4)
        with pytest.raises(ValueError):
            VectorBloomFilter(64, 4, MultiplicativeHashFamily(4, 128))


class TestBankedDifferential:
    @pytest.mark.parametrize("seed", SEEDS)
    def test_recorded_sequences(self, seed):
        scalar, vector = banked_pair()
        harness = DifferentialHarness(scalar, vector, state_fn=bloom_state)
        harness.replay(bloom_ops(seed))

    def test_probe_keys_are_scalar_shaped(self):
        scalar, vector = banked_pair()
        assert vector.probe_key(1234) == scalar.probe_key(1234)
        scalar.insert(1234)
        vector.insert(1234)
        # Keys interchange across engines: same tuples, same semantics.
        assert vector.contains_key(scalar.probe_key(1234))
        assert scalar.contains_key(vector.probe_key(1234))

    def test_observed_rate_multiplies_banks_in_order(self):
        scalar, vector = banked_pair(bits=64, k=4)
        for value in range(200):
            scalar.insert(value)
            vector.insert(value)
        assert (
            scalar.observed_false_positive_rate()
            == vector.observed_false_positive_rate()
        )

    def test_validation_parity(self):
        with pytest.raises(ValueError):
            VectorBankedBloomFilter(3, 4)


class TestBatchKernels:
    def test_batch_indices_match_scalar_hashing(self):
        family = shared_multiplicative(4, 512, seed=0x5EED)
        values = [i * 2654435761 % (1 << 40) for i in range(1000)]
        batched = batch_indices(family, values)
        expected = [family.indices_for(value) for value in values]
        assert [tuple(row) for row in batched.tolist()] == expected

    def test_insert_batch_equals_scalar_insert_loop(self):
        scalar, vector = flat_pair()
        values = [i * 7919 for i in range(5000)]
        scalar.insert_all(values)
        vector.insert_batch(values)
        assert bloom_state(scalar) == bloom_state(vector)

    def test_contains_batch_equals_scalar_probe_loop(self):
        scalar, vector = flat_pair()
        inserted = [i * 31 for i in range(2000)]
        scalar.insert_all(inserted)
        vector.insert_batch(inserted)
        probes = [i * 17 for i in range(4000)]
        assert list(vector.contains_batch(probes)) == [
            scalar.maybe_contains(value) for value in probes
        ]

    def test_banked_batch_round_trip(self):
        scalar, vector = banked_pair()
        values = [i * 104729 for i in range(3000)]
        scalar.insert_all(values)
        vector.insert_batch(values)
        assert bloom_state(scalar) == bloom_state(vector)
        probes = values[:500] + [10**9 + i for i in range(500)]
        assert list(vector.contains_batch(probes)) == [
            scalar.maybe_contains(value) for value in probes
        ]

    def test_empty_batch_is_noop(self):
        _, vector = flat_pair()
        vector.insert_batch([])
        assert vector.is_empty() and vector.inserted == 0
