"""Tests for the physical address-space layout."""

from __future__ import annotations

import pytest

from repro.errors import AddressError
from repro.mem.address import (
    AddressSpace,
    DRAM_BASE,
    MemoryKind,
    NVM_BASE,
    line_index,
    line_of,
    word_of,
)
from repro.params import MemoryConfig


@pytest.fixture
def space():
    return AddressSpace(MemoryConfig())


class TestAlignmentHelpers:
    def test_line_of(self):
        assert line_of(0) == 0
        assert line_of(63) == 0
        assert line_of(64) == 64
        assert line_of(130) == 128

    def test_word_of(self):
        assert word_of(0) == 0
        assert word_of(7) == 0
        assert word_of(8) == 8
        assert word_of(71) == 64

    def test_line_index(self):
        assert line_index(0) == 0
        assert line_index(64) == 1
        assert line_index(6400) == 100

    def test_line_of_idempotent(self):
        for addr in (0, 1, 63, 64, 1000, DRAM_BASE + 7):
            assert line_of(line_of(addr)) == line_of(addr)


class TestRegionLayout:
    def test_kind_classification(self, space):
        assert space.kind_of(DRAM_BASE) is MemoryKind.DRAM
        assert space.kind_of(NVM_BASE) is MemoryKind.NVM

    def test_unmapped_address_raises(self, space):
        with pytest.raises(AddressError):
            space.kind_of(0)
        with pytest.raises(AddressError):
            space.kind_of(NVM_BASE - 1)

    def test_heap_and_log_partition_dram(self, space):
        config = space.config
        assert space.dram_heap.size + space.dram_log.size == config.dram_bytes
        assert space.dram_heap.end == space.dram_log.base

    def test_heap_and_log_partition_nvm(self, space):
        config = space.config
        assert space.nvm_heap.size + space.nvm_log.size == config.nvm_bytes
        assert space.nvm_heap.end == space.nvm_log.base

    def test_is_log(self, space):
        assert not space.is_log(space.dram_heap.base)
        assert space.is_log(space.dram_log.base)
        assert space.is_log(space.nvm_log.base)
        assert not space.is_log(space.nvm_heap.base)

    def test_is_dram_is_nvm(self, space):
        assert space.is_dram(DRAM_BASE)
        assert not space.is_nvm(DRAM_BASE)
        assert space.is_nvm(NVM_BASE)
        assert not space.is_dram(NVM_BASE)

    def test_region_accessors(self, space):
        assert space.heap_region(MemoryKind.DRAM) is space.dram_heap
        assert space.heap_region(MemoryKind.NVM) is space.nvm_heap
        assert space.log_region(MemoryKind.DRAM) is space.dram_log
        assert space.log_region(MemoryKind.NVM) is space.nvm_log

    def test_log_exceeding_region_rejected(self):
        with pytest.raises(AddressError):
            AddressSpace(
                MemoryConfig(dram_bytes=1 << 20, dram_log_bytes=1 << 20)
            )
        with pytest.raises(AddressError):
            AddressSpace(MemoryConfig(nvm_bytes=1 << 20, nvm_log_bytes=2 << 20))

    def test_regions_disjoint(self, space):
        assert space.dram_log.end <= NVM_BASE

    def test_region_contains(self, space):
        region = space.dram_heap
        assert region.contains(region.base)
        assert region.contains(region.end - 1)
        assert not region.contains(region.end)
