"""Regeneration drivers for every figure and table in the paper.

Each function returns a :class:`FigureResult` whose rows mirror the
published series.  ``quick=True`` (the default) runs a reduced design/sweep
matrix sized for CI; ``quick=False`` runs the full matrix of the paper.

Every dynamic figure is split in two:

* ``<name>_grid(quick, scale, seed)`` materialises the figure's experiment
  grid — a deterministic, keyed list of
  :class:`~repro.harness.parallel.GridPoint`s — without running anything;
* ``<name>(quick, scale, seed, jobs, cache)`` fans that grid out through
  :func:`~repro.harness.parallel.run_keyed` (a process pool when
  ``jobs > 1``, an on-disk result cache when one is passed) and assembles
  the rows by key lookup.

Because simulation results are a pure function of each spec, rows are
bit-identical for every ``jobs`` value and cache state.  The exposed grids
also feed ``python -m repro bench`` (per-point timing) and the benchmark
smoke tier (one tiny point per figure).

Absolute numbers are simulated-time throughputs on the scaled machine; the
contract is *shape* fidelity (who wins, by roughly what factor, where
crossovers fall), recorded against the paper in ``EXPERIMENTS.md``.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Tuple

from ..htm.conflict import ConflictLocation, resolve_conflict
from ..mem.address import MemoryKind
from ..params import DramLogPolicy, HTMConfig, HTMDesign, SignatureConfig
from ..workloads import WORKLOADS, WorkloadParams
from .cache import ResultCache
from .config import (
    BenchmarkSpec,
    DEFAULT_SCALE,
    ExperimentSpec,
    consolidated,
    mixed_pmdk,
)
from .parallel import GridExecutor, GridPoint, run_keyed
from .report import FigureResult

#: The PMDK micro-benchmarks plus Echo, as in Figure 6.
FIG6_BENCHMARKS = ("hashmap", "btree", "rbtree", "skiplist", "echo")

KB = 1 << 10
MB = 1 << 20


def _llc_bounded() -> HTMConfig:
    return HTMConfig(design=HTMDesign.LLC_BOUNDED)


def _ideal() -> HTMConfig:
    return HTMConfig(design=HTMDesign.IDEAL)


def _uhtm(bits: int, isolation: bool) -> HTMConfig:
    return HTMConfig(
        design=HTMDesign.UHTM,
        signature=SignatureConfig(bits=bits),
        isolation=isolation,
    )


def _sig_only(bits: int) -> HTMConfig:
    return HTMConfig(
        design=HTMDesign.SIGNATURE_ONLY, signature=SignatureConfig(bits=bits)
    )


def standard_design_matrix(quick: bool) -> List[HTMConfig]:
    """The Figure 6 comparison set (includes Signature-Only)."""
    sig_sizes = (1024,) if quick else (512, 1024, 4096)
    configs = [_llc_bounded(), _sig_only(sig_sizes[-1])]
    for bits in sig_sizes:
        configs.append(_uhtm(bits, isolation=False))
        configs.append(_uhtm(bits, isolation=True))
    configs.append(_ideal())
    return configs


def fig9_design_matrix(quick: bool) -> List[HTMConfig]:
    """The Figure 9 comparison set: LLC-Bounded, _sig/_opt sweeps, Ideal."""
    sig_sizes = (1024,) if quick else (512, 1024, 4096)
    configs = [_llc_bounded()]
    for bits in sig_sizes:
        configs.append(_uhtm(bits, isolation=False))
        configs.append(_uhtm(bits, isolation=True))
    configs.append(_ideal())
    return configs


def _pmdk_params(value_bytes: int, quick: bool) -> WorkloadParams:
    return WorkloadParams(
        threads=4,
        txs_per_thread=4 if quick else 8,
        value_bytes=value_bytes,
        ops_per_tx=1,
        keys=256,
        initial_fill=64,
    )


def _spec(
    name: str,
    htm: HTMConfig,
    benchmarks: Sequence[BenchmarkSpec],
    membound: int,
    scale: float,
    seed: int,
    cache_scale: float = 0.0,
) -> ExperimentSpec:
    return ExperimentSpec(
        name=name,
        htm=htm,
        benchmarks=tuple(benchmarks),
        scale=scale,
        cores=16,
        membound_instances=membound,
        seed=seed,
        cache_scale=cache_scale,
    )


# --------------------------------------------------------------------- Fig 2


def _fig2_benchmarks(quick: bool) -> Tuple[str, ...]:
    return FIG6_BENCHMARKS if not quick else ("hashmap", "btree", "skiplist")


def fig2_grid(
    quick: bool = True, scale: float = DEFAULT_SCALE, seed: int = 2020
) -> List[GridPoint]:
    value = 300 * KB  # past the on-chip boundary once consolidated
    points: List[GridPoint] = []
    for name in _fig2_benchmarks(quick):
        params = _pmdk_params(value, quick)
        for config in (_llc_bounded(), _ideal()):
            spec = _spec(
                f"fig2:{name}:{config.label}",
                config,
                consolidated(name, 4, params),
                membound=2,
                scale=scale,
                seed=seed,
            )
            points.append(GridPoint(spec, key=(name, config.label)))
    return points


def fig2(
    quick: bool = True,
    scale: float = DEFAULT_SCALE,
    seed: int = 2020,
    jobs: int = 1,
    cache: Optional[ResultCache] = None,
    executor: Optional[GridExecutor] = None,
) -> FigureResult:
    """LLC-Bounded vs Ideal unbounded throughput, 16 threads (Section III-C).

    The paper reports slowdowns of up to 6.2x for the bounded design.
    """
    result = FigureResult(
        "Fig. 2",
        "Throughput of LLC-Bounded vs Ideal unbounded HTM (normalised)",
        ["benchmark", "llc_bounded", "ideal", "ideal_speedup"],
    )
    runs = run_keyed(fig2_grid(quick, scale, seed), jobs=jobs, cache=cache, executor=executor)
    for name in _fig2_benchmarks(quick):
        bounded = runs[(name, "LLC-Bounded")]
        ideal = runs[(name, "Ideal")]
        result.add_row(
            name, 1.0, ideal.speedup_over(bounded), ideal.speedup_over(bounded)
        )
    return result


# --------------------------------------------------------------------- Fig 6


def fig6_grid(
    quick: bool = True, scale: float = DEFAULT_SCALE, seed: int = 2020
) -> List[GridPoint]:
    configs = standard_design_matrix(quick)
    points: List[GridPoint] = []
    for name in _fig2_benchmarks(quick):
        params = _pmdk_params(100 * KB, quick)
        for config in configs:
            spec = _spec(
                f"fig6:{name}:{config.label}",
                config,
                consolidated(name, 4, params),
                membound=2,
                scale=scale,
                seed=seed,
            )
            points.append(GridPoint(spec, key=(name, config.label)))
    return points


def fig6(
    quick: bool = True,
    scale: float = DEFAULT_SCALE,
    seed: int = 2020,
    jobs: int = 1,
    cache: Optional[ResultCache] = None,
    executor: Optional[GridExecutor] = None,
) -> FigureResult:
    """Throughput with 100 KB persistent transactions (Section VI-A).

    Four consolidated instances x four threads per benchmark plus two
    memory-intensive co-runners; everything normalised to LLC-Bounded.
    """
    configs = standard_design_matrix(quick)
    result = FigureResult(
        "Fig. 6",
        "Normalised throughput, 100 KB persistent transactions",
        ["benchmark"] + [c.label for c in configs],
    )
    runs = run_keyed(fig6_grid(quick, scale, seed), jobs=jobs, cache=cache, executor=executor)
    for name in _fig2_benchmarks(quick):
        baseline = runs[(name, configs[0].label)]
        row: List[object] = [name]
        for config in configs:
            row.append(runs[(name, config.label)].speedup_over(baseline))
        result.rows.append(row)
    return result


# --------------------------------------------------------------------- Fig 7


def _fig7_matrix(quick: bool) -> Tuple[Tuple[int, ...], List[HTMConfig]]:
    footprints = (100, 300, 500) if not quick else (100, 500)
    sig_sizes = (512, 1024, 4096) if not quick else (512, 4096)
    configs: List[HTMConfig] = []
    for bits in sig_sizes:
        configs.append(_uhtm(bits, isolation=False))
        configs.append(_uhtm(bits, isolation=True))
    return footprints, configs


def fig7_grid(
    quick: bool = True, scale: float = DEFAULT_SCALE, seed: int = 2020
) -> List[GridPoint]:
    footprints, configs = _fig7_matrix(quick)
    points: List[GridPoint] = []
    for footprint_kb in footprints:
        params = _pmdk_params(footprint_kb * KB, quick)
        for config in configs:
            spec = _spec(
                f"fig7:{footprint_kb}:{config.label}",
                config,
                mixed_pmdk(params),
                membound=2,
                scale=scale,
                seed=seed,
            )
            points.append(GridPoint(spec, key=(footprint_kb, config.label)))
    return points


def fig7(
    quick: bool = True,
    scale: float = DEFAULT_SCALE,
    seed: int = 2020,
    jobs: int = 1,
    cache: Optional[ResultCache] = None,
    executor: Optional[GridExecutor] = None,
) -> FigureResult:
    """Abort rates of UHTM, decomposed by cause (Section VI-A).

    Sweeps transaction footprint (100-500 KB) and signature size; reports
    the fraction of transaction attempts aborted by true conflicts, false
    positives, and capacity overflows.
    """
    result = FigureResult(
        "Fig. 7",
        "Abort-rate decomposition vs footprint and signature size",
        [
            "footprint_kb",
            "config",
            "abort_rate",
            "true_conflict",
            "false_positive",
            "capacity",
        ],
    )
    footprints, configs = _fig7_matrix(quick)
    runs = run_keyed(fig7_grid(quick, scale, seed), jobs=jobs, cache=cache, executor=executor)
    for footprint_kb in footprints:
        for config in configs:
            run = runs[(footprint_kb, config.label)]
            decomposition = run.abort_decomposition()
            result.add_row(
                footprint_kb,
                config.label,
                run.abort_rate,
                decomposition["true_conflict"],
                decomposition["false_positive"],
                decomposition["capacity"],
            )
    return result


# --------------------------------------------------------------------- Fig 8


def _fig8_ratios(quick: bool) -> Tuple[float, ...]:
    return (0.0, 0.01, 0.02) if quick else (0.0, 0.005, 0.01, 0.02)


def fig8_grid(
    quick: bool = True, scale: float = DEFAULT_SCALE, seed: int = 2020
) -> List[GridPoint]:
    params = WorkloadParams(
        threads=4,
        txs_per_thread=1,  # unused: horizon mode runs for a fixed window
        value_bytes=16 * KB,
        ops_per_tx=8,
        keys=12 * 1024,
        initial_fill=12 * 1024,
    )
    horizon_ns = (6e6 if quick else 15e6)  # 6 / 15 simulated ms
    points: List[GridPoint] = []
    for config in (_llc_bounded(), _uhtm(4096, True)):
        for ratio in _fig8_ratios(quick):
            spec = _spec(
                f"fig8:{ratio}:{config.label}",
                config,
                consolidated(
                    "echo",
                    2,
                    params,
                    long_tx_ratio=ratio,
                    long_scan_bytes=8 * MB,
                    hot_keys=16,
                    horizon_ns=horizon_ns,
                ),
                membound=0,
                scale=scale,
                seed=seed,
                # The hot put set must genuinely stay LLC-resident while
                # scans stream past it (the staged-detection win), so this
                # figure keeps the LLC at footprint scale / 2.
                cache_scale=scale / 2,
            )
            points.append(
                GridPoint(spec, label=config.label, key=(config.label, ratio))
            )
    return points


def fig8(
    quick: bool = True,
    scale: float = DEFAULT_SCALE,
    seed: int = 2020,
    jobs: int = 1,
    cache: Optional[ResultCache] = None,
    executor: Optional[GridExecutor] = None,
) -> FigureResult:
    """Echo with long-running read-only transactions (Section VI-B).

    0.5-2.0 % of operations are 8-32 MB read-only scans; the rest are 1 KB
    puts.  No co-runners.  The paper reports a 4.2x UHTM win at 0.5 %.
    """
    result = FigureResult(
        "Fig. 8",
        "Echo throughput with long-running read-only transactions "
        "(each series normalised to its own 0% run)",
        ["long_tx_pct", "llc_bounded", "uhtm", "uhtm_speedup"],
    )
    ratios = _fig8_ratios(quick)
    runs = run_keyed(fig8_grid(quick, scale, seed), jobs=jobs, cache=cache, executor=executor)
    bounded_base = runs[("LLC-Bounded", ratios[0])].throughput
    uhtm_base = runs[("4k_opt", ratios[0])].throughput
    for ratio in ratios:
        bounded = runs[("LLC-Bounded", ratio)].throughput
        uhtm = runs[("4k_opt", ratio)].throughput
        result.add_row(
            ratio * 100,
            bounded / bounded_base if bounded_base else 0.0,
            uhtm / uhtm_base if uhtm_base else 0.0,
            uhtm / bounded if bounded else 0.0,
        )
    return result


# --------------------------------------------------------------------- Fig 9


def _fig9_matrix(quick: bool):
    configs = fig9_design_matrix(quick)
    footprints = (600, 1200) if quick else (600, 900, 1200, 1500)
    workloads = (("Fig. 9a", "hybrid_index"), ("Fig. 9b", "dual_kv"))
    return configs, footprints, workloads


def fig9_grid(
    quick: bool = True, scale: float = DEFAULT_SCALE, seed: int = 2020
) -> List[GridPoint]:
    configs, footprints, workloads = _fig9_matrix(quick)
    points: List[GridPoint] = []
    for _, workload in workloads:
        for footprint_kb in footprints:
            ops = max(1, footprint_kb // 100)
            # A steady-state store: the whole key space is pre-populated and
            # operations are updates over per-thread shards, as in the
            # paper's pre-filled KV stores (inserting into an initially
            # empty scaled-down tree would serialise every thread on the
            # same few leaves, which millions-of-keys stores never do).
            params = WorkloadParams(
                threads=4,
                txs_per_thread=2 if quick else 4,
                value_bytes=100 * KB,
                ops_per_tx=ops,
                keys=4096,
                initial_fill=4096,
                update_ratio=1.0,
            )
            # Small consolidated runs are schedule-sensitive, so each point
            # averages a couple of seeds.
            for config in configs:
                for run_seed in (seed, seed + 1):
                    spec = _spec(
                        f"fig9:{workload}:{footprint_kb}:{config.label}",
                        config,
                        consolidated(workload, 4, params),
                        membound=0,
                        scale=scale,
                        seed=run_seed,
                        # No co-runners in this experiment: overflow comes
                        # from the footprints themselves, so the caches stay
                        # at footprint scale (partial spill, as at paper
                        # scale).
                        cache_scale=scale,
                    )
                    points.append(
                        GridPoint(
                            spec,
                            key=(workload, footprint_kb, config.label, run_seed),
                        )
                    )
    return points


def fig9(
    quick: bool = True,
    scale: float = DEFAULT_SCALE,
    seed: int = 2020,
    jobs: int = 1,
    cache: Optional[ResultCache] = None,
    executor: Optional[GridExecutor] = None,
) -> Tuple[FigureResult, FigureResult]:
    """Hybrid key-value stores vs transaction footprint (Section VI-C).

    Returns (Fig. 9a Hybrid-Index, Fig. 9b Dual).  Footprints grow via the
    operations batched per transaction; no LLC-hungry co-runners.
    """
    configs, footprints, workloads = _fig9_matrix(quick)
    runs = run_keyed(fig9_grid(quick, scale, seed), jobs=jobs, cache=cache, executor=executor)
    results = []
    for figure, workload in workloads:
        result = FigureResult(
            figure,
            f"{workload} normalised throughput vs footprint",
            ["footprint_kb"] + [c.label for c in configs],
        )
        for footprint_kb in footprints:
            baseline: Optional[float] = None
            row: List[object] = [footprint_kb]
            for config in configs:
                throughputs = [
                    runs[(workload, footprint_kb, config.label, run_seed)].throughput
                    for run_seed in (seed, seed + 1)
                ]
                mean = sum(throughputs) / len(throughputs)
                if baseline is None:
                    baseline = mean
                row.append(mean / baseline if baseline else 0.0)
            result.rows.append(row)
        results.append(result)
    return results[0], results[1]


# --------------------------------------------------------------------- Fig 10


def _fig10_matrix(quick: bool):
    footprints = (300, 900) if quick else (300, 600, 900)
    sig_sizes = (4096,) if quick else (1024, 4096)
    return footprints, sig_sizes


def fig10_grid(
    quick: bool = True, scale: float = DEFAULT_SCALE, seed: int = 2020
) -> List[GridPoint]:
    footprints, sig_sizes = _fig10_matrix(quick)
    points: List[GridPoint] = []
    for footprint_kb in footprints:
        params = _pmdk_params(footprint_kb * KB, quick).with_(
            kind=MemoryKind.DRAM, keys=2048, initial_fill=512
        )
        for policy in (DramLogPolicy.UNDO, DramLogPolicy.REDO):
            for bits in sig_sizes:
                config = HTMConfig(
                    design=HTMDesign.UHTM,
                    signature=SignatureConfig(bits=bits),
                    isolation=True,
                    dram_log_policy=policy,
                )
                spec = _spec(
                    f"fig10:{footprint_kb}:{policy}:{bits}",
                    config,
                    consolidated("hashmap", 2, params)
                    + consolidated("btree", 2, params),
                    membound=2,
                    scale=scale,
                    seed=seed,
                )
                points.append(
                    GridPoint(spec, key=(footprint_kb, policy, bits))
                )
    return points


def fig10(
    quick: bool = True,
    scale: float = DEFAULT_SCALE,
    seed: int = 2020,
    jobs: int = 1,
    cache: Optional[ResultCache] = None,
    executor: Optional[GridExecutor] = None,
) -> FigureResult:
    """Undo vs redo logging for overflowed DRAM blocks (Section VI-D).

    Volatile (DRAM-only) transactions under UHTM, identical except for the
    DRAM logging policy.  The paper reports undo ahead by 7.5 % at 300 KB
    and by up to 44.7 % as overflows grow.
    """
    result = FigureResult(
        "Fig. 10",
        "Volatile transactions: undo vs redo for overflowed DRAM blocks",
        ["footprint_kb", "undo", "redo", "undo_advantage"],
    )
    footprints, sig_sizes = _fig10_matrix(quick)
    runs = run_keyed(fig10_grid(quick, scale, seed), jobs=jobs, cache=cache, executor=executor)
    for footprint_kb in footprints:
        throughput = {}
        for policy in (DramLogPolicy.UNDO, DramLogPolicy.REDO):
            samples = [
                runs[(footprint_kb, policy, bits)].throughput
                for bits in sig_sizes
            ]
            throughput[policy] = sum(samples) / len(samples)
        undo = throughput[DramLogPolicy.UNDO]
        redo = throughput[DramLogPolicy.REDO]
        result.add_row(
            footprint_kb,
            1.0,
            redo / undo if undo else 0.0,
            (undo - redo) / redo if redo else 0.0,
        )
    return result


# ------------------------------------------------------- §IV-D abort claim


_ABORT_CLAIM_CONFIGS = (
    ("signature_only", lambda: _sig_only(1024)),
    ("uhtm_sig", lambda: _uhtm(1024, isolation=False)),
    ("uhtm_opt", lambda: _uhtm(1024, isolation=True)),
)


def abort_claim_grid(
    quick: bool = True, scale: float = DEFAULT_SCALE, seed: int = 2020
) -> List[GridPoint]:
    params = _pmdk_params(100 * KB, quick)
    points: List[GridPoint] = []
    for label, make_config in _ABORT_CLAIM_CONFIGS:
        spec = _spec(
            f"abort_claim:{label}",
            make_config(),
            mixed_pmdk(params),
            membound=2,
            scale=scale,
            seed=seed,
        )
        points.append(GridPoint(spec, label=label, key=label))
    return points


def abort_claim(
    quick: bool = True,
    scale: float = DEFAULT_SCALE,
    seed: int = 2020,
    jobs: int = 1,
    cache: Optional[ResultCache] = None,
    executor: Optional[GridExecutor] = None,
) -> FigureResult:
    """The 99% -> 26% -> 9% abort-rate reduction claim (Section IV-D).

    Signature-only (all-traffic checks) vs UHTM staged detection vs UHTM
    with conflict-domain isolation, on the consolidated PMDK set with
    co-runners.
    """
    result = FigureResult(
        "§IV-D",
        "Abort-rate reduction: all-traffic signatures -> staged -> isolated",
        ["config", "abort_rate", "false_positive_share"],
    )
    runs = run_keyed(
        abort_claim_grid(quick, scale, seed),
        jobs=jobs,
        cache=cache,
        executor=executor,
    )
    for label, _ in _ABORT_CLAIM_CONFIGS:
        run = runs[label]
        result.add_row(label, run.abort_rate, run.false_positive_share)
    return result


# ------------------------------------------------- traffic (open-loop)


#: Tenants in the traffic scenario: one ``open_loop`` benchmark instance —
#: and therefore one simulated process / conflict domain — each.
TRAFFIC_TENANTS = 4

#: The figure's domain axis: the same signature hardware with conflict-
#: domain isolation off (one shared domain's worth of false aliasing
#: across tenants) vs on (the paper's per-tenant isolation, Section IV-D).
TRAFFIC_DOMAINS: Tuple[Tuple[str, bool], ...] = (
    ("shared", False),
    ("isolated", True),
)


def traffic_matrix(quick: bool) -> Tuple[Tuple[str, ...], Tuple[str, ...]]:
    """(inner stores, arrival models) the scenario sweeps."""
    inners = (
        ("hybrid_index",) if quick else ("hybrid_index", "dual_kv", "echo")
    )
    return inners, ("poisson", "bursty")


def traffic_spec(
    inner: str,
    arrival: str,
    domains: str,
    isolation: bool,
    quick: bool,
    scale: float,
    seed: int,
) -> ExperimentSpec:
    """One traffic point: N tenants of one store under one arrival model.

    Sized so each tenant thread sees a few hundred arrivals at ~2/3
    utilisation — busy enough that queueing (and abort retries) shape a
    real tail, open enough that the backlog drains.
    """
    params = WorkloadParams(
        threads=2,
        txs_per_thread=1,  # unused: open-loop runs until the horizon
        # Large enough that every put overflows the scaled L1 and enters
        # the staged signature path — without overflow the domains axis is
        # a no-op because signatures are never consulted.
        value_bytes=64 * KB,
        ops_per_tx=2,
        keys=512,
        initial_fill=512,
        update_ratio=1.0,
    )
    horizon_ns = 3e6 if quick else 8e6
    traffic_kwargs = dict(
        inner=inner,
        arrival=arrival,
        mean_gap_ns=25_000.0,
        horizon_ns=horizon_ns,
        zipf_theta=0.9,
        burst_on_ns=300_000.0,
        burst_off_ns=300_000.0,
        burst_factor=2.0,
    )
    benchmarks = tuple(
        BenchmarkSpec(
            "open_loop",
            params,
            tuple(sorted(dict(traffic_kwargs, tenant=tenant).items())),
        )
        for tenant in range(TRAFFIC_TENANTS)
    )
    return _spec(
        f"traffic:{inner}:{arrival}:{domains}",
        # 256-bit signatures: small enough that cross-tenant aliasing is
        # the dominant tail contributor when isolation is off.
        _uhtm(256, isolation),
        benchmarks,
        membound=1,
        scale=scale,
        seed=seed,
    )


def traffic_grid(
    quick: bool = True, scale: float = DEFAULT_SCALE, seed: int = 2020
) -> List[GridPoint]:
    inners, arrivals = traffic_matrix(quick)
    points: List[GridPoint] = []
    for inner in inners:
        for arrival in arrivals:
            for domains, isolation in TRAFFIC_DOMAINS:
                spec = traffic_spec(
                    inner, arrival, domains, isolation, quick, scale, seed
                )
                points.append(
                    GridPoint(
                        spec,
                        label=f"{inner}:{arrival}:{domains}",
                        key=(inner, arrival, domains),
                    )
                )
    return points


def traffic(
    quick: bool = True,
    scale: float = DEFAULT_SCALE,
    seed: int = 2020,
    jobs: int = 1,
    cache: Optional[ResultCache] = None,
    executor: Optional[GridExecutor] = None,
) -> FigureResult:
    """Open-loop multi-tenant tail latency (the ROADMAP traffic scenario).

    Four tenants of one store each, Zipf-skewed open-loop put traffic
    (Poisson or bursty arrivals), one LLC-polluting co-runner.  Latency is
    arrival-to-completion — queueing delay and abort retries included —
    with exact-sample percentiles.  The ``domains`` axis replays the
    paper's Section IV-D isolation claim under load: per-tenant conflict
    domains remove cross-tenant signature aliasing from the tail.
    """
    result = FigureResult(
        "Traffic",
        "Open-loop tail latency, 4 tenants (arrival->completion, "
        "microseconds)",
        [
            "inner",
            "arrival",
            "domains",
            "p50_us",
            "p99_us",
            "p999_us",
            "abort_rate",
            "backlog_share",
        ],
    )
    inners, arrivals = traffic_matrix(quick)
    runs = run_keyed(
        traffic_grid(quick, scale, seed),
        jobs=jobs,
        cache=cache,
        executor=executor,
    )
    for inner in inners:
        for arrival in arrivals:
            for domains, _ in TRAFFIC_DOMAINS:
                run = runs[(inner, arrival, domains)]
                latency = run.latency
                requests = latency.get("count", 0.0)
                result.add_row(
                    inner,
                    arrival,
                    domains,
                    latency.get("p50", 0.0) / 1e3,
                    latency.get("p99", 0.0) / 1e3,
                    latency.get("p999", 0.0) / 1e3,
                    run.abort_rate,
                    latency.get("backlogged", 0.0) / requests
                    if requests
                    else 0.0,
                )
    return result


# -------------------------------------------------------------- Tables


def table1() -> FigureResult:
    """Table I: qualitative design comparison, rendered from the designs."""
    result = FigureResult(
        "Table I",
        "Comparison of UHTM with previous studies",
        ["design", "dram_boundary", "nvm_boundary", "onchip_detection",
         "offchip_detection", "dram_versioning", "nvm_versioning"],
    )
    result.add_row("LogTM/LTM/VTM", "unbounded", "none", "coherence",
                   "sticky/DRAM tables", "undo", "none")
    result.add_row("LogTM-SE/Bulk", "unbounded", "none", "signatures(L1)",
                   "signatures(all traffic)", "redo", "none")
    result.add_row("PTM/PHyTM/NV-HTM", "none", "L1", "coherence(L1)",
                   "none", "none", "undo/redo")
    result.add_row("DHTM", "none", "LLC", "coherence", "none", "none", "redo")
    result.add_row("UHTM", "unbounded", "unbounded", "coherence",
                   "signatures(LLC-miss)+isolation", "undo(overflow)", "redo")
    return result


def table2() -> FigureResult:
    """Table II: the conflict-resolution policy, probed from the code."""
    result = FigureResult(
        "Table II",
        "Conflict resolution policy of UHTM",
        ["location", "overflowed", "action"],
    )
    probes = [
        (ConflictLocation.ON_CHIP, True, False, "Abort non-overflowed Tx"),
        (ConflictLocation.ON_CHIP, False, False, "Requester-Wins"),
        (ConflictLocation.OFF_CHIP, True, False, "Abort non-overflowed Tx"),
        (ConflictLocation.OFF_CHIP, False, False, "Requester-Aborts"),
    ]
    for location, req_ovf, vic_ovf, expected in probes:
        resolution = resolve_conflict(location, req_ovf, [2], {2: vic_ovf})
        if resolution.requester_aborts:
            action = "Requester-Aborts"
        elif req_ovf != vic_ovf:
            action = "Abort non-overflowed Tx"
        else:
            action = "Requester-Wins"
        assert action == expected, f"policy drift: {location} {req_ovf}"
        label = "One" if req_ovf != vic_ovf else "None or both"
        result.add_row(location.value, label, action)
    return result


def table4() -> FigureResult:
    """Table IV: the benchmark list, from the workload registry."""
    descriptions = {
        "hashmap": "Insert/update entries in hash table",
        "btree": "Insert/update nodes in b-tree",
        "rbtree": "Insert/update nodes in red-black tree",
        "skiplist": "Insert/update entries in skip-list",
        "hybrid_index": "KV-store with two indexes in DRAM and in NVM",
        "dual_kv": "KV-store with two data structures in DRAM and NVM",
        "echo": "Insert/update KV-pairs to persistent hash table",
        "membound": "LLC-hungry streaming co-runner",
        "graphhog": "graph500-style random-walk co-runner",
        "open_loop": "Open-loop Zipf-skewed tenant traffic generator",
    }
    result = FigureResult(
        "Table IV", "Benchmarks", ["benchmark", "description"]
    )
    for name in WORKLOADS:
        result.add_row(name, descriptions[name])
    return result


ALL_FIGURES = {
    "fig2": fig2,
    "fig6": fig6,
    "fig7": fig7,
    "fig8": fig8,
    "fig9": fig9,
    "fig10": fig10,
    "abort_claim": abort_claim,
    "traffic": traffic,
    "table1": table1,
    "table2": table2,
    "table4": table4,
}

#: Grid builders for every dynamic figure — the unit ``repro bench`` times
#: and the benchmark smoke tier samples.  Same keys as ``ALL_FIGURES`` minus
#: the static tables.
FIGURE_GRIDS = {
    "fig2": fig2_grid,
    "fig6": fig6_grid,
    "fig7": fig7_grid,
    "fig8": fig8_grid,
    "fig9": fig9_grid,
    "fig10": fig10_grid,
    "abort_claim": abort_claim_grid,
    "traffic": traffic_grid,
}
