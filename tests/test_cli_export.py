"""Tests for the CLI export flags."""

from __future__ import annotations

import json

from repro.__main__ import main


class TestCliExport:
    def test_json_export(self, tmp_path, capsys):
        out = tmp_path / "r.json"
        assert main(["table1", "--json", str(out)]) == 0
        payload = json.loads(out.read_text())
        assert payload[0]["figure"] == "Table I"
        assert any(row[0] == "UHTM" for row in payload[0]["rows"])

    def test_markdown_export(self, tmp_path, capsys):
        out = tmp_path / "r.md"
        assert main(["table2", "--markdown", str(out)]) == 0
        text = out.read_text()
        assert "### Table II" in text
        assert "Requester-Wins" in text

    def test_both_exports(self, tmp_path, capsys):
        json_out = tmp_path / "r.json"
        md_out = tmp_path / "r.md"
        assert main(
            ["table4", "--json", str(json_out), "--markdown", str(md_out)]
        ) == 0
        assert json_out.exists() and md_out.exists()
