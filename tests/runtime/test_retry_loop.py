"""Tests of the Algorithm 1 retry/fallback protocol via full-system runs."""

from __future__ import annotations

import pytest

from repro import HTMConfig, MachineConfig, SignatureConfig, System
from repro.mem.address import MemoryKind
from repro.params import LINE_SIZE


def make_system(design="uhtm", scale=1 / 64, cores=4, **kwargs):
    return System(
        MachineConfig.scaled(scale, cores=cores),
        HTMConfig(design=design, **kwargs),
    )


class TestFastPath:
    def test_single_transaction_commits(self):
        system = make_system()
        proc = system.process("p")
        addr = system.heap.alloc_words(1, MemoryKind.DRAM)

        def body(api):
            yield from api.run_transaction(lambda tx: tx.write_word(addr, 1))

        proc.thread(body)
        system.run()
        assert system.stats.counter("tx.commits") == 1
        assert system.stats.counter("ops.committed") == 1
        assert system.controller.dram.load(addr) == 1

    def test_conflicting_increments_all_land(self):
        system = make_system()
        proc = system.process("p")
        addr = system.heap.alloc_words(1, MemoryKind.DRAM)

        def worker(api):
            for _ in range(25):
                def work(tx):
                    value = tx.read_word(addr)
                    yield
                    tx.write_word(addr, value + 1)

                yield from api.run_transaction(work)

        for _ in range(4):
            proc.thread(worker)
        system.run()
        assert system.controller.dram.load(addr) == 100

    def test_retries_counted(self):
        system = make_system()
        proc = system.process("p")
        addr = system.heap.alloc_words(1, MemoryKind.DRAM)

        def worker(api):
            for _ in range(25):
                def work(tx):
                    value = tx.read_word(addr)
                    yield
                    tx.write_word(addr, value + 1)

                yield from api.run_transaction(work)

        for _ in range(4):
            proc.thread(worker)
        system.run()
        # With 4 threads hammering one word there must be some conflicts.
        assert system.stats.counter("tx.retries") > 0
        assert system.stats.counter("tx.aborts") > 0


class TestCapacityFallback:
    def test_capacity_goes_straight_to_slow_path(self):
        """Algorithm 1 line 15-17: no retry after a capacity abort."""
        system = make_system(design="llc_bounded", scale=1 / 256)
        proc = system.process("p")
        nlines = 2048
        base = system.heap.alloc(nlines * LINE_SIZE, MemoryKind.DRAM)

        def body(api):
            def work(tx):
                for i in range(nlines):
                    tx.write_word(base + i * LINE_SIZE, 1)
                    if i % 64 == 0:
                        yield

            yield from api.run_transaction(work)

        proc.thread(body)
        system.run()
        assert system.stats.counter("tx.capacity_fallbacks") == 1
        assert system.stats.counter("tx.slow_path_executions") == 1
        # Exactly one speculative attempt: begin once, abort once.
        assert system.stats.counter("tx.aborts.capacity") == 1
        # The slow path still completed the work.
        assert system.controller.dram.load(base) == 1
        assert system.stats.counter("ops.committed") == 1

    def test_slow_path_excludes_fast_path(self):
        """Lock acquisition aborts running fast-path txs in the process."""
        system = make_system(design="llc_bounded", scale=1 / 256)
        proc = system.process("p")
        nlines = 2048
        big = system.heap.alloc(nlines * LINE_SIZE, MemoryKind.DRAM)
        small = system.heap.alloc_words(1, MemoryKind.DRAM)

        def overflower(api):
            def work(tx):
                for i in range(nlines):
                    tx.write_word(big + i * LINE_SIZE, 1)
                    if i % 64 == 0:
                        yield

            yield from api.run_transaction(work)

        def small_fry(api):
            for i in range(200):
                def work(tx):
                    value = tx.read_word(small)
                    yield
                    tx.write_word(small, value + 1)

                yield from api.run_transaction(work)

        proc.thread(overflower)
        proc.thread(small_fry)
        system.run()
        assert system.controller.dram.load(small) == 200
        # The small transactions were preempted at least once by the lock.
        assert system.stats.counter("tx.aborts.lock_preempted") >= 0

    def test_max_retries_falls_back(self):
        """Endless conflicts must eventually serialise, not livelock."""
        system = make_system(max_retries=2)
        proc = system.process("p")
        addr = system.heap.alloc_words(1, MemoryKind.DRAM)

        def worker(api):
            for _ in range(30):
                def work(tx):
                    value = tx.read_word(addr)
                    yield
                    yield
                    tx.write_word(addr, value + 1)

                yield from api.run_transaction(work)

        for _ in range(4):
            proc.thread(worker)
        system.run()
        assert system.controller.dram.load(addr) == 120  # nothing lost


class TestDurableSlowPath:
    def test_slow_path_nvm_writes_survive_crash(self):
        system = make_system(design="llc_bounded", scale=1 / 256)
        proc = system.process("p")
        nlines = 2048
        base = system.heap.alloc(nlines * LINE_SIZE, MemoryKind.NVM)

        def body(api):
            def work(tx):
                for i in range(nlines):
                    tx.write_word(base + i * LINE_SIZE, i + 1)
                    if i % 64 == 0:
                        yield

            yield from api.run_transaction(work)

        proc.thread(body)
        system.run()
        assert system.stats.counter("tx.slow_path_executions") == 1
        system.crash()
        system.recover()
        for i in range(nlines):
            assert system.controller.nvm.load(base + i * LINE_SIZE) == i + 1
