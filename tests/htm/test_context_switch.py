"""Context-switch virtualization tests (Section IV-E).

"UHTM preserves contexts of transactions for conflict detection and version
management across context switches by virtualizing the transaction ID."
"""

from __future__ import annotations

import pytest

from repro import HTMConfig, MachineConfig, System, TransactionAborted
from repro.errors import AbortReason
from repro.htm.tss import TxStatus
from repro.mem.address import MemoryKind
from repro.params import LINE_SIZE
from repro.sim.engine import SimThread


def make_system(scale=1 / 64, **kwargs):
    return System(MachineConfig.scaled(scale, cores=4), HTMConfig(**kwargs))


def make_thread(tid=0):
    return SimThread(tid, f"t{tid}", lambda t: iter(()))


class TestMigration:
    def test_transaction_continues_on_new_core(self):
        system = make_system()
        thread = make_thread()
        a = system.heap.alloc_words(1, MemoryKind.DRAM)
        b = system.heap.alloc_words(1, MemoryKind.NVM)
        tx = system.htm.begin(thread, 0, 1, 1)
        system.htm.tx_write(tx, a, 1)
        system.htm.context_switch(tx, new_core_id=2)
        assert tx.core_id == 2
        system.htm.tx_write(tx, b, 2)
        assert system.htm.tx_read(tx, a) == 1  # own write still visible
        system.htm.commit(tx)
        assert system.controller.dram.load(a) == 1
        assert system.controller.load_word(b) == 2

    def test_flush_moves_lines_out_of_old_l1(self):
        system = make_system()
        thread = make_thread()
        a = system.heap.alloc_words(1, MemoryKind.DRAM)
        tx = system.htm.begin(thread, 0, 1, 1)
        system.htm.tx_write(tx, a, 1)
        line = a - a % LINE_SIZE
        assert system.hierarchy.l1_resident(0, line)
        system.htm.context_switch(tx, 2)
        assert not system.hierarchy.l1_resident(0, line)
        assert system.hierarchy.llc_resident(line)

    def test_flushed_written_lines_land_on_overflow_list(self):
        system = make_system()
        thread = make_thread()
        a = system.heap.alloc_words(1, MemoryKind.NVM)
        tx = system.htm.begin(thread, 0, 1, 1)
        system.htm.tx_write(tx, a, 1)
        system.htm.context_switch(tx, 1)
        line = a - a % LINE_SIZE
        assert line in tx.overflow_list

    def test_flush_cost_charged(self):
        system = make_system()
        thread = make_thread()
        base = system.heap.alloc(8 * LINE_SIZE, MemoryKind.DRAM)
        tx = system.htm.begin(thread, 0, 1, 1)
        for i in range(4):
            system.htm.tx_write(tx, base + i * LINE_SIZE, i)
        before = thread.clock_ns
        system.htm.context_switch(tx, 3)
        assert thread.clock_ns - before >= 4 * system.machine.latency.llc_ns

    def test_conflicts_still_detected_after_migration(self):
        """Directory entries name the transaction, not the core, so a
        migrated transaction still conflicts correctly."""
        system = make_system()
        t1, t2 = make_thread(0), make_thread(1)
        a = system.heap.alloc_words(1, MemoryKind.DRAM)
        tx1 = system.htm.begin(t1, 0, 1, 1)
        system.htm.tx_write(tx1, a, 1)
        system.htm.context_switch(tx1, 3)
        tx2 = system.htm.begin(t2, 1, 1, 1)
        system.htm.tx_write(tx2, a, 2)  # requester-wins: tx1 dies
        assert system.htm.tss.entry(tx1.tx_id).status is TxStatus.ABORTED
        system.htm.commit(tx2)

    def test_migration_of_doomed_tx_raises(self):
        system = make_system()
        thread = make_thread()
        tx = system.htm.begin(thread, 0, 1, 1)
        system.htm._abort(tx, AbortReason.EXPLICIT)
        with pytest.raises(TransactionAborted):
            system.htm.context_switch(tx, 1)

    def test_abort_after_migration_rolls_back_everything(self):
        system = make_system(scale=1 / 256)
        thread = make_thread()
        nlines = 1024
        base = system.heap.alloc(nlines * LINE_SIZE, MemoryKind.DRAM)
        for i in range(nlines):
            system.controller.dram.store(base + i * LINE_SIZE, 5)
        tx = system.htm.begin(thread, 0, 1, 1)
        for i in range(nlines // 2):
            system.htm.tx_write(tx, base + i * LINE_SIZE, 9)
        system.htm.context_switch(tx, 2)
        for i in range(nlines // 2, nlines):
            system.htm.tx_write(tx, base + i * LINE_SIZE, 9)
        system.htm._abort(tx, AbortReason.EXPLICIT)
        for i in range(nlines):
            assert system.controller.dram.load(base + i * LINE_SIZE) == 5
