"""Figure 10: undo vs redo logging for overflowed DRAM blocks (Section VI-D).

Paper shape: for volatile transactions the undo policy outperforms redo
(fast commit-mark commits and no read indirection beat redo's cheap aborts),
by 7.5% at low overflow rates and more as overflows grow.
"""

from __future__ import annotations

from repro.harness.figures import fig10


def test_fig10(benchmark, quick, show):
    result = benchmark.pedantic(
        lambda: fig10(quick=quick), rounds=1, iterations=1
    )
    show(result)
    advantages = result.column("undo_advantage")
    # Undo wins at every footprint.
    assert all(adv > 0 for adv in advantages)
    # And the advantage is material (paper: 7.5% .. 44.7%).
    assert max(advantages) > 0.03
