"""Good: every emit guarded; counted kinds beside their counters."""


class Machine:
    def __init__(self, tracer, stats):
        self.tracer = tracer
        self.stats = stats

    def begin(self, tx):
        self.stats.incr("tx.begins")
        if self.tracer is not None:
            self.tracer.emit("tx.begin", tx)

    def abort(self, tx):
        tracer = self.tracer
        if tracer is None:
            return
        self.stats.incr("tx.aborts")
        tracer.emit("tx.abort", tx)

    def resolve(self, tracer, line):
        if tracer is not None:
            tracer.emit("conflict.resolve", line)  # uncounted kind: guard only
